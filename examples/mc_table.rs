//! The paper's motivating application pattern (§1, §7): an MPI Monte-Carlo
//! code — in the mold of QMCPACK or GFMC — whose per-node lookup tables
//! outgrow a single node's memory. The hybrid fix the paper proposes:
//! "simply define these arrays as CAF coarrays, allowing the runtime to
//! distribute them across nodes and convert load/store accesses of these
//! arrays to remote data access operations", while the rest of the MPI
//! application stays untouched.
//!
//! Here: a random-walk estimator whose potential table is a distributed
//! coarray; walkers evaluate the potential with one-sided coarray reads,
//! and the estimator statistics flow through plain `MPI_Allreduce` — both
//! through the same runtime.
//!
//! ```text
//! cargo run --release --example mc_table
//! ```

use caf::{CafUniverse, Coarray};

const TABLE_GLOBAL: usize = 1 << 16; // "too large for one node"
const WALKERS_PER_IMAGE: usize = 200;
const STEPS: usize = 50;

/// The physical table entry at global index `g` (what the application
/// would have precomputed).
fn potential(g: usize) -> f64 {
    let x = g as f64 / TABLE_GLOBAL as f64;
    (12.0 * x).sin() * (-3.0 * x).exp() + 0.5
}

fn main() {
    let estimates = CafUniverse::run(4, |img| {
        let world = img.team_world();
        let n = img.num_images();
        let local_len = TABLE_GLOBAL / n;

        // The once-per-node table, now distributed: each image holds a
        // contiguous block and fills its own part.
        let table: Coarray<f64> = img.coarray_alloc(&world, local_len);
        let me = img.this_image();
        let mine: Vec<f64> = (0..local_len).map(|i| potential(me * local_len + i)).collect();
        table.local_write(img, 0, &mine);
        img.sync_all();

        // Walkers: LCG positions; each step evaluates the potential at a
        // random global index — a remote coarray read when the index lives
        // elsewhere (the "load/store converted to remote access").
        let mut acc = 0.0f64;
        let mut reads_remote = 0u64;
        let mut state = 0x9E3779B97F4A7C15u64 ^ (me as u64) << 32;
        for _ in 0..WALKERS_PER_IMAGE {
            for _ in 0..STEPS {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let g = (state >> 16) as usize % TABLE_GLOBAL;
                let owner = g / local_len;
                let off = g % local_len;
                let mut v = [0.0f64];
                table.read(img, owner, off, &mut v);
                if owner != me {
                    reads_remote += 1;
                }
                acc += v[0];
            }
        }

        // Estimator statistics through MPI, untouched from the pure-MPI
        // original: [sum, samples, remote_reads].
        let mpi = img.mpi().expect("hybrid MPI+CAF");
        let sums = mpi
            .allreduce(
                &mpi.world(),
                &[acc, (WALKERS_PER_IMAGE * STEPS) as f64, reads_remote as f64],
                |a, b| a + b,
            )
            .expect("allreduce");
        img.sync_all();
        img.coarray_free(&world, table);
        (sums[0] / sums[1], sums[2] as u64)
    });

    let (estimate, remote_reads) = estimates[0];
    // Reference: the exact table mean (walker indices are uniform).
    let exact: f64 = (0..TABLE_GLOBAL).map(potential).sum::<f64>() / TABLE_GLOBAL as f64;
    println!("MC estimate of <V>: {estimate:.4} (exact mean {exact:.4})");
    println!("remote table reads: {remote_reads} (three quarters of all reads, on average)");
    assert!(
        (estimate - exact).abs() < 0.05,
        "estimator should be near the table mean"
    );
    assert!(remote_reads > 0, "the table must actually be distributed");
    println!("mc_table OK");
}
