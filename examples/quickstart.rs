//! Quickstart: coarrays, events, teams, and function shipping on both
//! substrates.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use caf::{CafConfig, CafUniverse, Coarray, SubstrateKind};

fn demo(kind: SubstrateKind) {
    println!("--- substrate: {kind:?} ---");
    let sums = CafUniverse::run_with_config(4, CafConfig::on(kind), |img| {
        let world = img.team_world();
        let me = img.this_image();

        // A coarray: 4 u64 slots on every image.
        let ca: Coarray<u64> = img.coarray_alloc(&world, 4);

        // One-sided: write my id into my right neighbour's slot 0.
        let right = (me + 1) % img.num_images();
        ca.write(img, right, 0, &[me as u64 + 100]);
        img.sync_all();

        // Events: tell the left neighbour its data has long arrived.
        let ev = img.event_alloc(&world);
        img.event_notify(&world, &ev, (me + img.num_images() - 1) % img.num_images());
        img.event_wait(&ev);

        // Teams: split into halves and reduce within each.
        let half = img.team_split(&world, (me / 2) as u64, me as i64);
        let local = ca.local_vec(img)[0];
        let sum = img.allreduce(&half, &[local], |a, b| a + b)[0];

        // Function shipping inside a finish block: increment a slot on
        // image 0 from everywhere.
        img.finish(&world, |img| {
            let ca2 = ca.clone();
            img.ship(&world, 0, move |exec| {
                let v = ca2.local_vec(exec)[1];
                ca2.local_write(exec, 1, &[v + 1]);
            });
        });

        if me == 0 {
            assert_eq!(ca.local_vec(img)[1], 4, "all four shipped increments ran");
        }
        img.coarray_free(&world, ca);
        sum
    });
    println!("per-image half-team sums: {sums:?}");
}

fn main() {
    demo(SubstrateKind::Mpi);
    demo(SubstrateKind::Gasnet);
    println!("quickstart OK");
}
