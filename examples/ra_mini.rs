//! Miniature RandomAccess: run the paper's communication stress test on
//! both substrates at a few image counts and print GUP/s plus the per-
//! primitive time decomposition (the Figure-4 categories) measured by the
//! runtime's built-in stats.
//!
//! ```text
//! cargo run --release --example ra_mini
//! ```

use caf::{CafUniverse, StatCat, SubstrateKind};
use caf_bench::fusion_like;
use caf_hpcc::ra;

fn main() {
    println!(
        "{:>8} {:>12} {:>12} | {:>10} {:>10} {:>10} {:>10}",
        "images", "substrate", "GUP/s", "write(s)", "wait(s)", "notify(s)", "barrier(s)"
    );
    for p in [2usize, 4, 8] {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let rows = CafUniverse::run_with_config(p, fusion_like(kind), |img| {
                let team = img.team_world();
                let out = ra::run(img, &team, 10, 20_000);
                (
                    out.bench.metric,
                    img.stats().seconds(StatCat::CoarrayWrite),
                    img.stats().seconds(StatCat::EventWait),
                    img.stats().seconds(StatCat::EventNotify),
                    img.stats().seconds(StatCat::Barrier),
                )
            });
            let (gups, w, ew, en, ba) = rows[0];
            println!(
                "{:>8} {:>12} {:>12.5} | {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                p,
                match kind {
                    SubstrateKind::Mpi => "CAF-MPI",
                    SubstrateKind::Gasnet => "CAF-GASNet",
                },
                gups,
                w,
                ew,
                en,
                ba
            );
        }
    }
    println!("ra_mini OK");
}
