//! Miniature RandomAccess: run the paper's communication stress test on
//! both substrates at a few image counts and print GUP/s plus the per-
//! primitive time decomposition (the Figure-4 categories) measured by the
//! runtime's built-in stats.
//!
//! ```text
//! cargo run --release --example ra_mini [--agg]
//! ```
//!
//! With `--agg`, updates are coalesced through the `caf-agg` subsystem
//! (per-target buckets, hypercube routing, batched AM delivery) instead
//! of issued as individual async puts; the extra columns show how many
//! records rode how many batches (and forwarded hops) per run.

use caf::{AggConfig, CafConfig, CafUniverse, StatCat, SubstrateKind};
use caf_bench::fusion_like;
use caf_hpcc::ra::{self, RaOpts};

fn main() {
    let aggregated = std::env::args().any(|a| a == "--agg");
    println!(
        "{:>8} {:>12} {:>12} | {:>10} {:>10} {:>10} {:>10}{}",
        "images",
        "substrate",
        "GUP/s",
        "write(s)",
        "wait(s)",
        "notify(s)",
        "barrier(s)",
        if aggregated { " | records batches fwds" } else { "" }
    );
    for p in [2usize, 4, 8] {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let cfg = if aggregated {
                // All three job sizes are powers of two, so hypercube
                // routing stays on (it is clamped off otherwise).
                CafConfig { agg: AggConfig::routed(), ..fusion_like(kind) }
            } else {
                fusion_like(kind)
            };
            let rows = CafUniverse::run_with_config(p, cfg, move |img| {
                let team = img.team_world();
                let opts = if aggregated {
                    RaOpts { aggregated: true, ..RaOpts::default() }
                } else {
                    RaOpts { async_puts: true, ..RaOpts::default() }
                };
                let out = ra::run_opts(img, &team, 10, 20_000, opts);
                let agg = img.agg_stats();
                (
                    out.bench.metric,
                    img.stats().seconds(StatCat::CoarrayWrite),
                    img.stats().seconds(StatCat::EventWait),
                    img.stats().seconds(StatCat::EventNotify),
                    img.stats().seconds(StatCat::Barrier),
                    (agg.enqueued, agg.drained_buckets, agg.forwarded),
                )
            });
            let (gups, w, ew, en, ba, _) = rows[0];
            let agg_cols = if aggregated {
                let (records, batches, fwds) = rows
                    .iter()
                    .fold((0, 0, 0), |(r, b, f), &(.., (ar, ab, af))| {
                        (r + ar, b + ab, f + af)
                    });
                format!(" | {records:>7} {batches:>7} {fwds:>4}")
            } else {
                String::new()
            };
            println!(
                "{:>8} {:>12} {:>12.5} | {:>10.4} {:>10.4} {:>10.4} {:>10.4}{}",
                p,
                match kind {
                    SubstrateKind::Mpi => "CAF-MPI",
                    SubstrateKind::Gasnet => "CAF-GASNet",
                },
                gups,
                w,
                ew,
                en,
                ba,
                agg_cols
            );
        }
    }
    println!("ra_mini OK");
}
