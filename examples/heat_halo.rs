//! Hybrid MPI+CAF heat diffusion — the paper's motivating usage pattern:
//! coarray one-sided halo exchanges for neighbour data, MPI collectives
//! for global control (here: a convergence check via `MPI_Allreduce`).
//!
//! A 2-D explicit heat (Jacobi) solver on a processor grid. Each image
//! owns an `NX × NY` tile with a ghost rim; per step it pushes its
//! boundary rows/columns into the neighbours' ghost inboxes with coarray
//! writes, then every image calls MPI to agree on the residual — the mix
//! that deadlocks on split runtimes (Figure 2) and is safe here because
//! MPI *is* the runtime.
//!
//! ```text
//! cargo run --example heat_halo
//! ```

use caf::{CafUniverse, Coarray, Image, Team};
use caf_fabric::topology::Grid2d;

const NX: usize = 32;
const NY: usize = 32;
const STEPS: usize = 200;

fn idx(i: usize, j: usize) -> usize {
    j * (NX + 2) + i
}

/// Push my boundary into each neighbour's facing ghost slot of the halo
/// coarray, then unpack what the neighbours pushed at me.
fn halo_exchange(img: &Image, team: &Team, grid: &Grid2d, buf: &Coarray<f64>, u: &mut [f64]) {
    let l = NX.max(NY);
    let nbrs = grid.neighbours(team.rank()); // [W, E, S, N]
    let opposite = [1usize, 0, 3, 2];
    // Pack + remote write.
    for (dir, nb) in nbrs.iter().enumerate() {
        if let Some(nb) = *nb {
            let data: Vec<f64> = match dir {
                0 => (1..=NY).map(|j| u[idx(1, j)]).collect(),
                1 => (1..=NY).map(|j| u[idx(NX, j)]).collect(),
                2 => (1..=NX).map(|i| u[idx(i, 1)]).collect(),
                _ => (1..=NX).map(|i| u[idx(i, NY)]).collect(),
            };
            buf.write(img, nb, opposite[dir] * l, &data);
        }
    }
    img.sync_all();
    // Unpack into my ghost rim.
    for (dir, nb) in nbrs.iter().enumerate() {
        if nb.is_some() {
            let n = if dir < 2 { NY } else { NX };
            let mut data = vec![0.0; n];
            buf.local_read(img, dir * l, &mut data);
            match dir {
                0 => (1..=NY).for_each(|j| u[idx(0, j)] = data[j - 1]),
                1 => (1..=NY).for_each(|j| u[idx(NX + 1, j)] = data[j - 1]),
                2 => (1..=NX).for_each(|i| u[idx(i, 0)] = data[i - 1]),
                _ => (1..=NX).for_each(|i| u[idx(i, NY + 1)] = data[i - 1]),
            }
        }
    }
    img.sync_all();
}

fn main() {
    let results = CafUniverse::run(4, |img| {
        let world = img.team_world();
        let grid = Grid2d::new(world.size());
        let (px, py) = grid.coords(world.rank());

        // Field with ghost rim; a hot square in the global centre.
        let mut u = vec![0.0f64; (NX + 2) * (NY + 2)];
        let (gx, gy) = (grid.px * NX, grid.py * NY);
        for j in 1..=NY {
            for i in 1..=NX {
                let (gi, gj) = (px * NX + i - 1, py * NY + j - 1);
                if (gx / 3..2 * gx / 3).contains(&gi) && (gy / 3..2 * gy / 3).contains(&gj) {
                    u[idx(i, j)] = 100.0;
                }
            }
        }

        let halo: Coarray<f64> = img.coarray_alloc(&world, 4 * NX.max(NY));
        let mut next = u.clone();
        let mut last_delta = f64::INFINITY;

        for step in 0..STEPS {
            halo_exchange(img, &world, &grid, &halo, &mut u);
            let mut local_delta: f64 = 0.0;
            for j in 1..=NY {
                for i in 1..=NX {
                    let v = 0.25
                        * (u[idx(i - 1, j)] + u[idx(i + 1, j)] + u[idx(i, j - 1)]
                            + u[idx(i, j + 1)]);
                    local_delta = local_delta.max((v - u[idx(i, j)]).abs());
                    next[idx(i, j)] = v;
                }
            }
            std::mem::swap(&mut u, &mut next);

            // MPI interoperability: global convergence check through the
            // SAME runtime the coarray writes above went through.
            let mpi = img.mpi().expect("MPI substrate");
            let delta = mpi
                .allreduce(&mpi.world(), &[local_delta], f64::max)
                .expect("allreduce")[0];
            last_delta = delta;
            if world.rank() == 0 && step % 50 == 0 {
                println!("step {step:>4}: max delta {delta:.6}");
            }
        }

        let total: f64 = (1..=NY)
            .flat_map(|j| (1..=NX).map(move |i| (i, j)))
            .map(|(i, j)| u[idx(i, j)])
            .sum();
        img.coarray_free(&world, halo);
        (total, last_delta)
    });

    let grand: f64 = results.iter().map(|r| r.0).sum();
    println!(
        "final: total heat {grand:.2}, max residual {:.6}",
        results[0].1
    );
    assert!(results[0].1 < 10.0, "diffusion must be converging");
    println!("heat_halo OK");
}
