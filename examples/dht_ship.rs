//! Distributed hash table via function shipping — the CAF 2.0 feature the
//! paper highlights as the reason MPI needs active messages (§5): "AMs are
//! essential for building runtime systems for … models such as X10,
//! Chapel, and CAF 2.0 that support dynamic task parallelism."
//!
//! Keys are hashed to an owning image; inserts *ship the insertion* to the
//! owner instead of moving the bucket to the inserter. A `finish` block
//! guarantees all shipped inserts have executed everywhere before lookups
//! begin. Lookups use one-sided coarray reads (no owner involvement).
//!
//! ```text
//! cargo run --release --example dht_ship
//! ```

use caf::{CafConfig, CafUniverse, Coarray, SubstrateKind};

const SLOTS_PER_IMAGE: usize = 512;
const INSERTS_PER_IMAGE: usize = 120;

fn hash(key: u64) -> u64 {
    let mut x = key.wrapping_mul(0x9e3779b97f4a7c15);
    x ^= x >> 32;
    x.wrapping_mul(0xd6e8feb86659fd93)
}

fn demo(kind: SubstrateKind) {
    let totals = CafUniverse::run_with_config(4, CafConfig::on(kind), |img| {
        let world = img.team_world();
        let n = img.num_images();
        // Open-addressed table: slot i holds (key, value); key 0 = empty.
        let keys: Coarray<u64> = img.coarray_alloc(&world, SLOTS_PER_IMAGE);
        let vals: Coarray<u64> = img.coarray_alloc(&world, SLOTS_PER_IMAGE);

        // Phase 1: everyone ships inserts to the owners.
        let me = img.this_image();
        img.finish(&world, |img| {
            for i in 0..INSERTS_PER_IMAGE {
                let key = (me * INSERTS_PER_IMAGE + i + 1) as u64;
                let value = key * 10;
                let owner = (hash(key) as usize >> 8) % n;
                let (k2, v2) = (keys.clone(), vals.clone());
                img.ship(&world, owner, move |exec| {
                    // Runs on the owner: linear probing in its local part.
                    let mut slot = (hash(key) as usize) % SLOTS_PER_IMAGE;
                    loop {
                        let mut cur = [0u64];
                        k2.local_read(exec, slot, &mut cur);
                        if cur[0] == 0 || cur[0] == key {
                            k2.local_write(exec, slot, &[key]);
                            v2.local_write(exec, slot, &[value]);
                            break;
                        }
                        slot = (slot + 1) % SLOTS_PER_IMAGE;
                    }
                });
            }
        });

        // Phase 2: look up someone else's keys with pure one-sided reads.
        let victim = (me + 1) % n;
        let mut found = 0u64;
        for i in 0..INSERTS_PER_IMAGE {
            let key = (victim * INSERTS_PER_IMAGE + i + 1) as u64;
            let owner = (hash(key) as usize >> 8) % n;
            let mut slot = (hash(key) as usize) % SLOTS_PER_IMAGE;
            loop {
                let mut k = [0u64];
                keys.read(img, owner, slot, &mut k);
                if k[0] == key {
                    let mut v = [0u64];
                    vals.read(img, owner, slot, &mut v);
                    assert_eq!(v[0], key * 10, "value mismatch for key {key}");
                    found += 1;
                    break;
                }
                assert_ne!(k[0], 0, "key {key} missing from the table");
                slot = (slot + 1) % SLOTS_PER_IMAGE;
            }
        }
        img.sync_all();
        img.coarray_free(&world, keys);
        img.coarray_free(&world, vals);
        found
    });
    let total: u64 = totals.iter().sum();
    assert_eq!(total, 4 * INSERTS_PER_IMAGE as u64);
    println!("{kind:?}: {total} lookups verified across 4 images");
}

fn main() {
    demo(SubstrateKind::Mpi);
    demo(SubstrateKind::Gasnet);
    println!("dht_ship OK");
}
