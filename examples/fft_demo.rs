//! Distributed FFT demo: run the six-step FFT on both substrates, verify
//! a round-trip, and show the alltoall-vs-computation split (the paper's
//! Figure-8 decomposition) from the runtime's stats.
//!
//! ```text
//! cargo run --release --example fft_demo
//! ```

use caf::{CafUniverse, StatCat, SubstrateKind};
use caf_bench::fusion_like;
use caf_hpcc::complex::C64;
use caf_hpcc::fft;

fn main() {
    let log2_size = 16u32;
    println!(
        "FFT of 2^{log2_size} points, 4 images: GFlop/s and time split per substrate"
    );
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let rows = CafUniverse::run_with_config(4, fusion_like(kind), |img| {
            let team = img.team_world();

            // Correctness first: forward + inverse must return the input.
            let local_n = (1usize << log2_size) / team.size();
            let local: Vec<C64> = (0..local_n)
                .map(|i| fft::input_element(img.this_image() * local_n + i))
                .collect();
            let spec = fft::distributed_fft(img, &team, &local, false);
            let back = fft::distributed_fft(img, &team, &spec, true);
            for (a, b) in back.iter().zip(&local) {
                assert!((*a - *b).abs() < 1e-9, "round-trip mismatch");
            }

            img.stats().reset();
            let bench = fft::run(img, &team, log2_size);
            (
                bench.metric,
                img.stats().seconds(StatCat::Alltoall),
                bench.seconds - img.stats().seconds(StatCat::Alltoall),
            )
        });
        let (gflops, a2a, comp) = rows[0];
        println!(
            "{:>12}: {:8.4} GFlop/s | alltoall {:.4} s, computation {:.4} s",
            match kind {
                SubstrateKind::Mpi => "CAF-MPI",
                SubstrateKind::Gasnet => "CAF-GASNet",
            },
            gflops,
            a2a,
            comp
        );
    }
    println!("fft_demo OK (round-trips verified on both substrates)");
}
