//! Smallest possible failed-image demo: image 1 is killed by the fault
//! plan at its first `event_notify`; image 0's `event_wait_stat` returns
//! `Stat::FailedImage([1])` instead of hanging, and the survivors shrink
//! the world team with `team_reform` and continue on three images.
//!
//! Run with `cargo run --example fault_smoke`.

use caf::image::{CafConfig, CafUniverse, SubstrateKind};
use caf::prelude::*;

fn main() {
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let mut cfg = CafConfig::on(kind);
        cfg.fault = FaultPlan::kill(
            1,
            KillSite::Op {
                name: "event_notify",
                hits: 1,
            },
        );
        let verbose = std::env::var_os("SMOKE_VERBOSE").is_some();
        let results = CafUniverse::run_with_config_ft(4, cfg, move |img| {
            let say = |m: &str| {
                if verbose {
                    eprintln!("[{kind:?} img {}] {m}", img.this_image());
                }
            };
            let w = img.team_world();
            let ev = img.event_alloc(&w);
            if img.this_image() == 1 {
                img.event_notify(&w, &ev, 0); // dies at this blocking point
                unreachable!("image 1 is killed by the fault plan");
            }
            if img.this_image() == 0 {
                say("event_wait_stat");
                let stat = img.event_wait_stat(&ev);
                assert!(!stat.is_ok(), "{kind:?}: waiter must observe the failure");
                assert_eq!(stat.failed(), &[1]);
            }
            say("team_reform");
            let (survivors, stat) = img.team_reform(&w);
            assert_eq!(stat.failed(), &[1], "{kind:?}");
            assert_eq!(survivors.size(), 3);
            say("final barrier");
            let stat = img.barrier_stat(&survivors);
            assert!(stat.is_ok(), "{kind:?}: no member of the reformed team is failed");
            say("done");
            img.this_image()
        });
        assert_eq!(results[1], None, "{kind:?}: killed image yields None");
        assert!(results.iter().filter(|r| r.is_some()).count() == 3);
        println!("{kind:?}: survivors reformed and synced — OK");
    }
}
