//! Soak tests: larger image counts, many live coarrays, mixed operation
//! streams — the conditions under which ordering or bookkeeping bugs in
//! the runtime would surface.

use caf::{AsyncOpts, CafUniverse, Coarray, SubstrateKind};
use caf_bench::fast;

/// Deterministic per-image RNG.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// 16 images, 8 live coarrays, 2000 mixed random one-sided ops per image,
/// then a full cross-check of every cell against a serially computed
/// expectation.
#[test]
fn mixed_onesided_soak() {
    const P: usize = 16;
    const CAS: usize = 8;
    const LEN: usize = 32;
    const OPS: usize = 2000;

    // Pre-generate the op streams (writer, ca, target, slot, value) with
    // last-writer-per-cell determinism: each cell is owned by exactly one
    // writer stream to keep the expected state well-defined.
    let mut plan: Vec<(usize, usize, usize, usize, u64)> = Vec::new();
    let mut expect = vec![vec![vec![0u64; LEN]; P]; CAS]; // [ca][image][slot]
    let mut rng = Rng(0xD15EA5E);
    for op in 0..OPS {
        let writer = (rng.next() as usize) % P;
        let ca = (rng.next() as usize) % CAS;
        let target = (rng.next() as usize) % P;
        let slot = (rng.next() as usize) % LEN;
        // Cell ownership: only the canonical writer for a cell writes it.
        let owner = (ca * 31 + target * 7 + slot) % P;
        if writer != owner {
            continue;
        }
        let value = rng.next() | 1;
        expect[ca][target][slot] = value; // later ops overwrite (stream order per owner)
        plan.push((writer, ca, target, slot, value));
        let _ = op;
    }

    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let plan = plan.clone();
        let expect = expect.clone();
        CafUniverse::run_with_config(P, fast(kind), move |img| {
            let w = img.team_world();
            let cas: Vec<Coarray<u64>> = (0..CAS).map(|_| img.coarray_alloc(&w, LEN)).collect();
            let me = img.this_image();
            for &(writer, ca, target, slot, value) in &plan {
                if writer == me {
                    // Mix blocking writes and async puts (completed by the
                    // trailing cofence + flush + barrier).
                    if value % 3 == 0 {
                        img.copy_async_put(&cas[ca], target, slot, &[value], AsyncOpts::none());
                    } else {
                        cas[ca].write(img, target, slot, &[value]);
                    }
                }
            }
            // Complete the implicit async puts remotely, then synchronize
            // (an empty fast-finish is exactly flush_all + barrier).
            img.finish_fast(&w, |_| {});
            for (ci, ca) in cas.iter().enumerate() {
                let local = ca.local_vec(img);
                for (slot, &v) in local.iter().enumerate() {
                    assert_eq!(
                        v, expect[ci][me][slot],
                        "{kind:?} ca={ci} image={me} slot={slot}"
                    );
                }
            }
            img.sync_all();
            for ca in cas {
                img.coarray_free(&w, ca);
            }
        });
    }
}

/// Event storm: every image notifies every other image K times on a
/// shared event; total posts must balance exactly.
#[test]
fn event_storm_balances() {
    const P: usize = 12;
    const K: usize = 50;
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        CafUniverse::run_with_config(P, fast(kind), |img| {
            let w = img.team_world();
            let ev = img.event_alloc(&w);
            for t in 0..P {
                if t != img.this_image() {
                    for _ in 0..K {
                        img.event_notify(&w, &ev, t);
                    }
                }
            }
            // Expect (P-1)*K posts; consume them all.
            for _ in 0..(P - 1) * K {
                img.event_wait(&ev);
            }
            assert!(!img.event_trywait(&ev), "no excess posts");
            img.sync_all();
        });
    }
}

/// Shipping storm inside one finish: every image ships K counters to
/// random targets; the global sum must be exact.
#[test]
fn shipping_storm_counts_exactly() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    const P: usize = 8;
    const K: usize = 100;
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        CafUniverse::run_with_config(P, fast(kind), move |img| {
            let w = img.team_world();
            let mut rng = Rng(img.this_image() as u64 + 77);
            let h = Arc::clone(&h);
            img.finish(&w, |img| {
                for _ in 0..K {
                    let target = (rng.next() as usize) % P;
                    let h2 = Arc::clone(&h);
                    img.ship(&w, target, move |_| {
                        h2.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed) as usize, P * K, "{kind:?}");
    }
}

/// Team churn: repeated splits into fresh teams with coarrays allocated
/// and freed on each — exercises id derivation and the GASNet arena.
#[test]
fn team_and_coarray_churn() {
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        CafUniverse::run_with_config(8, fast(kind), |img| {
            let w = img.team_world();
            for round in 0..6u64 {
                let color = (img.this_image() as u64 + round) % 2;
                let sub = img.team_split(&w, color, img.this_image() as i64);
                let ca: Coarray<u64> = img.coarray_alloc(&sub, 16);
                let peer = (sub.rank() + 1) % sub.size();
                ca.write(img, peer, 0, &[round * 100 + sub.rank() as u64]);
                img.barrier(&sub);
                let got = ca.local_vec(img)[0];
                let writer = (sub.rank() + sub.size() - 1) % sub.size();
                assert_eq!(got, round * 100 + writer as u64);
                img.coarray_free(&sub, ca);
                img.sync_all();
            }
        });
    }
}
