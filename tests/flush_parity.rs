//! Property-based flush-mode parity: random put/notify/wait programs must
//! produce **byte-identical** results under `FlushMode::All` (the paper's
//! Θ(P) `MPI_Win_flush_all` baseline), `FlushMode::Targeted` (per-dirty-
//! target `MPI_Win_flush`), and `FlushMode::Rflush` (the §5 non-blocking
//! `MPI_WIN_RFLUSH` overlap), on both substrates. The flush policy is a
//! performance knob; any observable difference is a release-semantics bug.

use caf::{AsyncOpts, CafConfig, CafUniverse, Coarray, FlushMode, SubstrateKind};
use caf_bench::fast;
use proptest::prelude::*;

const P: usize = 4;
const SLOTS: usize = 8;

fn configs() -> Vec<CafConfig> {
    let mut v = Vec::new();
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        // GASNet ignores the MPI-only knob; running it under all three
        // modes anyway makes it a control group for the comparison.
        for flush in [FlushMode::All, FlushMode::targeted(), FlushMode::rflush()] {
            v.push(CafConfig {
                flush,
                ..fast(kind)
            });
        }
    }
    v
}

/// One image's view after the program: its local table plus an order-
/// insensitive echo hash (catches torn/partial writes that happen to
/// leave the right final table on some other image).
fn fingerprint(table: &[u64]) -> Vec<u64> {
    let mut out = table.to_vec();
    let hash = table
        .iter()
        .enumerate()
        .fold(0xcbf29ce484222325u64, |acc, (i, &v)| {
            (acc ^ v.wrapping_add(i as u64)).wrapping_mul(0x100000001b3)
        });
    out.push(hash);
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    /// Scatter phase: each image issues its async puts (deferred remote
    /// completion — the dirty-set path), then notifies every image it
    /// wrote to; each image waits for as many posts as it has writers,
    /// then reads. The notify release barrier is the only thing making
    /// the reads legal, so every flush mode is load-bearing here.
    #[test]
    fn random_put_notify_wait_programs_agree(
        writes in proptest::collection::vec(
            (0usize..P, 0usize..P, 0usize..SLOTS, any::<u64>()),
            1..24,
        )
    ) {
        // One writer per (target, slot) so the outcome is deterministic.
        let mut seen = std::collections::HashSet::new();
        let writes: Vec<_> = writes
            .into_iter()
            .filter(|&(_, t, s, _)| seen.insert((t, s)))
            .collect();

        let mut results: Vec<Vec<Vec<u64>>> = Vec::new();
        for cfg in configs() {
            let w = writes.clone();
            let out = CafUniverse::run_with_config(P, cfg, move |img| {
                let world = img.team_world();
                let ca: Coarray<u64> = img.coarray_alloc(&world, SLOTS);
                let ev = img.event_alloc(&world);
                let me = img.this_image();

                for &(writer, target, slot, value) in &w {
                    if me == writer && target != me {
                        // Released by the event_notify loop below: `targets` is
                        // non-empty exactly when this image put. lint:allow(sync-protocol)
                        img.copy_async_put(&ca, target, slot, &[value], AsyncOpts::none());
                    } else if me == writer {
                        ca.local_write(img, slot, &[value]);
                    }
                }
                // Notify each remote image this one wrote to (dedup'd),
                // releasing all of this image's outstanding puts.
                let mut targets: Vec<usize> = w
                    .iter()
                    .filter(|&&(wr, t, _, _)| wr == me && t != me)
                    .map(|&(_, t, _, _)| t)
                    .collect();
                targets.sort_unstable();
                targets.dedup();
                for &t in &targets {
                    img.event_notify(&world, &ev, t);
                }
                // Consume one post per distinct remote writer.
                let mut writers: Vec<usize> = w
                    .iter()
                    .filter(|&&(wr, t, _, _)| t == me && wr != me)
                    .map(|&(wr, _, _, _)| wr)
                    .collect();
                writers.sort_unstable();
                writers.dedup();
                for _ in 0..writers.len() {
                    img.event_wait(&ev);
                }
                let table = ca.local_vec(img);
                img.sync_all();
                img.coarray_free(&world, ca);
                fingerprint(&table)
            });
            results.push(out);
        }
        for r in &results[1..] {
            prop_assert_eq!(r, &results[0]);
        }
    }

    /// Ring rounds: repeated dirty/flush cycles on the same window. Each
    /// round every image async-puts to its right neighbour, notifies it,
    /// waits for its left neighbour, and folds what it received into the
    /// next round's value — so a single missed flush corrupts everything
    /// downstream.
    #[test]
    fn chained_rounds_agree(seeds in proptest::collection::vec(any::<u64>(), 1..6)) {
        let mut results: Vec<Vec<Vec<u64>>> = Vec::new();
        for cfg in configs() {
            let s = seeds.clone();
            let out = CafUniverse::run_with_config(P, cfg, move |img| {
                let world = img.team_world();
                let ca: Coarray<u64> = img.coarray_alloc(&world, s.len());
                let ev = img.event_alloc(&world);
                let me = img.this_image();
                let right = (me + 1) % P;
                let mut carry = me as u64;
                for (round, &seed) in s.iter().enumerate() {
                    let v = carry ^ seed.rotate_left(round as u32);
                    img.copy_async_put(&ca, right, round, &[v], AsyncOpts::none());
                    img.event_notify(&world, &ev, right);
                    img.event_wait(&ev);
                    let mut got = [0u64];
                    ca.local_read(img, round, &mut got);
                    carry = carry.wrapping_mul(31).wrapping_add(got[0]);
                }
                let table = ca.local_vec(img);
                img.sync_all();
                img.coarray_free(&world, ca);
                let mut fp = fingerprint(&table);
                fp.push(carry);
                fp
            });
            results.push(out);
        }
        for r in &results[1..] {
            prop_assert_eq!(r, &results[0]);
        }
    }
}

/// The same representative program under an armed `caf-check` session:
/// the targeted and rflush paths must satisfy the epoch checker's flush
/// obligations exactly as `flush_all` does (no pending-put leaks).
#[cfg(feature = "check")]
#[test]
fn targeted_and_rflush_are_checker_clean() {
    use caf_check::{CheckConfig, CheckSession};
    let _guard = caf_check::SESSION_TEST_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    for flush in [FlushMode::targeted(), FlushMode::rflush()] {
        let session = CheckSession::start(CheckConfig::default())
            .expect("another check session is active");
        let cfg = CafConfig {
            flush,
            ..fast(SubstrateKind::Mpi)
        };
        CafUniverse::run_with_config(P, cfg, |img| {
            let world = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&world, 4);
            let ev = img.event_alloc(&world);
            let me = img.this_image();
            let right = (me + 1) % P;
            for round in 0..3 {
                img.copy_async_put(&ca, right, round, &[me as u64], AsyncOpts::none());
                img.event_notify(&world, &ev, right);
                img.event_wait(&ev);
            }
            img.sync_all();
            img.coarray_free(&world, ca);
        });
        let report = session.finish();
        assert!(
            report.is_clean(),
            "flush mode {} leaked checker obligations:\n{}",
            flush.name(),
            report.render()
        );
    }
}
