//! The stall detector against the paper's Figure 2 hazard: with
//! AM-mediated puts (`put_via_am_threshold`), a coarray write blocks
//! until the *target* makes GASNet progress — which a process stuck in
//! an MPI call never does. Instead of a silent hang, a `caf-trace`
//! session must produce a stall report naming the blocked image and the
//! image it is blocked on.

use std::sync::Mutex;
use std::time::Duration;

use caf::{CafConfig, CafUniverse, Coarray, GasnetConfig, SubstrateKind};
use caf_trace::{Op, Session, TraceConfig};

/// Trace sessions are process-global; the tests in this binary serialize
/// on this so they never race for the one session slot.
static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// How long the target withholds progress ("blocked in MPI").
const STALL: Duration = Duration::from_millis(200);

fn am_put_config() -> CafConfig {
    CafConfig {
        substrate: SubstrateKind::Gasnet,
        gasnet: GasnetConfig {
            put_via_am_threshold: Some(1),
            ..GasnetConfig::default()
        },
        ..CafConfig::default()
    }
}

#[test]
fn stall_detector_names_the_fig2_deadlock_edge() {
    let _guard = SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let session = Session::start(TraceConfig {
        stall_threshold: Some(Duration::from_millis(30)),
        stall_poll_period: Duration::from_millis(5),
        announce_stalls: false,
        ..TraceConfig::default()
    })
    .expect("no other session in this test binary");

    CafUniverse::run_with_config(2, am_put_config(), |img| {
        let world = img.team_world();
        let a: Coarray<u64> = img.coarray_alloc(&world, 4);
        img.sync_all();
        if img.this_image() == 0 {
            // Blocks until image 1 polls — the Figure 2 stall.
            a.write(img, 1, 0, &[7, 8, 9, 10]);
        } else {
            // "Blocked in MPI": no GASNet progress for STALL...
            std::thread::sleep(STALL);
            // ...then the first runtime call drives progress and
            // releases the writer.
            img.poll();
        }
        img.sync_all();
        if img.this_image() == 1 {
            assert_eq!(a.local_vec(img), vec![7, 8, 9, 10]);
        }
        img.coarray_free(&world, a);
    });

    let trace = session.finish();
    // The watchdog must have caught image 0 stuck waiting for image 1 to
    // acknowledge the AM-mediated put.
    let stall = trace
        .stalls
        .iter()
        .find(|s| s.op == Op::AmPutAckWait)
        .unwrap_or_else(|| panic!("no AmPutAckWait stall reported: {:?}", trace.stalls));
    assert_eq!(stall.image, Some(0), "blocked image: {stall}");
    assert_eq!(stall.target, Some(1), "blocked-on image: {stall}");
    assert!(stall.waited_ns >= 30_000_000, "{stall}");
    // The report renders the edge in prose.
    let text = stall.to_string();
    assert!(text.contains("image 0"), "{text}");
    assert!(text.contains("waiting on image 1"), "{text}");
}

#[test]
fn untraced_run_reports_no_stalls_and_rdma_puts_do_not_trip() {
    // Control: the same pattern over RDMA puts (the default GASNet
    // config) completes without target progress, so the watchdog stays
    // quiet even with a tight threshold.
    let _guard = SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let session = Session::start(TraceConfig {
        stall_threshold: Some(Duration::from_millis(50)),
        stall_poll_period: Duration::from_millis(5),
        announce_stalls: false,
        ..TraceConfig::default()
    })
    .expect("no other session in this test binary");

    CafUniverse::run_with_config(2, CafConfig::on(SubstrateKind::Gasnet), |img| {
        let world = img.team_world();
        let a: Coarray<u64> = img.coarray_alloc(&world, 4);
        img.sync_all();
        if img.this_image() == 0 {
            a.write(img, 1, 0, &[1, 2, 3, 4]);
        } else {
            std::thread::sleep(Duration::from_millis(120));
        }
        img.sync_all();
        img.coarray_free(&world, a);
    });

    let trace = session.finish();
    let am_stalls: Vec<_> = trace
        .stalls
        .iter()
        .filter(|s| s.op == Op::AmPutAckWait)
        .collect();
    assert!(am_stalls.is_empty(), "{am_stalls:?}");
}
