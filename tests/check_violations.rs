//! Negative tests for the `caf-check` sanitizer: each test runs a
//! deliberately-broken program and asserts the **exact** diagnostic —
//! violation kind, offending image(s), window, and byte range — so the
//! checker's reports stay precise enough to debug from, not just
//! non-empty.
//!
//! Requires `--features check` (registered with `required-features` in
//! `crates/bench/Cargo.toml`). Every test hand-rolls a global
//! [`CheckSession`], so all of them serialize on
//! [`caf_check::SESSION_TEST_LOCK`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::MutexGuard;

use caf::{CafConfig, CafUniverse, Coarray, SubstrateKind};
use caf_check::{
    ByteRange, CheckConfig, CheckMode, CheckSession, Report, ViolationKind, SESSION_TEST_LOCK,
};
use caf_mpisim::Universe;

fn locked() -> MutexGuard<'static, ()> {
    SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` under a collect-mode session with the given config.
fn collect(cfg: CheckConfig, f: impl FnOnce()) -> Report {
    let session = CheckSession::start(cfg).expect("no other check session active");
    f();
    session.finish()
}

/// An `MPI_Put` with no `win_lock_all` in sight. The checker must record
/// the outside-epoch diagnostic (with the window and origin) *before*
/// the simulator's own epoch assertion aborts the image.
#[test]
fn put_outside_epoch_is_flagged_before_the_runtime_aborts() {
    let _guard = locked();
    let win_id = AtomicU64::new(0);
    let report = collect(CheckConfig::default(), || {
        let aborted = catch_unwind(AssertUnwindSafe(|| {
            Universe::run(1, |mpi| {
                let world = mpi.world();
                let win = mpi.win_allocate(&world, 64).expect("win_allocate");
                win_id.store(win.id(), Ordering::SeqCst);
                mpi.put(&win, 0, 0, &[1u64]).unwrap();
            });
        }));
        assert!(aborted.is_err(), "the simulator aborts the illegal put");
    });
    let v = report.of_kind(ViolationKind::OutsideEpoch);
    assert_eq!(v.len(), 1, "{}", report.render());
    assert_eq!(v[0].window, Some(win_id.load(Ordering::SeqCst)));
    assert_eq!(v[0].image, 0);
    assert_eq!(v[0].other, None);
}

/// Image 1 loads its own window memory while an unflushed put from
/// image 0 still targets the same bytes — the origin must `win_flush`
/// first. The diagnostic pinpoints reader, origin, and the overlap.
#[test]
fn local_read_of_unflushed_put_pinpoints_origin_and_range() {
    let _guard = locked();
    let report = collect(CheckConfig::default(), || {
        let ids = Universe::run(2, |mpi| {
            let world = mpi.world();
            let win = mpi.win_allocate(&world, 256).expect("win_allocate");
            mpi.win_lock_all(&win);
            if mpi.rank() == 0 {
                // 16 bytes at displacement 8 of image 1's region, no flush.
                mpi.put(&win, 1, 8, &[7u64, 9u64]).unwrap();
            }
            mpi.barrier(&world).unwrap();
            if mpi.rank() == 1 {
                let mut out = [0u8; 8];
                mpi.win_read_local(&win, 12, &mut out).unwrap();
            }
            mpi.barrier(&world).unwrap();
            if mpi.rank() == 0 {
                mpi.win_flush(&win, 1).unwrap();
            }
            mpi.win_unlock_all(&win).unwrap();
            let id = win.id();
            mpi.win_free(win).unwrap();
            id
        });
        assert_eq!(ids[0], ids[1]);
    });
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    let v = &report.violations[0];
    assert_eq!(v.kind, ViolationKind::ReadBeforeFlush);
    assert_eq!(v.image, 1, "the reader is the flagged image");
    assert_eq!(v.other, Some(0), "the unflushed origin is named");
    assert!(v.window.is_some());
    // put [8, 24) ∩ read [12, 20) — the exact contested bytes.
    assert_eq!(v.range, Some(ByteRange { start: 12, end: 20 }));
}

/// Two origins put overlapping ranges into image 2's region within one
/// epoch with no separating flush — undefined under MPI-3 §11.7.
#[test]
fn overlapping_unflushed_puts_flag_epoch_overlap() {
    let _guard = locked();
    let report = collect(CheckConfig::default(), || {
        Universe::run(3, |mpi| {
            let world = mpi.world();
            let win = mpi.win_allocate(&world, 256).expect("win_allocate");
            mpi.win_lock_all(&win);
            if mpi.rank() == 0 {
                mpi.put(&win, 2, 0, &[0u64, 0u64]).unwrap(); // [0, 16)
            }
            mpi.barrier(&world).unwrap();
            if mpi.rank() == 1 {
                mpi.put(&win, 2, 8, &[1u64, 1u64]).unwrap(); // [8, 24)
            }
            mpi.barrier(&world).unwrap();
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
        });
    });
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    let v = &report.violations[0];
    assert_eq!(v.kind, ViolationKind::EpochOverlap);
    assert_eq!(v.image, 1, "the second putter trips the conflict");
    assert_eq!(v.other, Some(0), "...against the first");
    assert_eq!(v.range, Some(ByteRange { start: 8, end: 16 }));
}

/// The origin buffer handed to a live `rput` is reused by another RMA
/// operation before `wait` — the request still borrows it.
#[test]
fn origin_buffer_reuse_before_request_completion_is_flagged() {
    let _guard = locked();
    let report = collect(CheckConfig::default(), || {
        Universe::run(1, |mpi| {
            let world = mpi.world();
            let win = mpi.win_allocate(&world, 256).expect("win_allocate");
            mpi.win_lock_all(&win);
            let data = [3u64; 8];
            let req = mpi.rput(&win, 0, 0, &data).unwrap();
            // Same origin buffer, disjoint target range: only the
            // buffer-reuse hazard fires, not an epoch overlap.
            mpi.put(&win, 0, 128, &data[..2]).unwrap();
            req.wait();
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
        });
    });
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    let v = &report.violations[0];
    assert_eq!(v.kind, ViolationKind::BufferReuse);
    assert_eq!(v.image, 0);
    assert!(v.window.is_some());
}

/// An `rput` request dropped without `wait`: its completion certificate
/// is lost — the paper's Figure 2 put-ack hazard.
#[test]
fn dropped_rput_request_loses_its_completion_certificate() {
    let _guard = locked();
    let report = collect(CheckConfig::default(), || {
        Universe::run(1, |mpi| {
            let world = mpi.world();
            let win = mpi.win_allocate(&world, 64).expect("win_allocate");
            mpi.win_lock_all(&win);
            let _ = mpi.rput(&win, 0, 0, &[1u64]).unwrap(); // dropped, never waited
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
        });
    });
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    let v = &report.violations[0];
    assert_eq!(v.kind, ViolationKind::LostCompletion);
    assert_eq!(v.image, 0);
    assert!(v.detail.contains("rput"), "{}", v.detail);
}

/// Epoch pairing: a second `win_lock_all` with the epoch already open,
/// then `win_free` without ever unlocking.
#[test]
fn unbalanced_lock_and_free_with_open_epoch_are_flagged() {
    let _guard = locked();
    let report = collect(CheckConfig::default(), || {
        Universe::run(1, |mpi| {
            let world = mpi.world();
            let win = mpi.win_allocate(&world, 64).expect("win_allocate");
            mpi.win_lock_all(&win);
            mpi.win_lock_all(&win); // already open
            mpi.win_free(win).unwrap(); // never unlocked
        });
    });
    assert_eq!(report.violations.len(), 2, "{}", report.render());
    assert_eq!(
        report.of_kind(ViolationKind::UnbalancedEpoch).len(),
        1,
        "{}",
        report.render()
    );
    let free = report.of_kind(ViolationKind::OpenEpochAtFree);
    assert_eq!(free.len(), 1);
    assert_eq!(free[0].image, 0);
}

/// Unsynchronized conflicting coarray accesses: image 0 writes image 1's
/// part while image 1 reads it locally, with no event/collective edge
/// between them. Epoch checking is off so the only possible diagnostic
/// is the vector-clock race.
fn coarray_race_on(kind: SubstrateKind) -> Report {
    let _guard = locked();
    collect(
        CheckConfig {
            epochs: false,
            ..CheckConfig::default()
        },
        || {
            CafUniverse::run_with_config(2, CafConfig::on(kind), |img| {
                let world = img.team_world();
                let a: Coarray<u64> = img.coarray_alloc(&world, 8);
                if img.this_image() == 0 {
                    a.write(img, 1, 0, &[7, 8, 9, 10]); // [0, 32) of image 1's part
                } else {
                    let mut out = [0u64; 4];
                    a.local_read(img, 0, &mut out); // same bytes, no ordering edge
                }
                img.sync_all();
                img.coarray_free(&world, a);
            });
        },
    )
}

fn assert_exactly_one_race(report: &Report) {
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    let v = &report.violations[0];
    assert_eq!(v.kind, ViolationKind::CoarrayRace);
    // Flagged at whichever access came second; the pair is {0, 1}.
    let pair = (v.image, v.other.expect("racing peer is named"));
    assert!(pair == (0, 1) || pair == (1, 0), "{pair:?}");
    assert!(v.window.is_some(), "region id is reported");
    assert_eq!(v.range, Some(ByteRange { start: 0, end: 32 }));
}

#[test]
fn unsynchronized_coarray_write_read_races_on_caf_mpi() {
    let report = coarray_race_on(SubstrateKind::Mpi);
    assert_exactly_one_race(&report);
}

#[test]
fn unsynchronized_coarray_write_read_races_on_caf_gasnet() {
    let report = coarray_race_on(SubstrateKind::Gasnet);
    assert_exactly_one_race(&report);
}

/// The same race with an event edge between the accesses is silent —
/// the detector keys notify/wait channels per destination image, so the
/// single edge orders exactly this pair.
#[test]
fn event_ordered_coarray_accesses_do_not_race() {
    let _guard = locked();
    let report = collect(
        CheckConfig {
            epochs: false,
            ..CheckConfig::default()
        },
        || {
            CafUniverse::run(2, |img| {
                let world = img.team_world();
                let a: Coarray<u64> = img.coarray_alloc(&world, 8);
                let ev = img.event_alloc(&world);
                if img.this_image() == 0 {
                    a.write(img, 1, 0, &[7, 8, 9, 10]);
                    img.event_notify(&world, &ev, 1);
                } else {
                    img.event_wait(&ev);
                    let mut out = [0u64; 4];
                    a.local_read(img, 0, &mut out);
                    assert_eq!(out, [7, 8, 9, 10]);
                }
                img.sync_all();
                img.coarray_free(&world, a);
            });
        },
    );
    assert!(report.is_clean(), "{}", report.render());
}

/// `CheckMode::Panic` aborts the job at the violation site instead of
/// collecting.
#[test]
fn panic_mode_aborts_the_job_at_the_violation_site() {
    let _guard = locked();
    let session = CheckSession::start(CheckConfig {
        mode: CheckMode::Panic,
        ..CheckConfig::default()
    })
    .expect("no other check session active");
    let aborted = catch_unwind(AssertUnwindSafe(|| {
        Universe::run(1, |mpi| {
            let world = mpi.world();
            let win = mpi.win_allocate(&world, 64).expect("win_allocate");
            mpi.put(&win, 0, 0, &[1u64]).unwrap(); // outside any epoch
        });
    }));
    assert!(aborted.is_err(), "panic mode must abort the job");
    let report = session.finish();
    assert!(report.is_clean(), "panic mode does not collect");
}
