//! Property-based substrate parity: CAF programs must compute identical
//! results on the CAF-MPI and CAF-GASNet substrates — the runtimes differ
//! in mechanism, never in semantics.

use caf::{CafUniverse, Coarray, SubstrateKind};
use caf_bench::fast;
use proptest::prelude::*;

/// Run one program on both substrates and return both results.
fn on_both<T, F>(n: usize, f: F) -> (Vec<T>, Vec<T>)
where
    T: Send,
    F: Fn(&caf::Image) -> T + Send + Sync,
{
    let a = CafUniverse::run_with_config(n, fast(SubstrateKind::Mpi), &f);
    let b = CafUniverse::run_with_config(n, fast(SubstrateKind::Gasnet), &f);
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Random scatter of writes: `writes[k] = (writer, target, slot, value)`.
    /// Final table state must be identical across substrates.
    #[test]
    fn random_coarray_writes_agree(
        writes in proptest::collection::vec(
            (0usize..4, 0usize..4, 0usize..8, any::<u64>()),
            1..24,
        )
    ) {
        // Make each (target, slot) written by at most one writer, so the
        // outcome is deterministic (MPI leaves overlapping unordered
        // writes undefined).
        let mut seen = std::collections::HashSet::new();
        let writes: Vec<_> = writes
            .into_iter()
            .filter(|&(_, t, s, _)| seen.insert((t, s)))
            .collect();
        let w2 = writes.clone();

        let run = move |img: &caf::Image, writes: &[(usize, usize, usize, u64)]| {
            let world = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&world, 8);
            for &(writer, target, slot, value) in writes {
                if img.this_image() == writer {
                    ca.write(img, target, slot, &[value]);
                }
            }
            img.sync_all();
            let v = ca.local_vec(img);
            img.coarray_free(&world, ca);
            v
        };
        let a = CafUniverse::run_with_config(4, fast(SubstrateKind::Mpi),
            move |img| run(img, &writes));
        let b = CafUniverse::run_with_config(4, fast(SubstrateKind::Gasnet),
            move |img| run(img, &w2));
        prop_assert_eq!(a, b);
    }

    /// Reductions over arbitrary data agree across substrates (and equal
    /// the serial reduction).
    #[test]
    fn reductions_agree(values in proptest::collection::vec(any::<i64>(), 6)) {
        let v = values.clone();
        let (a, b) = on_both(6, move |img| {
            let world = img.team_world();
            img.allreduce(&world, &[v[img.this_image()]], |x, y| x.wrapping_add(y))[0]
        });
        let expect: i64 = values.iter().fold(0i64, |acc, &x| acc.wrapping_add(x));
        prop_assert!(a.iter().all(|&x| x == expect));
        prop_assert_eq!(a, b);
    }

    /// Alltoall of arbitrary blocks agrees across substrates.
    #[test]
    fn alltoall_agrees(seed in any::<u64>(), block in 1usize..6) {
        let (a, b) = on_both(4, move |img| {
            let world = img.team_world();
            let me = img.this_image() as u64;
            let send: Vec<u64> = (0..4 * block as u64)
                .map(|i| seed ^ (me << 32) ^ i)
                .collect();
            img.alltoall(&world, &send, block)
        });
        prop_assert_eq!(a, b);
    }

    /// Team splits produce the same memberships and sub-team reductions.
    #[test]
    fn team_split_agrees(colors in proptest::collection::vec(0u64..3, 6)) {
        let c = colors.clone();
        let (a, b) = on_both(6, move |img| {
            let world = img.team_world();
            let color = c[img.this_image()];
            let sub = img.team_split(&world, color, img.this_image() as i64);
            let sum = img.allreduce(&sub, &[img.this_image() as u64], |x, y| x + y)[0];
            (sub.rank(), sub.size(), sum)
        });
        prop_assert_eq!(a, b);
    }

    /// RandomAccess at arbitrary small sizes agrees with the serial
    /// reference on both substrates.
    #[test]
    fn randomaccess_parity(log2_local in 4u32..7, updates in 1usize..400) {
        let expect = caf_hpcc::ra::serial_reference(4, 1 << log2_local, updates);
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let locals = CafUniverse::run_with_config(4, fast(kind), move |img| {
                let team = img.team_world();
                caf_hpcc::ra::run(img, &team, log2_local, updates).local_table
            });
            let got: Vec<u64> = locals.into_iter().flatten().collect();
            prop_assert_eq!(&got, &expect);
        }
    }
}
