//! The paper's Figure 2: a CAF program that performs a coarray write and
//! then enters an MPI barrier "may deadlock because CAF cannot make
//! progress when the process blocks in MPI" — *if* the coarray write
//! needs target-side involvement.
//!
//! These tests demonstrate both sides:
//!
//! * under **CAF-MPI** a coarray write is a genuine one-sided
//!   `MPI_Put` + flush and completes while the target computes, never
//!   polls, or sits in an MPI call — the pattern is safe;
//! * under a **CAF-GASNet configuration whose puts ride long AMs**
//!   (`put_via_am_threshold`), the write only completes once the target
//!   makes *GASNet* progress — which a process blocked in an MPI call
//!   never does. (The test bounds the stall with a sleep instead of a
//!   real barrier so it terminates.)

use std::time::{Duration, Instant};

use caf::{CafConfig, CafUniverse, Coarray, GasnetConfig, SubstrateKind};

const STALL: Duration = Duration::from_millis(150);

/// Figure 2 verbatim under CAF-MPI: write, then everyone meets in a
/// barrier *through the same MPI library*. Must complete.
#[test]
fn figure2_pattern_is_safe_on_caf_mpi() {
    CafUniverse::run(2, |img| {
        let world = img.team_world();
        let a: Coarray<f64> = img.coarray_alloc(&world, 8);
        if img.this_image() == 0 {
            // A(:)[1] = A(:)
            a.write(img, 1, 0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        }
        // CALL MPI_BARRIER(MPI_COMM_WORLD) — the same runtime.
        let mpi = img.mpi().expect("MPI substrate");
        mpi.barrier(&mpi.world()).expect("barrier");
        if img.this_image() == 1 {
            assert_eq!(a.local_vec(img)[7], 8.0);
        }
        img.coarray_free(&world, a);
    });
}

/// The write completes while the target never touches the runtime at all
/// (pure computation) — one-sidedness in the strictest sense.
#[test]
fn caf_mpi_write_completes_without_target_progress() {
    let elapsed = CafUniverse::run(2, |img| {
        let world = img.team_world();
        let a: Coarray<u64> = img.coarray_alloc(&world, 4);
        img.sync_all();
        let e = if img.this_image() == 0 {
            let t = Instant::now();
            a.write(img, 1, 0, &[42, 43, 44, 45]);
            t.elapsed()
        } else {
            // Target: busy computation, no runtime calls at all.
            std::thread::sleep(STALL);
            Duration::ZERO
        };
        img.sync_all();
        if img.this_image() == 1 {
            assert_eq!(a.local_vec(img), vec![42, 43, 44, 45]);
        }
        img.coarray_free(&world, a);
        e
    });
    assert!(
        elapsed[0] < STALL / 2,
        "one-sided write must not wait for the target: {:?}",
        elapsed[0]
    );
}

/// The hazard the paper warns about: with AM-mediated puts, the writer
/// stalls exactly as long as the target withholds GASNet progress (here:
/// a sleep standing in for "blocked inside an MPI call").
#[test]
fn gasnet_am_put_stalls_until_target_polls() {
    let cfg = CafConfig {
        substrate: SubstrateKind::Gasnet,
        gasnet: GasnetConfig {
            put_via_am_threshold: Some(1),
            ..GasnetConfig::default()
        },
        ..CafConfig::default()
    };
    let elapsed = CafUniverse::run_with_config(2, cfg, |img| {
        let world = img.team_world();
        let a: Coarray<u64> = img.coarray_alloc(&world, 4);
        img.sync_all();
        let e = if img.this_image() == 0 {
            let t = Instant::now();
            a.write(img, 1, 0, &[7, 8, 9, 10]); // blocks on the target's poll
            t.elapsed()
        } else {
            // "Blocked in MPI": no GASNet progress for STALL...
            std::thread::sleep(STALL);
            // ...then the first runtime call drives progress.
            img.poll();
            Duration::ZERO
        };
        img.sync_all();
        if img.this_image() == 1 {
            assert_eq!(a.local_vec(img), vec![7, 8, 9, 10]);
        }
        img.coarray_free(&world, a);
        e
    });
    assert!(
        elapsed[0] >= STALL / 2,
        "AM-mediated write must wait for target progress: {:?}",
        elapsed[0]
    );
}

/// Control: the same GASNet substrate with RDMA puts (the default) does
/// not stall — the hazard is specifically the AM-mediated configuration.
#[test]
fn gasnet_rdma_put_does_not_stall() {
    let elapsed = CafUniverse::run_with_config(
        2,
        CafConfig::on(SubstrateKind::Gasnet),
        |img| {
            let world = img.team_world();
            let a: Coarray<u64> = img.coarray_alloc(&world, 4);
            img.sync_all();
            let e = if img.this_image() == 0 {
                let t = Instant::now();
                a.write(img, 1, 0, &[1, 2, 3, 4]);
                t.elapsed()
            } else {
                std::thread::sleep(STALL);
                Duration::ZERO
            };
            img.sync_all();
            img.coarray_free(&world, a);
            e
        },
    );
    assert!(elapsed[0] < STALL / 2, "{:?}", elapsed[0]);
}
