//! The bounded model-checking suite (`caf-model` over the scheduler gate).
//!
//! * the paper's Figure 2 deadlock is *found* (not hung on) within a small
//!   schedule budget, and its counterexample replays deterministically;
//! * the clean programs (ring, event ping-pong, a RandomAccess round) pass
//!   bounded exploration on both substrates with the `caf-check` oracle
//!   armed;
//! * a seeded schedule exposes the unflushed-put conflict that the default
//!   interleaving never exhibits;
//! * sleep-set pruning (DPOR-lite) explores at least 2x fewer schedules
//!   than naive enumeration on the ping-pong state space.

use caf::SubstrateKind;
use caf_fabric::sched::RunStatus;
use caf_model::{explore, replay, scenarios, ExploreConfig, ExploreMode, OracleConfig};

/// Test (a): exploration detects the Fig 2 deadlock within budget, twice
/// identically, and the recorded token replays to the same schedule.
#[test]
fn fig2_deadlock_is_found_and_replays_deterministically() {
    let sc = scenarios::fig2_deadlock();
    let cfg = ExploreConfig {
        max_schedules: 25,
        oracle: None,
        stop_at_first: true,
        ..ExploreConfig::default()
    };
    let rep = explore(&sc, &cfg);
    assert!(rep.flagged >= 1, "no deadlock found: {rep:?}");
    let cx = rep.counterexamples[0].clone();
    assert_eq!(cx.kind, "deadlock", "{}", cx.detail);
    // The wait-for cycle names the put's target: image 0 waits on image 1.
    assert!(
        cx.detail.contains("image 0 blocked") && cx.detail.contains("waiting on image 1"),
        "unexpected wait-for edges: {}",
        cx.detail
    );
    assert!(cx.token.starts_with("dfs:"), "{}", cx.token);

    // Deterministic search: a second exploration finds the identical
    // counterexample.
    let rep2 = explore(&sc, &cfg);
    assert_eq!(rep2.counterexamples[0].token, cx.token);
    assert_eq!(rep2.counterexamples[0].schedule, cx.schedule);

    // Deterministic replay: the token reproduces the schedule and the
    // deadlock, run after run.
    let r1 = replay(&sc, &cfg, &cx.token);
    let r2 = replay(&sc, &cfg, &cx.token);
    assert!(
        matches!(r1.outcome.status, RunStatus::Deadlock(_)),
        "{:?}",
        r1.outcome.status
    );
    assert_eq!(r1.schedule, cx.schedule);
    assert_eq!(r1.schedule, r2.schedule);
}

/// Test (a), random mode: seeded walks hit the deadlock too, and the
/// `rand:` token replays it.
#[test]
fn fig2_deadlock_is_found_by_seeded_walks() {
    let sc = scenarios::fig2_deadlock();
    let cfg = ExploreConfig {
        max_schedules: 8,
        mode: ExploreMode::Random { seed: 0xF162_0002, walks: 4 },
        oracle: None,
        stop_at_first: true,
        ..ExploreConfig::default()
    };
    let rep = explore(&sc, &cfg);
    assert!(rep.flagged >= 1, "{rep:?}");
    let cx = &rep.counterexamples[0];
    assert_eq!(cx.kind, "deadlock");
    assert!(cx.token.starts_with("rand:"), "{}", cx.token);
    let r = replay(&sc, &cfg, &cx.token);
    assert!(matches!(r.outcome.status, RunStatus::Deadlock(_)));
    assert_eq!(r.schedule, cx.schedule, "seeded replay must reproduce the walk");
}

/// Test (b): the correct programs stay clean under bounded exploration
/// with the full oracle (epochs + races) on both substrates.
#[test]
fn clean_programs_pass_bounded_exploration_on_both_substrates() {
    let cases = [
        scenarios::ring(SubstrateKind::Mpi),
        scenarios::ring(SubstrateKind::Gasnet),
        scenarios::event_ping_pong(SubstrateKind::Mpi),
        scenarios::event_ping_pong(SubstrateKind::Gasnet),
        scenarios::ra_round(SubstrateKind::Mpi),
        scenarios::ra_round(SubstrateKind::Gasnet),
    ];
    for sc in cases {
        let cfg = ExploreConfig {
            max_schedules: 120,
            oracle: Some(OracleConfig::default()),
            ..ExploreConfig::default()
        };
        let rep = explore(&sc, &cfg);
        assert!(rep.schedules >= 1, "{}: nothing explored", sc.name);
        assert_eq!(
            rep.flagged,
            0,
            "{}: {:?}",
            sc.name,
            rep.counterexamples.first().map(|c| (&c.kind, &c.detail))
        );
    }
}

/// Test (b)+acceptance: on the fabric ping-pong state space, both modes
/// exhaust the tree, and sleep sets cut the executed schedules by >= 2x.
#[test]
fn dpor_reduces_ping_pong_schedules_at_least_2x() {
    let sc = scenarios::ping_pong();
    let run = |sleep_sets| {
        explore(
            &sc,
            &ExploreConfig {
                max_schedules: 5_000,
                mode: ExploreMode::Dfs { sleep_sets },
                oracle: None,
                ..ExploreConfig::default()
            },
        )
    };
    let naive = run(false);
    let dpor = run(true);
    assert!(naive.complete && dpor.complete, "state space must be exhausted");
    assert_eq!(naive.flagged + dpor.flagged, 0);
    assert_eq!(naive.pruned, 0, "naive mode never prunes");
    assert!(
        dpor.schedules * 2 <= naive.schedules,
        "sleep sets explored {} of {} naive schedules (< 2x reduction)",
        dpor.schedules,
        naive.schedules
    );
}

/// Test (c): the default interleaving of the unflushed-put program is
/// clean, but a seeded walk finds the put-before-read schedule and the
/// oracle reports `read_before_flush`; the seed replays to the identical
/// schedule and diagnostic.
#[test]
fn seeded_walk_catches_unflushed_put_the_default_schedule_hides() {
    let sc = scenarios::unflushed_put();
    let cfg = ExploreConfig {
        max_schedules: 64,
        mode: ExploreMode::Random { seed: 0xCAF_2014, walks: 64 },
        oracle: Some(OracleConfig { epochs: true, races: false }),
        stop_at_first: true,
        ..ExploreConfig::default()
    };

    // The default (image-0-first) interleaving: no diagnostic.
    let base = replay(&sc, &cfg, "dfs:");
    assert!(matches!(base.outcome.status, RunStatus::Completed));
    assert!(
        base.report.as_ref().is_some_and(|r| r.is_clean()),
        "default schedule must be clean: {:?}",
        base.report
    );

    let rep = explore(&sc, &cfg);
    assert!(rep.flagged >= 1, "seeded walks found nothing: {rep:?}");
    let cx = &rep.counterexamples[0];
    assert_eq!(cx.kind, "read_before_flush", "{}", cx.detail);
    assert!(cx.token.starts_with("rand:"));

    // Same seed => same schedule => same diagnostic.
    let r1 = replay(&sc, &cfg, &cx.token);
    let r2 = replay(&sc, &cfg, &cx.token);
    assert_eq!(r1.schedule, r2.schedule);
    assert_eq!(r1.schedule, cx.schedule);
    let kinds = |r: &caf_model::Replay| -> Vec<String> {
        r.report
            .as_ref()
            .map(|rep| rep.violations.iter().map(|v| v.kind.name().to_string()).collect())
            .unwrap_or_default()
    };
    assert_eq!(kinds(&r1), kinds(&r2));
    assert!(kinds(&r1).contains(&"read_before_flush".to_string()), "{:?}", r1.report);
}

/// The task executor under the explorer: the gate drives images running
/// as caf-sched tasks on a *single* worker, so every blocking site any
/// explored schedule reaches must suspend cooperatively — an OS-level
/// block would wedge the worker and surface as a deadlock
/// counterexample. At least 100 interleavings (or the exhausted space)
/// on both substrates, full epoch/race oracle silent throughout.
#[test]
fn task_executor_schedules_stay_clean_under_exploration() {
    for sc in [
        scenarios::tasks_event_ping_pong(SubstrateKind::Mpi),
        scenarios::tasks_event_ping_pong(SubstrateKind::Gasnet),
    ] {
        let cfg = ExploreConfig {
            max_schedules: 400,
            oracle: Some(OracleConfig::default()),
            ..ExploreConfig::default()
        };
        let rep = explore(&sc, &cfg);
        assert!(
            rep.schedules >= 100 || rep.complete,
            "{}: only {} schedules explored without exhausting the space",
            sc.name,
            rep.schedules
        );
        assert_eq!(
            rep.flagged,
            0,
            "{}: {:?}",
            sc.name,
            rep.counterexamples.first().map(|c| (&c.kind, &c.detail))
        );
    }
}

/// The aggregation subsystem under the explorer. DFS: at least 100
/// enqueue/drain/notify interleavings (or the exhausted space) on both
/// substrates with the full oracle silent — batch delivery must carry
/// the coalesced records' happens-before edges on every schedule.
/// Seeded random walks: the routed drain-vs-finish race stays clean and
/// every walk's post-finish assertions hold (Yang's counters may never
/// declare quiescence with a batch or forwarded hop still in flight).
#[test]
fn aggregation_drain_schedules_stay_clean() {
    for sc in [
        scenarios::agg_notify_release(SubstrateKind::Mpi),
        scenarios::agg_notify_release(SubstrateKind::Gasnet),
    ] {
        // The budget counts executed + sleep-set-pruned schedules; keep it
        // high enough that at least 100 interleavings actually run.
        let cfg = ExploreConfig {
            max_schedules: 400,
            oracle: Some(OracleConfig::default()),
            ..ExploreConfig::default()
        };
        let rep = explore(&sc, &cfg);
        assert!(
            rep.schedules >= 100 || rep.complete,
            "{}: only {} schedules explored without exhausting the space",
            sc.name,
            rep.schedules
        );
        assert_eq!(
            rep.flagged,
            0,
            "{}: {:?}",
            sc.name,
            rep.counterexamples.first().map(|c| (&c.kind, &c.detail))
        );
    }

    let sc = scenarios::agg_drain_races_finish();
    let cfg = ExploreConfig {
        max_schedules: 100,
        mode: ExploreMode::Random { seed: 0xA66_D7A1, walks: 100 },
        oracle: Some(OracleConfig::default()),
        ..ExploreConfig::default()
    };
    let rep = explore(&sc, &cfg);
    assert!(rep.schedules >= 100, "{}: only {} walks ran", sc.name, rep.schedules);
    assert_eq!(
        rep.flagged,
        0,
        "{}: {:?}",
        sc.name,
        rep.counterexamples.first().map(|c| (&c.kind, &c.detail))
    );
}

/// The targeted/rflush release paths explored with the epoch oracle
/// armed: if either mode ever under-flushed (left a put pending past the
/// notify release barrier), some interleaving in the DFS budget would
/// trip `read_before_flush` on the waiter's read. The oracle must stay
/// silent across the whole budget, and the in-scenario assertion (waiter
/// sees the put's value) must hold on every schedule.
#[test]
fn targeted_and_rflush_release_stay_clean_across_schedules() {
    for sc in [scenarios::targeted_flush_release(), scenarios::rflush_release()] {
        let cfg = ExploreConfig {
            max_schedules: 120,
            oracle: Some(OracleConfig { epochs: true, races: false }),
            ..ExploreConfig::default()
        };
        let rep = explore(&sc, &cfg);
        assert!(rep.schedules >= 1, "{}: nothing explored", sc.name);
        assert_eq!(
            rep.flagged,
            0,
            "{}: {:?}",
            sc.name,
            rep.counterexamples.first().map(|c| (&c.kind, &c.detail))
        );
    }
}

/// The wait-graph-seeded scenario: schedule exploration targeting the
/// lock/park node classes CAFL009 committed to `LINT_WAITGRAPH.json`.
/// The static pass proved no held-across edge connects them; this test
/// is the dynamic complement — at least 100 schedules (or the exhausted
/// space) contending on exactly those nodes with the full oracle silent
/// and no deadlock counterexample. The preamble asserts every targeted
/// node id exists in the committed graph and that the graph carries no
/// `flagged` edge, so the scenario can never drift from the artifact it
/// seeds from.
#[test]
fn waitgraph_seeded_schedules_stay_clean() {
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../LINT_WAITGRAPH.json"
    ))
    .expect("committed LINT_WAITGRAPH.json at the workspace root");
    for node in scenarios::WAITGRAPH_TARGETED_NODES {
        assert!(
            committed.contains(&format!("\"id\": \"{node}\"")),
            "{node} is not a node of the committed wait graph; re-aim the scenario"
        );
    }
    assert!(
        !committed.contains("\"status\": \"flagged\""),
        "committed wait graph carries an unresolved flagged edge"
    );

    let sc = scenarios::waitgraph_targeted();
    let cfg = ExploreConfig {
        max_schedules: 400,
        oracle: Some(OracleConfig::default()),
        ..ExploreConfig::default()
    };
    let rep = explore(&sc, &cfg);
    assert!(
        rep.schedules >= 100 || rep.complete,
        "{}: only {} schedules explored without exhausting the space",
        sc.name,
        rep.schedules
    );
    assert_eq!(
        rep.flagged,
        0,
        "{}: {:?}",
        sc.name,
        rep.counterexamples.first().map(|c| (&c.kind, &c.detail))
    );
}
