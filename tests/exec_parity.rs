//! Execution-mode parity: the caf-sched task executor is a pure
//! scheduling substrate, so every program must produce **byte-identical**
//! results under `ExecMode::Threads` (one OS thread per image, the
//! paper-faithful default) and `ExecMode::Tasks` (images as stackful
//! tasks on the work-stealing worker pool). The comparison covers the
//! four workload families the runtime exercises — RandomAccess routing,
//! event notify/wait release, `finish` termination, and the caf-agg
//! coalescing path — on both substrates, plus the modeled delay-meter
//! deltas (schedule-independent by design; an executor that changed them
//! would be perturbing the communication schedule itself).

use caf::{
    AsyncOpts, CafConfig, CafUniverse, Coarray, ExecConfig, ExecMode, SubstrateKind,
};
use caf_bench::fast;
use caf_hpcc::ra::{self, RaOpts};
use proptest::prelude::*;

/// The same base configuration under both execution modes. Three workers
/// for the task pool: fewer workers than images, so the cooperative park
/// paths (not just the handoff) are load-bearing.
fn modes(kind: SubstrateKind) -> [CafConfig; 2] {
    let base = fast(kind);
    [
        CafConfig { exec: ExecConfig::default(), ..base },
        CafConfig {
            exec: ExecConfig { workers: 3, ..ExecConfig::tasks() },
            ..base
        },
    ]
}

fn fingerprint(table: &[u64]) -> Vec<u64> {
    let mut out = table.to_vec();
    let hash = table
        .iter()
        .enumerate()
        .fold(0xcbf29ce484222325u64, |acc, (i, &v)| {
            (acc ^ v.wrapping_add(i as u64)).wrapping_mul(0x100000001b3)
        });
    out.push(hash);
    out
}

/// The meter entries that are a pure function of the program: issue-side
/// charges. Receive-side dispatch counts are charged by whichever poll
/// drains the message, and the metered window can catch a straggler on
/// either side of its snapshot boundary depending on the schedule — see
/// `DelayOp::receive_side`.
fn issue_side(meter: &[(caf_fabric::DelayOp, u64, u64)]) -> Vec<(caf_fabric::DelayOp, u64, u64)> {
    meter.iter().copied().filter(|(op, _, _)| !op.receive_side()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Random put/notify/wait programs (the event release path): each
    /// image async-puts into other images' tables, notifies its targets,
    /// and waits for one post per remote writer.
    #[test]
    fn notify_programs_agree_across_exec_modes(
        writes in proptest::collection::vec(
            (0usize..4, 0usize..4, 0usize..8, any::<u64>()),
            1..24,
        )
    ) {
        const P: usize = 4;
        const SLOTS: usize = 8;
        let mut seen = std::collections::HashSet::new();
        let writes: Vec<_> = writes
            .into_iter()
            .filter(|&(_, t, s, _)| seen.insert((t, s)))
            .collect();

        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let mut results: Vec<Vec<Vec<u64>>> = Vec::new();
            for cfg in modes(kind) {
                let w = writes.clone();
                let out = CafUniverse::run_with_config(P, cfg, move |img| {
                    let world = img.team_world();
                    let ca: Coarray<u64> = img.coarray_alloc(&world, SLOTS);
                    let ev = img.event_alloc(&world);
                    let me = img.this_image();
                    for &(writer, target, slot, value) in &w {
                        if me == writer && target != me {
                            // Released by the event_notify loop below: `targets` is
                            // non-empty exactly when this image put. lint:allow(sync-protocol)
                            img.copy_async_put(&ca, target, slot, &[value], AsyncOpts::none());
                        } else if me == writer {
                            ca.local_write(img, slot, &[value]);
                        }
                    }
                    let mut targets: Vec<usize> = w
                        .iter()
                        .filter(|&&(wr, t, _, _)| wr == me && t != me)
                        .map(|&(_, t, _, _)| t)
                        .collect();
                    targets.sort_unstable();
                    targets.dedup();
                    for &t in &targets {
                        img.event_notify(&world, &ev, t);
                    }
                    let mut writers: Vec<usize> = w
                        .iter()
                        .filter(|&&(wr, t, _, _)| t == me && wr != me)
                        .map(|&(wr, _, _, _)| wr)
                        .collect();
                    writers.sort_unstable();
                    writers.dedup();
                    for _ in 0..writers.len() {
                        img.event_wait(&ev);
                    }
                    let table = ca.local_vec(img);
                    img.sync_all();
                    img.coarray_free(&world, ca);
                    fingerprint(&table)
                });
                results.push(out);
            }
            prop_assert_eq!(&results[1], &results[0]);
        }
    }

    /// Aggregated RandomAccess (caf-agg coalescing inside a `finish`
    /// block): tables AND the per-image modeled delay-meter deltas must
    /// match — batching decisions are functions of the update stream, not
    /// of which worker hosted the image.
    #[test]
    fn aggregated_ra_agrees_across_exec_modes(updates in 1usize..64) {
        const P: usize = 8;
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let mut results = Vec::new();
            for cfg in modes(kind) {
                let cfg = CafConfig { agg: caf::AggConfig::on(), ..cfg };
                let out = CafUniverse::run_with_config(P, cfg, move |img| {
                    let world = img.team_world();
                    let o = ra::run_opts(
                        img,
                        &world,
                        4,
                        updates,
                        RaOpts { aggregated: true, ..RaOpts::default() },
                    );
                    (fingerprint(&o.local_table), issue_side(&o.meter_delta))
                });
                results.push(out);
            }
            prop_assert_eq!(&results[1], &results[0]);
        }
    }
}

/// Direct (staging-router) RandomAccess at P=64 — the largest job the
/// thread-per-image launcher is comfortable with, and well above the
/// worker count, on both substrates: tables and meter deltas identical.
#[test]
#[cfg_attr(miri, ignore = "spawns a 64-image job per mode")]
fn direct_ra_at_p64_agrees_across_exec_modes() {
    const P: usize = 64;
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let mut results = Vec::new();
        for cfg in modes(kind) {
            let out = CafUniverse::run_with_config(P, cfg, |img| {
                let world = img.team_world();
                let o = ra::run_opts(
                    img,
                    &world,
                    4,
                    32,
                    RaOpts { async_puts: true, ..RaOpts::default() },
                );
                (fingerprint(&o.local_table), issue_side(&o.meter_delta))
            });
            results.push(out);
        }
        assert_eq!(results[1], results[0], "substrate {kind:?}");
    }
}

/// P=1024 under `Tasks`: the job the thread-per-image launcher cannot
/// reasonably run is just another job for the executor. A neighbour ring
/// with a full release barrier — every image writes its right neighbour's
/// slot, synchronizes, and checks what its left neighbour wrote.
#[test]
#[cfg_attr(miri, ignore = "1024-image job (wall-clock scale)")]
fn p1024_ring_executes_for_real_under_tasks() {
    const P: usize = 1024;
    let cfg = CafConfig {
        exec: ExecConfig::tasks(),
        ..fast(SubstrateKind::Mpi)
    };
    assert_eq!(cfg.exec.mode, ExecMode::Tasks);
    let out = CafUniverse::run_with_config(P, cfg, |img| {
        let world = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&world, 1);
        let me = img.this_image();
        let right = (me + 1) % P;
        ca.write(img, right, 0, &[me as u64 + 1]);
        img.sync_all();
        let mut got = [0u64];
        ca.local_read(img, 0, &mut got);
        img.sync_all();
        img.coarray_free(&world, ca);
        got[0]
    });
    for (me, &got) in out.iter().enumerate() {
        let left = (me + P - 1) % P;
        assert_eq!(got, left as u64 + 1, "image {me} saw the wrong writer");
    }
}
