//! End-to-end runs of all four evaluation applications through the public
//! API at laptop scale, on both substrates, including the qualitative
//! behaviours the paper's figures report.

use caf::{CafUniverse, StatCat, SubstrateKind};
use caf_bench::{fast, fusion_fullscale, fusion_like};
use caf_hpcc::cgpop::{self, CgpopParams, ExchangeMode};
use caf_hpcc::{fft, hpl, ra};

#[test]
fn randomaccess_correct_on_both_substrates() {
    let expect = ra::serial_reference(8, 128, 300);
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let locals = CafUniverse::run_with_config(8, fast(kind), |img| {
            let team = img.team_world();
            ra::run(img, &team, 7, 300).local_table
        });
        let got: Vec<u64> = locals.into_iter().flatten().collect();
        assert_eq!(got, expect, "{kind:?}");
    }
}

#[test]
fn ra_decomposition_shows_the_figure4_asymmetry() {
    // With full-scale cost tables, CAF-MPI's event_notify (flush_all
    // Θ(P)) must cost visibly more than CAF-GASNet's (constant AM).
    // Per-image wall-clock at this scale is microseconds, so a single
    // preempted thread (e.g. when the whole suite runs in parallel) can
    // swamp any one image's numbers: compare medians across all images.
    fn median(mut v: Vec<f64>) -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }
    let notify_secs = |kind| {
        let rows = CafUniverse::run_with_config(8, fusion_fullscale(kind), |img| {
            let team = img.team_world();
            let _ = ra::run(img, &team, 9, 4000);
            (
                img.stats().seconds(StatCat::EventNotify),
                img.stats().seconds(StatCat::EventWait),
            )
        });
        (
            median(rows.iter().map(|r| r.0).collect()),
            median(rows.iter().map(|r| r.1).collect()),
        )
    };
    let (mpi_notify, _mpi_wait) = notify_secs(SubstrateKind::Mpi);
    let (gas_notify, gas_wait) = notify_secs(SubstrateKind::Gasnet);
    assert!(
        mpi_notify > gas_notify,
        "MPI median notify {mpi_notify} must exceed GASNet median notify {gas_notify}"
    );
    // GASNet spends its time waiting, not notifying (Figure 4's story).
    assert!(
        gas_wait > gas_notify,
        "GASNet median wait {gas_wait} must exceed its median notify {gas_notify}"
    );
}

#[test]
fn fft_correct_and_alltoall_accounted() {
    // Correctness at P=8 on both substrates.
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        CafUniverse::run_with_config(8, fast(kind), |img| {
            let team = img.team_world();
            let local_n = 1024 / 8;
            let local: Vec<_> = (0..local_n)
                .map(|i| fft::input_element(img.this_image() * local_n + i))
                .collect();
            let spec = fft::distributed_fft(img, &team, &local, false);
            let back = fft::distributed_fft(img, &team, &spec, true);
            for (a, b) in back.iter().zip(&local) {
                assert!((*a - *b).abs() < 1e-9);
            }
        });
    }

    // Which substrate wins the alltoall, and where, is a *scale*-driven
    // claim: the paper's own small-P points are nearly tied (Fusion @8:
    // 2.54 vs 2.39 GFlop/s). The pure-communication comparison lives in
    // tests/model_validation.rs (alltoall_gap_matches_model_mechanism);
    // the 16-4096-core shape is asserted in caf-netmodel. Here we assert
    // the measurement path itself: the ledger attributes a nonzero, sane
    // share of the FFT to the alltoall on both substrates.
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let rows = CafUniverse::run_with_config(4, fusion_fullscale(kind), |img| {
            let team = img.team_world();
            img.stats().reset();
            let bench = fft::run(img, &team, 15);
            (img.stats().seconds(caf::StatCat::Alltoall), bench.seconds)
        });
        let (a2a, total) = rows[0];
        assert!(a2a > 0.0, "{kind:?}: alltoall must be recorded");
        assert!(a2a < total, "{kind:?}: alltoall is a strict part of the run");
    }
}

#[test]
fn hpl_correct_and_substrate_insensitive() {
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let residuals = CafUniverse::run_with_config(4, fast(kind), |img| {
            let team = img.team_world();
            hpl::run(img, &team, 96, 12, 3).residual
        });
        assert!(residuals[0] < 16.0, "{kind:?}: residual {}", residuals[0]);
    }
}

#[test]
fn cgpop_all_four_variants_agree() {
    let params = CgpopParams {
        nx: 10,
        ny: 8,
        iters: 20,
    };
    let grid = caf_fabric::topology::Grid2d::new(4);
    let (gx, gy) = (grid.px * params.nx, grid.py * params.ny);
    let (_, serial_res) = cgpop::serial_cg(gx, gy, params.iters);

    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        for mode in [ExchangeMode::Push, ExchangeMode::Pull] {
            let outs = CafUniverse::run_with_config(4, fast(kind), move |img| {
                let team = img.team_world();
                cgpop::run(img, &team, params, mode).final_residual
            });
            assert!(
                (outs[0] - serial_res).abs() < 1e-6 * serial_res.max(1e-30),
                "{kind:?} {mode:?}: {} vs {serial_res}",
                outs[0]
            );
        }
    }
}

#[test]
fn stats_decomposition_accounts_fft_alltoall() {
    // The Figure-8 measurement path: FFT time must be visibly split into
    // alltoall + computation by the built-in stats.
    CafUniverse::run_with_config(4, fusion_like(SubstrateKind::Mpi), |img| {
        let team = img.team_world();
        img.stats().reset();
        let bench = fft::run(img, &team, 14);
        let a2a = img.stats().seconds(StatCat::Alltoall);
        assert!(a2a > 0.0, "alltoall time must be recorded");
        assert!(a2a < bench.seconds, "and be a strict part of the total");
    });
}
