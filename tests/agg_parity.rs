//! Property-based aggregation parity: coalescing small puts into batched
//! active messages is a transport optimization — programs must produce
//! **byte-identical** results with aggregation on and off, on both
//! substrates, under every [`caf::FlushMode`]. Also pins the PR-4
//! composition contract: a drained bucket is ONE wire message, and the
//! per-notify flush charge scales with drained buckets, not with the
//! records inside them.

use caf::{AggConfig, AsyncOpts, CafConfig, CafUniverse, Coarray, FlushMode, SubstrateKind};
use caf_bench::fast;
use caf_fabric::DelayOp;
use proptest::prelude::*;

const P: usize = 4;
const SLOTS: usize = 8;

/// Aggregating configurations: both substrates under all three flush
/// modes (GASNet ignores the MPI-only flush knob; running it anyway makes
/// it a control group).
fn agg_configs() -> Vec<CafConfig> {
    let mut v = Vec::new();
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        for flush in [FlushMode::All, FlushMode::targeted(), FlushMode::rflush()] {
            v.push(CafConfig {
                agg: AggConfig::on(),
                flush,
                ..fast(kind)
            });
        }
    }
    v
}

/// One image's view after the program: its local table plus an order-
/// insensitive echo hash (catches torn/partial writes that happen to
/// leave the right final table on some other image).
fn fingerprint(table: &[u64]) -> Vec<u64> {
    let mut out = table.to_vec();
    let hash = table
        .iter()
        .enumerate()
        .fold(0xcbf29ce484222325u64, |acc, (i, &v)| {
            (acc ^ v.wrapping_add(i as u64)).wrapping_mul(0x100000001b3)
        });
    out.push(hash);
    out
}

/// Random put/notify/wait program, parameterized over the config. The
/// event-notify release is what drains the writer's buckets, and the
/// FIFO rt channel is what orders each batch before the notify that
/// releases it — so every flush mode exercises the drain-at-release path.
fn run_put_program(cfg: CafConfig, writes: Vec<(usize, usize, usize, u64)>) -> Vec<Vec<u64>> {
    CafUniverse::run_with_config(P, cfg, move |img| {
        let world = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&world, SLOTS);
        let ev = img.event_alloc(&world);
        let me = img.this_image();

        for &(writer, target, slot, value) in &writes {
            if me == writer && target != me {
                // Released by the event_notify loop below: `targets` is
                // non-empty exactly when this image put. lint:allow(sync-protocol)
                img.copy_async_put(&ca, target, slot, &[value], AsyncOpts::none());
            } else if me == writer {
                ca.local_write(img, slot, &[value]);
            }
        }
        let mut targets: Vec<usize> = writes
            .iter()
            .filter(|&&(wr, t, _, _)| wr == me && t != me)
            .map(|&(_, t, _, _)| t)
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for &t in &targets {
            img.event_notify(&world, &ev, t);
        }
        let mut writers: Vec<usize> = writes
            .iter()
            .filter(|&&(wr, t, _, _)| t == me && wr != me)
            .map(|&(wr, _, _, _)| wr)
            .collect();
        writers.sort_unstable();
        writers.dedup();
        for _ in 0..writers.len() {
            img.event_wait(&ev);
        }
        let table = ca.local_vec(img);
        img.sync_all();
        img.coarray_free(&world, ca);
        fingerprint(&table)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Aggregated put programs equal the direct (aggregation-off) run,
    /// across both substrates and all three flush modes.
    #[test]
    fn aggregated_puts_match_direct(
        writes in proptest::collection::vec(
            (0usize..P, 0usize..P, 0usize..SLOTS, any::<u64>()),
            1..24,
        )
    ) {
        // One writer per (target, slot) so the outcome is deterministic.
        let mut seen = std::collections::HashSet::new();
        let writes: Vec<_> = writes
            .into_iter()
            .filter(|&(_, t, s, _)| seen.insert((t, s)))
            .collect();

        let reference = run_put_program(fast(SubstrateKind::Mpi), writes.clone());
        for cfg in agg_configs() {
            let out = run_put_program(cfg, writes.clone());
            prop_assert_eq!(&out, &reference);
        }
    }

    /// Aggregated accumulates (the RA path) under `finish`, with and
    /// without hypercube routing, match the serially computed table.
    /// Each slot sees a single op kind (xor on even slots, add on odd):
    /// updates then commute, so the expected value is order-insensitive
    /// no matter how batches interleave or re-bucket along hops.
    #[test]
    fn aggregated_accumulates_match_serial(
        updates in proptest::collection::vec(
            (0usize..P, 0usize..P, 0usize..SLOTS, any::<u64>()),
            1..32,
        )
    ) {
        let updates: Vec<(usize, usize, usize, u64, bool)> = updates
            .into_iter()
            .map(|(w, t, s, v)| (w, t, s, v, s % 2 == 0))
            .collect();
        let mut expected = vec![[0u64; SLOTS]; P];
        for &(_, target, slot, v, is_xor) in &updates {
            let e = &mut expected[target][slot];
            *e = if is_xor { *e ^ v } else { e.wrapping_add(v) };
        }

        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            for routing in [false, true] {
                let agg = if routing { AggConfig::routed() } else { AggConfig::on() };
                let cfg = CafConfig { agg, ..fast(kind) };
                let ups = updates.clone();
                let exp = expected.clone();
                let out = CafUniverse::run_with_config(P, cfg, move |img| {
                    let world = img.team_world();
                    let ca: Coarray<u64> = img.coarray_alloc(&world, SLOTS);
                    let me = img.this_image();
                    img.finish(&world, |img| {
                        for &(writer, target, slot, v, is_xor) in &ups {
                            if me != writer {
                                continue;
                            }
                            if is_xor {
                                img.agg_accumulate_xor(&ca, target, slot, v);
                            } else {
                                img.agg_accumulate_add(&ca, target, slot, v);
                            }
                        }
                    });
                    let table = ca.local_vec(img);
                    img.sync_all();
                    img.coarray_free(&world, ca);
                    (table, exp[me])
                });
                for (me, (table, exp)) in out.iter().enumerate() {
                    prop_assert!(
                        table.as_slice() == exp.as_slice(),
                        "routing={} on {:?}: image {} table {:?} != expected {:?} (updates {:?})",
                        routing, kind, me, table, exp, updates
                    );
                }
            }
        }
    }
}

/// PR-4 composition regression: draining a bucket of N records at a
/// notify costs ONE wire message and O(drained buckets) — not O(N) —
/// targeted flushes. Batched AMs complete by target-side application,
/// so they never dirty a window at all: the targeted per-notify flush
/// charge is bounded by a constant while N records ride one batch.
#[test]
fn notify_flush_cost_is_per_bucket_not_per_record() {
    const RECORDS: usize = 48;
    let cfg = CafConfig {
        agg: AggConfig::on(),
        flush: FlushMode::targeted(),
        ..fast(SubstrateKind::Mpi)
    };
    let per_image = CafUniverse::run_with_config(P, cfg, |img| {
        let world = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&world, RECORDS);
        let ev = img.event_alloc(&world);
        let right = (img.this_image() + 1) % P;
        for i in 0..RECORDS {
            img.copy_async_put(&ca, right, i, &[i as u64], AsyncOpts::none());
        }
        img.barrier(&world);
        let before = img.delay_meter_snapshot();
        let buckets_before = img.agg_stats().drained_buckets;
        img.event_notify(&world, &ev, right);
        let after = img.delay_meter_snapshot();
        let drained = img.agg_stats().drained_buckets - buckets_before;
        img.event_wait(&ev);
        img.sync_all();
        img.coarray_free(&world, ca);
        let count = |op: DelayOp| {
            let d = |s: &[(DelayOp, u64, u64)]| {
                s.iter().find(|&&(o, _, _)| o == op).map(|&(_, c, _)| c).unwrap_or(0)
            };
            d(&after) - d(&before)
        };
        (
            drained,
            count(DelayOp::FlushPerTarget),
            count(DelayOp::P2pInject),
            count(DelayOp::RmaPut),
        )
    });
    for (drained, flushes, injects, puts) in per_image {
        assert_eq!(drained, 1, "all {RECORDS} records drained as one bucket");
        assert_eq!(puts, 0, "no per-record RMA puts on the wire");
        assert!(
            flushes <= drained,
            "notify charged {flushes} targeted flushes for {drained} drained bucket(s) \
             ({RECORDS} records) — flush cost must scale with buckets, not records"
        );
        assert!(
            injects <= 2,
            "notify injected {injects} messages for {RECORDS} records — \
             expected one batch + one notify AM"
        );
    }
}

/// Representative aggregated programs under an armed `caf-check` session:
/// batch delivery must discharge every epoch/race obligation exactly as
/// the direct path does (HB edges ride the batch token).
#[cfg(feature = "check")]
#[test]
fn aggregated_programs_are_checker_clean() {
    use caf_check::{CheckConfig, CheckSession};
    let _guard = caf_check::SESSION_TEST_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        for routing in [false, true] {
            let session = CheckSession::start(CheckConfig::default())
                .expect("another check session is active");
            let agg = if routing { AggConfig::routed() } else { AggConfig::on() };
            let cfg = CafConfig { agg, ..fast(kind) };
            CafUniverse::run_with_config(P, cfg, |img| {
                let world = img.team_world();
                let ca: Coarray<u64> = img.coarray_alloc(&world, 8);
                let ev = img.event_alloc(&world);
                let me = img.this_image();
                let right = (me + 1) % P;
                // Notify-released put batches (routing-off path) ...
                if !img.agg_config().routing {
                    for round in 0..3 {
                        img.copy_async_put(&ca, right, round, &[me as u64], AsyncOpts::none());
                        img.event_notify(&world, &ev, right);
                        img.event_wait(&ev);
                    }
                }
                // ... and finish-released accumulate batches (both paths).
                img.finish(&world, |img| {
                    for target in 0..P {
                        img.agg_accumulate_xor(&ca, target, 4 + me % 4, 1 << me);
                    }
                });
                img.sync_all();
                img.coarray_free(&world, ca);
            });
            let report = session.finish();
            assert!(
                report.is_clean(),
                "aggregation (routing={routing}, {kind:?}) leaked checker obligations:\n{}",
                report.render()
            );
        }
    }
}

/// Failed-hop reroute regression (DESIGN.md §17): hypercube
/// store-and-forward is an optimization, not a delivery requirement.
/// Routing geometry stays the *world* hypercube even after a reform, so
/// with global rank 1 dead, writer 0 loses its dimension-0 hop toward
/// every odd global destination (0→3, 0→5, 0→7 all route through 1):
/// those records must detour directly to their destinations at drain
/// time instead of being stranded in a dead mailbox. Records *destined*
/// to the dead image are dropped — their target can never apply them.
/// Delivery is then proven complete under the reformed team's `finish`
/// (a degraded-world `finish_stat` discards its counters on failure and
/// guarantees nothing, which is exactly why the reform exists).
#[test]
fn routed_drain_reroutes_around_failed_hop() {
    const RP: usize = 8; // routing needs a power-of-two image count
    const DEAD: usize = 1;
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let cfg = CafConfig {
            agg: AggConfig::routed(),
            ..fast(kind)
        };
        let out = CafUniverse::run_with_config_ft(RP, cfg, move |img| {
            let me = img.this_image();
            let world = img.team_world();
            // Allocate while everyone is still alive (a collective over
            // the whole world team). The victim exits the barrier below
            // only once every rank has entered it — i.e. only after
            // every alloc completed — so the kill can never race a
            // survivor's alloc. Survivors may still observe the death
            // *inside* this barrier (fail-fast is conservative), hence
            // the stat-tolerant form.
            let world_ca: Coarray<u64> = img.coarray_alloc(&world, RP);
            let stat = img.sync_all_stat();
            assert!(stat.is_ok() || stat.failed() == [DEAD]);
            if me == DEAD {
                img.fail_image();
            }
            // Wait until the death is visible, so every drain below runs
            // with the failed hop already in the registry.
            let mut seen = false;
            for _ in 0..16 {
                let stat = img.sync_all_stat();
                if stat.failed() == [DEAD] {
                    seen = true;
                    break;
                }
            }
            assert!(seen, "image {me} never observed the death");
            // Dead-destination records: writer 0's goes straight at the
            // failed target and must be counted as dropped, not shipped
            // into the void.
            let ((), stat) = img.finish_stat(&world, |img| {
                img.agg_accumulate_add(&world_ca, DEAD, 0, 0xDEAD);
            });
            assert_eq!(stat.failed(), &[DEAD], "finish must surface the death");

            // Self-heal, then the real exchange on the reformed team:
            // its finish has no failed member, so Yang's termination
            // detection runs to quiescence and delivery is guaranteed.
            let (team, stat) = img.team_reform(&world);
            assert_eq!(stat.failed(), &[DEAD]);
            assert_eq!(team.size(), RP - 1);
            let ca: Coarray<u64> = img.coarray_alloc(&team, RP - 1);
            let t = team.rank();
            // lint:allow(CAFL008) reform dropped the only failed member
            img.finish(&team, |img| {
                for j in 0..RP - 1 {
                    if j != t {
                        img.agg_accumulate_add(&ca, j, t, 1 + t as u64);
                    }
                }
            });
            // lint:allow(CAFL008) same: the reformed team is whole
            img.barrier(&team);
            let table = ca.local_vec(img);
            let stats = img.agg_stats();
            (table, stats.rerouted, stats.dropped_dead)
        });
        assert!(out[DEAD].is_none(), "{kind:?}: the victim's slot must be dropped");
        let mut total_rerouted = 0;
        let mut total_dropped = 0;
        for slot in out.iter().flatten() {
            let (table, rerouted, dropped) = slot;
            for (w, &got) in table.iter().enumerate() {
                // Slot w was written by team rank w with value 1 + w,
                // except the reader's own slot which nobody writes.
                if got != 0 {
                    assert_eq!(got, 1 + w as u64, "{kind:?}: slot {w} corrupted");
                }
            }
            let zeros = table.iter().filter(|&&v| v == 0).count();
            assert_eq!(
                zeros, 1,
                "{kind:?}: a record was stranded on the dead hop ({table:?})"
            );
            total_rerouted += rerouted;
            total_dropped += dropped;
        }
        // Writer global-0 alone owes three detours (0→3, 0→5, 0→7 all
        // lost their first hop), and its dead-destination record is a
        // guaranteed direct drop.
        assert!(
            total_rerouted >= 3,
            "{kind:?}: only {total_rerouted} rerouted records — the detour path never fired"
        );
        assert!(
            total_dropped >= 1,
            "{kind:?}: no dead-destination drop was recorded"
        );
    }
}
