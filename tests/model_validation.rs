//! Cross-validation: the analytic model's *mechanisms* must be visible in
//! real execution. Where `caf-netmodel` predicts a trend from a mechanism
//! (flush_all Θ(P), constant GASNet notify, tuned vs hand-rolled
//! alltoall), the same trend must appear when the actual runtimes execute
//! with cost tables enabled.

use caf::{CafUniverse, StatCat, SubstrateKind};
use caf_bench::fusion_like;
use std::time::Instant;

/// Seconds of `event_notify` per call at job size `p` on a substrate.
fn notify_cost_per_call(p: usize, kind: SubstrateKind, calls: usize) -> f64 {
    let rows = CafUniverse::run_with_config(p, fusion_like(kind), move |img| {
        let w = img.team_world();
        let ev = img.event_alloc(&w);
        // Allocate a few windows so flush_all has work shape.
        let cas: Vec<caf::Coarray<u64>> = (0..3).map(|_| img.coarray_alloc(&w, 8)).collect();
        img.sync_all();
        let me = img.this_image();
        let secs = if me == 0 {
            let t = Instant::now();
            for _ in 0..calls {
                cas[0].write(img, 1, 0, &[1]);
                img.event_notify(&w, &ev, 1);
            }
            t.elapsed().as_secs_f64()
        } else {
            if me == 1 {
                for _ in 0..calls {
                    img.event_wait(&ev);
                }
            }
            0.0
        };
        img.sync_all();
        for ca in cas {
            img.coarray_free(&w, ca);
        }
        secs
    });
    rows[0] / calls as f64
}

/// Mechanism 1 (paper §4.1): MPI `event_notify` cost grows with job size
/// (flush_all is Θ(P)); GASNet's does not grow comparably.
#[test]
fn notify_scaling_matches_model_mechanism() {
    let calls = 300;
    // Best of 3 to de-noise scheduling jitter.
    let best = |p, kind| {
        (0..3)
            .map(|_| notify_cost_per_call(p, kind, calls))
            .fold(f64::INFINITY, f64::min)
    };
    let mpi_small = best(2, SubstrateKind::Mpi);
    let mpi_large = best(12, SubstrateKind::Mpi);
    let gas_small = best(2, SubstrateKind::Gasnet);
    let gas_large = best(12, SubstrateKind::Gasnet);

    let mpi_growth = mpi_large / mpi_small;
    let gas_growth = gas_large / gas_small;
    assert!(
        mpi_growth > 1.3,
        "MPI notify must grow with P: {mpi_small:.2e} -> {mpi_large:.2e}"
    );
    assert!(
        mpi_growth > gas_growth * 1.1,
        "MPI notify growth ({mpi_growth:.2}) must exceed GASNet's ({gas_growth:.2})"
    );
}

/// Mechanism 2 (paper §4.2): the alltoall gap favours the MPI substrate
/// and is the FFT driver. Measured directly on the collective.
#[test]
fn alltoall_gap_matches_model_mechanism() {
    let time_a2a = |kind| {
        let rows = CafUniverse::run_with_config(8, fusion_like(kind), |img| {
            let w = img.team_world();
            let send: Vec<f64> = (0..8 * 512).map(|i| i as f64).collect();
            img.sync_all();
            let t = Instant::now();
            for _ in 0..10 {
                let _ = img.alltoall(&w, &send, 512);
            }
            let d = t.elapsed().as_secs_f64();
            img.sync_all();
            d
        });
        rows[0]
    };
    let mpi = (0..3).map(|_| time_a2a(SubstrateKind::Mpi)).fold(f64::INFINITY, f64::min);
    let gas = (0..3)
        .map(|_| time_a2a(SubstrateKind::Gasnet))
        .fold(f64::INFINITY, f64::min);
    assert!(
        gas > mpi,
        "hand-rolled GASNet alltoall ({gas:.4}s) must cost more than MPI's ({mpi:.4}s)"
    );
}

/// Mechanism 3 (Figure 1): memory ordering GASNet < MPI < duplicate holds
/// in real accounting at every job size, as the model assumes.
#[test]
fn memory_ordering_matches_model() {
    for p in [2usize, 4, 8] {
        let (g, m, d) = caf_bench::real_memory(p);
        assert!(g < m && m < d, "P={p}: {g} / {m} / {d}");
    }
    // Growth with P, both runtimes (the model's log/linear terms).
    let (g2, m2, _) = caf_bench::real_memory(2);
    let (g16, m16, _) = caf_bench::real_memory(16);
    assert!(g16 > g2);
    assert!(m16 > m2);
}

/// The per-primitive stats ledger respects conservation: category times
/// sum to no more than the wall clock of the run that produced them.
#[test]
fn stats_are_conservative() {
    let rows = CafUniverse::run_collect_stats(
        4,
        fusion_like(SubstrateKind::Mpi),
        |img| {
            let w = img.team_world();
            let t = Instant::now();
            let _ = caf_hpcc::fft::run(img, &w, 13);
            t.elapsed().as_secs_f64()
        },
    );
    for (wall, report) in rows {
        let total: f64 = report.rows.iter().map(|&(_, s, _)| s).sum();
        assert!(
            total <= wall * 1.05 + 0.01,
            "categories ({total:.4}s) exceed wall clock ({wall:.4}s)"
        );
        assert!(report.seconds(StatCat::Alltoall) > 0.0);
    }
}
