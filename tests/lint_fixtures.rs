//! Fixture tests for the caf-lint passes (CAFL000..CAFL009).
//!
//! Each lint class gets a known-bad snippet that must trip exactly that
//! diagnostic code, and a known-good twin that must scan clean. The
//! regression fixtures at the bottom pin the two bugs the token-aware
//! scanner fixed over the old line-greps: a `#[cfg(test)]` attribute
//! disarming the rest of the file after its module closes, and false
//! positives on patterns inside string literals or trailing comments.

use caf_lint::{scan_file, OrderingTable, Report};

/// Scan one virtual file and return the diagnostic codes it trips.
fn codes(rel: &str, src: &str) -> Vec<&'static str> {
    codes_with_table(rel, src, "")
}

fn codes_with_table(rel: &str, src: &str, table: &str) -> Vec<&'static str> {
    report_with_table(rel, src, table).diags.iter().map(|d| d.code).collect()
}

fn report_with_table(rel: &str, src: &str, table: &str) -> Report {
    let table = OrderingTable::parse(table).expect("fixture table parses");
    let mut report = Report::default();
    scan_file(rel, src, &table, &mut report);
    report
}

// ---------------------------------------------------------------- CAFL001

#[test]
fn blocking_unguarded_recv_trips_cafl001() {
    let bad = r#"
        fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> u8 {
            rx.recv().unwrap()
        }
    "#;
    assert_eq!(codes("crates/fabric/src/foo.rs", bad), vec!["CAFL001"]);
}

#[test]
fn blocking_with_gate_evidence_is_clean_and_inventoried() {
    let good = r#"
        fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> u8 {
            if crate::sched::active() {
                crate::sched::model_blocking(crate::sched::ModelOp::Recv, || rx.try_recv().ok());
            }
            rx.recv().unwrap()
        }
    "#;
    let report = report_with_table("crates/fabric/src/foo.rs", good, "");
    assert!(report.diags.is_empty(), "unexpected: {:?}", report.diags);
    let site = report
        .sites
        .iter()
        .find(|s| s.kind == "channel_recv")
        .expect("recv site inventoried");
    assert_eq!(site.gated, "direct");
    assert_eq!(site.function, "pump");
}

#[test]
fn blocking_allow_marker_suppresses_cafl001() {
    let allowed = r#"
        fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> u8 {
            // lint:allow(blocking) bootstrap path, runs before any gate arms
            rx.recv().unwrap()
        }
    "#;
    let report = report_with_table("crates/fabric/src/foo.rs", allowed, "");
    assert!(report.diags.is_empty());
    assert_eq!(report.sites[0].gated, "allowed");
}

#[test]
fn blocking_with_park_api_evidence_is_clean_and_inventoried() {
    // The dual-mode wait idiom: a caf_sched::park() retry loop for the
    // task executor, falling through to the raw channel receive under
    // ExecMode::Threads. The park evidence gates the raw primitive, the
    // park call itself is inventoried as a task suspension point.
    let good = r#"
        fn pump(rx: &Receiver<u8>) -> u8 {
            if caf_sched::on_task() {
                loop {
                    match rx.try_recv() {
                        Ok(v) => return v,
                        Err(_) => caf_sched::park(),
                    }
                }
            }
            rx.recv().unwrap()
        }
    "#;
    let report = report_with_table("crates/fabric/src/foo.rs", good, "");
    assert!(report.diags.is_empty(), "unexpected: {:?}", report.diags);
    let recv = report
        .sites
        .iter()
        .find(|s| s.kind == "channel_recv")
        .expect("recv site inventoried");
    assert_eq!(recv.gated, "park-api");
    let park = report
        .sites
        .iter()
        .find(|s| s.kind == "task_park")
        .expect("park site inventoried");
    assert_eq!(park.gated, "park-api");
    assert_eq!(park.function, "pump");
}

#[test]
fn park_inside_sched_crate_is_gate_internal() {
    let src = r#"
        fn reenter() {
            caf_sched::yield_now();
        }
    "#;
    let report = report_with_table("crates/sched/src/lib.rs", src, "");
    assert!(report.diags.is_empty());
    let site = report.sites.iter().find(|s| s.kind == "task_yield").expect("yield site");
    assert_eq!(site.gated, "gate-internal");
}

#[test]
fn blocking_outside_modeled_crates_is_ignored() {
    let src = r#"
        fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> u8 { rx.recv().unwrap() }
    "#;
    assert!(codes("crates/trace/src/foo.rs", src).is_empty());
}

// ---------------------------------------------------------------- CAFL002

#[test]
fn guard_across_park_trips_cafl002() {
    let bad = r#"
        fn broken(m: &std::sync::Mutex<u8>) {
            let g = m.lock().unwrap();
            crate::sched::yield_op(crate::sched::ModelOp::Registry);
            drop(g);
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL002"]);
}

#[test]
fn guard_dropped_before_park_is_clean() {
    let good = r#"
        fn fine(m: &std::sync::Mutex<u8>) {
            let g = m.lock().unwrap();
            drop(g);
            crate::sched::yield_op(crate::sched::ModelOp::Registry);
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", good).is_empty());
}

#[test]
fn guard_across_task_park_trips_cafl002() {
    // caf_sched::park() suspends the whole task: a guard still live at
    // the park pins every image sharing this worker.
    let bad = r#"
        fn broken(m: &std::sync::Mutex<u8>) {
            let g = m.lock().unwrap();
            caf_sched::park();
            drop(g);
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL002"]);
}

#[test]
fn guard_dropped_before_task_park_is_clean() {
    let good = r#"
        fn fine(m: &std::sync::Mutex<u8>) {
            let g = m.lock().unwrap();
            drop(g);
            caf_sched::park();
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", good).is_empty());
}

#[test]
fn guard_scoped_out_before_park_is_clean() {
    let good = r#"
        fn fine(m: &std::sync::Mutex<u8>) {
            {
                let g = m.lock().unwrap();
                *g += 1;
            }
            crate::sched::yield_op(crate::sched::ModelOp::Registry);
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", good).is_empty());
}

// ---------------------------------------------------------------- CAFL003

#[test]
fn ordering_without_table_row_trips_cafl003() {
    let bad = r#"
        fn bump(c: &std::sync::atomic::AtomicU64) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL003"]);
}

#[test]
fn ordering_with_table_row_is_clean() {
    let src = r#"
        fn bump(c: &std::sync::atomic::AtomicU64) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    "#;
    let table = "crates/core/src/foo.rs\tbump\tfetch_add\tRelaxed\tcounter, no sync\n";
    assert!(codes_with_table("crates/core/src/foo.rs", src, table).is_empty());
}

#[test]
fn seqcst_justification_must_mention_seqcst() {
    let src = r#"
        fn publish(c: &std::sync::atomic::AtomicBool) {
            c.store(true, Ordering::SeqCst);
        }
    "#;
    let drifting = "crates/core/src/foo.rs\tpublish\tstore\tSeqCst\tlooks important\n";
    assert_eq!(
        codes_with_table("crates/core/src/foo.rs", src, drifting),
        vec!["CAFL003"]
    );
    let justified =
        "crates/core/src/foo.rs\tpublish\tstore\tSeqCst\tSeqCst: total order with the reader\n";
    assert!(codes_with_table("crates/core/src/foo.rs", src, justified).is_empty());
}

#[test]
fn stale_table_row_trips_cafl003() {
    let table = OrderingTable::parse(
        "crates/core/src/gone.rs\told_fn\tload\tRelaxed\tno longer exists\n",
    )
    .unwrap();
    let mut report = Report::default();
    scan_file("crates/core/src/foo.rs", "fn nothing() {}", &table, &mut report);
    caf_lint::finish(&table, &mut report);
    assert_eq!(report.diags.len(), 1);
    assert_eq!(report.diags[0].code, "CAFL003");
    assert!(report.diags[0].msg.contains("stale"));
}

#[test]
fn ordering_in_test_code_is_exempt() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            fn bump(c: &std::sync::atomic::AtomicU64) {
                c.fetch_add(1, Ordering::SeqCst);
            }
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

// ---------------------------------------------------------------- CAFL004

#[test]
fn undocumented_unsafe_trips_cafl004() {
    let bad = r#"
        fn peek(p: *const u8) -> u8 {
            unsafe { *p }
        }
    "#;
    assert_eq!(codes("crates/hpcc/src/foo.rs", bad), vec!["CAFL004"]);
}

#[test]
fn safety_comment_satisfies_cafl004() {
    let good = r#"
        fn peek(p: *const u8) -> u8 {
            // SAFETY: caller guarantees `p` points into a live allocation.
            unsafe { *p }
        }
    "#;
    assert!(codes("crates/hpcc/src/foo.rs", good).is_empty());
    let trailing = r#"
        fn peek(p: *const u8) -> u8 {
            unsafe { *p } // SAFETY: caller guarantees `p` is live.
        }
    "#;
    assert!(codes("crates/hpcc/src/foo.rs", trailing).is_empty());
}

#[test]
fn safety_comment_too_far_above_still_trips() {
    let bad = r#"
        fn peek(p: *const u8) -> u8 {
            // SAFETY: this comment is five lines above the unsafe block,
            // which is beyond the three-line window the lint accepts,
            // so the site below must still be flagged as undocumented.
            let _x = 0;
            let _y = 0;
            unsafe { *p }
        }
    "#;
    assert_eq!(codes("crates/hpcc/src/foo.rs", bad), vec!["CAFL004"]);
}

// ---------------------------------------------------------------- CAFL005

#[test]
fn substrate_referencing_upper_layer_trips_cafl005() {
    let bad = r#"
        fn leak() {
            let _ = caf_model::explore::Config::default();
        }
    "#;
    assert_eq!(codes("crates/mpisim/src/foo.rs", bad), vec!["CAFL005"]);
}

#[test]
fn deep_path_into_substrate_trips_cafl005() {
    let bad = "use caf_mpisim::ops::Scalar;\n";
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL005"]);
    let good = "use caf_mpisim::Scalar;\n";
    assert!(codes("crates/core/src/foo.rs", good).is_empty());
}

#[test]
fn substrate_may_use_its_own_modules() {
    let src = "use caf_mpisim::ops::Scalar;\nfn f(_: caf_fabric::SegmentId) {}\n";
    // Inside a substrate crate the deep-path rule does not apply (it
    // governs outside consumers), and caf_fabric is below both.
    assert!(codes("crates/gasnetsim/src/foo.rs", src).is_empty());
}

// ---------------------------------------------------------------- CAFL006

#[test]
fn segment_access_outside_substrates_trips_cafl006() {
    let bad = r#"
        fn sneak(mpi: &Mpi, win: &Window) {
            let seg = mpi.win_segment(win, 0).unwrap();
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL006"]);
}

#[test]
fn segment_access_inside_substrate_is_exempt() {
    let src = r#"
        fn resolve(&self, win: &Window, rank: usize) -> Result<Arc<Segment>> {
            self.win_segment(win, rank)
        }
    "#;
    assert!(codes("crates/mpisim/src/foo.rs", src).is_empty());
}

#[test]
fn segment_allow_marker_suppresses_cafl006() {
    let src = r#"
        fn shipping(mpi: &Mpi, win: &Window) {
            // lint:allow(segment-direct) function shipping needs the raw view
            let seg = mpi.win_segment(win, 0).unwrap();
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

// ---------------------------------------------------------------- CAFL007

#[test]
fn wall_clock_in_modeled_crate_trips_cafl007() {
    let bad = r#"
        fn spin() {
            let t0 = std::time::Instant::now();
        }
    "#;
    assert_eq!(codes("crates/agg/src/foo.rs", bad), vec!["CAFL007"]);
}

#[test]
fn wall_clock_in_delay_rs_is_exempt() {
    let src = r#"
        fn clock() -> std::time::Instant {
            std::time::Instant::now()
        }
    "#;
    assert!(codes("crates/fabric/src/delay.rs", src).is_empty());
}

#[test]
fn sleep_in_test_module_is_exempt() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            fn settle() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

// ------------------------------------------------------- regression: scope

/// The old line-grep disarmed the *rest of the file* once it saw a
/// `#[cfg(test)]` line. The scanner must re-arm after the test module's
/// closing brace.
#[test]
fn code_after_closed_test_module_is_still_linted() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            fn settle() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }

        fn production() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    "#;
    let report = report_with_table("crates/core/src/foo.rs", src, "");
    assert_eq!(
        report.diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec!["CAFL007"],
        "exactly the post-module sleep must be flagged: {:?}",
        report.diags
    );
    assert!(report.diags[0].line > 7, "flagged site must be in `production`");
}

/// `#[cfg(not(test))]` is live code and must not be treated as a test
/// scope.
#[test]
fn cfg_not_test_is_live_code() {
    let src = r#"
        #[cfg(not(test))]
        fn production() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", src), vec!["CAFL007"]);
}

// ---------------------------------------- regression: strings and comments

/// Pattern text inside string literals (e.g. a diagnostic message that
/// *names* `Instant::now`) must not trip any lint.
#[test]
fn patterns_inside_string_literals_are_ignored() {
    let src = r#"
        fn describe() -> &'static str {
            "do not call Instant::now or thread::sleep or win_segment( here"
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

/// Pattern text in trailing comments must not trip any lint either.
#[test]
fn patterns_inside_comments_are_ignored() {
    let src = r#"
        fn describe() {
            let x = 1; // unlike Instant::now(), this is deterministic
            // A doc note mentioning rx.recv() and Ordering::SeqCst is fine.
            let _ = x;
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

/// And the inverse guard: real code on a line that *also* has a trailing
/// comment is still scanned.
#[test]
fn code_with_trailing_comment_is_still_scanned() {
    let src = r#"
        fn spin() {
            let t0 = std::time::Instant::now(); // timestamp
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", src), vec!["CAFL007"]);
}

// ------------------------------------------------- workspace-level passes
//
// The fixtures below exercise the CFG + call-graph dataflow engine
// (CAFL008 sync-protocol, CAFL009 wait-graph, CAFL000 stale-allow
// audit), which only runs at workspace granularity.

/// Analyze a multi-file virtual workspace through the full engine:
/// per-file passes, the call-graph dataflow passes, and the allow audit.
fn ws_report(files: &[(&str, &str)]) -> Report {
    let table = OrderingTable::parse("").expect("empty table parses");
    let ws = caf_lint::Workspace::from_sources(
        files.iter().map(|&(r, s)| (r.to_string(), s.to_string())).collect(),
    );
    let mut report = Report::default();
    ws.analyze(&table, &mut report);
    report
}

fn ws_codes(files: &[(&str, &str)]) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = ws_report(files).diags.iter().map(|d| d.code).collect();
    v.sort_unstable();
    v
}

// ---------------------------------------------------------------- CAFL008

#[test]
fn notify_on_one_arm_only_trips_cafl008() {
    let bad = r#"
        fn branchy(img: &Image, flag: bool) {
            img.copy_async_put(&ca, 1, 0, &[7], AsyncOpts::none());
            if flag {
                img.event_notify(&world, &ev, 1);
            }
        }
    "#;
    assert_eq!(ws_codes(&[("tests/fix.rs", bad)]), vec!["CAFL008"]);
}

#[test]
fn notify_on_every_arm_is_clean() {
    let good = r#"
        fn branchy(img: &Image, flag: bool) {
            img.copy_async_put(&ca, 1, 0, &[7], AsyncOpts::none());
            if flag {
                img.event_notify(&world, &ev, 1);
            } else {
                img.cofence();
            }
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn loop_carried_dirty_state_trips_cafl008() {
    // The release happens *before* the loop: every iteration's put
    // survives to the function exit.
    let bad = r#"
        fn loopy(img: &Image) {
            img.cofence();
            for i in 0..4 {
                img.copy_async_put(&ca, i, 0, &[1], AsyncOpts::none());
            }
        }
    "#;
    assert_eq!(ws_codes(&[("tests/fix.rs", bad)]), vec!["CAFL008"]);
}

#[test]
fn release_inside_the_loop_body_is_clean() {
    // Put + notify within one iteration: the loop-head join sees a
    // clean state on the back edge, so nothing leaks out of the loop.
    let good = r#"
        fn loopy(img: &Image) {
            for i in 0..4 {
                img.copy_async_put(&ca, i, 0, &[1], AsyncOpts::none());
                img.event_notify(&world, &ev, i);
            }
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn dirty_exit_through_a_closure_body_trips_cafl008() {
    // The put happens inside a harness closure (may-execute): its
    // generated work joins into the caller and reaches the exit.
    let bad = r#"
        fn harness(img: &Image) {
            run_images(4, |img| {
                img.copy_async_put(&ca, 1, 0, &[7], AsyncOpts::none());
            });
        }
    "#;
    assert_eq!(ws_codes(&[("tests/fix.rs", bad)]), vec!["CAFL008"]);
}

#[test]
fn closure_that_releases_before_returning_is_clean() {
    let good = r#"
        fn harness(img: &Image) {
            run_images(4, |img| {
                img.copy_async_put(&ca, 1, 0, &[7], AsyncOpts::none());
                img.cofence();
            });
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn finish_block_exit_releases_everything() {
    // finish() drains + release_all()s at closure exit: a put inside
    // needs no explicit release.
    let good = r#"
        fn finished(img: &Image) {
            img.finish(|img| {
                img.copy_async_put(&ca, 1, 0, &[7], AsyncOpts::none());
            });
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn dirty_state_propagates_through_helper_calls() {
    // The put is two calls deep; the root never releases it.
    let bad = r#"
        fn root(img: &Image) {
            step_one(img);
        }
        fn step_one(img: &Image) {
            step_two(img);
        }
        fn step_two(img: &Image) {
            img.copy_async_put(&ca, 1, 0, &[7], AsyncOpts::none());
        }
    "#;
    assert_eq!(ws_codes(&[("tests/fix.rs", bad)]), vec!["CAFL008"]);

    // Same shape, but the root releases after the helper returns.
    let good = r#"
        fn root(img: &Image) {
            step_one(img);
            img.cofence();
        }
        fn step_one(img: &Image) {
            step_two(img);
        }
        fn step_two(img: &Image) {
            img.copy_async_put(&ca, 1, 0, &[7], AsyncOpts::none());
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn wait_without_reachable_notify_trips_cafl008() {
    let bad = r#"
        fn onesided(img: &Image) {
            img.event_wait(&ev);
        }
    "#;
    assert_eq!(ws_codes(&[("tests/fix.rs", bad)]), vec!["CAFL008"]);

    // SPMD pairing: every image runs the same program text, so a
    // notify reachable from the same root satisfies the wait.
    let good = r#"
        fn paired(img: &Image) {
            img.event_notify(&world, &ev, 1);
            img.event_wait(&ev);
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn ship_outside_finish_trips_cafl008() {
    let bad = r#"
        fn ships(img: &Image) {
            img.ship(7, |img| {
                let _ = img.this_image();
            });
        }
    "#;
    assert_eq!(ws_codes(&[("tests/fix.rs", bad)]), vec!["CAFL008"]);
}

#[test]
fn ship_under_finish_is_clean_even_through_a_helper() {
    let good = r#"
        fn root(img: &Image) {
            img.finish(|img| {
                spawn_work(img);
            });
        }
        fn spawn_work(img: &Image) {
            img.ship(7, |img| {
                let _ = img.this_image();
            });
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn collective_inside_shipped_closure_trips_cafl008() {
    // Shipped closures execute remotely under the target's finish
    // accounting; a team collective inside one deadlocks the team.
    let bad = r#"
        fn root(img: &Image) {
            img.finish(|img| {
                img.ship(7, |img| {
                    img.barrier(&world);
                });
            });
        }
    "#;
    assert_eq!(ws_codes(&[("tests/fix.rs", bad)]), vec!["CAFL008"]);
}

// -------------------------------------------- CAFL008: failure edges

#[test]
fn blind_blocking_call_in_fault_aware_program_trips_cafl008() {
    // The program threads Stat through one barrier and reforms the team
    // — it expects failures — but the final sync is failure-blind: once
    // an image dies it panics instead of reporting.
    let bad = r#"
        fn recovers(img: &Image) {
            let stat = img.sync_all_stat();
            if !stat.is_ok() {
                let (team, _stat) = img.team_reform(&img.team_world());
                img.barrier(&team);
            }
        }
    "#;
    let report = ws_report(&[("tests/fix.rs", bad)]);
    assert_eq!(
        report.diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec!["CAFL008"],
        "failure edge must be flagged: {:?}",
        report.diags
    );
    assert!(report.diags[0].msg.contains("Stat out-param"), "{:?}", report.diags);
}

#[test]
fn stat_twin_everywhere_is_clean() {
    let good = r#"
        fn recovers(img: &Image) {
            let stat = img.sync_all_stat();
            if !stat.is_ok() {
                let (team, _stat) = img.team_reform(&img.team_world());
                let stat = img.barrier_stat(&team);
                assert!(stat.is_ok());
            }
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn plain_blocking_without_fault_api_is_not_a_failure_edge() {
    // A program that never touches the failed-image API is failure-free
    // by assumption: plain collectives are the correct idiom.
    let good = r#"
        fn oblivious(img: &Image) {
            img.sync_all();
            img.barrier(&world);
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn failure_edge_reaches_through_helper_calls() {
    // The fault API and the blind call live in different functions of
    // the same program: the root joins both.
    let bad = r#"
        fn root(img: &Image) {
            detect(img);
            settle(img);
        }
        fn detect(img: &Image) {
            let stat = img.sync_all_stat();
            let _ = stat.is_ok();
        }
        fn settle(img: &Image) {
            img.barrier(&world);
        }
    "#;
    assert_eq!(ws_codes(&[("tests/fix.rs", bad)]), vec!["CAFL008"]);
}

#[test]
fn blind_finish_in_fault_aware_program_trips_cafl008() {
    // finish has a _stat twin too; the plain form panics mid-teardown
    // when a member dies inside the block.
    let bad = r#"
        fn recovers(img: &Image) {
            let (team, _stat) = img.team_reform(&img.team_world());
            img.finish(&team, |img| {
                let _ = img.this_image();
            });
        }
    "#;
    assert_eq!(ws_codes(&[("tests/fix.rs", bad)]), vec!["CAFL008"]);
}

#[test]
fn finish_stat_closure_exit_still_releases() {
    // The finish_stat closure is run-once like finish: deferred work
    // inside needs no explicit release (on failure it is discarded, not
    // deferred further).
    let good = r#"
        fn recovers(img: &Image) {
            let ((), stat) = img.finish_stat(&world, |img| {
                img.copy_async_put(&ca, 1, 0, &[7], AsyncOpts::none());
            });
            let _ = stat.is_ok();
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", good)]).is_empty());
}

#[test]
fn code_spelled_allow_suppresses_failure_edge() {
    // `lint:allow(CAFL008)` — the code-spelled escape hatch — works on
    // the line above the blind call, for sites that provably run on a
    // failure-free team.
    let allowed = r#"
        fn recovers(img: &Image) {
            let stat = img.sync_all_stat();
            if !stat.is_ok() {
                let (team, _stat) = img.team_reform(&img.team_world());
                // lint:allow(CAFL008) reform dropped every failed member
                img.barrier(&team);
            }
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", allowed)]).is_empty());
}

#[test]
fn allow_marker_suppresses_cafl008_and_is_not_stale() {
    let allowed = r#"
        fn branchy(img: &Image, flag: bool) {
            // lint:allow(sync-protocol) released data-dependently below
            img.copy_async_put(&ca, 1, 0, &[7], AsyncOpts::none());
            if flag {
                img.event_notify(&world, &ev, 1);
            }
        }
    "#;
    assert!(ws_codes(&[("tests/fix.rs", allowed)]).is_empty());
}

// ---------------------------------------------------------------- CAFL009

/// The acceptance fixture: a guard held across a park two calls deep.
/// CAFL002's same-function pass cannot see it; the call-graph-propagated
/// wait-graph pass must.
#[test]
fn park_under_guard_two_calls_deep_trips_cafl009_not_cafl002() {
    let bad = r#"
        fn outer(q: &std::sync::Mutex<u32>) {
            let guard = q.lock();
            middle();
            drop(guard);
        }
        fn middle() {
            inner();
        }
        fn inner() {
            caf_sched::park();
        }
    "#;
    let report = ws_report(&[("crates/core/src/fix.rs", bad)]);
    let codes: Vec<&str> = report.diags.iter().map(|d| d.code).collect();
    assert!(
        codes.contains(&"CAFL009"),
        "interprocedural park-while-holding must be flagged: {:?}",
        report.diags
    );
    assert!(
        !codes.contains(&"CAFL002"),
        "CAFL002 is same-fn only and must stay silent here: {:?}",
        report.diags
    );
    let wg = report.waitgraph.as_ref().expect("wait graph built");
    assert!(
        wg.edges.iter().any(|e| e.from == "lock:core/q"
            && e.to == "park:core/park"
            && e.scope == "inter"
            && e.status == "flagged"),
        "edge must be committed as flagged: {}",
        wg.render()
    );
}

#[test]
fn dropping_the_guard_before_the_call_is_clean() {
    let good = r#"
        fn outer(q: &std::sync::Mutex<u32>) {
            let guard = q.lock();
            drop(guard);
            middle();
        }
        fn middle() {
            inner();
        }
        fn inner() {
            caf_sched::park();
        }
    "#;
    let report = ws_report(&[("crates/core/src/fix.rs", good)]);
    assert!(report.diags.is_empty(), "unexpected: {:?}", report.diags);
    let wg = report.waitgraph.as_ref().expect("wait graph built");
    assert!(
        wg.edges.is_empty(),
        "no guard is live at the call: {}",
        wg.render()
    );
}

#[test]
fn allowed_interprocedural_edge_is_committed_as_allowed() {
    let src = r#"
        fn outer(q: &std::sync::Mutex<u32>) {
            let guard = q.lock();
            // lint:allow(wait-graph) guard protects the park handshake itself
            middle();
            drop(guard);
        }
        fn middle() {
            caf_sched::park();
        }
    "#;
    let report = ws_report(&[("crates/core/src/fix.rs", src)]);
    assert!(report.diags.is_empty(), "unexpected: {:?}", report.diags);
    let wg = report.waitgraph.as_ref().expect("wait graph built");
    assert!(
        wg.edges.iter().any(|e| e.scope == "inter" && e.status == "allowed"),
        "allowed edges stay visible in the committed graph: {}",
        wg.render()
    );
}

#[test]
fn lock_order_cycle_across_functions_trips_cafl009() {
    // `ab` takes A then B (through a helper); `ba` takes B then A: an
    // AB/BA inversion no schedule ordering can make safe.
    let bad = r#"
        fn ab(alock: &std::sync::Mutex<u32>, block: &std::sync::Mutex<u32>) {
            let ga = alock.lock();
            take_b(block);
            drop(ga);
        }
        fn take_b(block: &std::sync::Mutex<u32>) {
            let gb = block.lock();
            drop(gb);
        }
        fn ba(alock: &std::sync::Mutex<u32>, block: &std::sync::Mutex<u32>) {
            let gb = block.lock();
            take_a(alock);
            drop(gb);
        }
        fn take_a(alock: &std::sync::Mutex<u32>) {
            let ga = alock.lock();
            drop(ga);
        }
    "#;
    let report = ws_report(&[("crates/core/src/fix.rs", bad)]);
    assert!(
        report.diags.iter().any(|d| d.code == "CAFL009" && d.msg.contains("cycle")),
        "lock-order cycle must be flagged: {:?}",
        report.diags
    );
}

#[test]
fn consistent_lock_order_is_clean() {
    let good = r#"
        fn ab(alock: &std::sync::Mutex<u32>, block: &std::sync::Mutex<u32>) {
            let ga = alock.lock();
            take_b(block);
            drop(ga);
        }
        fn take_b(block: &std::sync::Mutex<u32>) {
            let gb = block.lock();
            drop(gb);
        }
        fn also_ab(alock: &std::sync::Mutex<u32>, block: &std::sync::Mutex<u32>) {
            let ga = alock.lock();
            take_b(block);
            drop(ga);
        }
    "#;
    let report = ws_report(&[("crates/core/src/fix.rs", good)]);
    assert!(report.diags.is_empty(), "unexpected: {:?}", report.diags);
}

#[test]
fn same_fn_park_stays_cafl002_territory() {
    // A guard held across a park in the *same* function: CAFL002's
    // finding; the wait graph records the edge as intra, unflagged.
    let bad = r#"
        fn f(q: &std::sync::Mutex<u32>) {
            let guard = q.lock();
            caf_sched::park();
            drop(guard);
        }
    "#;
    let report = ws_report(&[("crates/core/src/fix.rs", bad)]);
    let codes: Vec<&str> = report.diags.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"CAFL002"), "same-fn is CAFL002: {:?}", report.diags);
    assert!(!codes.contains(&"CAFL009"), "no CAFL009 double-report: {:?}", report.diags);
    let wg = report.waitgraph.as_ref().expect("wait graph built");
    assert!(
        wg.edges.iter().any(|e| e.scope == "intra" && e.status == "ok"),
        "intra edge recorded: {}",
        wg.render()
    );
}

// ---------------------------------------------------------------- CAFL000

#[test]
fn stale_allow_marker_trips_cafl000() {
    // The marker suppresses nothing on its line or the line below.
    let stale = r#"
        fn quiet() {
            // lint:allow(blocking) nothing blocks here anymore
            let x = 1;
            let _ = x;
        }
    "#;
    assert_eq!(ws_codes(&[("crates/fabric/src/fix.rs", stale)]), vec!["CAFL000"]);
}

#[test]
fn consumed_allow_marker_is_not_stale() {
    let consumed = r#"
        fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> u8 {
            // lint:allow(blocking) bootstrap path, runs before any gate arms
            rx.recv().unwrap()
        }
    "#;
    assert!(ws_codes(&[("crates/fabric/src/fix.rs", consumed)]).is_empty());
}

#[test]
fn unknown_allow_class_trips_cafl000() {
    let bad = r#"
        fn quiet() {
            // lint:allow(frobnicate) not a lint class
            let x = 1;
            let _ = x;
        }
    "#;
    assert_eq!(ws_codes(&[("crates/core/src/fix.rs", bad)]), vec!["CAFL000"]);
}

#[test]
fn backtick_quoted_allow_mentions_are_prose_not_markers() {
    let prose = r#"
        /// Policy doc: suppress with `lint:allow(blocking)` on the line.
        /// Placeholder form `// lint:allow(<class>)` is also just prose.
        fn quiet() {
            let x = 1;
            let _ = x;
        }
    "#;
    assert!(ws_codes(&[("crates/core/src/fix.rs", prose)]).is_empty());
}
