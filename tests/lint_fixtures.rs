//! Fixture tests for the caf-lint passes (CAFL001..CAFL007).
//!
//! Each lint class gets a known-bad snippet that must trip exactly that
//! diagnostic code, and a known-good twin that must scan clean. The
//! regression fixtures at the bottom pin the two bugs the token-aware
//! scanner fixed over the old line-greps: a `#[cfg(test)]` attribute
//! disarming the rest of the file after its module closes, and false
//! positives on patterns inside string literals or trailing comments.

use caf_lint::{scan_file, OrderingTable, Report};

/// Scan one virtual file and return the diagnostic codes it trips.
fn codes(rel: &str, src: &str) -> Vec<&'static str> {
    codes_with_table(rel, src, "")
}

fn codes_with_table(rel: &str, src: &str, table: &str) -> Vec<&'static str> {
    report_with_table(rel, src, table).diags.iter().map(|d| d.code).collect()
}

fn report_with_table(rel: &str, src: &str, table: &str) -> Report {
    let table = OrderingTable::parse(table).expect("fixture table parses");
    let mut report = Report::default();
    scan_file(rel, src, &table, &mut report);
    report
}

// ---------------------------------------------------------------- CAFL001

#[test]
fn blocking_unguarded_recv_trips_cafl001() {
    let bad = r#"
        fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> u8 {
            rx.recv().unwrap()
        }
    "#;
    assert_eq!(codes("crates/fabric/src/foo.rs", bad), vec!["CAFL001"]);
}

#[test]
fn blocking_with_gate_evidence_is_clean_and_inventoried() {
    let good = r#"
        fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> u8 {
            if crate::sched::active() {
                crate::sched::model_blocking(crate::sched::ModelOp::Recv, || rx.try_recv().ok());
            }
            rx.recv().unwrap()
        }
    "#;
    let report = report_with_table("crates/fabric/src/foo.rs", good, "");
    assert!(report.diags.is_empty(), "unexpected: {:?}", report.diags);
    let site = report
        .sites
        .iter()
        .find(|s| s.kind == "channel_recv")
        .expect("recv site inventoried");
    assert_eq!(site.gated, "direct");
    assert_eq!(site.function, "pump");
}

#[test]
fn blocking_allow_marker_suppresses_cafl001() {
    let allowed = r#"
        fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> u8 {
            // lint:allow(blocking) bootstrap path, runs before any gate arms
            rx.recv().unwrap()
        }
    "#;
    let report = report_with_table("crates/fabric/src/foo.rs", allowed, "");
    assert!(report.diags.is_empty());
    assert_eq!(report.sites[0].gated, "allowed");
}

#[test]
fn blocking_with_park_api_evidence_is_clean_and_inventoried() {
    // The dual-mode wait idiom: a caf_sched::park() retry loop for the
    // task executor, falling through to the raw channel receive under
    // ExecMode::Threads. The park evidence gates the raw primitive, the
    // park call itself is inventoried as a task suspension point.
    let good = r#"
        fn pump(rx: &Receiver<u8>) -> u8 {
            if caf_sched::on_task() {
                loop {
                    match rx.try_recv() {
                        Ok(v) => return v,
                        Err(_) => caf_sched::park(),
                    }
                }
            }
            rx.recv().unwrap()
        }
    "#;
    let report = report_with_table("crates/fabric/src/foo.rs", good, "");
    assert!(report.diags.is_empty(), "unexpected: {:?}", report.diags);
    let recv = report
        .sites
        .iter()
        .find(|s| s.kind == "channel_recv")
        .expect("recv site inventoried");
    assert_eq!(recv.gated, "park-api");
    let park = report
        .sites
        .iter()
        .find(|s| s.kind == "task_park")
        .expect("park site inventoried");
    assert_eq!(park.gated, "park-api");
    assert_eq!(park.function, "pump");
}

#[test]
fn park_inside_sched_crate_is_gate_internal() {
    let src = r#"
        fn reenter() {
            caf_sched::yield_now();
        }
    "#;
    let report = report_with_table("crates/sched/src/lib.rs", src, "");
    assert!(report.diags.is_empty());
    let site = report.sites.iter().find(|s| s.kind == "task_yield").expect("yield site");
    assert_eq!(site.gated, "gate-internal");
}

#[test]
fn blocking_outside_modeled_crates_is_ignored() {
    let src = r#"
        fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> u8 { rx.recv().unwrap() }
    "#;
    assert!(codes("crates/trace/src/foo.rs", src).is_empty());
}

// ---------------------------------------------------------------- CAFL002

#[test]
fn guard_across_park_trips_cafl002() {
    let bad = r#"
        fn broken(m: &std::sync::Mutex<u8>) {
            let g = m.lock().unwrap();
            crate::sched::yield_op(crate::sched::ModelOp::Registry);
            drop(g);
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL002"]);
}

#[test]
fn guard_dropped_before_park_is_clean() {
    let good = r#"
        fn fine(m: &std::sync::Mutex<u8>) {
            let g = m.lock().unwrap();
            drop(g);
            crate::sched::yield_op(crate::sched::ModelOp::Registry);
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", good).is_empty());
}

#[test]
fn guard_across_task_park_trips_cafl002() {
    // caf_sched::park() suspends the whole task: a guard still live at
    // the park pins every image sharing this worker.
    let bad = r#"
        fn broken(m: &std::sync::Mutex<u8>) {
            let g = m.lock().unwrap();
            caf_sched::park();
            drop(g);
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL002"]);
}

#[test]
fn guard_dropped_before_task_park_is_clean() {
    let good = r#"
        fn fine(m: &std::sync::Mutex<u8>) {
            let g = m.lock().unwrap();
            drop(g);
            caf_sched::park();
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", good).is_empty());
}

#[test]
fn guard_scoped_out_before_park_is_clean() {
    let good = r#"
        fn fine(m: &std::sync::Mutex<u8>) {
            {
                let g = m.lock().unwrap();
                *g += 1;
            }
            crate::sched::yield_op(crate::sched::ModelOp::Registry);
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", good).is_empty());
}

// ---------------------------------------------------------------- CAFL003

#[test]
fn ordering_without_table_row_trips_cafl003() {
    let bad = r#"
        fn bump(c: &std::sync::atomic::AtomicU64) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL003"]);
}

#[test]
fn ordering_with_table_row_is_clean() {
    let src = r#"
        fn bump(c: &std::sync::atomic::AtomicU64) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    "#;
    let table = "crates/core/src/foo.rs\tbump\tfetch_add\tRelaxed\tcounter, no sync\n";
    assert!(codes_with_table("crates/core/src/foo.rs", src, table).is_empty());
}

#[test]
fn seqcst_justification_must_mention_seqcst() {
    let src = r#"
        fn publish(c: &std::sync::atomic::AtomicBool) {
            c.store(true, Ordering::SeqCst);
        }
    "#;
    let drifting = "crates/core/src/foo.rs\tpublish\tstore\tSeqCst\tlooks important\n";
    assert_eq!(
        codes_with_table("crates/core/src/foo.rs", src, drifting),
        vec!["CAFL003"]
    );
    let justified =
        "crates/core/src/foo.rs\tpublish\tstore\tSeqCst\tSeqCst: total order with the reader\n";
    assert!(codes_with_table("crates/core/src/foo.rs", src, justified).is_empty());
}

#[test]
fn stale_table_row_trips_cafl003() {
    let table = OrderingTable::parse(
        "crates/core/src/gone.rs\told_fn\tload\tRelaxed\tno longer exists\n",
    )
    .unwrap();
    let mut report = Report::default();
    scan_file("crates/core/src/foo.rs", "fn nothing() {}", &table, &mut report);
    caf_lint::finish(&table, &mut report);
    assert_eq!(report.diags.len(), 1);
    assert_eq!(report.diags[0].code, "CAFL003");
    assert!(report.diags[0].msg.contains("stale"));
}

#[test]
fn ordering_in_test_code_is_exempt() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            fn bump(c: &std::sync::atomic::AtomicU64) {
                c.fetch_add(1, Ordering::SeqCst);
            }
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

// ---------------------------------------------------------------- CAFL004

#[test]
fn undocumented_unsafe_trips_cafl004() {
    let bad = r#"
        fn peek(p: *const u8) -> u8 {
            unsafe { *p }
        }
    "#;
    assert_eq!(codes("crates/hpcc/src/foo.rs", bad), vec!["CAFL004"]);
}

#[test]
fn safety_comment_satisfies_cafl004() {
    let good = r#"
        fn peek(p: *const u8) -> u8 {
            // SAFETY: caller guarantees `p` points into a live allocation.
            unsafe { *p }
        }
    "#;
    assert!(codes("crates/hpcc/src/foo.rs", good).is_empty());
    let trailing = r#"
        fn peek(p: *const u8) -> u8 {
            unsafe { *p } // SAFETY: caller guarantees `p` is live.
        }
    "#;
    assert!(codes("crates/hpcc/src/foo.rs", trailing).is_empty());
}

#[test]
fn safety_comment_too_far_above_still_trips() {
    let bad = r#"
        fn peek(p: *const u8) -> u8 {
            // SAFETY: this comment is five lines above the unsafe block,
            // which is beyond the three-line window the lint accepts,
            // so the site below must still be flagged as undocumented.
            let _x = 0;
            let _y = 0;
            unsafe { *p }
        }
    "#;
    assert_eq!(codes("crates/hpcc/src/foo.rs", bad), vec!["CAFL004"]);
}

// ---------------------------------------------------------------- CAFL005

#[test]
fn substrate_referencing_upper_layer_trips_cafl005() {
    let bad = r#"
        fn leak() {
            let _ = caf_model::explore::Config::default();
        }
    "#;
    assert_eq!(codes("crates/mpisim/src/foo.rs", bad), vec!["CAFL005"]);
}

#[test]
fn deep_path_into_substrate_trips_cafl005() {
    let bad = "use caf_mpisim::ops::Scalar;\n";
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL005"]);
    let good = "use caf_mpisim::Scalar;\n";
    assert!(codes("crates/core/src/foo.rs", good).is_empty());
}

#[test]
fn substrate_may_use_its_own_modules() {
    let src = "use caf_mpisim::ops::Scalar;\nfn f(_: caf_fabric::SegmentId) {}\n";
    // Inside a substrate crate the deep-path rule does not apply (it
    // governs outside consumers), and caf_fabric is below both.
    assert!(codes("crates/gasnetsim/src/foo.rs", src).is_empty());
}

// ---------------------------------------------------------------- CAFL006

#[test]
fn segment_access_outside_substrates_trips_cafl006() {
    let bad = r#"
        fn sneak(mpi: &Mpi, win: &Window) {
            let seg = mpi.win_segment(win, 0).unwrap();
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", bad), vec!["CAFL006"]);
}

#[test]
fn segment_access_inside_substrate_is_exempt() {
    let src = r#"
        fn resolve(&self, win: &Window, rank: usize) -> Result<Arc<Segment>> {
            self.win_segment(win, rank)
        }
    "#;
    assert!(codes("crates/mpisim/src/foo.rs", src).is_empty());
}

#[test]
fn segment_allow_marker_suppresses_cafl006() {
    let src = r#"
        fn shipping(mpi: &Mpi, win: &Window) {
            // lint:allow(segment-direct) function shipping needs the raw view
            let seg = mpi.win_segment(win, 0).unwrap();
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

// ---------------------------------------------------------------- CAFL007

#[test]
fn wall_clock_in_modeled_crate_trips_cafl007() {
    let bad = r#"
        fn spin() {
            let t0 = std::time::Instant::now();
        }
    "#;
    assert_eq!(codes("crates/agg/src/foo.rs", bad), vec!["CAFL007"]);
}

#[test]
fn wall_clock_in_delay_rs_is_exempt() {
    let src = r#"
        fn clock() -> std::time::Instant {
            std::time::Instant::now()
        }
    "#;
    assert!(codes("crates/fabric/src/delay.rs", src).is_empty());
}

#[test]
fn sleep_in_test_module_is_exempt() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            fn settle() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

// ------------------------------------------------------- regression: scope

/// The old line-grep disarmed the *rest of the file* once it saw a
/// `#[cfg(test)]` line. The scanner must re-arm after the test module's
/// closing brace.
#[test]
fn code_after_closed_test_module_is_still_linted() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            fn settle() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }

        fn production() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    "#;
    let report = report_with_table("crates/core/src/foo.rs", src, "");
    assert_eq!(
        report.diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec!["CAFL007"],
        "exactly the post-module sleep must be flagged: {:?}",
        report.diags
    );
    assert!(report.diags[0].line > 7, "flagged site must be in `production`");
}

/// `#[cfg(not(test))]` is live code and must not be treated as a test
/// scope.
#[test]
fn cfg_not_test_is_live_code() {
    let src = r#"
        #[cfg(not(test))]
        fn production() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", src), vec!["CAFL007"]);
}

// ---------------------------------------- regression: strings and comments

/// Pattern text inside string literals (e.g. a diagnostic message that
/// *names* `Instant::now`) must not trip any lint.
#[test]
fn patterns_inside_string_literals_are_ignored() {
    let src = r#"
        fn describe() -> &'static str {
            "do not call Instant::now or thread::sleep or win_segment( here"
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

/// Pattern text in trailing comments must not trip any lint either.
#[test]
fn patterns_inside_comments_are_ignored() {
    let src = r#"
        fn describe() {
            let x = 1; // unlike Instant::now(), this is deterministic
            // A doc note mentioning rx.recv() and Ordering::SeqCst is fine.
            let _ = x;
        }
    "#;
    assert!(codes("crates/core/src/foo.rs", src).is_empty());
}

/// And the inverse guard: real code on a line that *also* has a trailing
/// comment is still scanned.
#[test]
fn code_with_trailing_comment_is_still_scanned() {
    let src = r#"
        fn spin() {
            let t0 = std::time::Instant::now(); // timestamp
        }
    "#;
    assert_eq!(codes("crates/core/src/foo.rs", src), vec!["CAFL007"]);
}
