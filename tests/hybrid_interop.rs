//! Hybrid MPI+CAF interoperability — the paper's whole point: one
//! runtime, one progress engine, MPI calls and coarray operations freely
//! interleaved in a single application.

use caf::{CafConfig, CafUniverse, Coarray, SubstrateKind};
use caf_mpisim::{Src, Tag};

/// Interleave MPI two-sided messaging with coarray one-sided writes on
/// the same data, through the same library.
#[test]
fn mpi_sends_and_coarray_writes_interleave() {
    CafUniverse::run(4, |img| {
        let world = img.team_world();
        let me = img.this_image();
        let n = img.num_images();
        let ca: Coarray<u64> = img.coarray_alloc(&world, n);
        let mpi = img.mpi().expect("MPI substrate");
        let comm = mpi.world();

        // Phase 1 (MPI): ring-pass a token.
        if me == 0 {
            mpi.send(&comm, 1, 5, &[100u64]).unwrap();
            let (tok, _) = mpi.recv::<u64>(&comm, Src::Rank(n - 1), Tag::Is(5)).unwrap();
            assert_eq!(tok[0], 100 + (n as u64 - 1));
        } else {
            let (tok, _) = mpi.recv::<u64>(&comm, Src::Rank(me - 1), Tag::Is(5)).unwrap();
            mpi.send(&comm, (me + 1) % n, 5, &[tok[0] + 1]).unwrap();
        }

        // Phase 2 (CAF): everyone writes its id into everyone's table.
        for t in 0..n {
            ca.write(img, t, me, &[me as u64 * 10]);
        }
        img.sync_all();
        let local = ca.local_vec(img);
        for (s, &v) in local.iter().enumerate() {
            assert_eq!(v, s as u64 * 10);
        }

        // Phase 3 (MPI again): reduce over coarray-delivered data.
        let sum = mpi
            .allreduce(&comm, &[local.iter().sum::<u64>()], |a, b| a + b)
            .unwrap();
        assert_eq!(sum[0] as usize, n * (0..n).map(|s| s * 10).sum::<usize>());

        img.coarray_free(&world, ca);
    });
}

/// An MPI library co-resident with the GASNet runtime (duplicate
/// runtimes) also works — at the memory cost Figure 1 quantifies.
#[test]
fn duplicate_runtimes_interoperate_but_cost_memory() {
    let cfg = CafConfig {
        hybrid_mpi: true,
        ..CafConfig::on(SubstrateKind::Gasnet)
    };
    let overhead_dup = CafUniverse::run_with_config(2, cfg, |img| {
        let world = img.team_world();
        let ca: Coarray<f64> = img.coarray_alloc(&world, 2);
        ca.write(img, 1 - img.this_image(), 0, &[2.5, 3.5]);
        img.sync_all();

        // The MPI side is a *separate* library with its own resources.
        let mpi = img.mpi().expect("hybrid_mpi configured");
        let s = mpi
            .allreduce(&mpi.world(), &[ca.local_vec(img)[0]], |a, b| a + b)
            .unwrap();
        assert_eq!(s[0], 5.0);
        img.coarray_free(&world, ca);
        img.runtime_memory_overhead()
    });

    let overhead_single =
        CafUniverse::run(2, |img| img.runtime_memory_overhead());
    // The interoperable design's saving: one runtime instead of two.
    assert!(
        overhead_dup[0] > overhead_single[0],
        "duplicate runtimes must map more memory: {} !> {}",
        overhead_dup[0],
        overhead_single[0]
    );
}

/// MPI collectives and CAF collectives interleave on the same images.
#[test]
fn mpi_and_caf_collectives_interleave() {
    CafUniverse::run(6, |img| {
        let world = img.team_world();
        let mpi = img.mpi().unwrap();
        let comm = mpi.world();
        for round in 0..5u64 {
            let caf_sum = img.allreduce(&world, &[round], |a, b| a + b)[0];
            let mpi_sum = mpi.allreduce(&comm, &[round], |a, b| a + b).unwrap()[0];
            assert_eq!(caf_sum, mpi_sum);
            assert_eq!(caf_sum, round * 6);
            mpi.barrier(&comm).unwrap();
            img.sync_all();
        }
    });
}

/// A CAF event posted while the target sits in an MPI receive: the
/// notification rides the same progress engine, so the target's next
/// runtime call sees it.
#[test]
fn events_and_mpi_blocking_calls_coexist() {
    CafUniverse::run(2, |img| {
        let world = img.team_world();
        let ev = img.event_alloc(&world);
        let mpi = img.mpi().unwrap();
        let comm = mpi.world();
        if img.this_image() == 0 {
            img.event_notify(&world, &ev, 1);
            mpi.send(&comm, 1, 9, &[1u8]).unwrap();
        } else {
            // Block in MPI first; the event arrives independently.
            let _ = mpi.recv::<u8>(&comm, Src::Rank(0), Tag::Is(9)).unwrap();
            img.event_wait(&ev);
        }
    });
}
