//! Positive suite for the `caf-check` sanitizer: correctly synchronized
//! programs must produce **zero** diagnostics on both substrates.
//!
//! Two layers:
//!
//! * property tests over randomized schedules of coarray traffic whose
//!   only synchronization is the legal kind (`sync_all` phases, event
//!   notify/wait chains) — a sound sanitizer must stay silent on all of
//!   them;
//! * regression tests pinning two diagnostics that early versions of
//!   the checker raised against *correct* code (see the test comments),
//!   so those false-positive classes cannot return.
//!
//! Requires `--features check`.

use caf::{CafConfig, CafUniverse, Coarray, SubstrateKind};
use caf_bench::checked::{checked_fft, checked_ra};
use caf_bench::traced_ra;
use caf_check::{CheckConfig, CheckSession, Report, SESSION_TEST_LOCK};
use proptest::prelude::*;

const P: usize = 3;
/// Elements of each origin image's private slot within every member's
/// coarray part (writes from different images never overlap).
const SLOT: usize = 8;

/// One image's plan for one round: a write into its own slot of some
/// member's part, then (after a `sync_all`) a read of an arbitrary
/// range. Decoded from raw proptest bytes so the suite only leans on
/// primitive strategies.
#[derive(Debug, Clone, Copy)]
struct Plan {
    member: usize,
    wr_off: usize,
    wr_len: usize,
    rd_member: usize,
    rd_off: usize,
    rd_len: usize,
}

fn decode_plans(bytes: &[u8]) -> Vec<Vec<Plan>> {
    let total = P * SLOT;
    bytes
        .chunks_exact(6 * P)
        .map(|round| {
            round
                .chunks_exact(6)
                .map(|b| {
                    let wr_off = b[1] as usize % SLOT;
                    let rd_off = b[4] as usize % total;
                    Plan {
                        member: b[0] as usize % P,
                        wr_off,
                        wr_len: 1 + b[2] as usize % (SLOT - wr_off),
                        rd_member: b[3] as usize % P,
                        rd_off,
                        rd_len: 1 + b[5] as usize % (total - rd_off),
                    }
                })
                .collect()
        })
        .collect()
}

/// Run a barrier-phased schedule: every image writes only its own slot
/// (never overlapping another image's writes), `sync_all`, then reads
/// anywhere (ordered behind every write by the collective), `sync_all`.
fn run_phased(kind: SubstrateKind, rounds: &[Vec<Plan>]) -> Report {
    let _guard = SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let session =
        CheckSession::start(CheckConfig::default()).expect("no other check session active");
    CafUniverse::run_with_config(P, CafConfig::on(kind), |img| {
        let world = img.team_world();
        let a: Coarray<u64> = img.coarray_alloc(&world, P * SLOT);
        let me = img.this_image();
        for round in rounds {
            let plan = round[me];
            let data = vec![me as u64 + 1; plan.wr_len];
            a.write(img, plan.member, me * SLOT + plan.wr_off, &data);
            img.sync_all();
            let mut out = vec![0u64; plan.rd_len];
            a.read(img, plan.rd_member, plan.rd_off, &mut out);
            img.sync_all();
        }
        img.coarray_free(&world, a);
    });
    session.finish()
}

/// Run an event ping-pong: image 0 writes image 1's part and notifies;
/// image 1 waits, reads, writes image 0's part back and notifies; image
/// 0 waits and reads. Each round's accesses are ordered purely by the
/// two event chains — no barriers between rounds.
fn run_pingpong(kind: SubstrateKind, rounds: usize) -> Report {
    let _guard = SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let session =
        CheckSession::start(CheckConfig::default()).expect("no other check session active");
    CafUniverse::run_with_config(2, CafConfig::on(kind), |img| {
        let world = img.team_world();
        let a: Coarray<u64> = img.coarray_alloc(&world, 8);
        let fwd = img.event_alloc(&world);
        let back = img.event_alloc(&world);
        for k in 0..rounds as u64 {
            if img.this_image() == 0 {
                a.write(img, 1, 0, &[k; 4]);
                img.event_notify(&world, &fwd, 1);
                img.event_wait(&back);
                let mut out = [0u64; 4];
                a.local_read(img, 0, &mut out);
                assert_eq!(out, [k + 100; 4]);
            } else {
                img.event_wait(&fwd);
                let mut out = [0u64; 4];
                a.local_read(img, 0, &mut out);
                assert_eq!(out, [k; 4]);
                a.write(img, 0, 0, &[k + 100; 4]);
                img.event_notify(&world, &back, 0);
            }
        }
        img.sync_all();
        img.coarray_free(&world, a);
    });
    session.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn phased_schedules_are_clean_on_caf_mpi(
        bytes in proptest::collection::vec(any::<u8>(), 6 * P..(4 * 6 * P + 1)),
    ) {
        let report = run_phased(SubstrateKind::Mpi, &decode_plans(&bytes));
        prop_assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn phased_schedules_are_clean_on_caf_gasnet(
        bytes in proptest::collection::vec(any::<u8>(), 6 * P..(4 * 6 * P + 1)),
    ) {
        let report = run_phased(SubstrateKind::Gasnet, &decode_plans(&bytes));
        prop_assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn event_chains_are_clean_on_both_substrates(seed in any::<u8>()) {
        let rounds = 1 + seed as usize % 5;
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let report = run_pingpong(kind, rounds);
            prop_assert!(report.is_clean(), "{kind:?}: {}", report.render());
        }
    }
}

/// Regression: the race detector once flagged RandomAccess's staging
/// slots as racy. Every image notifies the *same* per-round event id, so
/// a notify/wait channel keyed only `(namespace, event)` could pair a
/// wait with a snapshot sent to a *different* image and lose the true
/// edge. Channels are now keyed per destination image; the correctly
/// synchronized kernel must stay silent forever.
#[test]
fn randomaccess_kernel_is_clean_under_the_sanitizer() {
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let report = checked_ra(4, kind, 8, 1000);
        assert!(report.is_clean(), "{kind:?}: {}", report.render());
    }
}

/// The FFT kernel (all-to-all transpose plus collectives) is the other
/// tier-1 workload `figures check` replays; it must stay silent too.
#[test]
fn fft_kernel_is_clean_under_the_sanitizer() {
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let report = checked_fft(4, kind, 10);
        assert!(report.is_clean(), "{kind:?}: {}", report.render());
    }
}

/// Regression: the offline checker once reported `win_flush_all` outside
/// an epoch for every window of a recorded run. `win_unlock_all` used to
/// emit its trace instant *before* running the interior flush that
/// completes the epoch, so the recorded timeline closed the epoch too
/// early. The instant is now emitted after the flush; auditing a traced
/// run of correct code must be clean.
#[test]
fn offline_audit_of_a_traced_randomaccess_run_is_clean() {
    let (_, trace) = traced_ra(2, SubstrateKind::Mpi, 7, 500, 1);
    assert!(!trace.events.is_empty());
    let report = caf_check::check_trace(&trace);
    assert!(report.is_clean(), "{}", report.render());
}
