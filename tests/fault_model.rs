//! Failed-image semantics under the model explorer (caf-fault tentpole).
//!
//! * With detection on (the default), the three failure scenarios —
//!   `fail_during_notify_wait`, `fail_during_finish`,
//!   `fail_mid_agg_drain` — are proven hang-free: at least 100 explored
//!   schedules each, on both substrates, with the full `caf-check`
//!   oracle silent and zero deadlocks.
//! * With detection off (the negative control), the waiter blocks on a
//!   post its dead partner can never send: the explorer reports a
//!   replayable deadlock instead of hanging, and the committed token
//!   below reproduces it deterministically.

use caf::SubstrateKind;
use caf_fabric::sched::RunStatus;
use caf_model::{explore, replay, scenarios, ExploreConfig, ExploreMode, OracleConfig};

/// The committed replay token for the detection-disabled hang (DFS,
/// `stop_at_first`, the config in
/// [`undetected_failure_deadlocks_and_token_replays`]). Regenerate by
/// running that test with the assertion removed and committing the token
/// it prints.
const UNDETECTED_HANG_TOKEN: &str = "dfs:0,0,0,1,0,1,0,0,0,1,0,1,0";

/// Every failure scenario, on both substrates, explores >= 100 schedules
/// with zero deadlocks and the full oracle silent: every blocking point
/// whose partner set includes the failed image returns `StatFailedImage`
/// within bounded steps under every walked interleaving.
#[test]
fn failure_scenarios_are_hang_free_across_100_schedules() {
    let cases = [
        scenarios::fail_during_notify_wait(SubstrateKind::Mpi),
        scenarios::fail_during_notify_wait(SubstrateKind::Gasnet),
        scenarios::fail_during_finish(SubstrateKind::Mpi),
        scenarios::fail_during_finish(SubstrateKind::Gasnet),
        scenarios::fail_mid_agg_drain(SubstrateKind::Mpi),
        scenarios::fail_mid_agg_drain(SubstrateKind::Gasnet),
    ];
    for sc in cases {
        let cfg = ExploreConfig {
            max_schedules: 100,
            mode: ExploreMode::Random { seed: 0xFA17_0001, walks: 100 },
            oracle: Some(OracleConfig::default()),
            ..ExploreConfig::default()
        };
        let rep = explore(&sc, &cfg);
        assert!(
            rep.schedules >= 100,
            "{}: only {} schedules explored",
            sc.name,
            rep.schedules
        );
        assert_eq!(
            rep.flagged,
            0,
            "{}: {:?}",
            sc.name,
            rep.counterexamples.first().map(|c| (&c.kind, &c.detail))
        );
    }
}

/// The detection-on scenarios also survive systematic DFS enumeration
/// with sleep-set pruning (deeper coverage than seeded walks near the
/// kill site).
#[test]
fn failure_scenarios_pass_bounded_dfs() {
    let cases = [
        scenarios::fail_during_notify_wait(SubstrateKind::Mpi),
        scenarios::fail_during_notify_wait(SubstrateKind::Gasnet),
        scenarios::fail_mid_agg_drain(SubstrateKind::Mpi),
        scenarios::fail_mid_agg_drain(SubstrateKind::Gasnet),
    ];
    for sc in cases {
        let cfg = ExploreConfig {
            max_schedules: 60,
            oracle: Some(OracleConfig::default()),
            ..ExploreConfig::default()
        };
        let rep = explore(&sc, &cfg);
        assert!(rep.schedules >= 1, "{}: nothing explored", sc.name);
        assert_eq!(
            rep.flagged,
            0,
            "{}: {:?}",
            sc.name,
            rep.counterexamples.first().map(|c| (&c.kind, &c.detail))
        );
    }
}

/// Negative control: the same kill with detection disabled deadlocks on
/// every schedule — the explorer *finds* the hang (it never hangs
/// itself), the discovered token replays it deterministically, and the
/// committed token keeps reproducing it build after build.
#[test]
fn undetected_failure_deadlocks_and_token_replays() {
    let sc = scenarios::fail_notify_wait_undetected(SubstrateKind::Gasnet);
    let cfg = ExploreConfig {
        max_schedules: 25,
        oracle: None,
        stop_at_first: true,
        ..ExploreConfig::default()
    };
    let rep = explore(&sc, &cfg);
    assert!(rep.flagged >= 1, "no deadlock found: {rep:?}");
    let cx = rep.counterexamples[0].clone();
    assert_eq!(cx.kind, "deadlock", "{}", cx.detail);
    assert!(cx.token.starts_with("dfs:"), "{}", cx.token);

    // Deterministic search: the committed token is exactly what a fresh
    // exploration discovers.
    assert_eq!(
        cx.token, UNDETECTED_HANG_TOKEN,
        "first counterexample token drifted; recommit if the schedule \
         space legitimately changed"
    );

    // Deterministic replay of the committed token: same schedule, same
    // wait-for cycle.
    let r = replay(&sc, &cfg, UNDETECTED_HANG_TOKEN);
    assert!(
        matches!(r.outcome.status, RunStatus::Deadlock(_)),
        "{:?}",
        r.outcome.status
    );
    assert_eq!(r.schedule, cx.schedule);
}

/// The MPI substrate's negative control deadlocks too (detection is a
/// fabric property, not a substrate one).
#[test]
fn undetected_failure_deadlocks_on_mpi() {
    let sc = scenarios::fail_notify_wait_undetected(SubstrateKind::Mpi);
    let cfg = ExploreConfig {
        max_schedules: 25,
        oracle: None,
        stop_at_first: true,
        ..ExploreConfig::default()
    };
    let rep = explore(&sc, &cfg);
    assert!(rep.flagged >= 1, "no deadlock found: {rep:?}");
    assert_eq!(rep.counterexamples[0].kind, "deadlock");
    let r = replay(&sc, &cfg, &rep.counterexamples[0].token);
    assert!(matches!(r.outcome.status, RunStatus::Deadlock(_)));
}
