//! Seeded fault-injection properties (failed-image semantics, DESIGN.md
//! §17), over random `(seed, P, kill-site)` on both substrates:
//!
//! * **Bounded detection, never a hang**: once an image dies, every
//!   blocking point whose partner set includes it — here, `sync all`
//!   barriers over the world team — returns `Stat::FailedImage` naming
//!   the victim within a bounded number of rounds. The harness has no
//!   timeout because none is needed: detection fail-fasts.
//! * **Survivor parity**: after `team_reform`, a deterministic exchange
//!   program run by the survivors produces coarray bytes identical to a
//!   fault-free run launched on a universe of exactly the survivor
//!   count.
//!
//! Kill sites come from [`FaultPlan::seeded`] (a blocking-point index in
//! `0..8`); a victim whose barriers happen to be satisfied without ever
//! blocking falls back to an explicit `fail image`, so the death — and
//! therefore the detection bound — is guaranteed on every schedule.
//! Everything here is deterministic and wall-clock-free, so the whole
//! file runs under Miri (with a reduced case count).

use caf::{CafConfig, CafUniverse, Coarray, FaultPlan, Image, ImageStatus, SubstrateKind, Team};
use caf_bench::fast;
use proptest::prelude::*;

/// Phase-1 barrier rounds. [`FaultPlan::seeded`] kills at blocking-point
/// index `0..8` and every barrier enters at least one blocking receive
/// on the slow path, so the victim is dead — and, by the explicit
/// fallback, *guaranteed* dead — before round `ROUNDS`.
const ROUNDS: usize = 12;

/// Mix a deterministic cell value from (seed, writer team rank, owner
/// team rank) — SplitMix64 finalizer.
fn mix(seed: u64, writer: u64, owner: u64) -> u64 {
    let mut x = seed ^ writer.wrapping_mul(0x9e3779b97f4a7c15) ^ owner.rotate_left(32);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The deterministic exchange every (surviving) image runs on `team`:
/// one slot per member, each member puts `mix(seed, me, j)` into slot
/// `me` of every member `j` under a `finish` block, then reads its own
/// table back. Depends only on the *team-relative* geometry, so the
/// faulty run's reformed team and the fault-free reference universe
/// produce identical tables.
fn survivor_exchange(img: &Image, team: &Team, seed: u64) -> Vec<u64> {
    let s = team.size();
    let ca: Coarray<u64> = img.coarray_alloc(team, s);
    let me = team.rank();
    let ((), stat) = img.finish_stat(team, |img| {
        for j in 0..s {
            let v = [mix(seed, me as u64, j as u64)];
            if j == me {
                ca.local_write(img, me, &v);
            } else {
                img.copy_async_put(&ca, j, me, &v, caf::AsyncOpts::none());
            }
        }
    });
    assert!(stat.is_ok(), "post-reform finish saw {:?}", stat.failed());
    let stat = img.barrier_stat(team);
    assert!(stat.is_ok(), "post-reform barrier saw {:?}", stat.failed());
    let table = ca.local_vec(img);
    img.coarray_free(team, ca);
    table
}

/// One faulty job: P images, the seeded plan's victim dies during the
/// barrier churn, survivors must detect it within `ROUNDS + 2` rounds,
/// reform the world team, and run the exchange. Returns one table per
/// survivor (and `None` in the victim's slot).
fn faulty_run(kind: SubstrateKind, p: usize, seed: u64) -> Vec<Option<Vec<u64>>> {
    let cfg = CafConfig {
        fault: FaultPlan::seeded(seed, p),
        ..fast(kind)
    };
    let victim = cfg.fault.kills[0].expect("seeded plan has one kill").rank;
    CafUniverse::run_with_config_ft(p, cfg, move |img| {
        let me = img.this_image();
        let mut detected = None;
        for round in 0..ROUNDS + 2 {
            if me == victim && round == ROUNDS {
                // The planned blocking site never fired (fast-path
                // barriers): die explicitly so the property below is
                // schedule-independent.
                img.fail_image();
            }
            let stat = img.sync_all_stat();
            if !stat.is_ok() {
                assert_eq!(stat.failed(), &[victim], "round {round}");
                detected = Some(round);
                break;
            }
        }
        // Bounded detection: the victim cannot outlive round `ROUNDS`,
        // so the first barrier it skips — at the latest — must report it.
        let detected = detected
            .unwrap_or_else(|| panic!("image {me}: no failure within {} rounds", ROUNDS + 2));
        assert!(detected <= ROUNDS + 1, "detection too late: round {detected}");
        // The registry is authoritative from the first report on.
        assert_eq!(img.image_status(victim), ImageStatus::Failed);
        assert_eq!(img.failed_images(), vec![victim]);
        assert_eq!(img.sync_all_stat().failed(), &[victim], "later blocking points fail fast");

        let world = img.team_world();
        let (survivors, stat) = img.team_reform(&world);
        assert_eq!(stat.failed(), &[victim]);
        assert_eq!(survivors.size(), p - 1);
        survivor_exchange(img, &survivors, seed)
    })
}

/// The fault-free reference: a universe of exactly the survivor count
/// running the same exchange on its world team.
fn reference_run(kind: SubstrateKind, survivors: usize, seed: u64) -> Vec<Vec<u64>> {
    CafUniverse::run_with_config(survivors, fast(kind), move |img| {
        let world = img.team_world();
        survivor_exchange(img, &world, seed)
    })
}

/// The whole property for one (kind, p, seed) point.
fn check_point(kind: SubstrateKind, p: usize, seed: u64) {
    let victim = FaultPlan::seeded(seed, p).kills[0].unwrap().rank;
    let out = faulty_run(kind, p, seed);
    assert!(out[victim].is_none(), "the victim's result must be dropped");
    let reference = reference_run(kind, p - 1, seed);
    let survivor_tables: Vec<&Vec<u64>> = (0..p)
        .filter(|&g| g != victim)
        .map(|g| out[g].as_ref().expect("survivors complete"))
        .collect();
    for (i, (got, want)) in survivor_tables.iter().zip(&reference).enumerate() {
        assert_eq!(
            *got, want,
            "{kind:?} p={p} seed={seed:#x}: survivor {i} diverged from the fault-free run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 2 } else { 8 },
        ..ProptestConfig::default()
    })]

    /// Random (seed, P) on CAF-MPI: bounded detection + survivor parity.
    #[test]
    fn seeded_kills_detected_and_survivors_match_mpi(
        seed in any::<u64>(),
        p in 2usize..9,
    ) {
        check_point(SubstrateKind::Mpi, p, seed);
    }

    /// Random (seed, P) on CAF-GASNet: bounded detection + survivor parity.
    #[test]
    fn seeded_kills_detected_and_survivors_match_gasnet(
        seed in any::<u64>(),
        p in 2usize..9,
    ) {
        check_point(SubstrateKind::Gasnet, p, seed);
    }
}

/// The ISSUE-stated upper bound of the injection domain: P = 32 on both
/// substrates (one seed each; the proptests above cover the breadth).
#[test]
#[cfg_attr(miri, ignore = "32 threads x 2 substrates is too slow under Miri")]
fn seeded_kill_at_p32_both_substrates() {
    check_point(SubstrateKind::Mpi, 32, 0xFA17_D00D_0000_0001);
    check_point(SubstrateKind::Gasnet, 32, 0xFA17_D00D_0000_0002);
}

/// Multi-kill plan: two images die; every blocking point reports the
/// union once both are gone, and the reform drops both. After the
/// *first* death, world barriers fail-fast without rendezvous — the
/// survivors are no longer in lockstep with the second victim — so the
/// second death is awaited with a generous fail-fast round bound rather
/// than the lockstep `ROUNDS` bound of the single-kill property.
#[test]
fn double_kill_reforms_to_p_minus_2() {
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let p = 6;
        let cfg = CafConfig {
            fault: FaultPlan::kill(2, caf::KillSite::Blocking(2))
                .with(4, caf::KillSite::Blocking(5)),
            ..fast(kind)
        };
        let out = CafUniverse::run_with_config_ft(p, cfg, move |img| {
            let me = img.this_image();
            let mut failed: Vec<usize> = Vec::new();
            for round in 0..10_000 {
                if round == ROUNDS && (me == 2 || me == 4) {
                    // Fail-fast barriers stop entering blocking receives
                    // once image 2 is gone, so image 4's planned blocking
                    // site may never fire: die explicitly.
                    img.fail_image();
                }
                let stat = img.sync_all_stat();
                failed.extend_from_slice(stat.failed());
                failed.sort_unstable();
                failed.dedup();
                if failed == [2, 4] {
                    break;
                }
            }
            assert_eq!(failed, vec![2, 4], "image {me}: both deaths must surface");
            let world = img.team_world();
            let (survivors, stat) = img.team_reform(&world);
            assert_eq!(stat.failed(), &[2, 4]);
            assert_eq!(survivors.size(), p - 2);
            let stat = img.barrier_stat(&survivors);
            assert!(stat.is_ok());
            survivors.rank()
        });
        assert!(out[2].is_none() && out[4].is_none());
        let ranks: Vec<usize> = out.iter().filter_map(|r| *r).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3], "{kind:?}: dense renumbering in parent order");
    }
}
