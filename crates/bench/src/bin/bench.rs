//! Deterministic perf harness behind `cargo xtask bench`: seeds the
//! committed `BENCH_ra.json` / `BENCH_micro.json` baselines and is re-run
//! by CI against them.
//!
//! ```text
//! bench [--smoke] [--out-dir DIR]
//! ```
//!
//! Two reports:
//!
//! * **BENCH_ra.json** — the RandomAccess notify hot path (paper §4.1) at
//!   several job sizes, on both substrates, under every
//!   [`caf::FlushMode`]. The async-put router variant defers remote
//!   completion to `event_notify`, so the per-notify flush charge is the
//!   measured quantity: `FlushMode::All` reproduces the paper's Θ(P)
//!   `MPI_Win_flush_all`, the targeted modes stay flat.
//! * **BENCH_micro.json** — per-primitive delay decomposition (put, get,
//!   atomic, notify) at a fixed small job size.
//!
//! Every number in a row's `gate` object is a **modeled** count or
//! nanosecond total from the substrate delay meter — a deterministic
//! function of the communication schedule, byte-identical across runs and
//! machines — so CI can compare against the committed baseline with a
//! tight threshold. Wall-clock seconds are reported under `info` and are
//! never gated.
//!
//! The binary also asserts the tentpole shape in-process (exit 1 on
//! violation): per-notify flush charges grow linearly in P under
//! `FlushMode::All` and stay flat under `Targeted`/`Rflush`.

use std::fmt::Write as _;
use std::process::ExitCode;

use caf::{CafConfig, CafUniverse, FlushMode, SubstrateKind};
use caf_bench::fusion_like;
use caf_fabric::delay::ALL_DELAY_OPS;
use caf_fabric::DelayOp;
use caf_hpcc::fft;
use caf_hpcc::ra::{self, RaOpts};

/// Ops whose counts are charged at the *origin* in program order — a pure
/// function of the communication schedule, so byte-identical across runs.
/// Receive-side charges (`p2p_receive`, `am_dispatch`) land whenever the
/// receiver happens to poll relative to the snapshot barriers, so they are
/// reported under `info` instead of gated.
const GATE_OPS: [DelayOp; 5] = [
    DelayOp::P2pInject,
    DelayOp::RmaPut,
    DelayOp::RmaGet,
    DelayOp::RmaAtomic,
    DelayOp::FlushPerTarget,
];

/// Job sizes for the RA sweep. Smoke trims the list; each row's workload
/// is identical in both, so smoke rows gate against the full baseline.
const RA_P_FULL: [usize; 4] = [2, 4, 8, 16];
const RA_P_SMOKE: [usize; 3] = [2, 4, 8];
const RA_LOG2_LOCAL: u32 = 8;
const RA_UPDATES: usize = 800;

/// Per-primitive micro workload size.
const MICRO_P: usize = 4;
const MICRO_REPS: usize = 128;

/// FFT sweep sizes (whole-kernel decomposition rows; the FFT moves data
/// exclusively through team alltoall, so these rows pin the collective
/// plane the RA rows don't touch).
const FFT_P: [usize; 2] = [2, 4];
const FFT_LOG2_SIZE: u32 = 12;

struct Row {
    bench: String,
    p: usize,
    substrate: &'static str,
    flush: &'static str,
    /// Summed-over-images (count, modeled_ns) per delay op — the gate.
    gate: Vec<(DelayOp, u64, u64)>,
    /// Ungated context: (key, value) pairs.
    info: Vec<(&'static str, f64)>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".to_string());

    let ps: &[usize] = if smoke { &RA_P_SMOKE } else { &RA_P_FULL };
    eprintln!("bench: RA sweep (P = {ps:?}, smoke = {smoke})");
    let ra_rows = ra_sweep(ps);
    if let Err(msg) = verify_ra_shape(&ra_rows) {
        eprintln!("bench: SHAPE VIOLATION: {msg}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench: shape OK (flush_all per-notify cost linear in P, targeted flat)");

    eprintln!("bench: micro primitives (P = {MICRO_P})");
    let micro_rows = micro_sweep();

    let ra_path = format!("{out_dir}/BENCH_ra.json");
    let micro_path = format!("{out_dir}/BENCH_micro.json");
    std::fs::write(&ra_path, render(&ra_rows, "ra", smoke)).expect("write BENCH_ra.json");
    std::fs::write(&micro_path, render(&micro_rows, "micro", smoke))
        .expect("write BENCH_micro.json");
    eprintln!("bench: wrote {ra_path} ({} rows) and {micro_path} ({} rows)",
        ra_rows.len(), micro_rows.len());
    ExitCode::SUCCESS
}

/// MPI flush-mode matrix plus the GASNet baseline (which has no windows
/// and therefore no flush knob).
fn ra_sweep(ps: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in ps {
        for flush in [FlushMode::All, FlushMode::targeted(), FlushMode::rflush()] {
            rows.push(ra_row(p, SubstrateKind::Mpi, flush));
        }
        rows.push(ra_row(p, SubstrateKind::Gasnet, FlushMode::All));
    }
    rows
}

fn ra_row(p: usize, kind: SubstrateKind, flush: FlushMode) -> Row {
    let cfg = CafConfig {
        flush,
        ..fusion_like(kind)
    };
    let outs = CafUniverse::run_with_config(p, cfg, |img| {
        let team = img.team_world();
        let out = ra::run_opts(img, &team, RA_LOG2_LOCAL, RA_UPDATES, RaOpts { async_puts: true });
        (out.bench, out.meter_delta)
    });
    let gate = sum_deltas(outs.iter().map(|(_, d)| d.as_slice()));
    // One notify per hypercube round per image.
    let notifies = (p * p.ilog2() as usize).max(1);
    let flushes: u64 = gate
        .iter()
        .filter(|(op, _, _)| *op == DelayOp::FlushPerTarget)
        .map(|&(_, c, _)| c)
        .sum();
    Row {
        bench: "ra".into(),
        p,
        substrate: substrate_label(kind),
        flush: if kind == SubstrateKind::Mpi { flush.name() } else { "n/a" },
        gate,
        info: vec![
            ("seconds", outs[0].0.seconds),
            ("gups", outs[0].0.metric),
            ("notifies", notifies as f64),
            ("flushes_per_notify", flushes as f64 / notifies as f64),
        ],
    }
}

fn micro_sweep() -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        rows.push(micro_row("micro:put", kind, |img| {
            let w = img.team_world();
            let ca: caf::Coarray<u64> = img.coarray_alloc(&w, 64);
            let (before, after) = metered(img, |img| {
                if img.this_image() == 0 {
                    let buf = [7u64; 64];
                    for _ in 0..MICRO_REPS {
                        ca.write(img, 1, 0, &buf);
                    }
                }
            });
            img.coarray_free(&w, ca);
            delta(&after, &before)
        }));
        rows.push(micro_row("micro:get", kind, |img| {
            let w = img.team_world();
            let ca: caf::Coarray<u64> = img.coarray_alloc(&w, 64);
            let (before, after) = metered(img, |img| {
                if img.this_image() == 0 {
                    let mut buf = [0u64; 64];
                    for _ in 0..MICRO_REPS {
                        ca.read(img, 1, 0, &mut buf);
                    }
                }
            });
            img.coarray_free(&w, ca);
            delta(&after, &before)
        }));
        rows.push(micro_row("micro:notify", kind, |img| {
            let w = img.team_world();
            let ev = img.event_alloc(&w);
            let (before, after) = metered(img, |img| {
                if img.this_image() == 0 {
                    for _ in 0..MICRO_REPS {
                        img.event_notify(&w, &ev, 1);
                    }
                } else if img.this_image() == 1 {
                    for _ in 0..MICRO_REPS {
                        img.event_wait(&ev);
                    }
                }
            });
            delta(&after, &before)
        }));
        for p in FFT_P {
            let deltas = CafUniverse::run_with_config(p, fusion_like(kind), |img| {
                let (before, after) = metered(img, |img| {
                    let team = img.team_world();
                    fft::run(img, &team, FFT_LOG2_SIZE);
                });
                delta(&after, &before)
            });
            let gate = sum_deltas(deltas.iter().map(Vec::as_slice));
            rows.push(Row {
                bench: "fft".into(),
                p,
                substrate: substrate_label(kind),
                flush: if kind == SubstrateKind::Mpi { "all" } else { "n/a" },
                gate,
                info: vec![("log2_size", FFT_LOG2_SIZE as f64)],
            });
        }
        if kind == SubstrateKind::Mpi {
            // CAF-GASNet has no remote atomics (fetch_add panics there).
            rows.push(micro_row("micro:atomic", kind, |img| {
                let w = img.team_world();
                let ca: caf::Coarray<u64> = img.coarray_alloc(&w, 1);
                let (before, after) = metered(img, |img| {
                    if img.this_image() == 0 {
                        for _ in 0..MICRO_REPS {
                            ca.fetch_add(img, 1, 0, 1);
                        }
                    }
                });
                img.coarray_free(&w, ca);
                delta(&after, &before)
            }));
        }
    }
    rows
}

type Snapshot = Vec<(DelayOp, u64, u64)>;

/// Barrier-bracketed meter capture: every image's costs inside `body`
/// (including receive-side charges) land in the delta.
fn metered(img: &caf::Image, body: impl Fn(&caf::Image)) -> (Snapshot, Snapshot) {
    let w = img.team_world();
    img.barrier(&w);
    let before = img.delay_meter_snapshot();
    body(img);
    img.barrier(&w);
    let after = img.delay_meter_snapshot();
    (before, after)
}

fn delta(after: &Snapshot, before: &Snapshot) -> Snapshot {
    after
        .iter()
        .zip(before.iter())
        .map(|(&(op, ca, na), &(_, cb, nb))| (op, ca - cb, na - nb))
        .collect()
}

fn micro_row(
    name: &str,
    kind: SubstrateKind,
    body: impl Fn(&caf::Image) -> Snapshot + Send + Sync,
) -> Row {
    let deltas = CafUniverse::run_with_config(MICRO_P, fusion_like(kind), body);
    let gate = sum_deltas(deltas.iter().map(Vec::as_slice));
    Row {
        bench: name.into(),
        p: MICRO_P,
        substrate: substrate_label(kind),
        flush: if kind == SubstrateKind::Mpi { "all" } else { "n/a" },
        gate,
        info: vec![("reps", MICRO_REPS as f64)],
    }
}

fn substrate_label(kind: SubstrateKind) -> &'static str {
    match kind {
        SubstrateKind::Mpi => "caf-mpi",
        SubstrateKind::Gasnet => "caf-gasnet",
    }
}

/// Sum per-image meter deltas into one per-op (count, ns) ledger, in
/// `ALL_DELAY_OPS` order.
fn sum_deltas<'a>(deltas: impl Iterator<Item = &'a [(DelayOp, u64, u64)]>) -> Snapshot {
    let mut acc: Vec<(DelayOp, u64, u64)> =
        ALL_DELAY_OPS.iter().map(|&op| (op, 0, 0)).collect();
    for d in deltas {
        for &(op, c, n) in d {
            let slot = &mut acc[op.index()];
            slot.1 += c;
            slot.2 += n;
        }
    }
    acc
}

/// The tentpole assertion, from the rows themselves: under `FlushMode::All`
/// the per-notify flush charge is Θ(P) (2 windows × P ranks), while the
/// targeted modes pay only the dirty partner — flat in P.
fn verify_ra_shape(rows: &[Row]) -> Result<(), String> {
    let fpn = |p: usize, flush: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.p == p && r.substrate == "caf-mpi" && r.flush == flush)
            .and_then(|r| {
                r.info
                    .iter()
                    .find(|(k, _)| *k == "flushes_per_notify")
                    .map(|&(_, v)| v)
            })
    };
    let ps: Vec<usize> = {
        let mut v: Vec<usize> = rows
            .iter()
            .filter(|r| r.substrate == "caf-mpi")
            .map(|r| r.p)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (pmin, pmax) = (ps[0], *ps.last().unwrap());
    let all_min = fpn(pmin, "all").ok_or("missing all@pmin")?;
    let all_max = fpn(pmax, "all").ok_or("missing all@pmax")?;
    for mode in ["targeted", "rflush"] {
        let t_min = fpn(pmin, mode).ok_or("missing targeted@pmin")?;
        let t_max = fpn(pmax, mode).ok_or("missing targeted@pmax")?;
        if t_max > 2.0 * t_min.max(1.0) {
            return Err(format!(
                "{mode} per-notify flushes grew with P: {t_min:.2} @P={pmin} -> {t_max:.2} @P={pmax}"
            ));
        }
        if all_max < 3.0 * t_max {
            return Err(format!(
                "flush_all @P={pmax} ({all_max:.2}/notify) not clearly above {mode} ({t_max:.2}/notify)"
            ));
        }
    }
    let growth = all_max / all_min.max(f64::EPSILON);
    let expected = pmax as f64 / pmin as f64;
    if growth < 0.5 * expected {
        return Err(format!(
            "flush_all per-notify cost not Θ(P): grew {growth:.2}x from P={pmin} to P={pmax} (expected ~{expected:.0}x)"
        ));
    }
    Ok(())
}

/// Hand-rolled JSON (std-only consumers: the xtask gate).
fn render(rows: &[Row], kind: &str, smoke: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"caf-bench-v1\",");
    let _ = writeln!(s, "  \"kind\": \"{kind}\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"bench\": \"{}\",", r.bench);
        let _ = writeln!(s, "      \"p\": {},", r.p);
        let _ = writeln!(s, "      \"substrate\": \"{}\",", r.substrate);
        let _ = writeln!(s, "      \"flush\": \"{}\",", r.flush);
        let gated: Vec<_> = r
            .gate
            .iter()
            .filter(|(op, _, _)| GATE_OPS.contains(op))
            .collect();
        let ungated: Vec<_> = r
            .gate
            .iter()
            .filter(|(op, _, _)| !GATE_OPS.contains(op))
            .collect();
        let _ = writeln!(s, "      \"gate\": {{");
        for (j, (op, c, n)) in gated.iter().enumerate() {
            let comma = if j + 1 < gated.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        \"{}_count\": {c}, \"{}_ns\": {n}{comma}",
                op.name(),
                op.name()
            );
        }
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"info\": {{");
        for (op, c, n) in &ungated {
            let _ = writeln!(s, "        \"{}_count\": {c}, \"{}_ns\": {n},", op.name(), op.name());
        }
        for (j, (k, v)) in r.info.iter().enumerate() {
            let comma = if j + 1 < r.info.len() { "," } else { "" };
            let _ = writeln!(s, "        \"{k}\": {v:.6}{comma}");
        }
        let _ = writeln!(s, "      }}");
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
