//! Deterministic perf harness behind `cargo xtask bench`: seeds the
//! committed `BENCH_ra.json` / `BENCH_micro.json` baselines and is re-run
//! by CI against them.
//!
//! ```text
//! bench [--smoke] [--out-dir DIR]
//! ```
//!
//! Two reports:
//!
//! * **BENCH_ra.json** — the RandomAccess notify hot path (paper §4.1) at
//!   several job sizes, on both substrates, under every
//!   [`caf::FlushMode`]. The async-put router variant defers remote
//!   completion to `event_notify`, so the per-notify flush charge is the
//!   measured quantity: `FlushMode::All` reproduces the paper's Θ(P)
//!   `MPI_Win_flush_all`, the targeted modes stay flat.
//! * **BENCH_micro.json** — per-primitive delay decomposition (put, get,
//!   atomic, notify) at a fixed small job size.
//!
//! Every number in a row's `gate` object is a **modeled** count or
//! nanosecond total from the substrate delay meter — a deterministic
//! function of the communication schedule, byte-identical across runs and
//! machines — so CI can compare against the committed baseline with a
//! tight threshold. Wall-clock seconds are reported under `info` and are
//! never gated.
//!
//! The binary also asserts the tentpole shape in-process (exit 1 on
//! violation): per-notify flush charges grow linearly in P under
//! `FlushMode::All` and stay flat under `Targeted`/`Rflush`.

use std::fmt::Write as _;
use std::process::ExitCode;

use caf::{
    AggConfig, AsyncOpts, CafConfig, CafUniverse, Coarray, ExecConfig, FlushMode, SubstrateKind,
};
use caf_bench::{fast, fusion_like};
use caf_fabric::delay::ALL_DELAY_OPS;
use caf_fabric::DelayOp;
use caf_hpcc::fft;
use caf_hpcc::ra::{self, lcg_next, starts, RaOpts};

/// Ops whose counts are charged at the *origin* in program order — a pure
/// function of the communication schedule, so byte-identical across runs.
/// Receive-side charges (`p2p_receive`, `am_dispatch`) land whenever the
/// receiver happens to poll relative to the snapshot barriers, so they are
/// reported under `info` instead of gated.
const GATE_OPS: [DelayOp; 5] = [
    DelayOp::P2pInject,
    DelayOp::RmaPut,
    DelayOp::RmaGet,
    DelayOp::RmaAtomic,
    DelayOp::FlushPerTarget,
];

/// Job sizes for the RA sweep. Smoke trims the list; each row's workload
/// is identical in both, so smoke rows gate against the full baseline.
const RA_P_FULL: [usize; 4] = [2, 4, 8, 16];
const RA_P_SMOKE: [usize; 3] = [2, 4, 8];
const RA_LOG2_LOCAL: u32 = 8;
const RA_UPDATES: usize = 800;

/// Executed high-P rows: the caf-sched task executor multiplexes `p`
/// image tasks onto a handful of workers, so these jobs run for *real*
/// (no netmodel extrapolation) on a laptop. Cost-free delay tables keep
/// the wall clock tractable — the gated quantities are the deterministic
/// op counts (modeled ns is zero), and each row's executed per-notify
/// flush curve is compared against the analytic model: 2 windows × P
/// ranks under `flush_all`, the one dirty partner under the targeted
/// modes. The reduced per-image workload is identical in smoke and full
/// runs, so the smoke subset gates against the full baseline.
const RA_HI_P_FULL: [usize; 2] = [256, 1024];
const RA_HI_P_SMOKE: [usize; 1] = [256];
const RA_HI_LOG2_LOCAL: u32 = 6;
const RA_HI_UPDATES: usize = 64;
/// Allowed relative gap between an executed per-notify flush measurement
/// and its analytic prediction.
const RA_HI_AGREEMENT: f64 = 0.25;

/// Per-primitive micro workload size.
const MICRO_P: usize = 4;
const MICRO_REPS: usize = 128;

/// FFT sweep sizes (whole-kernel decomposition rows; the FFT moves data
/// exclusively through team alltoall, so these rows pin the collective
/// plane the RA rows don't touch).
const FFT_P: [usize; 2] = [2, 4];
const FFT_LOG2_SIZE: u32 = 12;

/// Aggregation sweep (BENCH_agg.json). Three row families:
///
/// * `agg-bpp` — one origin streams small puts to one target, direct vs
///   coalesced; the gated `bytes_per_packet` is payload bytes per wire
///   message (one per put direct, one per drained bucket aggregated).
/// * `agg-ra` — GUPS-shaped scattered updates: one remote atomic per
///   update (`direct`) vs coalesced accumulate records (`agg`,
///   `agg-routed`); `proxy_gups` models throughput from the summed
///   origin-charged nanoseconds of the critical-path image.
/// * `agg-notify` — puts + ring notify with aggregation ON across the
///   flush-mode matrix: the PR-4 Θ(P)-vs-flat per-notify flush shape
///   must survive aggregation (batches bypass the window flush path
///   entirely, so targeted modes drop to zero handshakes).
///
/// Gated fields are taken from the deterministic aggregation counters
/// and origin-charged delay-meter ops, never from receive-side charges
/// or round counts of the termination loop.
const AGG_BPP_RECORDS: usize = 256;
const AGG_RA_P_FULL: [usize; 2] = [8, 32];
const AGG_RA_P_SMOKE: [usize; 1] = [8];
/// Updates per image = `AGG_RA_UPDATES_PER_P * p`: the per-destination
/// record count stays constant as P grows, the regime where routing's
/// fuller buckets beat one-nearly-empty-bucket-per-destination.
const AGG_RA_UPDATES_PER_P: usize = 8;
const AGG_RA_LOG2_LOCAL: u32 = 6;
const AGG_NOTIFY_P_FULL: [usize; 4] = [2, 4, 8, 16];
const AGG_NOTIFY_P_SMOKE: [usize; 2] = [2, 8];
const AGG_NOTIFY_ROUNDS: usize = 4;
const AGG_NOTIFY_RECORDS: usize = 32;

struct Row {
    bench: String,
    p: usize,
    substrate: &'static str,
    flush: &'static str,
    /// Summed-over-images (count, modeled_ns) per delay op — the gate.
    gate: Vec<(DelayOp, u64, u64)>,
    /// Ungated context: (key, value) pairs.
    info: Vec<(&'static str, f64)>,
}

/// BENCH_agg.json rows gate on *named* deterministic quantities
/// (aggregation counters, derived packet sizes) rather than the raw delay
/// ledger, so they carry free-form gate fields. The `mode` string lands in
/// the row's `flush` JSON slot: it is the third identity axis exactly as
/// the flush mode is for the RA rows.
struct AggRow {
    bench: &'static str,
    p: usize,
    substrate: &'static str,
    mode: &'static str,
    gate: Vec<(&'static str, f64)>,
    info: Vec<(&'static str, f64)>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");

    let ps: &[usize] = if smoke { &RA_P_SMOKE } else { &RA_P_FULL };
    let hi_ps: &[usize] = if smoke { &RA_HI_P_SMOKE } else { &RA_HI_P_FULL };
    eprintln!("bench: RA sweep (P = {ps:?}, executed task-mode P = {hi_ps:?}, smoke = {smoke})");
    let ra_rows = ra_sweep(ps, hi_ps);
    if let Err(msg) = verify_ra_shape(&ra_rows) {
        eprintln!("bench: SHAPE VIOLATION: {msg}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench: shape OK (flush_all per-notify cost linear in P up to executed P = {}, \
         targeted flat, executed curve within {:.0}% of the model)",
        hi_ps.last().copied().unwrap_or(0),
        RA_HI_AGREEMENT * 100.0
    );

    eprintln!("bench: micro primitives (P = {MICRO_P})");
    let micro_rows = micro_sweep();

    eprintln!("bench: aggregation sweep (smoke = {smoke})");
    let agg_rows = agg_sweep(smoke);
    if let Err(msg) = verify_agg_shape(&agg_rows, smoke) {
        eprintln!("bench: AGG SHAPE VIOLATION: {msg}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench: agg shape OK (bpp >= 8x direct, routed RA wins at P>=32, notify shape held)");

    let ra_path = format!("{out_dir}/BENCH_ra.json");
    let micro_path = format!("{out_dir}/BENCH_micro.json");
    let agg_path = format!("{out_dir}/BENCH_agg.json");
    std::fs::write(&ra_path, render(&ra_rows, "ra", smoke)).expect("write BENCH_ra.json");
    std::fs::write(&micro_path, render(&micro_rows, "micro", smoke))
        .expect("write BENCH_micro.json");
    std::fs::write(&agg_path, render_agg(&agg_rows, smoke)).expect("write BENCH_agg.json");
    eprintln!("bench: wrote {ra_path} ({} rows), {micro_path} ({} rows), {agg_path} ({} rows)",
        ra_rows.len(), micro_rows.len(), agg_rows.len());
    ExitCode::SUCCESS
}

/// MPI flush-mode matrix plus the GASNet baseline (which has no windows
/// and therefore no flush knob), then the executed high-P rows under the
/// task executor (MPI only: the flush-mode matrix is the quantity under
/// test, and GASNet has no flush knob to sweep).
fn ra_sweep(ps: &[usize], hi_ps: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in ps {
        for flush in [FlushMode::All, FlushMode::targeted(), FlushMode::rflush()] {
            rows.push(ra_row(p, SubstrateKind::Mpi, flush));
        }
        rows.push(ra_row(p, SubstrateKind::Gasnet, FlushMode::All));
    }
    for &p in hi_ps {
        for flush in [FlushMode::All, FlushMode::targeted(), FlushMode::rflush()] {
            rows.push(ra_hi_row(p, flush));
        }
    }
    rows
}

fn ra_row(p: usize, kind: SubstrateKind, flush: FlushMode) -> Row {
    let cfg = CafConfig {
        flush,
        ..fusion_like(kind)
    };
    let outs = CafUniverse::run_with_config(p, cfg, |img| {
        let team = img.team_world();
        let out = ra::run_opts(
            img,
            &team,
            RA_LOG2_LOCAL,
            RA_UPDATES,
            RaOpts { async_puts: true, ..RaOpts::default() },
        );
        (out.bench, out.meter_delta)
    });
    let gate = sum_deltas(outs.iter().map(|(_, d)| d.as_slice()));
    // One notify per hypercube round per image.
    let notifies = (p * p.ilog2() as usize).max(1);
    let flushes: u64 = gate
        .iter()
        .filter(|(op, _, _)| *op == DelayOp::FlushPerTarget)
        .map(|&(_, c, _)| c)
        .sum();
    Row {
        bench: "ra".into(),
        p,
        substrate: substrate_label(kind),
        flush: if kind == SubstrateKind::Mpi { flush.name() } else { "n/a" },
        gate,
        info: vec![
            ("seconds", outs[0].0.seconds),
            ("gups", outs[0].0.metric),
            ("notifies", notifies as f64),
            ("flushes_per_notify", flushes as f64 / notifies as f64),
        ],
    }
}

/// One executed high-P row: `p` images as caf-sched tasks, cost-free
/// tables, reduced workload (see `RA_HI_*`). The `modeled_flushes_per_notify`
/// info field carries the analytic prediction the executed measurement is
/// gated against in [`verify_ra_shape`] and by `cargo xtask bench`.
fn ra_hi_row(p: usize, flush: FlushMode) -> Row {
    let cfg = CafConfig {
        flush,
        exec: ExecConfig::tasks(),
        ..fast(SubstrateKind::Mpi)
    };
    let outs = CafUniverse::run_with_config(p, cfg, |img| {
        let team = img.team_world();
        let out = ra::run_opts(
            img,
            &team,
            RA_HI_LOG2_LOCAL,
            RA_HI_UPDATES,
            RaOpts { async_puts: true, ..RaOpts::default() },
        );
        (out.bench, out.meter_delta)
    });
    let gate = sum_deltas(outs.iter().map(|(_, d)| d.as_slice()));
    let notifies = (p * p.ilog2() as usize).max(1);
    let flushes: u64 = gate
        .iter()
        .filter(|(op, _, _)| *op == DelayOp::FlushPerTarget)
        .map(|&(_, c, _)| c)
        .sum();
    // flush_all visits both windows (table + staging) on every rank;
    // the targeted modes pay only the round's one dirty partner.
    let modeled = if flush == FlushMode::All { 2.0 * p as f64 } else { 1.0 };
    Row {
        bench: "ra".into(),
        p,
        substrate: "caf-mpi",
        flush: flush.name(),
        gate,
        info: vec![
            ("seconds", outs[0].0.seconds),
            ("gups", outs[0].0.metric),
            ("notifies", notifies as f64),
            ("flushes_per_notify", flushes as f64 / notifies as f64),
            ("modeled_flushes_per_notify", modeled),
            ("executed_tasks", 1.0),
        ],
    }
}

fn micro_sweep() -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        rows.push(micro_row("micro:put", kind, |img| {
            let w = img.team_world();
            let ca: caf::Coarray<u64> = img.coarray_alloc(&w, 64);
            let (before, after) = metered(img, |img| {
                if img.this_image() == 0 {
                    let buf = [7u64; 64];
                    for _ in 0..MICRO_REPS {
                        ca.write(img, 1, 0, &buf);
                    }
                }
            });
            img.coarray_free(&w, ca);
            delta(&after, &before)
        }));
        rows.push(micro_row("micro:get", kind, |img| {
            let w = img.team_world();
            let ca: caf::Coarray<u64> = img.coarray_alloc(&w, 64);
            let (before, after) = metered(img, |img| {
                if img.this_image() == 0 {
                    let mut buf = [0u64; 64];
                    for _ in 0..MICRO_REPS {
                        ca.read(img, 1, 0, &mut buf);
                    }
                }
            });
            img.coarray_free(&w, ca);
            delta(&after, &before)
        }));
        rows.push(micro_row("micro:notify", kind, |img| {
            let w = img.team_world();
            let ev = img.event_alloc(&w);
            let (before, after) = metered(img, |img| {
                if img.this_image() == 0 {
                    for _ in 0..MICRO_REPS {
                        img.event_notify(&w, &ev, 1);
                    }
                } else if img.this_image() == 1 {
                    for _ in 0..MICRO_REPS {
                        img.event_wait(&ev);
                    }
                }
            });
            delta(&after, &before)
        }));
        for p in FFT_P {
            let deltas = CafUniverse::run_with_config(p, fusion_like(kind), |img| {
                let (before, after) = metered(img, |img| {
                    let team = img.team_world();
                    fft::run(img, &team, FFT_LOG2_SIZE);
                });
                delta(&after, &before)
            });
            let gate = sum_deltas(deltas.iter().map(Vec::as_slice));
            rows.push(Row {
                bench: "fft".into(),
                p,
                substrate: substrate_label(kind),
                flush: if kind == SubstrateKind::Mpi { "all" } else { "n/a" },
                gate,
                info: vec![("log2_size", FFT_LOG2_SIZE as f64)],
            });
        }
        if kind == SubstrateKind::Mpi {
            // CAF-GASNet has no remote atomics (fetch_add panics there).
            rows.push(micro_row("micro:atomic", kind, |img| {
                let w = img.team_world();
                let ca: caf::Coarray<u64> = img.coarray_alloc(&w, 1);
                let (before, after) = metered(img, |img| {
                    if img.this_image() == 0 {
                        for _ in 0..MICRO_REPS {
                            ca.fetch_add(img, 1, 0, 1);
                        }
                    }
                });
                img.coarray_free(&w, ca);
                delta(&after, &before)
            }));
        }
    }
    rows
}

type Snapshot = Vec<(DelayOp, u64, u64)>;

/// Barrier-bracketed meter capture: every image's costs inside `body`
/// (including receive-side charges) land in the delta.
fn metered(img: &caf::Image, body: impl Fn(&caf::Image)) -> (Snapshot, Snapshot) {
    let w = img.team_world();
    img.barrier(&w);
    let before = img.delay_meter_snapshot();
    body(img);
    img.barrier(&w);
    let after = img.delay_meter_snapshot();
    (before, after)
}

fn delta(after: &Snapshot, before: &Snapshot) -> Snapshot {
    after
        .iter()
        .zip(before.iter())
        .map(|(&(op, ca, na), &(_, cb, nb))| (op, ca - cb, na - nb))
        .collect()
}

fn micro_row(
    name: &str,
    kind: SubstrateKind,
    body: impl Fn(&caf::Image) -> Snapshot + Send + Sync,
) -> Row {
    let deltas = CafUniverse::run_with_config(MICRO_P, fusion_like(kind), body);
    let gate = sum_deltas(deltas.iter().map(Vec::as_slice));
    Row {
        bench: name.into(),
        p: MICRO_P,
        substrate: substrate_label(kind),
        flush: if kind == SubstrateKind::Mpi { "all" } else { "n/a" },
        gate,
        info: vec![("reps", MICRO_REPS as f64)],
    }
}

fn substrate_label(kind: SubstrateKind) -> &'static str {
    match kind {
        SubstrateKind::Mpi => "caf-mpi",
        SubstrateKind::Gasnet => "caf-gasnet",
    }
}

/// Sum per-image meter deltas into one per-op (count, ns) ledger, in
/// `ALL_DELAY_OPS` order.
fn sum_deltas<'a>(deltas: impl Iterator<Item = &'a [(DelayOp, u64, u64)]>) -> Snapshot {
    let mut acc: Vec<(DelayOp, u64, u64)> =
        ALL_DELAY_OPS.iter().map(|&op| (op, 0, 0)).collect();
    for d in deltas {
        for &(op, c, n) in d {
            let slot = &mut acc[op.index()];
            slot.1 += c;
            slot.2 += n;
        }
    }
    acc
}

/// The tentpole assertion, from the rows themselves: under `FlushMode::All`
/// the per-notify flush charge is Θ(P) (2 windows × P ranks), while the
/// targeted modes pay only the dirty partner — flat in P.
fn verify_ra_shape(rows: &[Row]) -> Result<(), String> {
    let fpn = |p: usize, flush: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.p == p && r.substrate == "caf-mpi" && r.flush == flush)
            .and_then(|r| {
                r.info
                    .iter()
                    .find(|(k, _)| *k == "flushes_per_notify")
                    .map(|&(_, v)| v)
            })
    };
    let ps: Vec<usize> = {
        let mut v: Vec<usize> = rows
            .iter()
            .filter(|r| r.substrate == "caf-mpi")
            .map(|r| r.p)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (pmin, pmax) = (ps[0], *ps.last().unwrap());
    let all_min = fpn(pmin, "all").ok_or("missing all@pmin")?;
    let all_max = fpn(pmax, "all").ok_or("missing all@pmax")?;
    for mode in ["targeted", "rflush"] {
        let t_min = fpn(pmin, mode).ok_or("missing targeted@pmin")?;
        let t_max = fpn(pmax, mode).ok_or("missing targeted@pmax")?;
        if t_max > 2.0 * t_min.max(1.0) {
            return Err(format!(
                "{mode} per-notify flushes grew with P: {t_min:.2} @P={pmin} -> {t_max:.2} @P={pmax}"
            ));
        }
        if all_max < 3.0 * t_max {
            return Err(format!(
                "flush_all @P={pmax} ({all_max:.2}/notify) not clearly above {mode} ({t_max:.2}/notify)"
            ));
        }
    }
    let growth = all_max / all_min.max(f64::EPSILON);
    let expected = pmax as f64 / pmin as f64;
    if growth < 0.5 * expected {
        return Err(format!(
            "flush_all per-notify cost not Θ(P): grew {growth:.2}x from P={pmin} to P={pmax} (expected ~{expected:.0}x)"
        ));
    }
    // Executed-vs-modeled agreement: every high-P row run for real under
    // the task executor must land within RA_HI_AGREEMENT of its analytic
    // per-notify flush prediction.
    for r in rows {
        let get = |k: &str| r.info.iter().find(|(key, _)| *key == k).map(|&(_, v)| v);
        let Some(modeled) = get("modeled_flushes_per_notify") else { continue };
        let executed = get("flushes_per_notify").ok_or("executed row missing flushes_per_notify")?;
        if (executed - modeled).abs() > RA_HI_AGREEMENT * modeled {
            return Err(format!(
                "executed P={} {} row disagrees with the model: {executed:.2} flushes/notify \
                 measured vs {modeled:.2} predicted",
                r.p, r.flush
            ));
        }
    }
    Ok(())
}

fn agg_sweep(smoke: bool) -> Vec<AggRow> {
    let mut rows = Vec::new();
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        for agg_on in [false, true] {
            rows.push(agg_bpp_row(kind, agg_on));
        }
    }
    let ps: &[usize] = if smoke { &AGG_RA_P_SMOKE } else { &AGG_RA_P_FULL };
    for &p in ps {
        for mode in ["direct", "agg", "agg-routed"] {
            rows.push(agg_ra_row(p, mode));
        }
    }
    let ps: &[usize] = if smoke { &AGG_NOTIFY_P_SMOKE } else { &AGG_NOTIFY_P_FULL };
    for &p in ps {
        for flush in [FlushMode::All, FlushMode::targeted(), FlushMode::rflush()] {
            rows.push(agg_notify_row(p, flush));
        }
    }
    rows
}

/// One origin streams `AGG_BPP_RECORDS` single-u64 puts at one target.
/// Direct: one wire message per put (8 payload bytes each). Aggregated:
/// one batched AM per drained bucket, so payload-bytes-per-packet jumps by
/// the bucket record capacity.
fn agg_bpp_row(kind: SubstrateKind, agg_on: bool) -> AggRow {
    let agg = if agg_on { AggConfig::on() } else { AggConfig::default() };
    let cfg = CafConfig { agg, ..fusion_like(kind) };
    let outs = CafUniverse::run_with_config(2, cfg, |img| {
        let w = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&w, AGG_BPP_RECORDS);
        let (before, after) = metered(img, |img| {
            img.finish_fast(&w, |img| {
                if img.this_image() == 0 {
                    for i in 0..AGG_BPP_RECORDS {
                        img.copy_async_put(&ca, 1, i, &[i as u64], AsyncOpts::default());
                    }
                }
            });
        });
        let stats = img.agg_stats();
        img.coarray_free(&w, ca);
        (delta(&after, &before), stats)
    });
    let payload = (AGG_BPP_RECORDS * 8) as f64;
    let origin = &outs[0];
    let packets = if agg_on {
        origin.1.drained_buckets as f64
    } else {
        // One RMA put per record, charged at the origin in program order.
        origin
            .0
            .iter()
            .find(|(op, _, _)| *op == DelayOp::RmaPut)
            .map(|&(_, c, _)| c as f64)
            .unwrap_or(0.0)
    };
    AggRow {
        bench: "agg-bpp",
        p: 2,
        substrate: substrate_label(kind),
        mode: if agg_on { "agg" } else { "direct" },
        gate: vec![
            ("records", AGG_BPP_RECORDS as f64),
            ("packets", packets),
            ("bytes_per_packet", payload / packets.max(1.0)),
        ],
        info: vec![
            ("payload_bytes", payload),
            ("enqueued", origin.1.enqueued as f64),
            ("drained_records", origin.1.drained_records as f64),
        ],
    }
}

/// GUPS-shaped scattered updates on CAF-MPI: per-update remote atomics
/// (`direct`) vs coalesced accumulate records (`agg` / `agg-routed`).
/// Gate = origin-program-order counters only; the modeled throughput proxy
/// (whose denominator includes termination-loop rounds, which are
/// timing-dependent) stays in `info`.
fn agg_ra_row(p: usize, mode: &'static str) -> AggRow {
    let agg = match mode {
        "direct" => AggConfig::default(),
        "agg" => AggConfig::on(),
        _ => AggConfig::routed(),
    };
    let cfg = CafConfig { agg, ..fusion_like(SubstrateKind::Mpi) };
    let updates = AGG_RA_UPDATES_PER_P * p;
    let local = 1usize << AGG_RA_LOG2_LOCAL;
    let mask = (local * p - 1) as u64;
    let outs = CafUniverse::run_with_config(p, cfg, move |img| {
        let w = img.team_world();
        let table: Coarray<u64> = img.coarray_alloc(&w, local);
        let me = img.this_image();
        let (before, after) = metered(img, |img| {
            let run_updates = |img: &caf::Image| {
                let mut ran = starts((me * updates) as i64);
                for _ in 0..updates {
                    ran = lcg_next(ran);
                    let idx = (ran & mask) as usize;
                    let (dest, off) = (idx >> AGG_RA_LOG2_LOCAL, idx & (local - 1));
                    if mode == "direct" {
                        table.fetch_add(img, dest, off, ran);
                    } else {
                        img.agg_accumulate_xor(&table, dest, off, ran);
                    }
                }
            };
            if mode == "direct" {
                run_updates(img);
                img.barrier(&w);
            } else {
                img.finish(&w, run_updates);
            }
        });
        let stats = img.agg_stats();
        img.coarray_free(&w, table);
        (delta(&after, &before), stats)
    });
    let sum = |f: fn(&caf::AggStats) -> u64| outs.iter().map(|(_, s)| f(s)).sum::<u64>() as f64;
    let atomics: u64 = outs
        .iter()
        .flat_map(|(d, _)| d.iter())
        .filter(|(op, _, _)| *op == DelayOp::RmaAtomic)
        .map(|&(_, c, _)| c)
        .sum();
    // Critical-path image: max over images of its origin-charged modeled ns.
    let max_ns = outs
        .iter()
        .map(|(d, _)| {
            d.iter()
                .filter(|(op, _, _)| GATE_OPS.contains(op))
                .map(|&(_, _, n)| n)
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0);
    let total_updates = (updates * p) as f64;
    AggRow {
        bench: "agg-ra",
        p,
        substrate: "caf-mpi",
        mode,
        gate: vec![
            ("updates", total_updates),
            ("rma_atomics", atomics as f64),
            ("agg_records", sum(|s| s.enqueued)),
            ("agg_batches", sum(|s| s.drained_buckets)),
            ("agg_forwards", sum(|s| s.forwarded)),
        ],
        info: vec![
            ("proxy_gups", if max_ns > 0 { total_updates / max_ns as f64 } else { 0.0 }),
            ("origin_ns_max", max_ns as f64),
        ],
    }
}

/// Put-burst + ring notify with aggregation ON, across the flush-mode
/// matrix: the PR-4 per-notify flush shape (Θ(P) under `all`, flat under
/// the targeted modes) must be preserved when every put rides a bucket.
fn agg_notify_row(p: usize, flush: FlushMode) -> AggRow {
    let cfg = CafConfig {
        agg: AggConfig::on(),
        flush,
        ..fusion_like(SubstrateKind::Mpi)
    };
    let outs = CafUniverse::run_with_config(p, cfg, move |img| {
        let w = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&w, AGG_NOTIFY_RECORDS);
        let ev = img.event_alloc(&w);
        let right = (img.this_image() + 1) % p;
        let (before, after) = metered(img, |img| {
            for round in 0..AGG_NOTIFY_ROUNDS {
                for i in 0..AGG_NOTIFY_RECORDS {
                    img.copy_async_put(&ca, right, i, &[(round + i) as u64], AsyncOpts::default());
                }
                img.event_notify(&w, &ev, right);
                img.event_wait(&ev);
            }
        });
        let stats = img.agg_stats();
        img.coarray_free(&w, ca);
        (delta(&after, &before), stats)
    });
    let flushes: u64 = outs
        .iter()
        .flat_map(|(d, _)| d.iter())
        .filter(|(op, _, _)| *op == DelayOp::FlushPerTarget)
        .map(|&(_, c, _)| c)
        .sum();
    let batches: u64 = outs.iter().map(|(_, s)| s.drained_buckets).sum();
    let records: u64 = outs.iter().map(|(_, s)| s.enqueued).sum();
    let notifies = (p * AGG_NOTIFY_ROUNDS) as f64;
    AggRow {
        bench: "agg-notify",
        p,
        substrate: "caf-mpi",
        mode: flush.name(),
        gate: vec![
            ("agg_records", records as f64),
            ("agg_batches", batches as f64),
            ("flush_per_target", flushes as f64),
        ],
        info: vec![
            ("notifies", notifies),
            ("flushes_per_notify", flushes as f64 / notifies),
            ("flushes_per_batch", flushes as f64 / (batches as f64).max(1.0)),
        ],
    }
}

/// In-process acceptance assertions for the aggregation sweep (exit 1 on
/// violation, same contract as [`verify_ra_shape`]).
fn verify_agg_shape(rows: &[AggRow], smoke: bool) -> Result<(), String> {
    let field = |r: &AggRow, k: &str, gate: bool| -> Option<f64> {
        let v = if gate { &r.gate } else { &r.info };
        v.iter().find(|(key, _)| *key == k).map(|&(_, x)| x)
    };
    // (1) bytes-per-packet: aggregated >= 8x the direct small-put path,
    //     on both substrates.
    for sub in ["caf-mpi", "caf-gasnet"] {
        let get = |mode: &str| {
            rows.iter()
                .find(|r| r.bench == "agg-bpp" && r.substrate == sub && r.mode == mode)
                .and_then(|r| field(r, "bytes_per_packet", true))
        };
        let direct = get("direct").ok_or_else(|| format!("missing agg-bpp direct row ({sub})"))?;
        let agg = get("agg").ok_or_else(|| format!("missing agg-bpp agg row ({sub})"))?;
        if agg < 8.0 * direct {
            return Err(format!(
                "{sub}: aggregated bytes/packet {agg:.1} < 8x direct {direct:.1}"
            ));
        }
    }
    // (2) modeled RA throughput at the largest job size: routed aggregation
    //     beats the per-update direct path (full sweep reaches P=32; the
    //     smoke subset stops earlier, so assert there only at its pmax).
    let pmax = rows
        .iter()
        .filter(|r| r.bench == "agg-ra")
        .map(|r| r.p)
        .max()
        .ok_or("no agg-ra rows")?;
    if !smoke && pmax < 32 {
        return Err(format!("agg-ra full sweep must reach P>=32 (got {pmax})"));
    }
    let gups = |mode: &str| {
        rows.iter()
            .find(|r| r.bench == "agg-ra" && r.p == pmax && r.mode == mode)
            .and_then(|r| field(r, "proxy_gups", false))
    };
    let direct = gups("direct").ok_or("missing agg-ra direct row")?;
    let routed = gups("agg-routed").ok_or("missing agg-ra agg-routed row")?;
    if routed <= direct {
        return Err(format!(
            "routed aggregation not faster at P={pmax}: {routed:.6} vs direct {direct:.6} proxy GUPS"
        ));
    }
    // (3) per-notify flush shape under aggregation: Θ(P) for flush_all,
    //     flat for the targeted modes.
    let fpn = |p: usize, mode: &str| {
        rows.iter()
            .find(|r| r.bench == "agg-notify" && r.p == p && r.mode == mode)
            .and_then(|r| field(r, "flushes_per_notify", false))
    };
    let ps: Vec<usize> = {
        let mut v: Vec<usize> = rows
            .iter()
            .filter(|r| r.bench == "agg-notify")
            .map(|r| r.p)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (pmin, pmax) = (ps[0], *ps.last().ok_or("no agg-notify rows")?);
    let all_min = fpn(pmin, "all").ok_or("missing agg-notify all@pmin")?;
    let all_max = fpn(pmax, "all").ok_or("missing agg-notify all@pmax")?;
    let growth = all_max / all_min.max(f64::EPSILON);
    let expected = pmax as f64 / pmin as f64;
    if growth < 0.5 * expected {
        return Err(format!(
            "flush_all per-notify cost not Θ(P) under aggregation: {growth:.2}x from P={pmin} to P={pmax}"
        ));
    }
    for mode in ["targeted", "rflush"] {
        let t_min = fpn(pmin, mode).ok_or("missing agg-notify targeted@pmin")?;
        let t_max = fpn(pmax, mode).ok_or("missing agg-notify targeted@pmax")?;
        if t_max > 2.0 * t_min.max(1.0) {
            return Err(format!(
                "{mode} per-notify flushes grew with P under aggregation: {t_min:.2} @P={pmin} -> {t_max:.2} @P={pmax}"
            ));
        }
        if all_max < 3.0 * t_max.max(1.0) {
            return Err(format!(
                "flush_all @P={pmax} ({all_max:.2}/notify) not clearly above {mode} ({t_max:.2}/notify) under aggregation"
            ));
        }
    }
    Ok(())
}

/// BENCH_agg.json: same `caf-bench-v1` envelope as [`render`], with the
/// free-form gate/info fields of [`AggRow`] (the `mode` is written into
/// the `flush` identity slot).
fn render_agg(rows: &[AggRow], smoke: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"caf-bench-v1\",");
    let _ = writeln!(s, "  \"kind\": \"agg\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"bench\": \"{}\",", r.bench);
        let _ = writeln!(s, "      \"p\": {},", r.p);
        let _ = writeln!(s, "      \"substrate\": \"{}\",", r.substrate);
        let _ = writeln!(s, "      \"flush\": \"{}\",", r.mode);
        let _ = writeln!(s, "      \"gate\": {{");
        for (j, (k, v)) in r.gate.iter().enumerate() {
            let comma = if j + 1 < r.gate.len() { "," } else { "" };
            let _ = writeln!(s, "        \"{k}\": {v:.6}{comma}");
        }
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"info\": {{");
        for (j, (k, v)) in r.info.iter().enumerate() {
            let comma = if j + 1 < r.info.len() { "," } else { "" };
            let _ = writeln!(s, "        \"{k}\": {v:.6}{comma}");
        }
        let _ = writeln!(s, "      }}");
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Hand-rolled JSON (std-only consumers: the xtask gate).
fn render(rows: &[Row], kind: &str, smoke: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"caf-bench-v1\",");
    let _ = writeln!(s, "  \"kind\": \"{kind}\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"bench\": \"{}\",", r.bench);
        let _ = writeln!(s, "      \"p\": {},", r.p);
        let _ = writeln!(s, "      \"substrate\": \"{}\",", r.substrate);
        let _ = writeln!(s, "      \"flush\": \"{}\",", r.flush);
        let gated: Vec<_> = r
            .gate
            .iter()
            .filter(|(op, _, _)| GATE_OPS.contains(op))
            .collect();
        let ungated: Vec<_> = r
            .gate
            .iter()
            .filter(|(op, _, _)| !GATE_OPS.contains(op))
            .collect();
        let _ = writeln!(s, "      \"gate\": {{");
        for (j, (op, c, n)) in gated.iter().enumerate() {
            let comma = if j + 1 < gated.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        \"{}_count\": {c}, \"{}_ns\": {n}{comma}",
                op.name(),
                op.name()
            );
        }
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"info\": {{");
        for (op, c, n) in &ungated {
            let _ = writeln!(s, "        \"{}_count\": {c}, \"{}_ns\": {n},", op.name(), op.name());
        }
        for (j, (k, v)) in r.info.iter().enumerate() {
            let comma = if j + 1 < r.info.len() { "," } else { "" };
            let _ = writeln!(s, "        \"{k}\": {v:.6}{comma}");
        }
        let _ = writeln!(s, "      }}");
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
