//! Real-execution parameter sweeps, CSV output — the workload-generator /
//! sweep harness behind the small-scale measurements in EXPERIMENTS.md.
//!
//! ```text
//! sweep ra       # RandomAccess: images × substrate × table size
//! sweep fft      # FFT: images × substrate × problem size
//! sweep hpl      # HPL: images × substrate × matrix size
//! sweep cgpop    # CGPOP: images × substrate × mode
//! sweep memory   # Figure-1 footprints: images × configuration
//! sweep all      # everything
//! ```
//!
//! Columns: `benchmark,images,substrate,param,metric,seconds`.

use caf::SubstrateKind;
use caf_bench::{real_cgpop, real_fft, real_hpl, real_memory, real_ra};
use caf_hpcc::cgpop::ExchangeMode;

const KINDS: [(&str, SubstrateKind); 2] = [
    ("caf-mpi", SubstrateKind::Mpi),
    ("caf-gasnet", SubstrateKind::Gasnet),
];

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    println!("benchmark,images,substrate,param,metric,seconds");
    if matches!(which.as_str(), "ra" | "all") {
        sweep_ra();
    }
    if matches!(which.as_str(), "fft" | "all") {
        sweep_fft();
    }
    if matches!(which.as_str(), "hpl" | "all") {
        sweep_hpl();
    }
    if matches!(which.as_str(), "cgpop" | "all") {
        sweep_cgpop();
    }
    if matches!(which.as_str(), "memory" | "all") {
        sweep_memory();
    }
}

fn sweep_ra() {
    for p in [2usize, 4, 8] {
        for (name, kind) in KINDS {
            for log2_local in [9u32, 10, 11] {
                let row = real_ra(p, kind, log2_local, 20_000);
                println!(
                    "randomaccess,{p},{name},log2_local={log2_local},{:.6},{:.6}",
                    row.metric, row.seconds
                );
            }
        }
    }
}

fn sweep_fft() {
    for p in [2usize, 4, 8] {
        for (name, kind) in KINDS {
            for log2_size in [14u32, 15, 16] {
                let row = real_fft(p, kind, log2_size);
                println!(
                    "fft,{p},{name},log2_size={log2_size},{:.6},{:.6}",
                    row.metric, row.seconds
                );
            }
        }
    }
}

fn sweep_hpl() {
    for p in [2usize, 4] {
        for (name, kind) in KINDS {
            for n in [96usize, 128, 160] {
                let row = real_hpl(p, kind, n, 16);
                println!(
                    "hpl,{p},{name},n={n},{:.6},{:.6}",
                    row.metric, row.seconds
                );
            }
        }
    }
}

fn sweep_cgpop() {
    for p in [4usize, 6] {
        for (name, kind) in KINDS {
            for (mode_name, mode) in
                [("push", ExchangeMode::Push), ("pull", ExchangeMode::Pull)]
            {
                let row = real_cgpop(p, kind, mode, 24, 24, 40);
                println!(
                    "cgpop,{p},{name},mode={mode_name},{:.6},{:.6}",
                    row.metric, row.seconds
                );
            }
        }
    }
}

fn sweep_memory() {
    for p in [2usize, 4, 8, 16] {
        let (g, m, d) = real_memory(p);
        println!("memory,{p},gasnet-only,bytes,{g},0");
        println!("memory,{p},mpi-only,bytes,{m},0");
        println!("memory,{p},duplicate,bytes,{d},0");
    }
}
