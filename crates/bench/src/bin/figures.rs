//! Regenerate every table and figure of the paper.
//!
//! ```text
//! figures                # all figures, model vs paper
//! figures fig3 fig6      # a subset by id
//! figures table1         # Table 1
//! figures real           # append small-scale real-execution sections
//! figures --json         # emit the selected figures as JSON
//! ```

use caf::SubstrateKind;
use caf_bench::{real_cgpop, real_fft, real_hpl, real_memory, real_ra};
use caf_hpcc::cgpop::ExchangeMode;
use caf_netmodel::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_real = args.iter().any(|a| a == "real");
    let want_json = args.iter().any(|a| a == "--json");
    let filters: Vec<&String> = args
        .iter()
        .filter(|a| a.as_str() != "real" && a.as_str() != "--json")
        .collect();
    let selected = |id: &str| filters.is_empty() || filters.iter().any(|f| f.as_str() == id);

    if want_json {
        let figs: Vec<_> = figures::all_figures()
            .into_iter()
            .filter(|f| selected(f.id))
            .collect();
        println!("[");
        for (i, fig) in figs.iter().enumerate() {
            print!("{}", fig.to_json());
            println!("{}", if i + 1 < figs.len() { "," } else { "" });
        }
        println!("]");
        return;
    }

    if selected("table1") {
        print!("{}", figures::table1());
        println!();
    }

    for fig in figures::all_figures() {
        if selected(fig.id) {
            println!("{}", fig.render());
        }
    }

    if want_real {
        real_sections();
    }
}

fn real_sections() {
    println!("== real-execution (in-process fabric, 2-16 images) ==");
    println!("-- Figure 1 (measured runtime overhead, bytes/process) --");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "images", "GASNet-only", "MPI-only", "duplicate"
    );
    for p in [2usize, 4, 8, 16] {
        let (g, m, d) = real_memory(p);
        println!("{p:>10} {g:>14} {m:>14} {d:>14}");
    }

    println!("\n-- RandomAccess (measured GUP/s) --");
    println!("{:>10} {:>14} {:>14}", "images", "CAF-MPI", "CAF-GASNet");
    for p in [2usize, 4, 8] {
        let m = real_ra(p, SubstrateKind::Mpi, 10, 20_000);
        let g = real_ra(p, SubstrateKind::Gasnet, 10, 20_000);
        println!("{p:>10} {:>14.5} {:>14.5}", m.metric, g.metric);
    }

    println!("\n-- FFT (measured GFlop/s) --");
    println!("{:>10} {:>14} {:>14}", "images", "CAF-MPI", "CAF-GASNet");
    for p in [2usize, 4, 8] {
        let m = real_fft(p, SubstrateKind::Mpi, 16);
        let g = real_fft(p, SubstrateKind::Gasnet, 16);
        println!("{p:>10} {:>14.4} {:>14.4}", m.metric, g.metric);
    }

    println!("\n-- HPL (measured GFlop/s) --");
    println!("{:>10} {:>14} {:>14}", "images", "CAF-MPI", "CAF-GASNet");
    for p in [2usize, 4] {
        let m = real_hpl(p, SubstrateKind::Mpi, 128, 16);
        let g = real_hpl(p, SubstrateKind::Gasnet, 128, 16);
        println!("{p:>10} {:>14.4} {:>14.4}", m.metric, g.metric);
    }

    println!("\n-- CGPOP (measured seconds; PUSH vs PULL) --");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "images", "MPI PUSH", "MPI PULL", "GASNet PUSH", "GASNet PULL"
    );
    for p in [4usize, 6] {
        let mp = real_cgpop(p, SubstrateKind::Mpi, ExchangeMode::Push, 32, 32, 60);
        let ml = real_cgpop(p, SubstrateKind::Mpi, ExchangeMode::Pull, 32, 32, 60);
        let gp = real_cgpop(p, SubstrateKind::Gasnet, ExchangeMode::Push, 32, 32, 60);
        let gl = real_cgpop(p, SubstrateKind::Gasnet, ExchangeMode::Pull, 32, 32, 60);
        println!(
            "{p:>10} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            mp.metric, ml.metric, gp.metric, gl.metric
        );
    }
}
