//! Regenerate every table and figure of the paper.
//!
//! ```text
//! figures                      # all figures, model vs paper
//! figures fig3 fig6            # a subset by id
//! figures table1               # Table 1
//! figures real                 # append small-scale real-execution sections
//! figures --json               # emit the selected figures as JSON
//! figures trace                # traced real RA run: decomposition from caf-trace
//! figures fig4 --from-trace    # Figure 4 derived from a real traced run
//! figures trace --trace-out t.json   # also export Chrome trace_event JSON
//! figures check                # replay kernels under the caf-check sanitizer
//! figures model                # bounded schedule exploration (caf-model)
//! ```

use caf::SubstrateKind;
use caf_bench::{real_cgpop, real_fft, real_hpl, real_memory, real_ra, traced_ra};
use caf_hpcc::cgpop::ExchangeMode;
use caf_netmodel::figures;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--trace-out" {
            match it.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out requires a file argument");
                    std::process::exit(2);
                }
            }
        } else {
            args.push(a);
        }
    }
    let want_real = args.iter().any(|a| a == "real");
    let want_json = args.iter().any(|a| a == "--json");
    let from_trace = args.iter().any(|a| a == "--from-trace");
    // "trace" and "check" act as pseudo figure ids: `figures trace`
    // prints only the traced sections, `figures check` only the
    // sanitizer sections.
    let want_trace = args.iter().any(|a| a == "trace");
    let want_check = args.iter().any(|a| a == "check");
    let want_model = args.iter().any(|a| a == "model");
    let filters: Vec<&String> = args
        .iter()
        .filter(|a| {
            a.as_str() != "real" && a.as_str() != "--json" && a.as_str() != "--from-trace"
        })
        .collect();
    let selected = |id: &str| filters.is_empty() || filters.iter().any(|f| f.as_str() == id);

    if want_json {
        let figs: Vec<_> = figures::all_figures()
            .into_iter()
            .filter(|f| selected(f.id))
            .collect();
        println!("[");
        for (i, fig) in figs.iter().enumerate() {
            print!("{}", fig.to_json());
            println!("{}", if i + 1 < figs.len() { "," } else { "" });
        }
        println!("]");
        return;
    }

    if selected("table1") {
        print!("{}", figures::table1());
        println!();
    }

    for fig in figures::all_figures() {
        // With --from-trace, Figure 4 comes from the real traced run below
        // instead of the model.
        if selected(fig.id) && !(from_trace && fig.id == "fig4") {
            println!("{}", fig.render());
        }
    }

    if want_trace || (from_trace && selected("fig4")) || trace_out.is_some() {
        trace_sections(trace_out.as_deref());
    }

    if want_real {
        real_sections();
    }

    if want_check {
        check_sections();
    }

    if want_model {
        model_sections();
    }
}

/// Bounded schedule exploration with `caf-model`: exhaust the ping-pong
/// state space with and without sleep sets (reporting the DPOR reduction
/// factor), re-check the clean programs across a schedule budget, and
/// demonstrate both seeded counterexamples — the Fig 2 deadlock and the
/// schedule-dependent unflushed put — with their replay tokens. Exits
/// nonzero if a clean program is flagged, an expected bug is missed, or
/// the reduction factor drops below 2x, so CI can gate on it.
fn model_sections() {
    use caf_model::{explore, replay, scenarios, ExploreConfig, ExploreMode, OracleConfig};
    println!("== caf-model: bounded schedule exploration (DPOR-lite) ==");
    let mut bad = 0usize;

    // Sleep-set reduction on the fully-exhaustible ping-pong space.
    let pp = scenarios::ping_pong();
    let dfs = |sleep_sets| ExploreConfig {
        max_schedules: 5_000,
        mode: ExploreMode::Dfs { sleep_sets },
        oracle: None,
        ..ExploreConfig::default()
    };
    let naive = explore(&pp, &dfs(false));
    let dpor = explore(&pp, &dfs(true));
    println!(
        "-- DPOR reduction ({}; both modes exhaust the state space) --",
        pp.name
    );
    println!("{:>12} {:>10} {:>8} {:>9} {:>8}", "mode", "schedules", "pruned", "complete", "flagged");
    for (mode, r) in [("naive", &naive), ("sleep-set", &dpor)] {
        println!(
            "{mode:>12} {:>10} {:>8} {:>9} {:>8}",
            r.schedules, r.pruned, r.complete, r.flagged
        );
    }
    let factor = naive.schedules as f64 / dpor.schedules.max(1) as f64;
    println!("reduction: {factor:.1}x fewer executed schedules");
    if !(naive.complete && dpor.complete) || dpor.schedules * 2 > naive.schedules {
        eprintln!("caf-model: DPOR reduction below the 2x gate");
        bad += 1;
    }

    // Clean programs under the full oracle, bounded budget, both substrates.
    println!("\n-- clean programs, 120-schedule budget, epoch+race oracle --");
    println!("{:>28} {:>10} {:>8} {:>9} {:>8}", "scenario", "schedules", "pruned", "complete", "flagged");
    for sc in [
        scenarios::ring(SubstrateKind::Mpi),
        scenarios::ring(SubstrateKind::Gasnet),
        scenarios::event_ping_pong(SubstrateKind::Mpi),
        scenarios::event_ping_pong(SubstrateKind::Gasnet),
        scenarios::ra_round(SubstrateKind::Mpi),
        scenarios::ra_round(SubstrateKind::Gasnet),
        scenarios::waitgraph_targeted(),
    ] {
        let cfg = ExploreConfig {
            max_schedules: 120,
            oracle: Some(OracleConfig::default()),
            ..ExploreConfig::default()
        };
        let r = explore(&sc, &cfg);
        println!(
            "{:>28} {:>10} {:>8} {:>9} {:>8}",
            sc.name, r.schedules, r.pruned, r.complete, r.flagged
        );
        if r.flagged > 0 {
            for cx in &r.counterexamples {
                eprintln!("caf-model: {}: {} — {}", sc.name, cx.kind, cx.detail);
            }
            bad += r.flagged;
        }
    }

    // The Fig 2 deadlock, found instead of hung on.
    let fig2 = scenarios::fig2_deadlock();
    let cfg = ExploreConfig {
        max_schedules: 25,
        oracle: None,
        stop_at_first: true,
        ..ExploreConfig::default()
    };
    let r = explore(&fig2, &cfg);
    println!("\n-- {} --", fig2.name);
    match r.counterexamples.first() {
        Some(cx) if cx.kind == "deadlock" => {
            println!("found after {} schedule(s): {}", r.schedules, cx.detail);
            for line in cx.schedule.iter().rev().take(4).rev() {
                println!("{line}");
            }
            println!("replay token: {}", cx.token);
            let rp = replay(&fig2, &cfg, &cx.token);
            let same = rp.schedule == cx.schedule;
            println!("replay reproduces the schedule and deadlock: {same}");
            if !same {
                bad += 1;
            }
        }
        other => {
            eprintln!("caf-model: Fig 2 deadlock not found: {other:?}");
            bad += 1;
        }
    }

    // The seeded unflushed-put counterexample.
    let up = scenarios::unflushed_put();
    let cfg = ExploreConfig {
        max_schedules: 64,
        mode: ExploreMode::Random { seed: 0xCAF_2014, walks: 64 },
        oracle: Some(OracleConfig { epochs: true, races: false }),
        stop_at_first: true,
        ..ExploreConfig::default()
    };
    let r = explore(&up, &cfg);
    println!("\n-- {} (seed 0xCAF2014) --", up.name);
    match r.counterexamples.first() {
        Some(cx) if cx.kind == "read_before_flush" => {
            println!("found after {} walk(s): {}", r.schedules, cx.detail);
            println!("replay token: {}", cx.token);
        }
        other => {
            eprintln!("caf-model: unflushed-put bug not found: {other:?}");
            bad += 1;
        }
    }

    if bad > 0 {
        eprintln!("caf-model: {bad} gate failure(s)");
        std::process::exit(1);
    }
}

/// Replay the RandomAccess and FFT kernels on both substrates with the
/// `caf-check` sanitizer armed (epoch legality + happens-before races),
/// then audit a recorded trace with the offline checker. Exits nonzero
/// if anything is flagged, so CI can gate on it.
#[cfg(feature = "check")]
fn check_sections() {
    use caf_bench::checked::{checked_fft, checked_ra};
    println!("== caf-check sanitizer (RMA epoch legality + vector-clock races) ==");
    let mut flagged = 0usize;
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        for (name, report) in [
            ("RandomAccess", checked_ra(4, kind, 8, 2000)),
            ("FFT", checked_fft(4, kind, 12)),
        ] {
            let label = match kind {
                SubstrateKind::Mpi => "CAF-MPI",
                SubstrateKind::Gasnet => "CAF-GASNet",
            };
            if report.is_clean() {
                println!("{label:>12} {name:<14} clean");
            } else {
                println!(
                    "{label:>12} {name:<14} {} violation(s), {} dropped",
                    report.violations.len(),
                    report.dropped
                );
                print!("{}", report.render());
                flagged += report.violations.len() + report.dropped;
            }
        }
    }

    // Offline pass: audit a trace recorded *without* the sanitizer.
    let (_, trace) = traced_ra(4, SubstrateKind::Mpi, 8, 1000, 1);
    let offline = caf_check::check_trace(&trace);
    if offline.is_clean() {
        println!("{:>12} {:<14} clean ({} events audited)", "offline", "RA trace", trace.events.len());
    } else {
        println!(
            "{:>12} {:<14} {} violation(s)",
            "offline",
            "RA trace",
            offline.violations.len()
        );
        print!("{}", offline.render());
        flagged += offline.violations.len();
    }

    if flagged > 0 {
        eprintln!("caf-check: {flagged} finding(s)");
        std::process::exit(1);
    }
}

#[cfg(not(feature = "check"))]
fn check_sections() {
    eprintln!("`figures check` needs the sanitizer compiled in: rebuild with --features check");
    std::process::exit(2);
}

/// Run the Figure-4 workload (miniature RandomAccess, `ra_mini`
/// parameters) under an active `caf-trace` session on both substrates and
/// print the trace-derived time decomposition. With `--trace-out FILE`,
/// also export each run as Chrome `trace_event` JSON (one file per
/// substrate, the substrate name inserted before the extension).
fn trace_sections(trace_out: Option<&str>) {
    use caf_trace::Cat;
    println!("== Figure 4 from trace (real traced RandomAccess run, 8 images) ==");
    let mut notify_share = Vec::new();
    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let (row, trace) = traced_ra(8, kind, 9, 4000, 10);
        let d = trace.decomposition();
        println!(
            "-- {} ({:.5} GUP/s; {} events, {} dropped, {} stalls) --",
            row.substrate,
            row.metric,
            trace.events.len(),
            trace.dropped_events,
            trace.stalls.len()
        );
        print!("{}", d.render());
        for stall in &trace.stalls {
            println!("stall: {stall}");
        }
        if let Some(path) = trace_out {
            let path = substrate_path(path, row.substrate);
            std::fs::write(&path, trace.to_chrome_json())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("chrome trace written to {path}");
        }
        notify_share.push((row.substrate, d.median_share(Cat::EventNotify)));
        println!();
    }
    println!("event_notify median share (the Theta(P) flush_all signature, paper Fig 4):");
    for (substrate, share) in notify_share {
        println!("{:>12}: {:>5.1}%", substrate, share * 100.0);
    }
}

/// `out.json` + `CAF-MPI` -> `out.caf-mpi.json`.
fn substrate_path(path: &str, substrate: &str) -> String {
    let tag = substrate.to_lowercase();
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}.{tag}.{ext}"),
        _ => format!("{path}.{tag}"),
    }
}

fn real_sections() {
    println!("== real-execution (in-process fabric, 2-16 images) ==");
    println!("-- Figure 1 (measured runtime overhead, bytes/process) --");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "images", "GASNet-only", "MPI-only", "duplicate"
    );
    for p in [2usize, 4, 8, 16] {
        let (g, m, d) = real_memory(p);
        println!("{p:>10} {g:>14} {m:>14} {d:>14}");
    }

    println!("\n-- RandomAccess (measured GUP/s) --");
    println!("{:>10} {:>14} {:>14}", "images", "CAF-MPI", "CAF-GASNet");
    for p in [2usize, 4, 8] {
        let m = real_ra(p, SubstrateKind::Mpi, 10, 20_000);
        let g = real_ra(p, SubstrateKind::Gasnet, 10, 20_000);
        println!("{p:>10} {:>14.5} {:>14.5}", m.metric, g.metric);
    }

    println!("\n-- FFT (measured GFlop/s) --");
    println!("{:>10} {:>14} {:>14}", "images", "CAF-MPI", "CAF-GASNet");
    for p in [2usize, 4, 8] {
        let m = real_fft(p, SubstrateKind::Mpi, 16);
        let g = real_fft(p, SubstrateKind::Gasnet, 16);
        println!("{p:>10} {:>14.4} {:>14.4}", m.metric, g.metric);
    }

    println!("\n-- HPL (measured GFlop/s) --");
    println!("{:>10} {:>14} {:>14}", "images", "CAF-MPI", "CAF-GASNet");
    for p in [2usize, 4] {
        let m = real_hpl(p, SubstrateKind::Mpi, 128, 16);
        let g = real_hpl(p, SubstrateKind::Gasnet, 128, 16);
        println!("{p:>10} {:>14.4} {:>14.4}", m.metric, g.metric);
    }

    println!("\n-- CGPOP (measured seconds; PUSH vs PULL) --");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "images", "MPI PUSH", "MPI PULL", "GASNet PUSH", "GASNet PULL"
    );
    for p in [4usize, 6] {
        let mp = real_cgpop(p, SubstrateKind::Mpi, ExchangeMode::Push, 32, 32, 60);
        let ml = real_cgpop(p, SubstrateKind::Mpi, ExchangeMode::Pull, 32, 32, 60);
        let gp = real_cgpop(p, SubstrateKind::Gasnet, ExchangeMode::Push, 32, 32, 60);
        let gl = real_cgpop(p, SubstrateKind::Gasnet, ExchangeMode::Pull, 32, 32, 60);
        println!(
            "{p:>10} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            mp.metric, ml.metric, gp.metric, gl.metric
        );
    }
}
