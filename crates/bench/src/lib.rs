//! # caf-bench
//!
//! Shared harness for the criterion benches and the `figures` binary:
//! platform-flavoured runtime configurations (so substrate cost
//! differences are visible in wall-clock measurements) and small-scale
//! *real-execution* runs of each benchmark on both substrates.
//!
//! Real runs exercise the actual runtimes at laptop scale (2–16 images);
//! the full 16–4096-core figures come from `caf-netmodel`. The `figures`
//! binary prints both.

use std::time::Duration;

use caf::{CafConfig, CafUniverse, GasnetConfig, Image, MpiConfig, SubstrateKind};
use caf_hpcc::cgpop::{self, CgpopParams, ExchangeMode};
use caf_hpcc::{fft, hpl, ra};

/// A runtime configuration with the Fusion-flavoured cost tables applied
/// (MVAPICH-like MPI, ibv-conduit-like GASNet, SRQ auto at the paper's
/// threshold — scaled down 100× in time, see the substrate `costs`
/// modules).
pub fn fusion_like(kind: SubstrateKind) -> CafConfig {
    CafConfig {
        substrate: kind,
        mpi: MpiConfig {
            delays: caf_mpisim::mvapich_like(),
            ..MpiConfig::default()
        },
        gasnet: GasnetConfig {
            delays: caf_gasnetsim::ibv_conduit_like(),
            srq_receive_penalty_ns: caf_gasnetsim::SRQ_PENALTY_NS,
            segment_size: 64 << 20,
            ..GasnetConfig::default()
        },
        hybrid_mpi: kind == SubstrateKind::Gasnet,
        ..CafConfig::default()
    }
}

/// As [`fusion_like`], but with the cost tables at **full scale** (the
/// paper's real-hardware nanoseconds, not divided by `TIME_SCALE`).
/// Use for shape-assertion tests: on a small or single-core host, the
/// spin-charged software overheads then dominate scheduling noise, so
/// substrate differences reproduce deterministically.
pub fn fusion_fullscale(kind: SubstrateKind) -> CafConfig {
    fn unscale(mut d: caf_fabric::delay::DelayConfig, by: f64) -> caf_fabric::delay::DelayConfig {
        for c in [
            &mut d.p2p_inject,
            &mut d.p2p_receive,
            &mut d.rma_put,
            &mut d.rma_get,
            &mut d.rma_atomic,
            &mut d.flush_per_target,
            &mut d.am_dispatch,
        ] {
            c.base_ns *= by;
            c.per_byte_ns *= by;
        }
        d
    }
    let mut cfg = fusion_like(kind);
    cfg.mpi.delays = unscale(cfg.mpi.delays, caf_mpisim::TIME_SCALE);
    cfg.gasnet.delays = unscale(cfg.gasnet.delays, caf_gasnetsim::TIME_SCALE);
    cfg.gasnet.srq_receive_penalty_ns *= caf_gasnetsim::TIME_SCALE;
    cfg
}

/// A cost-free configuration (correctness-speed runs).
pub fn fast(kind: SubstrateKind) -> CafConfig {
    CafConfig {
        substrate: kind,
        gasnet: GasnetConfig {
            segment_size: 64 << 20,
            ..GasnetConfig::default()
        },
        hybrid_mpi: kind == SubstrateKind::Gasnet,
        ..CafConfig::default()
    }
}

/// One real-execution measurement row.
#[derive(Debug, Clone)]
pub struct RealRow {
    /// Number of images.
    pub p: usize,
    /// Substrate label.
    pub substrate: &'static str,
    /// Benchmark metric (GUP/s, GFlop/s, seconds...).
    pub metric: f64,
    /// Wall-clock seconds of the timed section.
    pub seconds: f64,
}

fn label(kind: SubstrateKind) -> &'static str {
    match kind {
        SubstrateKind::Mpi => "CAF-MPI",
        SubstrateKind::Gasnet => "CAF-GASNet",
    }
}

/// Real RandomAccess run: `2^log2_local` table entries and `updates`
/// updates per image.
pub fn real_ra(p: usize, kind: SubstrateKind, log2_local: u32, updates: usize) -> RealRow {
    let out = CafUniverse::run_with_config(p, fusion_like(kind), |img| {
        let team = img.team_world();
        ra::run(img, &team, log2_local, updates).bench
    });
    RealRow {
        p,
        substrate: label(kind),
        metric: out[0].metric,
        seconds: out[0].seconds,
    }
}

/// As [`real_ra`], recording the whole run into a `caf-trace` session.
///
/// Runs with the [`fusion_fullscale`] cost tables so the Figure-4
/// asymmetry (CAF-MPI's Θ(P) `flush_all` inside `event_notify`)
/// reproduces deterministically at laptop scale. Returns the measurement
/// row plus the merged trace, from which
/// [`caf_trace::Trace::decomposition`] reproduces the Figure-4 profile
/// and [`caf_trace::Trace::to_chrome_json`] exports a
/// `chrome://tracing` / Perfetto timeline. Fails if another trace
/// session is already active in the process.
pub fn traced_ra(
    p: usize,
    kind: SubstrateKind,
    log2_local: u32,
    updates: usize,
    reps: usize,
) -> (RealRow, caf_trace::Trace) {
    let session = caf_trace::Session::start(caf_trace::TraceConfig {
        // RA emits packet-level instants for every routed chunk; give
        // each image headroom so a laptop-scale run never wraps.
        ring_capacity: 1 << 18,
        announce_stalls: false,
        ..caf_trace::TraceConfig::default()
    })
    .expect("another trace session is active");
    // Repetitions multiply the notify/wait sample count, so per-image
    // medians of the decomposition are stable against scheduling noise.
    let out = CafUniverse::run_with_config(p, fusion_fullscale(kind), |img| {
        let team = img.team_world();
        (0..reps.max(1))
            .map(|_| ra::run(img, &team, log2_local, updates).bench)
            .last()
            .expect("at least one repetition")
    });
    let row = RealRow {
        p,
        substrate: label(kind),
        metric: out[0].metric,
        seconds: out[0].seconds,
    };
    (row, session.finish())
}

/// Real FFT run of `2^log2_size` points.
pub fn real_fft(p: usize, kind: SubstrateKind, log2_size: u32) -> RealRow {
    let out = CafUniverse::run_with_config(p, fusion_like(kind), |img| {
        let team = img.team_world();
        fft::run(img, &team, log2_size)
    });
    RealRow {
        p,
        substrate: label(kind),
        metric: out[0].metric,
        seconds: out[0].seconds,
    }
}

/// Real HPL run of an `n×n` system with block size `nb`.
pub fn real_hpl(p: usize, kind: SubstrateKind, n: usize, nb: usize) -> RealRow {
    let out = CafUniverse::run_with_config(p, fusion_like(kind), |img| {
        let team = img.team_world();
        let o = hpl::run(img, &team, n, nb, 42);
        assert!(o.residual < 16.0, "HPL residual {}", o.residual);
        o.bench
    });
    RealRow {
        p,
        substrate: label(kind),
        metric: out[0].metric,
        seconds: out[0].seconds,
    }
}

/// Real CGPOP run.
pub fn real_cgpop(
    p: usize,
    kind: SubstrateKind,
    mode: ExchangeMode,
    nx: usize,
    ny: usize,
    iters: usize,
) -> RealRow {
    let out = CafUniverse::run_with_config(p, fusion_like(kind), move |img| {
        let team = img.team_world();
        cgpop::run(img, &team, CgpopParams { nx, ny, iters }, mode).bench
    });
    RealRow {
        p,
        substrate: label(kind),
        metric: out[0].metric,
        seconds: out[0].seconds,
    }
}

/// Measured per-process runtime memory overhead (bytes) for the three
/// Figure-1 configurations, at job size `p`:
/// `(gasnet_only, mpi_only, duplicate)`.
pub fn real_memory(p: usize) -> (usize, usize, usize) {
    let gasnet_only = CafUniverse::run_with_config(
        p,
        CafConfig::on(SubstrateKind::Gasnet),
        |img| img.runtime_memory_overhead(),
    )[0];
    let mpi_only =
        CafUniverse::run(p, |img| img.runtime_memory_overhead())[0];
    let duplicate = CafUniverse::run_with_config(
        p,
        CafConfig {
            hybrid_mpi: true,
            ..CafConfig::on(SubstrateKind::Gasnet)
        },
        |img| img.runtime_memory_overhead(),
    )[0];
    (gasnet_only, mpi_only, duplicate)
}

/// Sanitized runs: replay the benchmark kernels under an armed
/// `caf-check` session (`cargo ... --features check`, or the `figures
/// check` subcommand). Kept out of the measurement paths — the hooks are
/// a single relaxed load when disarmed, but an armed session serializes
/// every RMA call through the checker.
#[cfg(feature = "check")]
pub mod checked {
    use super::*;
    use caf_check::{CheckConfig, CheckSession, Report};

    /// Run `body` on `p` images of `kind` with the sanitizer armed and
    /// return its report. Uses the cost-free [`fast`] configuration:
    /// legality does not depend on the cost tables, and the checker
    /// already serializes the interesting calls.
    pub fn checked_run(
        p: usize,
        kind: SubstrateKind,
        body: impl Fn(&Image) + Send + Sync,
    ) -> Report {
        let _guard = caf_check::SESSION_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let session = CheckSession::start(CheckConfig::default())
            .expect("another check session is active");
        CafUniverse::run_with_config(p, fast(kind), |img| body(img));
        session.finish()
    }

    /// RandomAccess under the sanitizer.
    pub fn checked_ra(p: usize, kind: SubstrateKind, log2_local: u32, updates: usize) -> Report {
        checked_run(p, kind, |img| {
            let team = img.team_world();
            ra::run(img, &team, log2_local, updates);
        })
    }

    /// FFT under the sanitizer.
    pub fn checked_fft(p: usize, kind: SubstrateKind, log2_size: u32) -> Report {
        checked_run(p, kind, |img| {
            let team = img.team_world();
            fft::run(img, &team, log2_size);
        })
    }

    /// HPL under the sanitizer.
    pub fn checked_hpl(p: usize, kind: SubstrateKind, n: usize, nb: usize) -> Report {
        checked_run(p, kind, |img| {
            let team = img.team_world();
            hpl::run(img, &team, n, nb, 42);
        })
    }

    /// CGPOP under the sanitizer.
    pub fn checked_cgpop(p: usize, kind: SubstrateKind, mode: ExchangeMode) -> Report {
        checked_run(p, kind, move |img| {
            let team = img.team_world();
            cgpop::run(
                img,
                &team,
                CgpopParams {
                    nx: 16,
                    ny: 16,
                    iters: 12,
                },
                mode,
            );
        })
    }
}

/// Run `op_count` timed operations on image 0 of a `p`-image job and
/// return image 0's elapsed time (helper for `iter_custom`-style micro
/// benches).
pub fn timed_on_rank0<F>(p: usize, cfg: CafConfig, f: F) -> Duration
where
    F: Fn(&Image) -> Duration + Send + Sync,
{
    let times = CafUniverse::run_with_config(p, cfg, |img| f(img));
    times[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_rows_are_sane() {
        let row = real_ra(4, SubstrateKind::Mpi, 8, 500);
        assert!(row.metric > 0.0);
        assert_eq!(row.substrate, "CAF-MPI");
        let row = real_fft(4, SubstrateKind::Gasnet, 12);
        assert!(row.metric > 0.0);
    }

    #[test]
    fn memory_rows_reproduce_figure1_ordering() {
        let (g, m, d) = real_memory(4);
        assert!(g < m, "GASNet footprint below MPI: {g} !< {m}");
        assert_eq!(d, g + m, "duplicate = sum");
    }

    #[test]
    fn fusion_like_config_enables_srq_at_threshold() {
        let cfg = fusion_like(SubstrateKind::Gasnet);
        assert_eq!(cfg.gasnet.srq_auto_threshold, 128);
        assert!(cfg.gasnet.srq_receive_penalty_ns > 0.0);
        assert!(cfg.hybrid_mpi);
    }
}
