//! Microbenchmark panel (the paper's Mira/Edison rate plots): remote
//! coarray READ, WRITE, EVENT_NOTIFY, and team alltoall rates on both
//! substrates, measured with `iter_custom` inside a live job.

use std::time::{Duration, Instant};

use caf::{Coarray, Image, SubstrateKind};
use caf_bench::{fusion_like, timed_on_rank0};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn pairwise<F>(kind: SubstrateKind, iters: u64, f: F) -> Duration
where
    F: Fn(&Image, &Coarray<u64>, u64) -> Duration + Send + Sync,
{
    timed_on_rank0(2, fusion_like(kind), |img| {
        let w = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&w, 64);
        img.sync_all();
        let d = if img.this_image() == 0 {
            f(img, &ca, iters)
        } else {
            Duration::ZERO
        };
        img.sync_all();
        img.coarray_free(&w, ca);
        d
    })
}

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_ops");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(1));

    for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
        let name = match kind {
            SubstrateKind::Mpi => "caf-mpi",
            SubstrateKind::Gasnet => "caf-gasnet",
        };

        group.bench_function(BenchmarkId::new("write", name), |b| {
            b.iter_custom(|iters| {
                pairwise(kind, iters, |img, ca, iters| {
                    let data = [7u64];
                    let t = Instant::now();
                    for _ in 0..iters {
                        ca.write(img, 1, 0, &data);
                    }
                    t.elapsed()
                })
            })
        });

        group.bench_function(BenchmarkId::new("read", name), |b| {
            b.iter_custom(|iters| {
                pairwise(kind, iters, |img, ca, iters| {
                    let mut out = [0u64];
                    let t = Instant::now();
                    for _ in 0..iters {
                        ca.read(img, 1, 0, &mut out);
                    }
                    t.elapsed()
                })
            })
        });

        group.bench_function(BenchmarkId::new("event_notify", name), |b| {
            b.iter_custom(|iters| {
                timed_on_rank0(2, fusion_like(kind), |img| {
                    let w = img.team_world();
                    let ev = img.event_alloc(&w);
                    img.sync_all();
                    let d = if img.this_image() == 0 {
                        let t = Instant::now();
                        for _ in 0..iters {
                            img.event_notify(&w, &ev, 1);
                        }
                        t.elapsed()
                    } else {
                        for _ in 0..iters {
                            img.event_wait(&ev);
                        }
                        Duration::ZERO
                    };
                    img.sync_all();
                    d
                })
            })
        });

        group.bench_function(BenchmarkId::new("alltoall_8img", name), |b| {
            b.iter_custom(|iters| {
                timed_on_rank0(8, fusion_like(kind), |img| {
                    let w = img.team_world();
                    let send: Vec<u64> = (0..8).collect();
                    img.sync_all();
                    let t = Instant::now();
                    for _ in 0..iters {
                        let _ = img.alltoall(&w, &send, 1);
                    }
                    let d = t.elapsed();
                    img.sync_all();
                    if img.this_image() == 0 {
                        d
                    } else {
                        Duration::ZERO
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
