//! Figures 6/7 bench: FFT on both substrates. The MPI substrate's tuned
//! alltoall versus the GASNet runtime's hand-rolled AM exchange is the
//! paper's headline FFT result.

use std::time::Duration;

use caf::SubstrateKind;
use caf_bench::real_fft;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_fft");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let log2_size = 16u32;
    let m = 1u64 << log2_size;
    for p in [2usize, 4, 8] {
        group.throughput(Throughput::Elements(m));
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let name = match kind {
                SubstrateKind::Mpi => "caf-mpi",
                SubstrateKind::Gasnet => "caf-gasnet",
            };
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, &p| {
                // Time only the benchmark's own timed section.
                b.iter_custom(|iters| {
                    (0..iters)
                        .map(|_| Duration::from_secs_f64(real_fft(p, kind, log2_size).seconds))
                        .sum()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
