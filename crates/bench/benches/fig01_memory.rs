//! Figure 1 bench: runtime initialization cost and mapped-memory
//! footprint of GASNet-only / MPI-only / duplicate-runtimes jobs.
//!
//! Criterion times the full init+teardown; the measured byte footprints
//! (the actual Figure-1 quantity) are printed once per configuration.

use std::time::Duration;

use caf::{CafConfig, CafUniverse, SubstrateKind};
use caf_bench::real_memory;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_init(c: &mut Criterion) {
    for p in [4usize, 8] {
        let (g, m, d) = real_memory(p);
        eprintln!(
            "fig01 footprints at P={p}: GASNet-only {g} B, MPI-only {m} B, duplicate {d} B"
        );
    }

    let mut group = c.benchmark_group("fig01_memory_init");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for p in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("gasnet_only", p), &p, |b, &p| {
            b.iter(|| {
                CafUniverse::run_with_config(p, CafConfig::on(SubstrateKind::Gasnet), |img| {
                    img.runtime_memory_overhead()
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("mpi_only", p), &p, |b, &p| {
            b.iter(|| CafUniverse::run(p, |img| img.runtime_memory_overhead()))
        });
        group.bench_with_input(BenchmarkId::new("duplicate", p), &p, |b, &p| {
            b.iter(|| {
                CafUniverse::run_with_config(
                    p,
                    CafConfig {
                        hybrid_mpi: true,
                        ..CafConfig::on(SubstrateKind::Gasnet)
                    },
                    |img| img.runtime_memory_overhead(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_init);
criterion_main!(benches);
