//! Figures 3/5 bench: RandomAccess on both substrates with
//! Fusion-flavoured cost tables (substrate gaps visible in wall-clock).

use std::time::Duration;

use caf::SubstrateKind;
use caf_bench::real_ra;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_ra(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03_randomaccess");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let updates = 20_000usize;
    for p in [2usize, 4, 8] {
        group.throughput(Throughput::Elements((updates * p) as u64));
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let name = match kind {
                SubstrateKind::Mpi => "caf-mpi",
                SubstrateKind::Gasnet => "caf-gasnet",
            };
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, &p| {
                // Time only the benchmark's own timed section (job setup —
                // segment zeroing, library init — is excluded).
                b.iter_custom(|iters| {
                    (0..iters)
                        .map(|_| Duration::from_secs_f64(real_ra(p, kind, 10, updates).seconds))
                        .sum()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ra);
criterion_main!(benches);
