//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. `notify_flush`: `event_notify` with the paper's Θ(P)
//!    `MPI_Win_flush_all` vs. the §5 improvement direction (per-target
//!    flush, what `MPI_WIN_RFLUSH` would enable);
//! 2. `event_impl`: the paper's ISEND/RECV event implementation vs. the
//!    §3.4 alternative built on `MPI_FETCH_AND_OP` polling;
//! 3. `put_dst_event`: copy_async with a destination event — the §3.3
//!    case-4 AM data path — vs. a blocking write + notify;
//! 4. `finish_impl`: full termination-detection `finish` vs. the
//!    flush_all+barrier fast path, with no shipping in the block.

use std::time::{Duration, Instant};

use caf::{AsyncOpts, Coarray, NotifyFlush, SubstrateKind};
use caf_bench::{fusion_like, timed_on_rank0};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_notify_flush(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_notify_flush");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Several windows allocated → flush_all walks all of them × P ranks.
    for policy in [NotifyFlush::All, NotifyFlush::TargetOnly] {
        let name = match policy {
            NotifyFlush::All => "flush_all",
            NotifyFlush::TargetOnly => "flush_target",
        };
        group.bench_function(BenchmarkId::new(name, 8), |b| {
            b.iter_custom(|iters| {
                timed_on_rank0(8, fusion_like(SubstrateKind::Mpi), |img| {
                    let w = img.team_world();
                    let cas: Vec<Coarray<u64>> =
                        (0..4).map(|_| img.coarray_alloc(&w, 16)).collect();
                    let ev = img.event_alloc(&w);
                    img.sync_all();
                    let d = if img.this_image() == 0 {
                        let t = Instant::now();
                        for _ in 0..iters {
                            cas[0].write(img, 1, 0, &[1u64]);
                            img.event_notify_with_flush(&w, &ev, 1, policy);
                        }
                        t.elapsed()
                    } else {
                        if img.this_image() == 1 {
                            for _ in 0..iters {
                                img.event_wait(&ev);
                            }
                        }
                        Duration::ZERO
                    };
                    img.sync_all();
                    for ca in cas {
                        img.coarray_free(&w, ca);
                    }
                    d
                })
            })
        });
    }
    group.finish();
}

fn bench_event_impl(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_event_impl");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // The paper's chosen design: ISEND-based notify, blocking-recv wait.
    group.bench_function("isend_recv", |b| {
        b.iter_custom(|iters| {
            timed_on_rank0(2, fusion_like(SubstrateKind::Mpi), |img| {
                let w = img.team_world();
                let ping = img.event_alloc(&w);
                let pong = img.event_alloc(&w);
                img.sync_all();
                let d = if img.this_image() == 0 {
                    let t = Instant::now();
                    for _ in 0..iters {
                        img.event_notify(&w, &ping, 1);
                        img.event_wait(&pong);
                    }
                    t.elapsed()
                } else {
                    for _ in 0..iters {
                        img.event_wait(&ping);
                        img.event_notify(&w, &pong, 0);
                    }
                    Duration::ZERO
                };
                img.sync_all();
                d
            })
        })
    });

    // The §3.4 alternative: FETCH_AND_OP to post, polling reads to wait.
    group.bench_function("fetch_and_op_poll", |b| {
        b.iter_custom(|iters| {
            timed_on_rank0(2, fusion_like(SubstrateKind::Mpi), |img| {
                let w = img.team_world();
                let counters: Coarray<u64> = img.coarray_alloc(&w, 2); // [ping, pong]
                img.sync_all();
                let me = img.this_image();
                let wait_slot = |img: &caf::Image, slot: usize, round: u64| {
                    let mut out = [0u64];
                    loop {
                        counters.local_read(img, slot, &mut out);
                        if out[0] > round {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                };
                let d = if me == 0 {
                    let t = Instant::now();
                    for round in 0..iters {
                        counters.fetch_add(img, 1, 0, 1u64);
                        wait_slot(img, 1, round);
                    }
                    t.elapsed()
                } else {
                    for round in 0..iters {
                        wait_slot(img, 0, round);
                        counters.fetch_add(img, 0, 1, 1u64);
                    }
                    Duration::ZERO
                };
                img.sync_all();
                img.coarray_free(&w, counters);
                d
            })
        })
    });
    group.finish();
}

fn bench_put_dst_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_put_dst_event");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for payload in [64usize, 2048] {
        // Case 4: the AM data path (MPI cannot observe remote completion
        // of a PUT).
        group.bench_function(BenchmarkId::new("am_path", payload), |b| {
            b.iter_custom(|iters| {
                timed_on_rank0(2, fusion_like(SubstrateKind::Mpi), move |img| {
                    let w = img.team_world();
                    let ca: Coarray<u64> = img.coarray_alloc(&w, payload);
                    let ev = img.event_alloc(&w);
                    let data = vec![5u64; payload];
                    img.sync_all();
                    let d = if img.this_image() == 0 {
                        let t = Instant::now();
                        for _ in 0..iters {
                            img.copy_async_put(&ca, 1, 0, &data, AsyncOpts::with_dst(ev));
                        }
                        t.elapsed()
                    } else {
                        for _ in 0..iters {
                            img.event_wait(&ev);
                        }
                        Duration::ZERO
                    };
                    img.sync_all();
                    img.coarray_free(&w, ca);
                    d
                })
            })
        });

        // The direct alternative: blocking put (+flush) then notify.
        group.bench_function(BenchmarkId::new("put_flush_notify", payload), |b| {
            b.iter_custom(|iters| {
                timed_on_rank0(2, fusion_like(SubstrateKind::Mpi), move |img| {
                    let w = img.team_world();
                    let ca: Coarray<u64> = img.coarray_alloc(&w, payload);
                    let ev = img.event_alloc(&w);
                    let data = vec![5u64; payload];
                    img.sync_all();
                    let d = if img.this_image() == 0 {
                        let t = Instant::now();
                        for _ in 0..iters {
                            ca.write(img, 1, 0, &data);
                            img.event_notify_with_flush(&w, &ev, 1, NotifyFlush::TargetOnly);
                        }
                        t.elapsed()
                    } else {
                        for _ in 0..iters {
                            img.event_wait(&ev);
                        }
                        Duration::ZERO
                    };
                    img.sync_all();
                    img.coarray_free(&w, ca);
                    d
                })
            })
        });
    }
    group.finish();
}

fn bench_finish_impl(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_finish_impl");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("termination_detection", |b| {
        b.iter_custom(|iters| {
            timed_on_rank0(4, fusion_like(SubstrateKind::Mpi), |img| {
                let w = img.team_world();
                let ca: Coarray<u64> = img.coarray_alloc(&w, 4);
                img.sync_all();
                let t = Instant::now();
                for _ in 0..iters {
                    img.finish(&w, |img| {
                        let peer = (img.this_image() + 1) % 4;
                        img.copy_async_put(&ca, peer, 0, &[1u64], AsyncOpts::none());
                    });
                }
                let d = t.elapsed();
                img.sync_all();
                img.coarray_free(&w, ca);
                if img.this_image() == 0 {
                    d
                } else {
                    Duration::ZERO
                }
            })
        })
    });

    group.bench_function("fast_flush_barrier", |b| {
        b.iter_custom(|iters| {
            timed_on_rank0(4, fusion_like(SubstrateKind::Mpi), |img| {
                let w = img.team_world();
                let ca: Coarray<u64> = img.coarray_alloc(&w, 4);
                img.sync_all();
                let t = Instant::now();
                for _ in 0..iters {
                    img.finish_fast(&w, |img| {
                        let peer = (img.this_image() + 1) % 4;
                        img.copy_async_put(&ca, peer, 0, &[1u64], AsyncOpts::none());
                    });
                }
                let d = t.elapsed();
                img.sync_all();
                img.coarray_free(&w, ca);
                if img.this_image() == 0 {
                    d
                } else {
                    Duration::ZERO
                }
            })
        })
    });
    group.finish();
}

fn bench_alltoall_algorithm(c: &mut Criterion) {
    // What does MPI_ALLTOALL's tuning buy? Pairwise exchange vs the naive
    // linear exchange, same library, same transport (paper §4.2/§5).
    let mut group = c.benchmark_group("ablation_alltoall_algorithm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for (name, tuned) in [("pairwise_tuned", true), ("linear_naive", false)] {
        group.bench_function(BenchmarkId::new(name, 8), |b| {
            b.iter_custom(|iters| {
                timed_on_rank0(8, fusion_like(SubstrateKind::Mpi), move |img| {
                    let mpi = img.mpi().expect("MPI substrate");
                    let comm = mpi.world();
                    let send: Vec<u64> = (0..8 * 256).map(|i| i as u64).collect();
                    img.sync_all();
                    let t = Instant::now();
                    for _ in 0..iters {
                        if tuned {
                            let _ = mpi.alltoall(&comm, &send, 256).unwrap();
                        } else {
                            let _ = mpi.alltoall_linear(&comm, &send, 256).unwrap();
                        }
                    }
                    let d = t.elapsed();
                    img.sync_all();
                    if img.this_image() == 0 {
                        d
                    } else {
                        Duration::ZERO
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_notify_flush,
    bench_event_impl,
    bench_put_dst_event,
    bench_finish_impl,
    bench_alltoall_algorithm
);
criterion_main!(benches);
