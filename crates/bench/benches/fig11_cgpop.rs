//! Figures 11/12 bench: the hybrid MPI+CAF CGPOP miniapp, PUSH vs PULL
//! halo exchanges on both substrates — all four variants expected within
//! a few percent, as the paper finds.

use std::time::Duration;

use caf::SubstrateKind;
use caf_bench::real_cgpop;
use caf_hpcc::cgpop::ExchangeMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cgpop(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_cgpop");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let p = 4usize;
    let variants = [
        ("mpi-push", SubstrateKind::Mpi, ExchangeMode::Push),
        ("mpi-pull", SubstrateKind::Mpi, ExchangeMode::Pull),
        ("gasnet-push", SubstrateKind::Gasnet, ExchangeMode::Push),
        ("gasnet-pull", SubstrateKind::Gasnet, ExchangeMode::Pull),
    ];
    for (name, kind, mode) in variants {
        group.bench_with_input(BenchmarkId::new(name, p), &p, |b, &p| {
            // Time only the benchmark's own timed section.
            b.iter_custom(|iters| {
                (0..iters)
                    .map(|_| {
                        Duration::from_secs_f64(real_cgpop(p, kind, mode, 24, 24, 40).seconds)
                    })
                    .sum()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cgpop);
criterion_main!(benches);
