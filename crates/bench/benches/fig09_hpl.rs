//! Figures 9/10 bench: HPL on both substrates — expected to be
//! indistinguishable (compute-bound), as the paper finds.

use std::time::Duration;

use caf::SubstrateKind;
use caf_bench::real_hpl;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hpl(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_hpl");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for p in [2usize, 4] {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let name = match kind {
                SubstrateKind::Mpi => "caf-mpi",
                SubstrateKind::Gasnet => "caf-gasnet",
            };
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, &p| {
                // Time only the benchmark's own timed section.
                b.iter_custom(|iters| {
                    (0..iters)
                        .map(|_| Duration::from_secs_f64(real_hpl(p, kind, 128, 16).seconds))
                        .sum()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hpl);
criterion_main!(benches);
