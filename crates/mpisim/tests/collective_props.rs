//! Property-based tests: every collective, on arbitrary communicator
//! sizes and payloads, matches its serial definition.

use caf_mpisim::Universe;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn allreduce_equals_serial_fold(
        n in 1usize..7,
        per_rank in proptest::collection::vec(any::<i64>(), 7),
        len in 1usize..5,
    ) {
        let contributions: Vec<Vec<i64>> = (0..n)
            .map(|r| (0..len).map(|i| per_rank[r].wrapping_add(i as i64)).collect())
            .collect();
        let expect: Vec<i64> = (0..len)
            .map(|i| contributions.iter().fold(0i64, |a, c| a.wrapping_add(c[i])))
            .collect();
        let c2 = contributions.clone();
        let results = Universe::run(n, move |mpi| {
            let w = mpi.world();
            mpi.allreduce(&w, &c2[mpi.rank()], |a, b| a.wrapping_add(b)).unwrap()
        });
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn alltoall_is_a_transpose(n in 1usize..7, block in 1usize..4, seed in any::<u64>()) {
        let results = Universe::run(n, move |mpi| {
            let w = mpi.world();
            let me = mpi.rank() as u64;
            let send: Vec<u64> = (0..(n * block) as u64)
                .map(|i| seed ^ (me << 40) ^ i)
                .collect();
            mpi.alltoall(&w, &send, block).unwrap()
        });
        for (dst, recv) in results.iter().enumerate() {
            for src in 0..n {
                for b in 0..block {
                    let expect = seed ^ ((src as u64) << 40) ^ ((dst * block + b) as u64);
                    prop_assert_eq!(recv[src * block + b], expect);
                }
            }
        }
    }

    #[test]
    fn bcast_from_random_root(n in 1usize..7, root_sel in any::<u64>(), payload in proptest::collection::vec(any::<f64>(), 1..20)) {
        let root = (root_sel % n as u64) as usize;
        let p2 = payload.clone();
        let results = Universe::run(n, move |mpi| {
            let w = mpi.world();
            let mut data = if mpi.rank() == root { p2.clone() } else { Vec::new() };
            mpi.bcast(&w, root, &mut data).unwrap();
            data
        });
        for r in results {
            prop_assert_eq!(r.len(), payload.len());
            for (a, b) in r.iter().zip(&payload) {
                prop_assert!(a == b || (a.is_nan() && b.is_nan()));
            }
        }
    }

    #[test]
    fn gather_scatter_roundtrip(n in 1usize..7, root_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel % n as u64) as usize;
        let results = Universe::run(n, move |mpi| {
            let w = mpi.world();
            let mine = [seed ^ mpi.rank() as u64];
            let gathered = mpi.gather(&w, root, &mine).unwrap();
            let data = gathered.unwrap_or_default();
            let back = mpi.scatter(&w, root, &data, 1).unwrap();
            back[0]
        });
        for (r, got) in results.into_iter().enumerate() {
            prop_assert_eq!(got, seed ^ r as u64);
        }
    }

    #[test]
    fn scan_matches_prefix_fold(n in 1usize..7, per_rank in proptest::collection::vec(any::<i64>(), 7)) {
        let vals = per_rank[..n].to_vec();
        let v2 = vals.clone();
        let results = Universe::run(n, move |mpi| {
            let w = mpi.world();
            mpi.scan(&w, &[v2[mpi.rank()]], |a, b| a.wrapping_add(b)).unwrap()[0]
        });
        let mut acc = 0i64;
        for (r, got) in results.into_iter().enumerate() {
            acc = acc.wrapping_add(vals[r]);
            prop_assert_eq!(got, acc);
        }
    }

    #[test]
    fn comm_split_partitions_consistently(
        n in 2usize..7,
        colors in proptest::collection::vec(0u64..3, 7),
        keys in proptest::collection::vec(-10i64..10, 7),
    ) {
        let colors = colors[..n].to_vec();
        let keys = keys[..n].to_vec();
        let (c2, k2) = (colors.clone(), keys.clone());
        let results = Universe::run(n, move |mpi| {
            let w = mpi.world();
            let me = mpi.rank();
            let sub = mpi.comm_split(&w, c2[me], k2[me]).unwrap();
            (sub.size(), sub.rank(), sub.members().to_vec())
        });
        for (me, (size, rank, members)) in results.into_iter().enumerate() {
            // Expected group: ranks with my color ordered by (key, rank).
            let mut group: Vec<usize> = (0..n).filter(|&r| colors[r] == colors[me]).collect();
            group.sort_by_key(|&r| (keys[r], r));
            prop_assert_eq!(size, group.len());
            prop_assert_eq!(&members, &group);
            prop_assert_eq!(group[rank], me);
        }
    }
}
