//! Property-based tests for the one-sided layer: random disjoint put/get
//! programs against a shadow state, and accumulate streams against their
//! serial folds.

use caf_mpisim::{AccOp, Universe};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random disjoint puts from both ranks of a pair; every cell must
    /// match the shadow afterwards, read both locally and remotely.
    #[test]
    fn disjoint_puts_match_shadow(
        ops in proptest::collection::vec(
            // (origin, target, slot, value); slots 0..16 per rank.
            (0usize..2, 0usize..2, 0usize..16, any::<u64>()),
            1..32,
        )
    ) {
        // Keep the outcome deterministic: one writer per (target, slot).
        let mut seen = std::collections::HashSet::new();
        let ops: Vec<_> = ops
            .into_iter()
            .filter(|&(_, t, s, _)| seen.insert((t, s)))
            .collect();
        let mut shadow = [[0u64; 16]; 2];
        for &(_, t, s, v) in &ops {
            shadow[t][s] = v;
        }
        let ops2 = ops.clone();
        let locals = Universe::run(2, move |mpi| {
            let comm = mpi.world();
            let win = mpi.win_allocate(&comm, 16 * 8).unwrap();
            mpi.win_lock_all(&win);
            for &(origin, target, slot, value) in &ops2 {
                if mpi.rank() == origin {
                    mpi.put(&win, target, slot * 8, &[value]).unwrap();
                }
            }
            mpi.win_flush_all(&win).unwrap();
            mpi.barrier(&comm).unwrap();
            let mut local = [0u64; 16];
            mpi.win_read_local(&win, 0, &mut local).unwrap();
            // Cross-check with a remote read of the peer.
            let peer = 1 - mpi.rank();
            let mut remote = [0u64; 16];
            mpi.get(&win, peer, 0, &mut remote).unwrap();
            mpi.barrier(&comm).unwrap();
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
            (local, remote)
        });
        for rank in 0..2 {
            prop_assert_eq!(locals[rank].0, shadow[rank]);
            prop_assert_eq!(locals[rank].1, shadow[1 - rank]);
        }
    }

    /// Concurrent accumulate streams from every rank equal the serial
    /// fold (SUM on u64 wraps; XOR composes).
    #[test]
    fn accumulate_streams_fold(
        n in 1usize..5,
        values in proptest::collection::vec(any::<u64>(), 8),
        use_xor in any::<bool>(),
    ) {
        let vals = values.clone();
        let op = if use_xor { AccOp::Bxor } else { AccOp::Sum };
        let results = Universe::run(n, move |mpi| {
            let comm = mpi.world();
            let win = mpi.win_allocate(&comm, 8).unwrap();
            mpi.win_lock_all(&win);
            for &v in &vals {
                mpi.accumulate(&win, 0, 0, &[v], op).unwrap();
            }
            mpi.win_flush(&win, 0).unwrap();
            mpi.barrier(&comm).unwrap();
            let mut out = [0u64];
            mpi.win_read_local(&win, 0, &mut out).unwrap();
            mpi.barrier(&comm).unwrap();
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
            out[0]
        });
        let per_rank = if use_xor {
            values.iter().fold(0u64, |a, &v| a ^ v)
        } else {
            values.iter().fold(0u64, |a, &v| a.wrapping_add(v))
        };
        let expect = if use_xor {
            // XOR of n identical streams: cancels pairwise.
            if n % 2 == 0 { 0 } else { per_rank }
        } else {
            (0..n).fold(0u64, |a, _| a.wrapping_add(per_rank))
        };
        prop_assert_eq!(results[0], expect);
    }

    /// fetch_and_op returns a permutation of partial sums: sorted previous
    /// values must be exactly the prefix sums of the increment.
    #[test]
    fn fetch_and_op_previous_values_are_prefix_sums(n in 1usize..6, inc in 1u64..1000) {
        let results = Universe::run(n, move |mpi| {
            let comm = mpi.world();
            let win = mpi.win_allocate(&comm, 8).unwrap();
            mpi.win_lock_all(&win);
            let prev = mpi.fetch_and_op(&win, 0, 0, inc, AccOp::Sum).unwrap();
            mpi.barrier(&comm).unwrap();
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
            prev
        });
        let mut prevs = results;
        prevs.sort_unstable();
        let expect: Vec<u64> = (0..n as u64).map(|k| k * inc).collect();
        prop_assert_eq!(prevs, expect);
    }

    /// Strided puts hit exactly the strided cells and nothing else.
    #[test]
    fn strided_puts_touch_only_their_cells(
        stride in 1usize..5,
        count in 1usize..6,
        start in 0usize..4,
        value in any::<u64>(),
    ) {
        let len = 32usize;
        prop_assume!(start + (count - 1) * stride < len);
        let data = vec![value; count];
        let d2 = data.clone();
        let cells = Universe::run(2, move |mpi| {
            let comm = mpi.world();
            let win = mpi.win_allocate(&comm, len * 8).unwrap();
            mpi.win_lock_all(&win);
            if mpi.rank() == 0 {
                mpi.put_vector(&win, 1, start * 8, stride, &d2).unwrap();
                mpi.win_flush(&win, 1).unwrap();
            }
            mpi.barrier(&comm).unwrap();
            let mut local = vec![0u64; len];
            mpi.win_read_local(&win, 0, &mut local).unwrap();
            mpi.barrier(&comm).unwrap();
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
            local
        });
        let mut shadow = vec![0u64; len];
        for i in 0..count {
            shadow[start + i * stride] = value;
        }
        prop_assert_eq!(&cells[1], &shadow);
        prop_assert!(cells[0].iter().all(|&v| v == 0));
    }
}
