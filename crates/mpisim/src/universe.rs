//! Job launch and per-rank MPI state (`MPI_Init` .. `MPI_Finalize`).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use caf_fabric::delay::{DelayConfig, DelayMeter, Delays};
use caf_fabric::{Endpoint, Fabric, Fault, MemAccount, MemCategory, Packet};

use crate::comm::Comm;

/// Configuration of one MPI "job".
#[derive(Debug, Clone, Copy)]
pub struct MpiConfig {
    /// Software-overhead table charged per operation.
    pub delays: DelayConfig,
    /// Eager protocol threshold in bytes. Messages at or below this size
    /// are buffered by the library (local completion at injection); larger
    /// messages still travel eagerly on this lossless fabric but are
    /// accounted as rendezvous traffic.
    pub eager_limit: usize,
    /// Bytes of bounce/eager buffering the library maps per peer at init
    /// (drives the Figure-1 memory accounting).
    pub eager_buffer_per_peer: usize,
    /// Fixed library state mapped at init, independent of job size.
    pub base_footprint: usize,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            delays: DelayConfig::free(),
            eager_limit: 64 << 10,
            // Scaled-down stand-ins for a real MPI's mapped memory (the
            // netmodel crate holds the full-scale Figure-1 magnitudes).
            eager_buffer_per_peer: 16 << 10,
            base_footprint: 1 << 20,
        }
    }
}

/// Launcher for SPMD jobs over the MPI substrate.
pub struct Universe;

impl Universe {
    /// Run `f` on `size` ranks with default configuration; returns per-rank
    /// results in rank order.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Mpi) -> T + Send + Sync,
    {
        Self::run_with_config(size, MpiConfig::default(), f)
    }

    /// Run `f` on `size` ranks with an explicit configuration.
    pub fn run_with_config<T, F>(size: usize, config: MpiConfig, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Mpi) -> T + Send + Sync,
    {
        Fabric::run(size, |ep| {
            let mpi = Mpi::init(ep, config);
            f(&mpi)
        })
    }
}

pub(crate) struct CommState {
    /// Collective sequence number — advances identically on every member
    /// because collectives are collective.
    pub coll_seq: Cell<u64>,
    /// Number of child communicators created from this one.
    pub children: Cell<u64>,
}

/// A rank's handle to the MPI library (everything `MPI_COMM_WORLD` and
/// below). One `Mpi` exists per rank thread; it is not `Sync`.
pub struct Mpi {
    pub(crate) ep: Endpoint,
    pub(crate) fault: Fault,
    pub(crate) delays: Delays,
    pub(crate) config: MpiConfig,
    pub(crate) mem: Arc<MemAccount>,
    pub(crate) unexpected: RefCell<VecDeque<Packet>>,
    pub(crate) comm_states: RefCell<HashMap<u64, CommState>>,
    /// Sequence numbers for synchronous-send acknowledgements.
    pub(crate) ssend_seq: Cell<u64>,
    world: Comm,
    /// Keeps the accounted eager pool allocation alive for the lifetime of
    /// the library instance.
    _eager_pool: Vec<u8>,
}

impl Mpi {
    /// `MPI_Init`: build per-rank library state on a fabric endpoint.
    pub fn init(ep: Endpoint, config: MpiConfig) -> Self {
        let size = ep.size();
        let rank = ep.rank();
        let mem = Arc::new(MemAccount::new());

        // Map the library's working memory and account it (Figure 1).
        let pool_bytes = config.base_footprint + config.eager_buffer_per_peer * size;
        let eager_pool = vec![0u8; pool_bytes];
        mem.map(MemCategory::EagerBuffers, config.eager_buffer_per_peer * size);
        mem.map(MemCategory::SegmentMeta, config.base_footprint / 2);
        mem.map(MemCategory::Matching, config.base_footprint / 4);
        mem.map(MemCategory::CollectiveScratch, config.base_footprint / 4);
        mem.map(MemCategory::PerPeerState, 256 * size);

        let world = Comm::new(0, (0..size).collect::<Vec<_>>().into(), rank);
        let fault = ep.fault();
        let mpi = Mpi {
            ep,
            fault,
            delays: Delays::new(config.delays),
            config,
            mem,
            unexpected: RefCell::new(VecDeque::new()),
            comm_states: RefCell::new(HashMap::new()),
            ssend_seq: Cell::new(0),
            world,
            _eager_pool: eager_pool,
        };
        mpi.ensure_comm_state(0);
        mpi
    }

    /// `MPI_COMM_WORLD`.
    pub fn world(&self) -> Comm {
        self.world.clone()
    }

    /// Global rank of this process.
    pub fn rank(&self) -> usize {
        self.world.rank()
    }

    /// Job size.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// The memory accountant for this rank's library instance.
    pub fn mem(&self) -> &MemAccount {
        &self.mem
    }

    /// The configured software-overhead table.
    pub fn delays(&self) -> &DelayConfig {
        self.delays.config()
    }

    /// The modeled-cost ledger for this rank (counts and modeled
    /// nanoseconds per [`caf_fabric::DelayOp`]); deterministic across runs.
    pub fn delay_meter(&self) -> &DelayMeter {
        self.delays.meter()
    }

    /// The eager protocol threshold in bytes.
    pub fn eager_limit(&self) -> usize {
        self.config.eager_limit
    }

    /// Raw fabric endpoint (used by layered runtimes that need to share the
    /// fabric, e.g. a GASNet instance in the "duplicate runtimes" memory
    /// experiment).
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    /// Handle onto the fabric's failure registry.
    pub fn fault(&self) -> Fault {
        self.fault.clone()
    }

    /// Kill this rank here (fault injection / `fail image`).
    pub fn fail_now(&self) -> ! {
        self.ep.fail_now()
    }

    /// Deterministic survivor communicator — the ULFM `MPI_Comm_shrink`
    /// analog. Every survivor derives the *same* child context id from
    /// the parent id and the excluded set, without communication (the
    /// fixed point the ULFM agreement collective would reach), so the
    /// shrink itself cannot hang on the very failure it excludes.
    ///
    /// # Panics
    ///
    /// Panics if the calling rank is itself in `failed`.
    pub fn comm_shrink(&self, comm: &Comm, failed: &[usize]) -> Comm {
        let ranks: Vec<usize> = comm
            .members()
            .iter()
            .copied()
            .filter(|r| !failed.contains(r))
            .collect();
        let my_idx = ranks
            .iter()
            .position(|&g| g == self.rank())
            .expect("comm_shrink caller must be a survivor");
        let mut h = 0xFA_u64;
        for &r in failed {
            h = crate::comm::splitmix64(h ^ (r as u64 + 1));
        }
        let id = crate::comm::derive_comm_id(comm.id, h, 0xFA);
        self.ensure_comm_state(id);
        Comm::new(id, ranks.into(), my_idx)
    }

    pub(crate) fn ensure_comm_state(&self, comm_id: u64) {
        self.comm_states
            .borrow_mut()
            .entry(comm_id)
            .or_insert_with(|| CommState {
                coll_seq: Cell::new(0),
                children: Cell::new(0),
            });
    }

    /// Advance and return the collective sequence number for `comm`.
    pub(crate) fn next_coll_seq(&self, comm: &Comm) -> u64 {
        let states = self.comm_states.borrow();
        let st = states
            .get(&comm.id)
            .expect("communicator used before creation");
        let s = st.coll_seq.get();
        st.coll_seq.set(s + 1);
        s
    }

    /// Advance and return the child-communicator counter for `comm`.
    pub(crate) fn next_child_index(&self, comm: &Comm) -> u64 {
        let states = self.comm_states.borrow();
        let st = states
            .get(&comm.id)
            .expect("communicator used before creation");
        let c = st.children.get();
        st.children.set(c + 1);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_builds_world() {
        let sizes = Universe::run(4, |mpi| {
            assert_eq!(mpi.world().id(), 0);
            (mpi.rank(), mpi.size())
        });
        assert_eq!(sizes, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn init_accounts_memory() {
        Universe::run(4, |mpi| {
            let overhead = mpi.mem().runtime_overhead();
            let cfg = MpiConfig::default();
            assert!(overhead >= cfg.base_footprint);
            assert_eq!(
                mpi.mem().mapped(MemCategory::EagerBuffers),
                cfg.eager_buffer_per_peer * 4
            );
        });
    }

    #[test]
    fn eager_buffers_scale_with_job_size() {
        let a = Universe::run(2, |mpi| mpi.mem().runtime_overhead())[0];
        let b = Universe::run(8, |mpi| mpi.mem().runtime_overhead())[0];
        assert!(b > a, "footprint must grow with peers: {a} !< {b}");
    }

    #[test]
    fn coll_seq_advances() {
        Universe::run(1, |mpi| {
            let w = mpi.world();
            assert_eq!(mpi.next_coll_seq(&w), 0);
            assert_eq!(mpi.next_coll_seq(&w), 1);
            assert_eq!(mpi.next_child_index(&w), 0);
            assert_eq!(mpi.next_child_index(&w), 1);
        });
    }
}
