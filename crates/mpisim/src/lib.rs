#![warn(missing_docs)]

//! # caf-mpisim
//!
//! An MPI-3 subset implemented from scratch over [`caf_fabric`], sufficient
//! to serve as the communication substrate of a PGAS runtime in the way the
//! paper *Portable, MPI-Interoperable Coarray Fortran* (PPoPP'14) uses real
//! MPI-3:
//!
//! * **two-sided messaging** with full `(source, tag, communicator)`
//!   matching, wildcards, and eager delivery (`send`, `recv`, `isend`,
//!   `irecv`, `sendrecv`, requests with `wait`/`test`/`waitall`);
//! * **communicators**: `comm_world`, `dup`, `split`, deterministic
//!   collective id agreement;
//! * **collectives**: barrier, broadcast, reduce, allreduce, scan,
//!   gather, allgather, alltoall, alltoallv — implemented with the classic
//!   tuned algorithms (dissemination, binomial trees, recursive doubling,
//!   pairwise exchange). These are the "years of optimization" the paper
//!   credits for CAF-MPI's FFT win;
//! * **one-sided RMA**: `win_allocate`, dynamic windows, `put`/`get`,
//!   request-generating `rput`/`rget`, `accumulate`/`get_accumulate`,
//!   `fetch_and_op`, `compare_and_swap`, passive-target `lock_all`,
//!   `flush`/`flush_all`. RMA is genuinely one-sided: data plane operations
//!   access the target's registered segment directly and never require the
//!   target thread, which is what makes the paper's Figure 2 pattern safe.
//!
//! ## Deliberately-preserved implementation artifacts
//!
//! Two behaviours of real MPICH-derived MPI libraries are modelled
//! explicitly because the paper's evaluation hinges on them:
//!
//! 1. [`Mpi::win_flush_all`] performs a flush handshake with **every** rank
//!    of the window's communicator — Θ(P) — matching "the current
//!    implementation of `MPI_WIN_FLUSH_ALL` in all MPICH derivatives"
//!    (paper §4.1). `event_notify` built on it therefore slows down
//!    linearly with job size.
//! 2. There is no way to test *remote* completion of a `put` without a
//!    (potentially blocking) flush; `rput` requests only certify local
//!    completion (paper §3.3).

pub mod collective;
pub mod comm;
pub mod dynwin;
pub mod costs;
pub mod memmodel;
pub mod ops;
pub mod p2p;
pub mod request;
pub mod rma;
pub mod universe;

pub use caf_fabric::{FabricError, Pod, Result};
pub use comm::Comm;
pub use costs::{mvapich_like, TIME_SCALE};
pub use dynwin::{DynAddr, DynWindow};
pub use memmodel::SeparateWindow;
pub use ops::{AccOp, BitsRepr, Scalar};
pub use p2p::{RecvRequest, SendRequest, Src, Status, Tag};
pub use request::{FlushRequest, RmaRequest};
pub use rma::{DirtySet, Window};
pub use universe::{Mpi, MpiConfig, Universe};
