//! Two-sided messaging: send/recv with `(source, tag, communicator)`
//! matching, wildcards, and request-generating variants.

use bytes::Bytes;

use caf_fabric::delay::DelayOp;
use caf_fabric::pod::{as_bytes, vec_from_bytes};
use caf_fabric::{FabricError, Packet, Pod, Result};

use crate::comm::Comm;
use crate::universe::Mpi;

/// Packet kind for user-level point-to-point traffic.
pub(crate) const KIND_P2P: u16 = 1;
/// Packet kind for internal collective traffic.
pub(crate) const KIND_COLL: u16 = 2;
/// Packet kind for synchronous-send acknowledgements.
pub(crate) const KIND_SSEND_ACK: u16 = 3;

/// Source selector for a receive (`MPI_ANY_SOURCE` or a specific rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Match a message from any source (`MPI_ANY_SOURCE`).
    Any,
    /// Match only messages from this communicator rank.
    Rank(usize),
}

/// Tag selector for a receive (`MPI_ANY_TAG` or a specific tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
    /// Match only this tag.
    Is(i64),
}

/// Completion information of a receive (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Communicator rank of the sender.
    pub source: usize,
    /// Tag of the matched message.
    pub tag: i64,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// Handle for a nonblocking send. Sends complete eagerly on this substrate
/// (the library buffers the payload at injection), so the handle exists for
/// API fidelity: `wait` certifies local completion.
#[derive(Debug)]
#[must_use = "requests must be completed with wait()"]
pub struct SendRequest(pub(crate) ());

impl SendRequest {
    /// Wait for local completion (immediate on this substrate).
    pub fn wait(self) {}

    /// Nonblocking completion test.
    pub fn test(&self) -> bool {
        true
    }
}

/// Handle for a nonblocking receive of `T` elements.
#[derive(Debug)]
#[must_use = "requests must be completed with wait()"]
pub struct RecvRequest<T: Pod> {
    pub(crate) comm: Comm,
    pub(crate) src: Src,
    pub(crate) tag: Tag,
    pub(crate) done: Option<(Vec<T>, Status)>,
}

impl<T: Pod> RecvRequest<T> {
    /// Block until the message arrives; returns the data and its status.
    pub fn wait(mut self, mpi: &Mpi) -> (Vec<T>, Status) {
        if let Some(r) = self.done.take() {
            return r;
        }
        mpi.recv::<T>(&self.comm, self.src, self.tag)
            .expect("recv failed")
    }

    /// Nonblocking test; on success the result is buffered and `wait`
    /// returns immediately.
    pub fn test(&mut self, mpi: &Mpi) -> bool {
        if self.done.is_some() {
            return true;
        }
        if let Some(pkt) = mpi.try_match_p2p(&self.comm, self.src, self.tag) {
            self.done = Some(unpack::<T>(&self.comm, pkt));
            return true;
        }
        false
    }
}

fn unpack<T: Pod>(comm: &Comm, pkt: Packet) -> (Vec<T>, Status) {
    let status = Status {
        source: pkt.h[1] as usize,
        tag: pkt.tag,
        bytes: pkt.payload.len(),
    };
    debug_assert_eq!(pkt.h[0], comm.id);
    (vec_from_bytes::<T>(&pkt.payload), status)
}

/// Marker in `h[2]` requesting a matched-acknowledgement (`MPI_Ssend`).
const SSEND_FLAG: u64 = 1;

impl Mpi {
    /// Generic ordered matcher: return the first packet (in arrival order)
    /// satisfying `pred`, stashing non-matching packets on the unexpected
    /// queue. Blocking.
    ///
    /// `watch` is the partner set this wait depends on: if any of those
    /// ranks is marked failed, the wait returns
    /// [`FabricError::ImageFailed`] instead of hanging. Already-arrived
    /// data wins over a failure notice (a stashed match is returned even
    /// if its sender has since died).
    pub(crate) fn match_packet(
        &self,
        watch: &[usize],
        pred: impl Fn(&Packet) -> bool,
    ) -> Result<Packet> {
        {
            let mut q = self.unexpected.borrow_mut();
            if let Some(pos) = q.iter().position(&pred) {
                return Ok(q.remove(pos).expect("position came from iter"));
            }
        }
        loop {
            // Pull everything already delivered *before* consulting the
            // failure registry: sends inject synchronously, so anything a
            // member sent before dying is in the mailbox ahead of its
            // failure notice — that data must win over the death, or a
            // collective the dead rank fully participated in would
            // spuriously fail on survivors.
            while let Some(pkt) = self.ep.try_recv() {
                if pred(&pkt) {
                    return Ok(pkt);
                }
                self.unexpected.borrow_mut().push_back(pkt);
            }
            // The registry is authoritative (marked before any notice is
            // sent), so re-checking it at the top of every wait covers
            // notices consumed by unrelated waits.
            let failed = self.fault.failed_of(watch);
            if !failed.is_empty() {
                return Err(FabricError::ImageFailed { failed });
            }
            match self.ep.recv_blocking() {
                Ok(pkt) => {
                    if pred(&pkt) {
                        return Ok(pkt);
                    }
                    self.unexpected.borrow_mut().push_back(pkt);
                }
                // Failure notice for an image outside `watch`: not ours
                // to report; the loop top re-checks and keeps waiting.
                Err(FabricError::ImageFailed { .. }) => continue,
                Err(e) => panic!("fabric torn down while receiving: {e}"),
            }
        }
    }

    /// Nonblocking variant of [`Mpi::match_packet`].
    pub(crate) fn try_match_packet(&self, pred: impl Fn(&Packet) -> bool) -> Option<Packet> {
        {
            let mut q = self.unexpected.borrow_mut();
            if let Some(pos) = q.iter().position(&pred) {
                return q.remove(pos);
            }
        }
        while let Some(pkt) = self.ep.try_recv() {
            if pred(&pkt) {
                return Some(pkt);
            }
            self.unexpected.borrow_mut().push_back(pkt);
        }
        None
    }

    fn p2p_pred<'a>(
        &self,
        comm: &'a Comm,
        src: Src,
        tag: Tag,
    ) -> impl Fn(&Packet) -> bool + 'a {
        let comm_id = comm.id;
        move |p: &Packet| {
            p.kind == KIND_P2P
                && p.h[0] == comm_id
                && match src {
                    Src::Any => true,
                    Src::Rank(r) => p.h[1] as usize == r,
                }
                && match tag {
                    Tag::Any => true,
                    Tag::Is(t) => p.tag == t,
                }
        }
    }

    pub(crate) fn try_match_p2p(&self, comm: &Comm, src: Src, tag: Tag) -> Option<Packet> {
        self.try_match_packet(self.p2p_pred(comm, src, tag))
    }

    /// Blocking standard-mode send (eager: completes locally at return).
    pub fn send<T: Pod>(&self, comm: &Comm, dest: usize, tag: i64, buf: &[T]) -> Result<()> {
        let bytes = as_bytes(buf);
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::MpiSend,
                Some(comm.global_rank(dest)),
                bytes.len() as u64,
                None,
            );
        }
        self.delays.charge(DelayOp::P2pInject, bytes.len());
        let pkt = Packet::with_payload(
            self.ep.rank(),
            KIND_P2P,
            tag,
            [comm.id, comm.rank() as u64, 0, 0],
            Bytes::copy_from_slice(bytes),
        );
        self.ep.send(comm.global_rank(dest), pkt)
    }

    /// Nonblocking send; the library buffers the payload, so the returned
    /// request is already locally complete (`MPI_Isend` on an eager path).
    pub fn isend<T: Pod>(
        &self,
        comm: &Comm,
        dest: usize,
        tag: i64,
        buf: &[T],
    ) -> Result<SendRequest> {
        self.send(comm, dest, tag, buf)?;
        Ok(SendRequest(()))
    }

    /// Blocking receive returning a freshly allocated buffer.
    pub fn recv<T: Pod>(&self, comm: &Comm, src: Src, tag: Tag) -> Result<(Vec<T>, Status)> {
        let gsrc = match src {
            Src::Any => None,
            Src::Rank(r) => Some(comm.global_rank(r)),
        };
        // Under the model, name the sender this receive waits on so a
        // deadlock report shows the wait-for edge.
        let _hint = gsrc.map(caf_fabric::sched::wait_hint);
        let mut span = caf_trace::span_t(caf_trace::Op::MpiRecv, gsrc, 0, None);
        // Watch the whole communicator, not just `src`: a wildcard recv
        // depends on every member, and even a named-source recv can hang
        // transitively if a third member's failure stalls the sender.
        let pkt = self.match_packet(comm.members(), self.p2p_pred(comm, src, tag))?;
        span.set_bytes(pkt.payload.len() as u64);
        self.delays.charge(DelayOp::P2pReceive, pkt.payload.len());
        if pkt.h[2] == SSEND_FLAG {
            // Synchronous-mode sender is blocked on the match: ack it.
            self.ep.send(
                pkt.src,
                Packet::control(self.ep.rank(), KIND_SSEND_ACK, 0, [pkt.h[3], 0, 0, 0]),
            )?;
        }
        Ok(unpack::<T>(comm, pkt))
    }

    /// Synchronous-mode send (`MPI_Ssend`): completes only once the
    /// receiver has *matched* the message — the strongest two-sided
    /// completion guarantee, useful for enforcing rendezvous semantics in
    /// tests and protocols.
    pub fn ssend<T: Pod>(&self, comm: &Comm, dest: usize, tag: i64, buf: &[T]) -> Result<()> {
        let bytes = as_bytes(buf);
        self.delays.charge(DelayOp::P2pInject, bytes.len());
        let seq = {
            let s = self.ssend_seq.get();
            self.ssend_seq.set(s + 1);
            s
        };
        let pkt = Packet::with_payload(
            self.ep.rank(),
            KIND_P2P,
            tag,
            [comm.id, comm.rank() as u64, SSEND_FLAG, seq],
            Bytes::copy_from_slice(bytes),
        );
        let gdest = comm.global_rank(dest);
        self.ep.send(gdest, pkt)?;
        // Block until the matching ack arrives (other traffic is stashed).
        let _ = self.match_packet(&[gdest], move |p| {
            p.kind == KIND_SSEND_ACK && p.h[0] == seq
        })?;
        Ok(())
    }

    /// Blocking receive into a caller-provided buffer. The message must fit
    /// exactly; a size mismatch is a protocol error and panics (real MPI
    /// would raise `MPI_ERR_TRUNCATE`).
    pub fn recv_into<T: Pod>(
        &self,
        comm: &Comm,
        src: Src,
        tag: Tag,
        buf: &mut [T],
    ) -> Result<Status> {
        let (data, status) = self.recv::<T>(comm, src, tag)?;
        assert_eq!(
            data.len(),
            buf.len(),
            "recv_into: message of {} elements does not fit buffer of {}",
            data.len(),
            buf.len()
        );
        buf.copy_from_slice(&data);
        Ok(status)
    }

    /// Nonblocking receive.
    pub fn irecv<T: Pod>(&self, comm: &Comm, src: Src, tag: Tag) -> RecvRequest<T> {
        RecvRequest {
            comm: comm.clone(),
            src,
            tag,
            done: None,
        }
    }

    /// Combined send+receive (`MPI_Sendrecv`): injects the outgoing message
    /// first, then blocks on the incoming one — deadlock-free under the
    /// eager protocol.
    pub fn sendrecv<T: Pod, U: Pod>(
        &self,
        comm: &Comm,
        dest: usize,
        send_tag: i64,
        sendbuf: &[T],
        src: Src,
        recv_tag: Tag,
    ) -> Result<(Vec<U>, Status)> {
        self.send(comm, dest, send_tag, sendbuf)?;
        self.recv::<U>(comm, src, recv_tag)
    }

    /// Blocking probe (`MPI_Probe`): wait until a matching message is
    /// available and return its status without consuming it.
    pub fn probe(&self, comm: &Comm, src: Src, tag: Tag) -> Status {
        let pkt = self
            .match_packet(comm.members(), self.p2p_pred(comm, src, tag))
            .expect("probe: partner image failed");
        let st = Status {
            source: pkt.h[1] as usize,
            tag: pkt.tag,
            bytes: pkt.payload.len(),
        };
        self.unexpected.borrow_mut().push_front(pkt);
        st
    }

    /// `MPI_Waitany` over receive requests: block until one completes;
    /// returns its index and result. Fairness: repeatedly tests in order,
    /// driving progress between sweeps.
    pub fn waitany<T: Pod>(&self, reqs: &mut Vec<RecvRequest<T>>) -> (usize, Vec<T>, Status) {
        assert!(!reqs.is_empty(), "waitany on an empty request set");
        // Name a sender this wait can be charged to (the first pending
        // request with a known source) so a model deadlock report — and
        // the task executor's wait accounting — shows a wait-for edge.
        let _hint = reqs
            .iter()
            .find_map(|r| match r.src {
                Src::Rank(s) => Some(r.comm.global_rank(s)),
                Src::Any => None,
            })
            .map(caf_fabric::sched::wait_hint);
        // Union of every pending request's communicator: the set of
        // images whose failure could strand this wait.
        let mut watch: Vec<usize> = reqs
            .iter()
            .flat_map(|r| r.comm.members().iter().copied())
            .collect();
        watch.sort_unstable();
        watch.dedup();
        loop {
            for i in 0..reqs.len() {
                if reqs[i].test(self) {
                    let req = reqs.remove(i);
                    let (data, st) = req.wait(self);
                    return (i, data, st);
                }
            }
            let failed = self.fault.failed_of(&watch);
            assert!(
                failed.is_empty(),
                "waitany: partner image(s) failed: {failed:?}"
            );
            // Nothing ready: block for the next packet of any kind, then
            // retest (the packet was stashed by the matcher).
            match self.ep.recv_blocking() {
                Ok(pkt) => self.unexpected.borrow_mut().push_back(pkt),
                Err(FabricError::ImageFailed { .. }) => continue,
                Err(e) => panic!("fabric torn down while receiving: {e}"),
            }
        }
    }

    /// Nonblocking probe: status of the next matching message, if any has
    /// arrived, without consuming it.
    pub fn iprobe(&self, comm: &Comm, src: Src, tag: Tag) -> Option<Status> {
        // Peek: match, then put the packet back at the *front* so a
        // subsequent recv sees it first (preserving order).
        let pkt = self.try_match_packet(self.p2p_pred(comm, src, tag))?;
        let st = Status {
            source: pkt.h[1] as usize,
            tag: pkt.tag,
            bytes: pkt.payload.len(),
        };
        self.unexpected.borrow_mut().push_front(pkt);
        Some(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn send_recv_typed() {
        Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 5, &[1.5f64, 2.5]).unwrap();
            } else {
                let (data, st) = mpi.recv::<f64>(&w, Src::Rank(0), Tag::Is(5)).unwrap();
                assert_eq!(data, vec![1.5, 2.5]);
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 5);
                assert_eq!(st.bytes, 16);
            }
        });
    }

    #[test]
    fn tag_matching_reorders_across_tags() {
        Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 1, &[10u64]).unwrap();
                mpi.send(&w, 1, 2, &[20u64]).unwrap();
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let (b, _) = mpi.recv::<u64>(&w, Src::Rank(0), Tag::Is(2)).unwrap();
                let (a, _) = mpi.recv::<u64>(&w, Src::Rank(0), Tag::Is(1)).unwrap();
                assert_eq!((a[0], b[0]), (10, 20));
            }
        });
    }

    #[test]
    fn any_source_matches_first_arrival() {
        Universe::run(3, |mpi| {
            let w = mpi.world();
            if mpi.rank() > 0 {
                mpi.send(&w, 0, 7, &[mpi.rank() as u64]).unwrap();
            } else {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let (d, st) = mpi.recv::<u64>(&w, Src::Any, Tag::Is(7)).unwrap();
                    assert_eq!(d[0] as usize, st.source);
                    seen.push(st.source);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2]);
            }
        });
    }

    #[test]
    fn same_tag_same_source_is_fifo() {
        Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                for i in 0..50u64 {
                    mpi.send(&w, 1, 3, &[i]).unwrap();
                }
            } else {
                for i in 0..50u64 {
                    let (d, _) = mpi.recv::<u64>(&w, Src::Rank(0), Tag::Is(3)).unwrap();
                    assert_eq!(d[0], i);
                }
            }
        });
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing / raw spin")]
    fn irecv_test_then_wait() {
        Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                // Delay so rank 1's first test() very likely fails.
                std::thread::sleep(std::time::Duration::from_millis(20));
                mpi.send(&w, 1, 9, &[42u32]).unwrap();
            } else {
                let mut req = mpi.irecv::<u32>(&w, Src::Rank(0), Tag::Is(9));
                let mut polls = 0u64;
                while !req.test(mpi) {
                    polls += 1;
                    std::hint::spin_loop();
                }
                let (d, st) = req.wait(mpi);
                assert_eq!(d, vec![42]);
                assert_eq!(st.source, 0);
                // Not a correctness condition, but a sanity signal that we
                // actually polled.
                assert!(polls > 0 || st.bytes == 4);
            }
        });
    }

    #[test]
    fn sendrecv_exchanges_between_pair() {
        let results = Universe::run(2, |mpi| {
            let w = mpi.world();
            let peer = 1 - mpi.rank();
            let (got, _) = mpi
                .sendrecv::<u64, u64>(
                    &w,
                    peer,
                    0,
                    &[mpi.rank() as u64 * 100],
                    Src::Rank(peer),
                    Tag::Is(0),
                )
                .unwrap();
            got[0]
        });
        assert_eq!(results, vec![100, 0]);
    }

    #[test]
    fn iprobe_peeks_without_consuming() {
        Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 4, &[7u8, 8, 9]).unwrap();
            } else {
                let st = loop {
                    if let Some(st) = mpi.iprobe(&w, Src::Any, Tag::Any) {
                        break st;
                    }
                };
                assert_eq!(st.bytes, 3);
                let (d, _) = mpi.recv::<u8>(&w, Src::Rank(0), Tag::Is(4)).unwrap();
                assert_eq!(d, vec![7, 8, 9]);
            }
        });
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing / raw spin")]
    fn ssend_completes_only_after_match() {
        use std::time::{Duration, Instant};
        let times = Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                let t = Instant::now();
                mpi.ssend(&w, 1, 3, &[1u64, 2]).unwrap();
                t.elapsed()
            } else {
                // Delay the matching receive; the ssend must wait it out.
                std::thread::sleep(Duration::from_millis(60));
                let (d, _) = mpi.recv::<u64>(&w, Src::Rank(0), Tag::Is(3)).unwrap();
                assert_eq!(d, vec![1, 2]);
                Duration::ZERO
            }
        });
        assert!(
            times[0] >= Duration::from_millis(30),
            "ssend returned before the match: {:?}",
            times[0]
        );
    }

    #[test]
    fn ssends_interleave_with_regular_traffic() {
        Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 1, &[9u8]).unwrap();
                mpi.ssend(&w, 1, 2, &[8u8]).unwrap();
                mpi.send(&w, 1, 3, &[7u8]).unwrap();
            } else {
                // Receive out of order; acks must still route correctly.
                let (c, _) = mpi.recv::<u8>(&w, Src::Rank(0), Tag::Is(2)).unwrap();
                let (a, _) = mpi.recv::<u8>(&w, Src::Rank(0), Tag::Is(1)).unwrap();
                let (b, _) = mpi.recv::<u8>(&w, Src::Rank(0), Tag::Is(3)).unwrap();
                assert_eq!((a[0], c[0], b[0]), (9, 8, 7));
            }
        });
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing / raw spin")]
    fn blocking_probe_waits_for_message() {
        Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                mpi.send(&w, 1, 6, &[1u16, 2, 3]).unwrap();
            } else {
                let st = mpi.probe(&w, Src::Any, Tag::Any);
                assert_eq!(st.tag, 6);
                assert_eq!(st.bytes, 6);
                // Probe did not consume: recv still sees it.
                let (d, _) = mpi.recv::<u16>(&w, Src::Rank(0), Tag::Is(6)).unwrap();
                assert_eq!(d, vec![1, 2, 3]);
            }
        });
    }

    #[test]
    fn waitany_returns_first_arrival() {
        Universe::run(3, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                let mut reqs = vec![
                    mpi.irecv::<u64>(&w, Src::Rank(1), Tag::Is(1)),
                    mpi.irecv::<u64>(&w, Src::Rank(2), Tag::Is(2)),
                ];
                let mut seen = Vec::new();
                let (_, d, st) = mpi.waitany(&mut reqs);
                seen.push((st.source, d[0]));
                let (_, d, st) = mpi.waitany(&mut reqs);
                seen.push((st.source, d[0]));
                seen.sort_unstable();
                assert_eq!(seen, vec![(1, 10), (2, 20)]);
                assert!(reqs.is_empty());
            } else {
                let v = mpi.rank() as u64 * 10;
                mpi.send(&w, 0, mpi.rank() as i64, &[v]).unwrap();
            }
        });
    }

    #[test]
    fn isend_request_completes() {
        Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                let r = mpi.isend(&w, 1, 0, &[1u8]).unwrap();
                assert!(r.test());
                r.wait();
            } else {
                let _ = mpi.recv::<u8>(&w, Src::Rank(0), Tag::Is(0)).unwrap();
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn recv_into_rejects_truncation() {
        // Two ranks; rank 1 panics on truncation, which aborts the job.
        Universe::run(2, |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &[1u64, 2, 3]).unwrap();
            } else {
                let mut small = [0u64; 2];
                let _ = mpi.recv_into(&w, Src::Rank(0), Tag::Is(0), &mut small);
            }
        });
    }
}
