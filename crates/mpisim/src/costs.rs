//! Preset software-overhead tables for the MPI substrate.
//!
//! Magnitudes are derived from the paper's microbenchmark panels (ops/second
//! for READ / WRITE / EVENT_NOTIFY on Fusion-class InfiniBand + MVAPICH2 and
//! Edison's Cray Aries + CRAY-MPICH), scaled down uniformly by 100× so that
//! in-process benchmark runs finish quickly while preserving every *ratio*
//! the paper's analysis depends on. The netmodel crate owns the full-scale
//! numbers; these tables exist so the criterion benches measure the same
//! shapes in actual wall-clock time.

use caf_fabric::delay::{DelayConfig, OpCost};

/// Uniform scale-down factor applied to all real-hardware overheads.
pub const TIME_SCALE: f64 = 100.0;

/// MVAPICH2-on-InfiniBand-like cost table (the paper's Fusion platform).
///
/// Paper-anchored full-scale values (ns/op): MPI put ≈ 19 600 (51 k ops/s),
/// MPI get ≈ 16 300 (61 k ops/s) on Mira; Fusion is faster, Edison faster
/// still — we use Edison-flavoured 5 000/4 800 as the "modern cluster"
/// anchor; flush ≈ 300 per target.
pub fn mvapich_like() -> DelayConfig {
    DelayConfig {
        p2p_inject: scaled(1_500.0, 0.25),
        p2p_receive: scaled(1_500.0, 0.25),
        rma_put: scaled(4_800.0, 0.20),
        rma_get: scaled(5_000.0, 0.20),
        rma_atomic: scaled(5_200.0, 0.0),
        flush_per_target: scaled(300.0, 0.0),
        am_dispatch: scaled(500.0, 0.0),
    }
}

/// CRAY-MPICH-like cost table (the paper's Edison platform). The paper notes
/// Cray MPI implemented MPI-3 RMA over send/receive internally, so one-sided
/// ops carry the two-sided overhead too.
pub fn cray_mpich_like() -> DelayConfig {
    DelayConfig {
        p2p_inject: scaled(1_200.0, 0.20),
        p2p_receive: scaled(1_200.0, 0.20),
        rma_put: scaled(4_900.0, 0.35),
        rma_get: scaled(4_950.0, 0.35),
        rma_atomic: scaled(5_400.0, 0.0),
        flush_per_target: scaled(320.0, 0.0),
        am_dispatch: scaled(450.0, 0.0),
    }
}

/// No artificial overheads — use for correctness tests.
pub fn zero() -> DelayConfig {
    DelayConfig::free()
}

fn scaled(base_ns: f64, per_byte_ns: f64) -> OpCost {
    OpCost {
        base_ns: base_ns / TIME_SCALE,
        per_byte_ns: per_byte_ns / TIME_SCALE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says() {
        let mv = mvapich_like();
        let cray = cray_mpich_like();
        // Cray RMA carries send/recv overhead: larger per-byte cost.
        assert!(cray.rma_put.per_byte_ns > mv.rma_put.per_byte_ns);
        // Both have a nonzero per-target flush cost (the Θ(P) driver).
        assert!(mv.flush_per_target.base_ns > 0.0);
        assert!(cray.flush_per_target.base_ns > 0.0);
    }

    #[test]
    fn zero_preset_is_free() {
        assert_eq!(zero(), DelayConfig::free());
    }

    #[test]
    fn scaling_preserves_ratios() {
        let mv = mvapich_like();
        let ratio = mv.rma_get.base_ns / mv.rma_put.base_ns;
        assert!((ratio - 5_000.0 / 4_800.0).abs() < 1e-9);
    }
}
