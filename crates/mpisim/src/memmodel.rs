//! The MPI-2 **separate** memory model, for contrast with the unified
//! model the rest of this substrate (and the paper's CAF-MPI runtime)
//! relies on.
//!
//! Paper §2.2: "MPI-2 RMA assumes no coherence in the memory subsystem or
//! network interface, resulting in logically distinct *public* and
//! *private* copies of a window. This conservative model (the separate
//! model) is a poor match for systems where coherent memory subsystems
//! are available. The new unified memory model added in MPI-3 … allows
//! for higher concurrency in access to the window data."
//!
//! [`SeparateWindow`] makes the difference observable: remote `put`s land
//! in the **public** copy; local loads read the **private** copy, which
//! only sees remote updates after an explicit [`Mpi::win_sync`]
//! (`MPI_WIN_SYNC`). A unified-model window (the default [`super::Window`])
//! has no such staleness.

use parking_lot::Mutex;

use caf_fabric::pod::{as_bytes, as_bytes_mut};
use caf_fabric::{DelayOp, MemCategory, Pod, Result, Segment, SegmentId};

use crate::comm::Comm;
use crate::universe::Mpi;

/// An RMA window under the MPI-2 *separate* memory model: remote access
/// goes to the public copy, local load/store to the private copy, and
/// `win_sync` reconciles them.
pub struct SeparateWindow {
    comm: Comm,
    segs: std::sync::Arc<[SegmentId]>,
    sizes: std::sync::Arc<[usize]>,
    /// The private copy of this rank's region.
    private: Mutex<Vec<u8>>,
}

impl std::fmt::Debug for SeparateWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeparateWindow")
            .field("comm", &self.comm.id())
            .field("bytes", &self.private.lock().len())
            .finish()
    }
}

impl Mpi {
    /// Collectively allocate a window under the separate memory model
    /// (what `MPI_Win_create` on pre-coherent hardware gives you).
    pub fn win_allocate_separate(&self, comm: &Comm, bytes: usize) -> Result<SeparateWindow> {
        let id = self.ep.register_segment(Segment::new(bytes));
        self.mem.map(MemCategory::UserData, 2 * bytes); // public + private
        let pairs = self.allgather(comm, &[[id.0, bytes as u64]])?;
        Ok(SeparateWindow {
            comm: comm.clone(),
            segs: pairs.iter().map(|p| SegmentId(p[0])).collect(),
            sizes: pairs.iter().map(|p| p[1] as usize).collect(),
            private: Mutex::new(vec![0u8; bytes]),
        })
    }

    /// Collectively free a separate-model window.
    pub fn win_free_separate(&self, win: SeparateWindow) -> Result<()> {
        self.barrier(&win.comm)?;
        let me = win.comm.rank();
        self.mem.unmap(MemCategory::UserData, 2 * win.sizes[me]);
        self.ep.unregister_segment(win.segs[me])
    }

    /// One-sided put into `target`'s **public** copy.
    pub fn sep_put<T: Pod>(
        &self,
        win: &SeparateWindow,
        target: usize,
        disp: usize,
        data: &[T],
    ) -> Result<()> {
        self.delays
            .charge(DelayOp::RmaPut, std::mem::size_of_val(data));
        self.ep.segment(win.segs[target])?.put(disp, as_bytes(data))
    }

    /// One-sided get from `target`'s **public** copy.
    pub fn sep_get<T: Pod>(
        &self,
        win: &SeparateWindow,
        target: usize,
        disp: usize,
        out: &mut [T],
    ) -> Result<()> {
        self.delays
            .charge(DelayOp::RmaGet, std::mem::size_of_val(out));
        self.ep
            .segment(win.segs[target])?
            .get(disp, as_bytes_mut(out))
    }

    /// Local **store**: updates the private copy and propagates it to the
    /// public copy (store visibility rule of the separate model after the
    /// next synchronization; this substrate propagates eagerly, which is
    /// a legal strengthening).
    pub fn sep_store_local<T: Pod>(
        &self,
        win: &SeparateWindow,
        disp: usize,
        data: &[T],
    ) -> Result<()> {
        let bytes = as_bytes(data);
        {
            let mut private = win.private.lock();
            private[disp..disp + bytes.len()].copy_from_slice(bytes);
        }
        let me = win.comm.rank();
        self.ep.segment(win.segs[me])?.put(disp, bytes)
    }

    /// Local **load**: reads the private copy — which does *not* see
    /// remote puts until [`Mpi::win_sync`]. This is the staleness the
    /// unified model abolishes.
    pub fn sep_load_local<T: Pod>(
        &self,
        win: &SeparateWindow,
        disp: usize,
        out: &mut [T],
    ) -> Result<()> {
        let bytes = as_bytes_mut(out);
        let private = win.private.lock();
        bytes.copy_from_slice(&private[disp..disp + bytes.len()]);
        Ok(())
    }

    /// `MPI_WIN_SYNC`: reconcile the private copy with the public copy.
    pub fn win_sync(&self, win: &SeparateWindow) -> Result<()> {
        let me = win.comm.rank();
        let seg = self.ep.segment(win.segs[me])?;
        let mut private = win.private.lock();
        seg.get(0, &mut private)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use crate::{Src, Tag};

    #[test]
    fn remote_puts_invisible_until_win_sync() {
        Universe::run(2, |mpi| {
            let comm = mpi.world();
            let win = mpi.win_allocate_separate(&comm, 16).unwrap();
            if mpi.rank() == 0 {
                mpi.sep_put(&win, 1, 0, &[0xBEEFu64]).unwrap();
                mpi.send(&comm, 1, 0, &[1u8]).unwrap();
            } else {
                let _ = mpi.recv::<u8>(&comm, Src::Rank(0), Tag::Is(0)).unwrap();
                // The put has certainly landed in the public copy...
                let mut public = [0u64];
                mpi.sep_get(&win, 1, 0, &mut public).unwrap();
                assert_eq!(public[0], 0xBEEF);
                // ...but a local load still sees the stale private copy.
                let mut private = [0u64];
                mpi.sep_load_local(&win, 0, &mut private).unwrap();
                assert_eq!(private[0], 0, "separate model: stale until sync");
                // WIN_SYNC reconciles.
                mpi.win_sync(&win).unwrap();
                mpi.sep_load_local(&win, 0, &mut private).unwrap();
                assert_eq!(private[0], 0xBEEF);
            }
            mpi.barrier(&comm).unwrap();
            mpi.win_free_separate(win).unwrap();
        });
    }

    #[test]
    fn local_stores_visible_remotely() {
        Universe::run(2, |mpi| {
            let comm = mpi.world();
            let win = mpi.win_allocate_separate(&comm, 8).unwrap();
            if mpi.rank() == 1 {
                mpi.sep_store_local(&win, 0, &[7.5f64]).unwrap();
            }
            mpi.barrier(&comm).unwrap();
            if mpi.rank() == 0 {
                let mut v = [0.0f64];
                mpi.sep_get(&win, 1, 0, &mut v).unwrap();
                assert_eq!(v[0], 7.5);
            }
            mpi.barrier(&comm).unwrap();
            mpi.win_free_separate(win).unwrap();
        });
    }

    #[test]
    fn unified_window_has_no_staleness() {
        // The contrast: the same program on a unified-model window sees
        // the put immediately — no win_sync required.
        Universe::run(2, |mpi| {
            let comm = mpi.world();
            let win = mpi.win_allocate(&comm, 16).unwrap();
            mpi.win_lock_all(&win);
            if mpi.rank() == 0 {
                mpi.put(&win, 1, 0, &[0xBEEFu64]).unwrap();
                mpi.win_flush(&win, 1).unwrap();
                mpi.send(&comm, 1, 0, &[1u8]).unwrap();
            } else {
                let _ = mpi.recv::<u8>(&comm, Src::Rank(0), Tag::Is(0)).unwrap();
                let mut v = [0u64];
                mpi.win_read_local(&win, 0, &mut v).unwrap();
                assert_eq!(v[0], 0xBEEF, "unified model: immediately visible");
            }
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
        });
    }

    #[test]
    fn separate_window_accounts_double_memory() {
        Universe::run(1, |mpi| {
            let comm = mpi.world();
            let before = mpi.mem().mapped(MemCategory::UserData);
            let win = mpi.win_allocate_separate(&comm, 1024).unwrap();
            assert_eq!(
                mpi.mem().mapped(MemCategory::UserData),
                before + 2048,
                "public + private copies"
            );
            mpi.win_free_separate(win).unwrap();
            assert_eq!(mpi.mem().mapped(MemCategory::UserData), before);
        });
    }
}
