//! Collective operations, implemented with the classic tuned algorithms:
//! dissemination barrier, binomial-tree broadcast/reduce, recursive-doubling
//! allreduce, ring allgather, pairwise-exchange alltoall.
//!
//! The paper credits exactly this accumulated tuning for CAF-MPI's FFT win
//! over CAF-GASNet ("collectives in MPI are well-optimized over the years…
//! GASNet currently does not have collectives", §4.2/§5): the GASNet-side
//! runtime must hand-roll its alltoall from puts and barriers.
//!
//! All reductions assume commutative-associative combiners (true of every
//! predefined `AccOp` and of every combiner the CAF runtime passes down).

use bytes::Bytes;

use caf_fabric::delay::DelayOp;
use caf_fabric::pod::{as_bytes, vec_from_bytes};
use caf_fabric::topology::is_pow2;
use caf_fabric::{Packet, Pod, Result};

use crate::comm::Comm;
use crate::ops::combine_into;
use crate::p2p::KIND_COLL;
use crate::universe::Mpi;

impl Mpi {
    /// Internal collective send: same transport as user p2p but a separate
    /// packet kind, so collective traffic can never match user receives.
    fn coll_send_bytes(&self, comm: &Comm, dest: usize, ctag: i64, bytes: &[u8]) -> Result<()> {
        self.delays.charge(DelayOp::P2pInject, bytes.len());
        let pkt = Packet::with_payload(
            self.ep.rank(),
            KIND_COLL,
            ctag,
            [comm.id, comm.rank() as u64, 0, 0],
            Bytes::copy_from_slice(bytes),
        );
        self.ep.send(comm.global_rank(dest), pkt)
    }

    fn coll_send<T: Pod>(&self, comm: &Comm, dest: usize, ctag: i64, buf: &[T]) -> Result<()> {
        self.coll_send_bytes(comm, dest, ctag, as_bytes(buf))
    }

    /// Internal collective receive. Watches the *whole* communicator: a
    /// collective hangs if any member dies, not just the immediate
    /// neighbour in the current algorithm round.
    fn coll_recv<T: Pod>(&self, comm: &Comm, src: usize, ctag: i64) -> Result<Vec<T>> {
        let comm_id = comm.id;
        let pkt = self.match_packet(comm.members(), move |p| {
            p.kind == KIND_COLL && p.h[0] == comm_id && p.h[1] as usize == src && p.tag == ctag
        })?;
        self.delays.charge(DelayOp::P2pReceive, pkt.payload.len());
        Ok(vec_from_bytes(&pkt.payload))
    }

    /// Compose a collective tag from the per-comm sequence number and an
    /// algorithm phase.
    fn ctag(seq: u64, phase: u32) -> i64 {
        ((seq as i64) << 16) | phase as i64
    }

    /// `MPI_Barrier` — dissemination algorithm, ⌈log₂ n⌉ rounds.
    pub fn barrier(&self, comm: &Comm) -> Result<()> {
        let n = comm.size();
        if n == 1 {
            return Ok(());
        }
        let _span = caf_trace::span(caf_trace::Op::MpiBarrier);
        let seq = self.next_coll_seq(comm);
        let me = comm.rank();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let to = (me + dist) % n;
            let from = (me + n - dist) % n;
            self.coll_send::<u8>(comm, to, Self::ctag(seq, round), &[])?;
            let _ = self.coll_recv::<u8>(comm, from, Self::ctag(seq, round))?;
            round += 1;
            dist <<= 1;
        }
        Ok(())
    }

    /// `MPI_Bcast` — binomial tree. On non-root ranks `data` is replaced by
    /// the root's buffer.
    pub fn bcast<T: Pod>(&self, comm: &Comm, root: usize, data: &mut Vec<T>) -> Result<()> {
        let n = comm.size();
        if n == 1 {
            return Ok(());
        }
        let _span = caf_trace::span_t(
            caf_trace::Op::MpiBcast,
            Some(comm.global_rank(root)),
            std::mem::size_of_val(data.as_slice()) as u64,
            None,
        );
        let seq = self.next_coll_seq(comm);
        let me = comm.rank();
        let vrank = (me + n - root) % n;
        let unv = |v: usize| (v + root) % n;

        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                *data = self.coll_recv::<T>(comm, unv(vrank - mask), Self::ctag(seq, 0))?;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank & mask == 0 && vrank + mask < n {
                self.coll_send(comm, unv(vrank + mask), Self::ctag(seq, 0), data)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// `MPI_Reduce` with a commutative-associative combiner — binomial tree.
    /// Returns `Some(result)` on the root, `None` elsewhere.
    pub fn reduce<T: Pod>(
        &self,
        comm: &Comm,
        root: usize,
        sendbuf: &[T],
        f: impl Fn(T, T) -> T,
    ) -> Result<Option<Vec<T>>> {
        let n = comm.size();
        let mut acc = sendbuf.to_vec();
        if n == 1 {
            return Ok(Some(acc));
        }
        let _span = caf_trace::span_t(
            caf_trace::Op::MpiReduce,
            Some(comm.global_rank(root)),
            std::mem::size_of_val(sendbuf) as u64,
            None,
        );
        let seq = self.next_coll_seq(comm);
        let me = comm.rank();
        let vrank = (me + n - root) % n;
        let unv = |v: usize| (v + root) % n;

        let mut mask = 1usize;
        while mask < n {
            if vrank & mask == 0 {
                let src = vrank | mask;
                if src < n {
                    let part = self.coll_recv::<T>(comm, unv(src), Self::ctag(seq, 0))?;
                    combine_into(&mut acc, &part, &f);
                }
            } else {
                self.coll_send(comm, unv(vrank & !mask), Self::ctag(seq, 0), &acc)?;
                break;
            }
            mask <<= 1;
        }
        Ok(if me == root { Some(acc) } else { None })
    }

    /// `MPI_Allreduce` — recursive doubling on power-of-two sizes,
    /// reduce+broadcast otherwise.
    pub fn allreduce<T: Pod>(
        &self,
        comm: &Comm,
        sendbuf: &[T],
        f: impl Fn(T, T) -> T,
    ) -> Result<Vec<T>> {
        let n = comm.size();
        let mut acc = sendbuf.to_vec();
        if n == 1 {
            return Ok(acc);
        }
        let _span = caf_trace::span_t(
            caf_trace::Op::MpiReduce,
            None,
            std::mem::size_of_val(sendbuf) as u64,
            None,
        );
        if is_pow2(n) {
            let seq = self.next_coll_seq(comm);
            let me = comm.rank();
            let mut mask = 1usize;
            let mut phase = 0u32;
            while mask < n {
                let partner = me ^ mask;
                self.coll_send(comm, partner, Self::ctag(seq, phase), &acc)?;
                let part = self.coll_recv::<T>(comm, partner, Self::ctag(seq, phase))?;
                combine_into(&mut acc, &part, &f);
                mask <<= 1;
                phase += 1;
            }
            Ok(acc)
        } else {
            let reduced = self.reduce(comm, 0, &acc, &f)?;
            let mut data = reduced.unwrap_or_else(|| acc.clone());
            self.bcast(comm, 0, &mut data)?;
            Ok(data)
        }
    }

    /// `MPI_Gather` to `root` — linear. Returns the concatenated buffers in
    /// rank order on the root, `None` elsewhere. All contributions must
    /// have the same length.
    pub fn gather<T: Pod>(
        &self,
        comm: &Comm,
        root: usize,
        sendbuf: &[T],
    ) -> Result<Option<Vec<T>>> {
        let n = comm.size();
        let _span = caf_trace::span_t(
            caf_trace::Op::MpiGather,
            Some(comm.global_rank(root)),
            std::mem::size_of_val(sendbuf) as u64,
            None,
        );
        let seq = self.next_coll_seq(comm);
        let me = comm.rank();
        if me != root {
            self.coll_send(comm, root, Self::ctag(seq, 0), sendbuf)?;
            return Ok(None);
        }
        let mut out = vec![sendbuf[0]; sendbuf.len() * n];
        out[me * sendbuf.len()..(me + 1) * sendbuf.len()].copy_from_slice(sendbuf);
        for r in 0..n {
            if r == root {
                continue;
            }
            let part = self.coll_recv::<T>(comm, r, Self::ctag(seq, 0))?;
            assert_eq!(part.len(), sendbuf.len(), "ragged gather");
            out[r * sendbuf.len()..(r + 1) * sendbuf.len()].copy_from_slice(&part);
        }
        Ok(Some(out))
    }

    /// `MPI_Scatter` from `root`: distribute equal `chunk`-element blocks of
    /// `data` (significant only on the root) to all ranks.
    pub fn scatter<T: Pod>(
        &self,
        comm: &Comm,
        root: usize,
        data: &[T],
        chunk: usize,
    ) -> Result<Vec<T>> {
        let n = comm.size();
        let seq = self.next_coll_seq(comm);
        let me = comm.rank();
        if me == root {
            assert_eq!(data.len(), chunk * n, "scatter buffer size mismatch");
            for r in 0..n {
                if r != root {
                    self.coll_send(comm, r, Self::ctag(seq, 0), &data[r * chunk..(r + 1) * chunk])?;
                }
            }
            Ok(data[me * chunk..(me + 1) * chunk].to_vec())
        } else {
            self.coll_recv::<T>(comm, root, Self::ctag(seq, 0))
        }
    }

    /// `MPI_Allgather` — ring algorithm, n−1 steps, each forwarding the
    /// block received in the previous step.
    pub fn allgather<T: Pod>(&self, comm: &Comm, sendbuf: &[T]) -> Result<Vec<T>> {
        let _span = caf_trace::span_t(
            caf_trace::Op::MpiGather,
            None,
            std::mem::size_of_val(sendbuf) as u64,
            None,
        );
        let n = comm.size();
        let len = sendbuf.len();
        let mut out = vec![sendbuf[0]; len * n];
        let me = comm.rank();
        out[me * len..(me + 1) * len].copy_from_slice(sendbuf);
        if n == 1 {
            return Ok(out);
        }
        let seq = self.next_coll_seq(comm);
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut have = me; // owner of the block we forward next
        for step in 0..n - 1 {
            let block = out[have * len..(have + 1) * len].to_vec();
            self.coll_send(comm, right, Self::ctag(seq, step as u32), &block)?;
            let incoming_owner = (me + n - 1 - step) % n;
            let part = self.coll_recv::<T>(comm, left, Self::ctag(seq, step as u32))?;
            out[incoming_owner * len..(incoming_owner + 1) * len].copy_from_slice(&part);
            have = incoming_owner;
        }
        Ok(out)
    }

    /// `MPI_Allgatherv` — variable-length allgather: each rank contributes
    /// `data.len()` elements (may differ per rank); the result concatenates
    /// all contributions in rank order. Ring algorithm with a preliminary
    /// count exchange.
    pub fn allgatherv<T: Pod>(&self, comm: &Comm, data: &[T]) -> Result<Vec<T>> {
        let n = comm.size();
        if n == 1 {
            return Ok(data.to_vec());
        }
        let counts: Vec<usize> = self
            .allgather(comm, &[data.len() as u64])?
            .into_iter()
            .map(|c| c as usize)
            .collect();
        let displs: Vec<usize> = counts
            .iter()
            .scan(0usize, |acc, &c| {
                let d = *acc;
                *acc += c;
                Some(d)
            })
            .collect();
        let total: usize = counts.iter().sum();
        let me = comm.rank();
        // SAFETY-free zero fill via byte vector (Pod allows any pattern).
        let mut out = caf_fabric::pod::vec_from_bytes::<T>(&vec![
            0u8;
            total * std::mem::size_of::<T>()
        ]);
        out[displs[me]..displs[me] + counts[me]].copy_from_slice(data);

        let seq = self.next_coll_seq(comm);
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut have = me;
        for step in 0..n - 1 {
            let block = out[displs[have]..displs[have] + counts[have]].to_vec();
            self.coll_send(comm, right, Self::ctag(seq, step as u32), &block)?;
            let incoming = (me + n - 1 - step) % n;
            let part = self.coll_recv::<T>(comm, left, Self::ctag(seq, step as u32))?;
            assert_eq!(part.len(), counts[incoming], "allgatherv count mismatch");
            out[displs[incoming]..displs[incoming] + counts[incoming]].copy_from_slice(&part);
            have = incoming;
        }
        Ok(out)
    }

    /// `MPI_Alltoall` — pairwise exchange (XOR pairing on power-of-two
    /// sizes, shifted ring otherwise). `sendbuf` holds `n` equal blocks of
    /// `block` elements in destination-rank order.
    pub fn alltoall<T: Pod>(&self, comm: &Comm, sendbuf: &[T], block: usize) -> Result<Vec<T>> {
        let _span = caf_trace::span_t(
            caf_trace::Op::MpiAlltoall,
            None,
            std::mem::size_of_val(sendbuf) as u64,
            None,
        );
        let n = comm.size();
        assert_eq!(sendbuf.len(), n * block, "alltoall buffer size mismatch");
        let me = comm.rank();
        let mut out = vec![sendbuf[0]; n * block];
        out[me * block..(me + 1) * block].copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
        if n == 1 {
            return Ok(out);
        }
        let seq = self.next_coll_seq(comm);
        for step in 1..n {
            let (to, from) = if is_pow2(n) {
                (me ^ step, me ^ step)
            } else {
                ((me + step) % n, (me + n - step) % n)
            };
            self.coll_send(
                comm,
                to,
                Self::ctag(seq, step as u32),
                &sendbuf[to * block..(to + 1) * block],
            )?;
            let part = self.coll_recv::<T>(comm, from, Self::ctag(seq, step as u32))?;
            out[from * block..(from + 1) * block].copy_from_slice(&part);
        }
        Ok(out)
    }

    /// Untuned alltoall (linear exchange: every rank posts all sends, then
    /// drains all receives). Correct but ignores pairing and congestion —
    /// the ablation baseline quantifying what `MPI_ALLTOALL`'s tuning buys
    /// (the paper's §4.2/§5 claim about collective maturity).
    pub fn alltoall_linear<T: Pod>(
        &self,
        comm: &Comm,
        sendbuf: &[T],
        block: usize,
    ) -> Result<Vec<T>> {
        let _span = caf_trace::span_t(
            caf_trace::Op::MpiAlltoall,
            None,
            std::mem::size_of_val(sendbuf) as u64,
            None,
        );
        let n = comm.size();
        assert_eq!(sendbuf.len(), n * block, "alltoall buffer size mismatch");
        let me = comm.rank();
        let mut out = vec![sendbuf[0]; n * block];
        out[me * block..(me + 1) * block].copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
        if n == 1 {
            return Ok(out);
        }
        let seq = self.next_coll_seq(comm);
        for d in 0..n {
            if d != me {
                self.coll_send(comm, d, Self::ctag(seq, 0), &sendbuf[d * block..(d + 1) * block])?;
            }
        }
        for s in 0..n {
            if s != me {
                let part = self.coll_recv::<T>(comm, s, Self::ctag(seq, 0))?;
                out[s * block..(s + 1) * block].copy_from_slice(&part);
            }
        }
        Ok(out)
    }

    /// `MPI_Alltoallv`: per-destination counts. `sendcounts[d]` elements go
    /// to rank `d` (blocks laid out contiguously in rank order);
    /// `recvcounts[s]` elements are expected from rank `s`. Returns the
    /// received blocks concatenated in source-rank order.
    pub fn alltoallv<T: Pod>(
        &self,
        comm: &Comm,
        sendbuf: &[T],
        sendcounts: &[usize],
        recvcounts: &[usize],
    ) -> Result<Vec<T>> {
        let _span = caf_trace::span_t(
            caf_trace::Op::MpiAlltoall,
            None,
            std::mem::size_of_val(sendbuf) as u64,
            None,
        );
        let n = comm.size();
        assert_eq!(sendcounts.len(), n);
        assert_eq!(recvcounts.len(), n);
        assert_eq!(sendbuf.len(), sendcounts.iter().sum::<usize>());
        let me = comm.rank();
        let sdispl: Vec<usize> = prefix_sums(sendcounts);
        let rdispl: Vec<usize> = prefix_sums(recvcounts);
        let total_recv: usize = recvcounts.iter().sum();
        let mut out: Vec<T> = Vec::with_capacity(total_recv);
        // Fill with copies of the first element (if any) as placeholder.
        if total_recv > 0 {
            let fill = if sendbuf.is_empty() {
                // Receiving data but sending none: placeholder comes from
                // the first received block instead; start empty and write
                // slices as they arrive via a zeroed scratch.
                None
            } else {
                Some(sendbuf[0])
            };
            match fill {
                Some(v) => out.resize(total_recv, v),
                None => {
                    // SAFETY: `T: Pod` guarantees the all-zeros bit
                    // pattern is a valid `T`; every element is then
                    // overwritten by the received blocks below.
                    out.resize(total_recv, unsafe { std::mem::zeroed() })
                }
            }
        }
        // Self block.
        out[rdispl[me]..rdispl[me] + recvcounts[me]]
            .copy_from_slice(&sendbuf[sdispl[me]..sdispl[me] + sendcounts[me]]);
        if n == 1 {
            return Ok(out);
        }
        let seq = self.next_coll_seq(comm);
        for step in 1..n {
            let to = (me + step) % n;
            let from = (me + n - step) % n;
            self.coll_send(
                comm,
                to,
                Self::ctag(seq, step as u32),
                &sendbuf[sdispl[to]..sdispl[to] + sendcounts[to]],
            )?;
            let part = self.coll_recv::<T>(comm, from, Self::ctag(seq, step as u32))?;
            assert_eq!(part.len(), recvcounts[from], "alltoallv count mismatch");
            out[rdispl[from]..rdispl[from] + recvcounts[from]].copy_from_slice(&part);
        }
        Ok(out)
    }

    /// `MPI_Scan` (inclusive prefix reduction) — linear chain.
    pub fn scan<T: Pod>(
        &self,
        comm: &Comm,
        sendbuf: &[T],
        f: impl Fn(T, T) -> T,
    ) -> Result<Vec<T>> {
        let n = comm.size();
        let me = comm.rank();
        let mut acc = sendbuf.to_vec();
        if n == 1 {
            return Ok(acc);
        }
        let seq = self.next_coll_seq(comm);
        if me > 0 {
            let prev = self.coll_recv::<T>(comm, me - 1, Self::ctag(seq, 0))?;
            // acc = prev ∘ mine (prefix order).
            let mine = acc.clone();
            acc = prev;
            combine_into(&mut acc, &mine, &f);
        }
        if me + 1 < n {
            self.coll_send(comm, me + 1, Self::ctag(seq, 0), &acc)?;
        }
        Ok(acc)
    }

    /// Deterministic, communication-free congruent communicator: every
    /// rank derives the same child context id locally, with no
    /// synchronizing barrier. For runtime-internal channels that must
    /// exist before any traffic can flow — and whose creation must not
    /// block on a peer that a fault plan may already have killed.
    /// Single-use per parent: a second call returns the same id.
    pub fn comm_dup_local(&self, comm: &Comm) -> Comm {
        let id = crate::comm::derive_comm_id(comm.id, 0x5254, 0x52); // "RT"
        self.ensure_comm_state(id);
        Comm::new(id, comm.ranks.clone(), comm.my_idx)
    }

    /// `MPI_Comm_dup`: a congruent communicator with a fresh context id.
    pub fn comm_dup(&self, comm: &Comm) -> Result<Comm> {
        let child = self.next_child_index(comm);
        let id = crate::comm::derive_comm_id(comm.id, child, 0);
        let dup = Comm::new(id, comm.ranks.clone(), comm.my_idx);
        self.ensure_comm_state(id);
        // Real MPI_Comm_dup is collective; synchronize so no rank races
        // ahead and sends on the new context before everyone created it.
        self.barrier(comm)?;
        Ok(dup)
    }

    /// `MPI_Comm_split`: partition `comm` by `color`, ordering each part by
    /// `(key, rank)`.
    pub fn comm_split(&self, comm: &Comm, color: u64, key: i64) -> Result<Comm> {
        let me = comm.rank();
        let triples = self.allgather(comm, &[[color, key as u64, me as u64]])?;
        let mut mine: Vec<(i64, usize)> = triples
            .iter()
            .filter(|t| t[0] == color)
            .map(|t| (t[1] as i64, t[2] as usize))
            .collect();
        mine.sort_unstable();
        let ranks: Vec<usize> = mine
            .iter()
            .map(|&(_, r)| comm.global_rank(r))
            .collect();
        let my_idx = mine
            .iter()
            .position(|&(_, r)| r == me)
            .expect("self not in own color group");
        let child = self.next_child_index(comm);
        let id = crate::comm::derive_comm_id(comm.id, child, color);
        self.ensure_comm_state(id);
        Ok(Comm::new(id, ranks.into(), my_idx))
    }
}

fn prefix_sums(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len());
    let mut acc = 0usize;
    for &c in counts {
        out.push(acc);
        acc += c;
    }
    out
}

#[cfg(test)]
mod tests {

    use crate::universe::Universe;

    #[test]
    fn barrier_completes_at_many_sizes() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            Universe::run(n, |mpi| {
                for _ in 0..3 {
                    mpi.barrier(&mpi.world()).unwrap();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [1usize, 4, 7] {
            for root in 0..n {
                let res = Universe::run(n, move |mpi| {
                    let w = mpi.world();
                    let mut data = if mpi.rank() == root {
                        vec![root as u64 * 10, 1, 2, 3]
                    } else {
                        Vec::new()
                    };
                    mpi.bcast(&w, root, &mut data).unwrap();
                    data
                });
                for r in res {
                    assert_eq!(r, vec![root as u64 * 10, 1, 2, 3]);
                }
            }
        }
    }

    #[test]
    fn reduce_sums_ranks() {
        for n in [1usize, 2, 6, 8] {
            let res = Universe::run(n, |mpi| {
                let w = mpi.world();
                mpi.reduce(&w, 0, &[mpi.rank() as u64, 1], |a, b| a + b)
                    .unwrap()
            });
            let expect: u64 = (0..n as u64).sum();
            assert_eq!(res[0], Some(vec![expect, n as u64]));
            for r in &res[1..] {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let res = Universe::run(5, |mpi| {
            let w = mpi.world();
            mpi.reduce(&w, 3, &[mpi.rank() as i64], |a, b| a.max(b))
                .unwrap()
        });
        assert_eq!(res[3], Some(vec![4]));
        assert!(res[0].is_none());
    }

    #[test]
    fn allreduce_pow2_and_non_pow2() {
        for n in [2usize, 4, 8, 3, 6] {
            let res = Universe::run(n, |mpi| {
                let w = mpi.world();
                mpi.allreduce(&w, &[1.0f64, mpi.rank() as f64], |a, b| a + b)
                    .unwrap()
            });
            let sum: f64 = (0..n).map(|r| r as f64).sum();
            for r in res {
                assert_eq!(r, vec![n as f64, sum]);
            }
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        for n in [1usize, 3, 4, 8] {
            let res = Universe::run(n, |mpi| {
                let w = mpi.world();
                mpi.allgather(&w, &[mpi.rank() as u32 * 2, mpi.rank() as u32 * 2 + 1])
                    .unwrap()
            });
            let expect: Vec<u32> = (0..2 * n as u32).collect();
            for r in res {
                assert_eq!(r, expect);
            }
        }
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        let res = Universe::run(4, |mpi| {
            let w = mpi.world();
            let gathered = mpi.gather(&w, 2, &[mpi.rank() as u64]).unwrap();
            let data = gathered.unwrap_or_default();
            let chunk = mpi.scatter(&w, 2, &data, 1).unwrap();
            chunk[0]
        });
        assert_eq!(res, vec![0, 1, 2, 3]);
    }

    #[test]
    fn allgatherv_with_ragged_contributions() {
        for n in [1usize, 2, 3, 5, 8] {
            let res = Universe::run(n, |mpi| {
                let w = mpi.world();
                // Rank r contributes r+1 copies of r*11.
                let mine = vec![mpi.rank() as u64 * 11; mpi.rank() + 1];
                mpi.allgatherv(&w, &mine).unwrap()
            });
            let mut expect = Vec::new();
            for r in 0..n {
                expect.extend(std::iter::repeat_n(r as u64 * 11, r + 1));
            }
            for r in res {
                assert_eq!(r, expect, "n={n}");
            }
        }
    }

    #[test]
    fn allgatherv_with_empty_contributions() {
        let res = Universe::run(4, |mpi| {
            let w = mpi.world();
            let mine: Vec<u64> = if mpi.rank() % 2 == 0 {
                vec![]
            } else {
                vec![mpi.rank() as u64]
            };
            mpi.allgatherv(&w, &mine).unwrap()
        });
        for r in res {
            assert_eq!(r, vec![1, 3]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        for n in [1usize, 2, 4, 8, 3, 6] {
            let res = Universe::run(n, |mpi| {
                let w = mpi.world();
                // element (me, dest) = me*100 + dest
                let send: Vec<u64> = (0..n).map(|d| (mpi.rank() * 100 + d) as u64).collect();
                mpi.alltoall(&w, &send, 1).unwrap()
            });
            for (me, r) in res.iter().enumerate() {
                let expect: Vec<u64> = (0..n).map(|s| (s * 100 + me) as u64).collect();
                assert_eq!(r, &expect, "n={n} rank={me}");
            }
        }
    }

    #[test]
    fn alltoall_linear_matches_tuned() {
        for n in [1usize, 3, 4, 8] {
            let res = Universe::run(n, |mpi| {
                let w = mpi.world();
                let send: Vec<u64> = (0..n * 2).map(|i| (mpi.rank() * 1000 + i) as u64).collect();
                let tuned = mpi.alltoall(&w, &send, 2).unwrap();
                let naive = mpi.alltoall_linear(&w, &send, 2).unwrap();
                assert_eq!(tuned, naive);
            });
            drop(res);
        }
    }

    #[test]
    fn alltoallv_with_ragged_counts() {
        let n = 4usize;
        let res = Universe::run(n, |mpi| {
            let w = mpi.world();
            let me = mpi.rank();
            // Rank r sends d+1 copies of (r*10+d) to destination d.
            let sendcounts: Vec<usize> = (0..n).map(|d| d + 1).collect();
            let mut send = Vec::new();
            for d in 0..n {
                send.extend(std::iter::repeat_n((me * 10 + d) as u64, d + 1));
            }
            let recvcounts = vec![me + 1; n];
            mpi.alltoallv(&w, &send, &sendcounts, &recvcounts).unwrap()
        });
        for (me, r) in res.iter().enumerate() {
            let mut expect = Vec::new();
            for s in 0..n {
                expect.extend(std::iter::repeat_n((s * 10 + me) as u64, me + 1));
            }
            assert_eq!(r, &expect, "rank {me}");
        }
    }

    #[test]
    fn scan_computes_prefixes() {
        let res = Universe::run(5, |mpi| {
            let w = mpi.world();
            mpi.scan(&w, &[mpi.rank() as u64 + 1], |a, b| a + b).unwrap()
        });
        assert_eq!(
            res,
            vec![vec![1], vec![3], vec![6], vec![10], vec![15]]
        );
    }

    #[test]
    fn comm_split_partitions() {
        let res = Universe::run(8, |mpi| {
            let w = mpi.world();
            let color = (mpi.rank() % 2) as u64;
            let sub = mpi.comm_split(&w, color, mpi.rank() as i64).unwrap();
            // Sum ranks within each half.
            let s = mpi
                .allreduce(&sub, &[mpi.rank() as u64], |a, b| a + b)
                .unwrap();
            (sub.rank(), sub.size(), s[0])
        });
        // Evens: 0+2+4+6 = 12; odds: 1+3+5+7 = 16.
        for (g, &(sr, ss, sum)) in res.iter().enumerate() {
            assert_eq!(ss, 4);
            assert_eq!(sr, g / 2);
            assert_eq!(sum, if g % 2 == 0 { 12 } else { 16 });
        }
    }

    #[test]
    fn comm_dup_isolates_traffic() {
        Universe::run(2, |mpi| {
            let w = mpi.world();
            let d = mpi.comm_dup(&w).unwrap();
            assert_ne!(d.id(), w.id());
            if mpi.rank() == 0 {
                // Same tag on both comms; receiver must distinguish.
                mpi.send(&w, 1, 0, &[1u64]).unwrap();
                mpi.send(&d, 1, 0, &[2u64]).unwrap();
            } else {
                use crate::p2p::{Src, Tag};
                let (on_dup, _) = mpi.recv::<u64>(&d, Src::Rank(0), Tag::Is(0)).unwrap();
                let (on_world, _) = mpi.recv::<u64>(&w, Src::Rank(0), Tag::Is(0)).unwrap();
                assert_eq!((on_world[0], on_dup[0]), (1, 2));
            }
        });
    }

    #[test]
    fn split_then_collectives_interleave_safely() {
        Universe::run(6, |mpi| {
            let w = mpi.world();
            let sub = mpi
                .comm_split(&w, (mpi.rank() % 3) as u64, 0)
                .unwrap();
            let x = mpi
                .allreduce(&sub, &[1u64], |a, b| a + b)
                .unwrap();
            assert_eq!(x[0], 2);
            mpi.barrier(&w).unwrap();
        });
    }
}
