//! Dynamic windows — `MPI_Win_create_dynamic` / `MPI_Win_attach` /
//! `MPI_Win_detach` (paper §2.2: "creates a window without memory
//! attached; one can dynamically attach memory later").
//!
//! Addressing: real MPI uses absolute virtual addresses inside dynamic
//! windows. This substrate hands out an opaque [`DynAddr`] at attach time
//! (the moral equivalent of the address the target would broadcast), and
//! accesses resolve it through the fabric's global segment registry — so,
//! as in real MPI, the origin needs only the address, never a
//! collectively created translation table.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use caf_fabric::pod::{as_bytes, as_bytes_mut};
use caf_fabric::{FabricError, Pod, Result, Segment, SegmentId};

use crate::comm::Comm;
use crate::universe::Mpi;

/// An address within a dynamic window: which attached region, plus the
/// byte offset of its base. Obtained from [`Mpi::win_attach`] and shipped
/// to origins by any means (typically a send or an allgather), exactly
/// like the `MPI_Get_address` + broadcast idiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DynAddr {
    pub(crate) seg: u64,
}

impl DynAddr {
    /// Encode as a transportable u64 (for sending through messages).
    pub fn to_bits(self) -> u64 {
        self.seg
    }

    /// Decode from [`DynAddr::to_bits`].
    pub fn from_bits(bits: u64) -> Self {
        DynAddr { seg: bits }
    }
}

/// A dynamic window: an epoch + attach table, no memory of its own.
pub struct DynWindow {
    pub(crate) comm: Comm,
    pub(crate) locked_all: AtomicBool,
    /// Regions this rank has attached: address → (segment id, bytes).
    pub(crate) attached: RefCell<HashMap<u64, (SegmentId, usize)>>,
}

impl std::fmt::Debug for DynWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynWindow")
            .field("comm", &self.comm.id())
            .field("attached", &self.attached.borrow().len())
            .finish()
    }
}

impl Mpi {
    /// `MPI_Win_create_dynamic` — collective over `comm`.
    pub fn win_create_dynamic(&self, comm: &Comm) -> Result<DynWindow> {
        // Collective in MPI; synchronize so usage cannot race creation.
        self.barrier(comm)?;
        Ok(DynWindow {
            comm: comm.clone(),
            locked_all: AtomicBool::new(false),
            attached: RefCell::new(HashMap::new()),
        })
    }

    /// `MPI_Win_attach` — local: expose `bytes` bytes of freshly allocated
    /// memory in the dynamic window; returns its address. (Real MPI
    /// attaches caller-owned memory; this substrate allocates the region
    /// for the caller, which is equivalent for every runtime use.)
    pub fn win_attach(&self, win: &DynWindow, bytes: usize) -> Result<DynAddr> {
        let id = self.ep.register_segment(Segment::new(bytes));
        self.mem.map(caf_fabric::MemCategory::UserData, bytes);
        win.attached.borrow_mut().insert(id.0, (id, bytes));
        Ok(DynAddr { seg: id.0 })
    }

    /// `MPI_Win_detach` — local: withdraw a previously attached region.
    pub fn win_detach(&self, win: &DynWindow, addr: DynAddr) -> Result<()> {
        let (id, bytes) = win
            .attached
            .borrow_mut()
            .remove(&addr.seg)
            .ok_or(FabricError::UnknownSegment(addr.seg))?;
        self.mem.unmap(caf_fabric::MemCategory::UserData, bytes);
        self.ep.unregister_segment(id)
    }

    /// `MPI_Win_lock_all` on a dynamic window.
    pub fn dyn_lock_all(&self, win: &DynWindow) {
        win.locked_all.store(true, Ordering::Relaxed);
    }

    /// `MPI_Win_unlock_all` on a dynamic window.
    pub fn dyn_unlock_all(&self, win: &DynWindow) {
        win.locked_all.store(false, Ordering::Relaxed);
    }

    fn dyn_segment(&self, win: &DynWindow, addr: DynAddr) -> Result<std::sync::Arc<Segment>> {
        assert!(
            win.locked_all.load(Ordering::Relaxed),
            "RMA on a dynamic window outside a passive-target epoch"
        );
        self.ep.segment(SegmentId(addr.seg))
    }

    /// `MPI_Put` into a dynamic window at `(addr, disp)`.
    pub fn dyn_put<T: Pod>(
        &self,
        win: &DynWindow,
        addr: DynAddr,
        disp: usize,
        data: &[T],
    ) -> Result<()> {
        let seg = self.dyn_segment(win, addr)?;
        self.delays
            .charge(caf_fabric::DelayOp::RmaPut, std::mem::size_of_val(data));
        seg.put(disp, as_bytes(data))
    }

    /// `MPI_Get` from a dynamic window at `(addr, disp)`.
    pub fn dyn_get<T: Pod>(
        &self,
        win: &DynWindow,
        addr: DynAddr,
        disp: usize,
        out: &mut [T],
    ) -> Result<()> {
        let seg = self.dyn_segment(win, addr)?;
        self.delays
            .charge(caf_fabric::DelayOp::RmaGet, std::mem::size_of_val(out));
        seg.get(disp, as_bytes_mut(out))
    }

    /// Local load/store access to a region this rank attached.
    pub fn dyn_read_local<T: Pod>(
        &self,
        win: &DynWindow,
        addr: DynAddr,
        disp: usize,
        out: &mut [T],
    ) -> Result<()> {
        let (id, _) = *win
            .attached
            .borrow()
            .get(&addr.seg)
            .ok_or(FabricError::UnknownSegment(addr.seg))?;
        self.ep.segment(id)?.get(disp, as_bytes_mut(out))
    }

    /// `MPI_Win_flush` / `flush_all` equivalent for dynamic windows: the
    /// implementation cannot know which attached regions were touched, so
    /// it charges one flush handshake per rank (same Θ(P) as regular
    /// windows).
    pub fn dyn_flush_all(&self, win: &DynWindow) -> Result<()> {
        for _ in 0..win.comm.size() {
            self.delays.charge(caf_fabric::DelayOp::FlushPerTarget, 0);
        }
        std::sync::atomic::fence(Ordering::SeqCst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn attach_exchange_access() {
        Universe::run(2, |mpi| {
            let comm = mpi.world();
            let win = mpi.win_create_dynamic(&comm).unwrap();
            mpi.dyn_lock_all(&win);

            // Each rank attaches a region and broadcasts its address.
            let addr = mpi.win_attach(&win, 64).unwrap();
            let addrs = mpi.allgather(&comm, &[addr.to_bits()]).unwrap();
            let peer = 1 - mpi.rank();
            let peer_addr = DynAddr::from_bits(addrs[peer]);

            mpi.dyn_put(&win, peer_addr, 8, &[mpi.rank() as u64 + 50])
                .unwrap();
            mpi.dyn_flush_all(&win).unwrap();
            mpi.barrier(&comm).unwrap();

            let mut got = [0u64];
            mpi.dyn_read_local(&win, addr, 8, &mut got).unwrap();
            assert_eq!(got[0], peer as u64 + 50);

            // Remote read too.
            let mut probe = [0u64];
            mpi.dyn_get(&win, peer_addr, 8, &mut probe).unwrap();
            assert_eq!(probe[0], mpi.rank() as u64 + 50);

            mpi.barrier(&comm).unwrap();
            mpi.dyn_unlock_all(&win);
            mpi.win_detach(&win, addr).unwrap();
        });
    }

    #[test]
    fn multiple_attachments_are_independent() {
        Universe::run(1, |mpi| {
            let comm = mpi.world();
            let win = mpi.win_create_dynamic(&comm).unwrap();
            mpi.dyn_lock_all(&win);
            let a = mpi.win_attach(&win, 16).unwrap();
            let b = mpi.win_attach(&win, 16).unwrap();
            assert_ne!(a, b);
            mpi.dyn_put(&win, a, 0, &[1u64]).unwrap();
            mpi.dyn_put(&win, b, 0, &[2u64]).unwrap();
            let mut va = [0u64];
            let mut vb = [0u64];
            mpi.dyn_read_local(&win, a, 0, &mut va).unwrap();
            mpi.dyn_read_local(&win, b, 0, &mut vb).unwrap();
            assert_eq!((va[0], vb[0]), (1, 2));
            mpi.dyn_unlock_all(&win);
        });
    }

    #[test]
    fn detach_invalidates_address() {
        Universe::run(1, |mpi| {
            let comm = mpi.world();
            let win = mpi.win_create_dynamic(&comm).unwrap();
            mpi.dyn_lock_all(&win);
            let a = mpi.win_attach(&win, 16).unwrap();
            mpi.win_detach(&win, a).unwrap();
            assert!(mpi.dyn_put(&win, a, 0, &[1u64]).is_err());
            assert!(mpi.win_detach(&win, a).is_err());
            mpi.dyn_unlock_all(&win);
        });
    }

    #[test]
    fn epoch_enforced_on_dynamic_windows() {
        let r = std::panic::catch_unwind(|| {
            Universe::run(1, |mpi| {
                let comm = mpi.world();
                let win = mpi.win_create_dynamic(&comm).unwrap();
                let a = mpi.win_attach(&win, 8).unwrap();
                // No lock_all → panic.
                let _ = mpi.dyn_put(&win, a, 0, &[1u64]);
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn attach_accounts_memory() {
        Universe::run(1, |mpi| {
            let comm = mpi.world();
            let win = mpi.win_create_dynamic(&comm).unwrap();
            let before = mpi.mem().mapped(caf_fabric::MemCategory::UserData);
            let a = mpi.win_attach(&win, 1024).unwrap();
            assert_eq!(
                mpi.mem().mapped(caf_fabric::MemCategory::UserData),
                before + 1024
            );
            mpi.win_detach(&win, a).unwrap();
            assert_eq!(mpi.mem().mapped(caf_fabric::MemCategory::UserData), before);
        });
    }
}
