//! Reduction and accumulate operations over predefined element types.

use caf_fabric::Pod;

/// Scalar element types usable in reductions and accumulates — the
/// "predefined MPI datatypes" of this substrate.
pub trait Scalar: Pod + PartialOrd {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Element addition.
    fn add(self, rhs: Self) -> Self;
    /// Element multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Element maximum.
    fn max_of(self, rhs: Self) -> Self {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
    /// Element minimum.
    fn min_of(self, rhs: Self) -> Self {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

macro_rules! impl_scalar_int {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            fn add(self, rhs: Self) -> Self { self.wrapping_add(rhs) }
            fn mul(self, rhs: Self) -> Self { self.wrapping_mul(rhs) }
        }
    )*};
}
impl_scalar_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! impl_scalar_float {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            fn add(self, rhs: Self) -> Self { self + rhs }
            fn mul(self, rhs: Self) -> Self { self * rhs }
        }
    )*};
}
impl_scalar_float!(f32, f64);

/// The predefined accumulate/reduce operations (`MPI_SUM`, `MPI_PROD`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccOp {
    /// `MPI_SUM`
    Sum,
    /// `MPI_PROD`
    Prod,
    /// `MPI_MAX`
    Max,
    /// `MPI_MIN`
    Min,
    /// `MPI_REPLACE` (accumulate only)
    Replace,
    /// `MPI_NO_OP` (get_accumulate fetch-only)
    NoOp,
    /// `MPI_BXOR` — integer element types only; on floats it combines bit
    /// patterns, which is what the RandomAccess benchmark wants on `u64`.
    Bxor,
    /// `MPI_BAND`
    Band,
    /// `MPI_BOR`
    Bor,
}

impl AccOp {
    /// Apply the op to a scalar pair: `target OP source`.
    pub fn apply<T: Scalar>(self, target: T, source: T) -> T {
        match self {
            AccOp::Sum => target.add(source),
            AccOp::Prod => target.mul(source),
            AccOp::Max => target.max_of(source),
            AccOp::Min => target.min_of(source),
            AccOp::Replace => source,
            AccOp::NoOp => target,
            AccOp::Bxor | AccOp::Band | AccOp::Bor => {
                panic!("bitwise AccOp must be applied through apply_bits")
            }
        }
    }

    /// Apply the op on raw 8-byte bit patterns, interpreting them as the
    /// bit representation of `T`. Used by the one-sided accumulate engine,
    /// which performs CAS loops on whole words.
    pub fn apply_bits<T: Scalar + BitsRepr>(self, target_bits: u64, source_bits: u64) -> u64 {
        match self {
            AccOp::Bxor => target_bits ^ source_bits,
            AccOp::Band => target_bits & source_bits,
            AccOp::Bor => target_bits | source_bits,
            _ => {
                let t = T::from_bits(target_bits);
                let s = T::from_bits(source_bits);
                T::to_bits(self.apply(t, s))
            }
        }
    }
}

/// 8-byte element types addressable by the one-sided atomic engine
/// (`fetch_and_op`, `compare_and_swap`, `accumulate`). Real MPI permits any
/// predefined type; this substrate restricts one-sided atomics to 8-byte
/// elements, which covers every use in the CAF runtime and benchmarks.
pub trait BitsRepr: Scalar {
    /// Bit pattern of the value.
    fn to_bits(v: Self) -> u64;
    /// Value with the given bit pattern.
    fn from_bits(bits: u64) -> Self;
}

impl BitsRepr for u64 {
    fn to_bits(v: Self) -> u64 {
        v
    }
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl BitsRepr for i64 {
    fn to_bits(v: Self) -> u64 {
        v as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
}

impl BitsRepr for usize {
    fn to_bits(v: Self) -> u64 {
        v as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

impl BitsRepr for f64 {
    fn to_bits(v: Self) -> u64 {
        v.to_bits()
    }
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

/// Elementwise in-place reduction: `acc[i] = OP(acc[i], src[i])` with a
/// user combiner. This is the engine behind the two-sided collectives.
pub fn combine_into<T: Copy>(acc: &mut [T], src: &[T], f: impl Fn(T, T) -> T) {
    assert_eq!(acc.len(), src.len(), "reduction length mismatch");
    for (a, s) in acc.iter_mut().zip(src) {
        *a = f(*a, *s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_ops_on_ints() {
        assert_eq!(AccOp::Sum.apply(3u64, 4), 7);
        assert_eq!(AccOp::Prod.apply(3i64, -4), -12);
        assert_eq!(AccOp::Max.apply(3u32, 4), 4);
        assert_eq!(AccOp::Min.apply(3i32, -4), -4);
        assert_eq!(AccOp::Replace.apply(3u64, 9), 9);
        assert_eq!(AccOp::NoOp.apply(3u64, 9), 3);
    }

    #[test]
    fn scalar_ops_on_floats() {
        assert_eq!(AccOp::Sum.apply(1.5f64, 2.25), 3.75);
        assert_eq!(AccOp::Max.apply(1.5f64, -2.0), 1.5);
    }

    #[test]
    fn wrapping_integer_sum() {
        assert_eq!(AccOp::Sum.apply(u64::MAX, 1), 0);
    }

    #[test]
    fn bitwise_via_bits() {
        assert_eq!(AccOp::Bxor.apply_bits::<u64>(0b1100, 0b1010), 0b0110);
        assert_eq!(AccOp::Band.apply_bits::<u64>(0b1100, 0b1010), 0b1000);
        assert_eq!(AccOp::Bor.apply_bits::<u64>(0b1100, 0b1010), 0b1110);
    }

    #[test]
    fn float_sum_via_bits() {
        let t = 1.5f64.to_bits();
        let s = 2.5f64.to_bits();
        assert_eq!(
            f64::from_bits(AccOp::Sum.apply_bits::<f64>(t, s)),
            4.0
        );
    }

    #[test]
    #[should_panic(expected = "apply_bits")]
    fn bitwise_scalar_path_rejected() {
        AccOp::Bxor.apply(1u64, 2);
    }

    #[test]
    fn combine_into_elementwise() {
        let mut acc = [1, 2, 3];
        combine_into(&mut acc, &[10, 20, 30], |a, b| a + b);
        assert_eq!(acc, [11, 22, 33]);
    }

    #[test]
    fn bits_roundtrip() {
        assert_eq!(i64::from_bits(i64::to_bits(-5)), -5);
        assert_eq!(f64::from_bits(f64::to_bits(-0.5)), -0.5);
        assert_eq!(usize::from_bits(usize::to_bits(7)), 7);
    }
}
