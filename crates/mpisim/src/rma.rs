//! One-sided communication: windows, passive-target epochs, PUT/GET,
//! request-generating variants, one-sided atomics, and flush.
//!
//! Every data-plane operation accesses the target's registered segment
//! directly — the target thread is never involved. This is the MPI-3
//! passive-target model the paper builds coarrays on (§3.1): lock all
//! targets once at window allocation, `put`/`get` freely, `flush` for
//! remote completion, unlock only at deallocation.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use caf_fabric::delay::DelayOp;
use caf_fabric::pod::{as_bytes, as_bytes_mut, vec_from_bytes};
use caf_fabric::sched::{self, ModelOp, ANY_OWNER};
use caf_fabric::{FabricError, MemCategory, Pod, Result, Segment, SegmentId};

use crate::comm::Comm;
use crate::ops::{AccOp, BitsRepr};
use crate::request::{FlushRequest, RmaRequest};
use crate::universe::Mpi;

/// Per-origin record of which target ranks have outstanding (unflushed)
/// stores through one window — the bookkeeping the paper's §5 fix needs so
/// that a release operation can complete "only the operations that are
/// actually outstanding" instead of paying `MPI_Win_flush_all`'s Θ(P) scan.
///
/// One bit per comm rank, lock-free. The set is written only by the owning
/// origin thread (window handles are per-rank, like an `MPI_Win`); atomics
/// are used for interior mutability behind shared handles, not for
/// cross-thread publication, so all accesses are `Relaxed`. Clones share
/// the underlying bits, which lets an in-flight [`FlushRequest`] retire its
/// target at completion time.
#[derive(Clone, Debug)]
pub struct DirtySet {
    bits: Arc<[AtomicU64]>,
}

impl DirtySet {
    fn new(nranks: usize) -> Self {
        let words = nranks.div_ceil(64).max(1);
        DirtySet {
            bits: (0..words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record an outstanding store to `rank`.
    pub(crate) fn mark(&self, rank: usize) {
        self.bits[rank / 64].fetch_or(1 << (rank % 64), Ordering::Relaxed);
    }

    /// Retire `rank` after a completing flush.
    pub(crate) fn clear(&self, rank: usize) {
        self.bits[rank / 64].fetch_and(!(1u64 << (rank % 64)), Ordering::Relaxed);
    }

    /// Retire every rank (a whole-window flush).
    pub(crate) fn clear_all(&self) {
        for w in self.bits.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Whether `rank` has outstanding stores.
    pub fn is_dirty(&self, rank: usize) -> bool {
        self.bits[rank / 64].load(Ordering::Relaxed) & (1 << (rank % 64)) != 0
    }

    /// Number of dirty ranks.
    pub fn count(&self) -> usize {
        self.bits
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Dirty ranks in ascending order.
    pub fn ranks(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, w) in self.bits.iter().enumerate() {
            let mut bits = w.load(Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// An RMA window: one registered segment per rank of a communicator.
///
/// The handle is per-rank (like an `MPI_Win`); epoch state is local to the
/// handle. Remote references through a window are `(window, rank,
/// displacement)` triples — exactly the remote-reference representation the
/// paper's CAF-MPI runtime adopts.
pub struct Window {
    pub(crate) id: u64,
    pub(crate) comm: Comm,
    pub(crate) segs: Arc<[SegmentId]>,
    pub(crate) sizes: Arc<[usize]>,
    pub(crate) local: Arc<Segment>,
    pub(crate) locked_all: AtomicBool,
    pub(crate) dirty: DirtySet,
}

/// MPI window ids live in the high-bit half of the model-checker's region
/// namespace; GASNet segment ids own the low half. Keeps the two
/// substrates' resources disjoint when both run in one hybrid job.
fn model_region(win_id: u64) -> u64 {
    win_id | (1u64 << 63)
}

/// Announce a window operation at the scheduler gate *before* its check
/// hook fires, so the interleaving the model explores is exactly the
/// event order the oracle observes.
fn announce(op: ModelOp) {
    if sched::active() {
        sched::yield_op(op);
    }
}

/// Whole-window synchronization (flush / epoch transitions / free):
/// conflicts with every data operation on the window.
pub(crate) fn announce_sync(win_id: u64) {
    announce(ModelOp::Atomic {
        region: model_region(win_id),
        owner: ANY_OWNER,
        lo: 0,
        hi: u64::MAX,
    });
}

impl std::fmt::Debug for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Window")
            .field("id", &self.id)
            .field("comm", &self.comm.id())
            .field("size", &self.comm.size())
            .finish()
    }
}

impl Window {
    /// Window identifier (unique per communicator lineage).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The communicator the window spans.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Size in bytes of `rank`'s exposed region.
    pub fn size_of(&self, rank: usize) -> usize {
        self.sizes[rank]
    }

    /// Direct handle to the local region (used for load/store access to
    /// one's own coarray data under the unified memory model).
    pub fn local_segment(&self) -> &Arc<Segment> {
        &self.local
    }

    /// Comm-relative ranks with outstanding (unflushed) stores from this
    /// origin through the window, in ascending order.
    pub fn dirty_targets(&self) -> Vec<usize> {
        self.dirty.ranks()
    }

    /// Number of comm-relative ranks with outstanding stores.
    pub fn dirty_count(&self) -> usize {
        self.dirty.count()
    }

    fn assert_epoch(&self) {
        assert!(
            self.locked_all.load(Ordering::Relaxed),
            "RMA operation outside a passive-target epoch (call win_lock_all first)"
        );
    }
}

#[cfg(feature = "check")]
impl Mpi {
    /// Best-effort global rank of `target` for check diagnostics
    /// (out-of-range targets are reported raw; the data path returns an
    /// error right after the hook fires).
    fn check_global(&self, win: &Window, target: usize) -> usize {
        if target < win.comm.size() {
            win.comm.global_rank(target)
        } else {
            target
        }
    }
}

impl Mpi {
    /// `MPI_Win_allocate` — collective: every rank exposes `bytes` bytes of
    /// library-allocated memory.
    pub fn win_allocate(&self, comm: &Comm, bytes: usize) -> Result<Window> {
        let seg = Segment::new(bytes);
        let id = self.ep.register_segment(seg);
        let local = self.ep.segment(id)?;
        self.mem.map(MemCategory::UserData, bytes);
        self.mem.map(MemCategory::SegmentMeta, 64 * comm.size());

        let pairs = self.allgather(comm, &[[id.0, bytes as u64]])?;
        let segs: Vec<SegmentId> = pairs.iter().map(|p| SegmentId(p[0])).collect();
        let sizes: Vec<usize> = pairs.iter().map(|p| p[1] as usize).collect();
        let child = self.next_child_index(comm);
        let win_id = crate::comm::derive_comm_id(comm.id(), child, 0x77);
        let nranks = comm.size();
        Ok(Window {
            id: win_id,
            comm: comm.clone(),
            segs: segs.into(),
            sizes: sizes.into(),
            local,
            locked_all: AtomicBool::new(false),
            dirty: DirtySet::new(nranks),
        })
    }

    /// `MPI_Win_free` — collective; tears down the local exposure.
    pub fn win_free(&self, win: Window) -> Result<()> {
        self.win_free_shared(&win)
    }

    /// As [`Mpi::win_free`], for windows held behind shared handles
    /// (`Arc<Window>`). The caller must not use the window afterwards.
    pub fn win_free_shared(&self, win: &Window) -> Result<()> {
        // A window freed with dirty targets while its epoch is still open
        // must complete those stores before teardown — otherwise the data
        // of an unflushed put could be lost with the exposure.
        if win.locked_all.load(Ordering::Relaxed) && win.dirty.count() > 0 {
            for target in win.dirty.ranks() {
                self.win_flush(win, target)?;
            }
        }
        announce_sync(win.id);
        #[cfg(feature = "check")]
        caf_check::hooks::win_free(win.id, self.rank(), win.locked_all.load(Ordering::Relaxed));
        if caf_trace::enabled() {
            caf_trace::instant(caf_trace::Op::WinFree, None, 0, Some(win.id));
        }
        self.barrier(&win.comm)?;
        let me = win.comm.rank();
        self.mem.unmap(MemCategory::UserData, win.sizes[me]);
        self.mem.unmap(MemCategory::SegmentMeta, 64 * win.comm.size());
        self.ep.unregister_segment(win.segs[me])
    }

    /// `MPI_Win_lock_all` — open a shared passive-target epoch to every
    /// rank of the window.
    pub fn win_lock_all(&self, win: &Window) {
        announce_sync(win.id);
        #[cfg(feature = "check")]
        caf_check::hooks::win_lock_all(win.id, self.rank());
        if caf_trace::enabled() {
            caf_trace::instant(caf_trace::Op::WinLockAll, None, 0, Some(win.id));
        }
        win.locked_all.store(true, Ordering::Relaxed);
    }

    /// `MPI_Win_unlock_all` — close the epoch, completing all operations.
    pub fn win_unlock_all(&self, win: &Window) -> Result<()> {
        announce_sync(win.id);
        #[cfg(feature = "check")]
        caf_check::hooks::win_unlock_all(
            win.id,
            self.rank(),
            win.locked_all.load(Ordering::Relaxed),
        );
        win.assert_epoch();
        self.win_flush_all(win)?;
        // Traced after the interior flush: in the recorded timeline the
        // epoch closes once its completing flush is done, which is what
        // the offline checker replays.
        if caf_trace::enabled() {
            caf_trace::instant(caf_trace::Op::WinUnlockAll, None, 0, Some(win.id));
        }
        win.locked_all.store(false, Ordering::Relaxed);
        Ok(())
    }

    fn trace_rma_atomic(&self, win: &Window, target: usize, bytes: usize) {
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::RmaAtomic,
                Some(win.comm.global_rank(target)),
                bytes as u64,
                Some(win.id),
            );
        }
    }

    fn target_segment(&self, win: &Window, target: usize) -> Result<Arc<Segment>> {
        if target >= win.comm.size() {
            return Err(FabricError::RankOutOfRange {
                rank: target,
                size: win.comm.size(),
            });
        }
        self.ep.segment(win.segs[target])
    }

    /// `MPI_Put` — one-sided write of `data` at byte displacement `disp` in
    /// `target`'s window region. Locally complete at return; remotely
    /// complete after a flush (on this substrate the data is applied
    /// immediately, but portable callers must still flush — and the CAF
    /// runtime does).
    pub fn put<T: Pod>(&self, win: &Window, target: usize, disp: usize, data: &[T]) -> Result<()> {
        let bytes = as_bytes(data);
        announce(ModelOp::Write {
            region: model_region(win.id),
            owner: target,
            lo: disp as u64,
            hi: disp as u64 + bytes.len() as u64,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::rma_put(
            win.id,
            self.rank(),
            self.check_global(win, target),
            disp as u64,
            bytes.len() as u64,
            bytes.as_ptr() as u64,
            bytes.len() as u64,
            win.locked_all.load(Ordering::Relaxed),
        );
        win.assert_epoch();
        if caf_trace::enabled() {
            caf_trace::instant_d(
                caf_trace::Op::RmaPut,
                Some(win.comm.global_rank(target)),
                bytes.len() as u64,
                Some(win.id),
                Some(disp as u64),
            );
        }
        self.delays.charge(DelayOp::RmaPut, bytes.len());
        let seg = self.target_segment(win, target)?;
        win.dirty.mark(target);
        seg.put(disp, bytes)
    }

    /// `MPI_Get` — one-sided read from `target`'s window region.
    pub fn get<T: Pod>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        out: &mut [T],
    ) -> Result<()> {
        let bytes = as_bytes_mut(out);
        announce(ModelOp::Read {
            region: model_region(win.id),
            owner: target,
            lo: disp as u64,
            hi: disp as u64 + bytes.len() as u64,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::rma_get(
            win.id,
            self.rank(),
            self.check_global(win, target),
            disp as u64,
            bytes.len() as u64,
            bytes.as_ptr() as u64,
            bytes.len() as u64,
            win.locked_all.load(Ordering::Relaxed),
        );
        win.assert_epoch();
        let seg = self.target_segment(win, target)?;
        if caf_trace::enabled() {
            caf_trace::instant_d(
                caf_trace::Op::RmaGet,
                Some(win.comm.global_rank(target)),
                bytes.len() as u64,
                Some(win.id),
                Some(disp as u64),
            );
        }
        self.delays.charge(DelayOp::RmaGet, bytes.len());
        seg.get(disp, bytes)
    }

    /// `MPI_Rput` — request-generating put. The returned request certifies
    /// **local completion only** (MPI-3 §11.3); remote completion still
    /// requires a flush. This asymmetry is the reason the paper's runtime
    /// falls back to active messages when a remote-completion event is
    /// requested for a PUT (§3.3, case 4).
    pub fn rput<T: Pod>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        data: &[T],
    ) -> Result<RmaRequest<()>> {
        self.put(win, target, disp, data)?;
        let req = RmaRequest::completed_put();
        #[cfg(feature = "check")]
        let req = req.with_check_token(caf_check::hooks::request_open(
            win.id,
            self.rank(),
            data.as_ptr() as u64,
            std::mem::size_of_val(data) as u64,
            "rput",
        ));
        Ok(req)
    }

    /// `MPI_Rget` — request-generating get; completion of the request
    /// certifies local *and* remote completion.
    pub fn rget<T: Pod>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        count: usize,
    ) -> Result<RmaRequest<T>> {
        let mut buf = vec_from_bytes::<T>(&vec![0u8; count * std::mem::size_of::<T>()]);
        self.get(win, target, disp, &mut buf)?;
        #[cfg(feature = "check")]
        let token = caf_check::hooks::request_open(
            win.id,
            self.rank(),
            buf.as_ptr() as u64,
            std::mem::size_of_val(buf.as_slice()) as u64,
            "rget",
        );
        let req = RmaRequest::completed_get(buf);
        #[cfg(feature = "check")]
        let req = req.with_check_token(token);
        Ok(req)
    }

    /// Strided one-sided write: `count` elements of `data` land at
    /// `disp + i·stride_elems·size_of::<T>()` — the `MPI_Put` with an
    /// `MPI_Type_vector` target datatype that a CAF array section
    /// `A(lo:hi:step)[img]` compiles to.
    pub fn put_vector<T: Pod>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        stride_elems: usize,
        data: &[T],
    ) -> Result<()> {
        let esz = std::mem::size_of::<T>();
        // One announce covering the whole strided span (per-element yields
        // would explode the schedule space without adding distinct
        // conflicts).
        announce(ModelOp::Write {
            region: model_region(win.id),
            owner: target,
            lo: disp as u64,
            hi: disp as u64 + (data.len() * stride_elems.max(1) * esz) as u64,
        });
        #[cfg(feature = "check")]
        if caf_check::enabled() {
            let (origin, tgt) = (self.rank(), self.check_global(win, target));
            let open = win.locked_all.load(Ordering::Relaxed);
            for (i, v) in data.iter().enumerate() {
                caf_check::hooks::rma_put(
                    win.id,
                    origin,
                    tgt,
                    (disp + i * stride_elems * esz) as u64,
                    esz as u64,
                    (v as *const T) as u64,
                    esz as u64,
                    open,
                );
            }
        }
        win.assert_epoch();
        let seg = self.target_segment(win, target)?;
        win.dirty.mark(target);
        self.delays
            .charge(DelayOp::RmaPut, std::mem::size_of_val(data));
        for (i, v) in data.iter().enumerate() {
            seg.put(disp + i * stride_elems * esz, as_bytes(std::slice::from_ref(v)))?;
        }
        Ok(())
    }

    /// Strided one-sided read: the gather counterpart of
    /// [`Mpi::put_vector`].
    pub fn get_vector<T: Pod>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        stride_elems: usize,
        out: &mut [T],
    ) -> Result<()> {
        let esz = std::mem::size_of::<T>();
        announce(ModelOp::Read {
            region: model_region(win.id),
            owner: target,
            lo: disp as u64,
            hi: disp as u64 + (out.len() * stride_elems.max(1) * esz) as u64,
        });
        #[cfg(feature = "check")]
        if caf_check::enabled() {
            let (origin, tgt) = (self.rank(), self.check_global(win, target));
            let open = win.locked_all.load(Ordering::Relaxed);
            for (i, v) in out.iter().enumerate() {
                caf_check::hooks::rma_get(
                    win.id,
                    origin,
                    tgt,
                    (disp + i * stride_elems * esz) as u64,
                    esz as u64,
                    (v as *const T) as u64,
                    esz as u64,
                    open,
                );
            }
        }
        win.assert_epoch();
        let seg = self.target_segment(win, target)?;
        self.delays
            .charge(DelayOp::RmaGet, std::mem::size_of_val(out));
        for (i, v) in out.iter_mut().enumerate() {
            seg.get(
                disp + i * stride_elems * esz,
                as_bytes_mut(std::slice::from_mut(v)),
            )?;
        }
        Ok(())
    }

    /// `MPI_Raccumulate` — request-generating accumulate; like `rput`,
    /// the request certifies **local completion only** (MPI-3 §11.3).
    pub fn raccumulate<T: BitsRepr>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        data: &[T],
        op: AccOp,
    ) -> Result<RmaRequest<()>> {
        self.accumulate(win, target, disp, data, op)?;
        let req = RmaRequest::completed_put();
        #[cfg(feature = "check")]
        let req = req.with_check_token(caf_check::hooks::request_open(
            win.id,
            self.rank(),
            data.as_ptr() as u64,
            std::mem::size_of_val(data) as u64,
            "raccumulate",
        ));
        Ok(req)
    }

    /// `MPI_Rget_accumulate` — request-generating fetch-and-accumulate;
    /// the request certifies local *and* remote completion and carries
    /// the fetched previous contents.
    pub fn rget_accumulate<T: BitsRepr>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        data: &[T],
        op: AccOp,
    ) -> Result<RmaRequest<T>> {
        let prev = self.get_accumulate(win, target, disp, data, op)?;
        #[cfg(feature = "check")]
        let token = caf_check::hooks::request_open(
            win.id,
            self.rank(),
            prev.as_ptr() as u64,
            std::mem::size_of_val(prev.as_slice()) as u64,
            "rget_accumulate",
        );
        let req = RmaRequest::completed_get(prev);
        #[cfg(feature = "check")]
        let req = req.with_check_token(token);
        Ok(req)
    }

    /// `MPI_Win_shared_query` — the shared-memory window accessor of
    /// `MPI_WIN_ALLOCATE_SHARED`. On this in-process substrate every
    /// window's memory is shared, so any rank's region can be mapped for
    /// direct load/store access (the fast path the paper notes
    /// `MPI_WIN_ALLOCATE` enables, §2.2).
    pub fn win_shared_query(&self, win: &Window, rank: usize) -> Result<Arc<Segment>> {
        self.target_segment(win, rank)
    }

    /// `MPI_Accumulate` — elementwise atomic `target = target OP source`.
    /// Element types are restricted to 8-byte scalars (see [`BitsRepr`]).
    pub fn accumulate<T: BitsRepr>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        data: &[T],
        op: AccOp,
    ) -> Result<()> {
        announce(ModelOp::Atomic {
            region: model_region(win.id),
            owner: target,
            lo: disp as u64,
            hi: disp as u64 + std::mem::size_of_val(data) as u64,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::rma_atomic(
            win.id,
            self.rank(),
            self.check_global(win, target),
            disp as u64,
            std::mem::size_of_val(data) as u64,
            win.locked_all.load(Ordering::Relaxed),
        );
        win.assert_epoch();
        let seg = self.target_segment(win, target)?;
        win.dirty.mark(target);
        self.trace_rma_atomic(win, target, std::mem::size_of_val(data));
        self.delays
            .charge(DelayOp::RmaAtomic, std::mem::size_of_val(data));
        for (i, &v) in data.iter().enumerate() {
            let off = disp + i * 8;
            seg.fetch_update_u64(off, |old| op.apply_bits::<T>(old, T::to_bits(v)))?;
        }
        Ok(())
    }

    /// `MPI_Get_accumulate` — fetch the previous contents while applying
    /// the op. With [`AccOp::NoOp`] this is an atomic read.
    pub fn get_accumulate<T: BitsRepr>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        data: &[T],
        op: AccOp,
    ) -> Result<Vec<T>> {
        announce(ModelOp::Atomic {
            region: model_region(win.id),
            owner: target,
            lo: disp as u64,
            hi: disp as u64 + std::mem::size_of_val(data) as u64,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::rma_atomic(
            win.id,
            self.rank(),
            self.check_global(win, target),
            disp as u64,
            std::mem::size_of_val(data) as u64,
            win.locked_all.load(Ordering::Relaxed),
        );
        win.assert_epoch();
        let seg = self.target_segment(win, target)?;
        win.dirty.mark(target);
        self.trace_rma_atomic(win, target, std::mem::size_of_val(data));
        self.delays
            .charge(DelayOp::RmaAtomic, std::mem::size_of_val(data));
        let mut prev = Vec::with_capacity(data.len());
        for (i, &v) in data.iter().enumerate() {
            let off = disp + i * 8;
            let old = seg.fetch_update_u64(off, |old| op.apply_bits::<T>(old, T::to_bits(v)))?;
            prev.push(T::from_bits(old));
        }
        Ok(prev)
    }

    /// `MPI_Fetch_and_op` — single-element fast path of `get_accumulate`.
    pub fn fetch_and_op<T: BitsRepr>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        value: T,
        op: AccOp,
    ) -> Result<T> {
        announce(ModelOp::Atomic {
            region: model_region(win.id),
            owner: target,
            lo: disp as u64,
            hi: disp as u64 + 8,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::rma_atomic(
            win.id,
            self.rank(),
            self.check_global(win, target),
            disp as u64,
            8,
            win.locked_all.load(Ordering::Relaxed),
        );
        win.assert_epoch();
        let seg = self.target_segment(win, target)?;
        win.dirty.mark(target);
        self.trace_rma_atomic(win, target, 8);
        self.delays.charge(DelayOp::RmaAtomic, 8);
        let old = seg.fetch_update_u64(disp, |old| op.apply_bits::<T>(old, T::to_bits(value)))?;
        Ok(T::from_bits(old))
    }

    /// `MPI_Compare_and_swap` — returns the value observed before the swap.
    pub fn compare_and_swap<T: BitsRepr>(
        &self,
        win: &Window,
        target: usize,
        disp: usize,
        expected: T,
        new: T,
    ) -> Result<T> {
        announce(ModelOp::Atomic {
            region: model_region(win.id),
            owner: target,
            lo: disp as u64,
            hi: disp as u64 + 8,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::rma_atomic(
            win.id,
            self.rank(),
            self.check_global(win, target),
            disp as u64,
            8,
            win.locked_all.load(Ordering::Relaxed),
        );
        win.assert_epoch();
        let seg = self.target_segment(win, target)?;
        win.dirty.mark(target);
        self.trace_rma_atomic(win, target, 8);
        self.delays.charge(DelayOp::RmaAtomic, 8);
        let prev = seg.compare_exchange_u64(disp, T::to_bits(expected), T::to_bits(new))?;
        Ok(T::from_bits(prev))
    }

    /// `MPI_Win_flush` — complete all outstanding operations from this
    /// origin to `target`, at the origin *and* the target.
    pub fn win_flush(&self, win: &Window, target: usize) -> Result<()> {
        announce_sync(win.id);
        #[cfg(feature = "check")]
        caf_check::hooks::win_flush(
            win.id,
            self.rank(),
            self.check_global(win, target),
            win.locked_all.load(Ordering::Relaxed),
        );
        win.assert_epoch();
        if target >= win.comm.size() {
            return Err(FabricError::RankOutOfRange {
                rank: target,
                size: win.comm.size(),
            });
        }
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::WinFlush,
                Some(win.comm.global_rank(target)),
                0,
                Some(win.id),
            );
        }
        self.delays.charge(DelayOp::FlushPerTarget, 0);
        win.dirty.clear(target);
        fence(Ordering::SeqCst);
        Ok(())
    }

    /// `MPI_WIN_RFLUSH` — the request-generating per-target flush the paper
    /// proposes in §5 ("an even better approach … to allow the flush
    /// operation to be nonblocking"). Initiates completion of all
    /// outstanding operations from this origin to `target` and returns
    /// immediately; only [`FlushRequest::wait`] certifies remote completion.
    ///
    /// The modeled per-target latency starts accruing at initiation, so any
    /// work the origin does between issue and wait — e.g. `event_notify`'s
    /// release-barrier `waitall` — overlaps the flush instead of adding to
    /// it.
    pub fn win_rflush(&self, win: &Window, target: usize) -> Result<FlushRequest> {
        announce_sync(win.id);
        win.assert_epoch();
        if target >= win.comm.size() {
            return Err(FabricError::RankOutOfRange {
                rank: target,
                size: win.comm.size(),
            });
        }
        let target_global = win.comm.global_rank(target);
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::WinRflush,
                Some(target_global),
                0,
                Some(win.id),
            );
        }
        // Count and model the cost now; the spin (whatever is left of it)
        // is paid at wait time.
        let cost_ns = self.delays.note(DelayOp::FlushPerTarget, 0);
        Ok(FlushRequest::new(
            win.id,
            self.rank(),
            target,
            target_global,
            caf_fabric::delay::monotonic_ns() + cost_ns as u64,
            win.locked_all.load(Ordering::Relaxed),
            win.dirty.clone(),
        ))
    }

    /// `MPI_Win_flush_all` — complete outstanding operations to **every**
    /// target. Like all MPICH derivatives at the time of the paper, this
    /// flushes each rank of the window's communicator in turn, so its cost
    /// grows linearly with the job size (paper §4.1 — the root cause of
    /// CAF-MPI's `event_notify` overhead in RandomAccess).
    pub fn win_flush_all(&self, win: &Window) -> Result<()> {
        announce_sync(win.id);
        #[cfg(feature = "check")]
        caf_check::hooks::win_flush_all(
            win.id,
            self.rank(),
            win.locked_all.load(Ordering::Relaxed),
        );
        win.assert_epoch();
        // The span's `bytes` field carries the per-target flush count —
        // the Θ(P) signature a trace viewer should surface.
        let _span = caf_trace::span_t(
            caf_trace::Op::WinFlushAll,
            None,
            win.comm.size() as u64,
            Some(win.id),
        );
        for _target in 0..win.comm.size() {
            self.delays.charge(DelayOp::FlushPerTarget, 0);
        }
        win.dirty.clear_all();
        fence(Ordering::SeqCst);
        Ok(())
    }

    /// Resolve the segment backing `rank`'s exposed region — the direct
    /// load/store access the unified memory model permits. Used by
    /// runtimes layered on this library to access window memory from
    /// whichever process is executing (e.g. CAF function shipping).
    pub fn win_segment(&self, win: &Window, rank: usize) -> Result<Arc<Segment>> {
        self.target_segment(win, rank)
    }

    /// Read from this rank's own window region (a local "load" under the
    /// unified memory model).
    pub fn win_read_local<T: Pod>(&self, win: &Window, disp: usize, out: &mut [T]) -> Result<()> {
        let bytes = as_bytes_mut(out);
        announce(ModelOp::Read {
            region: model_region(win.id),
            owner: win.comm.rank(),
            lo: disp as u64,
            hi: disp as u64 + bytes.len() as u64,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::local_read(
            win.id,
            win.comm.global_rank(win.comm.rank()),
            disp as u64,
            bytes.len() as u64,
        );
        win.local.get(disp, bytes)
    }

    /// Write to this rank's own window region (a local "store").
    pub fn win_write_local<T: Pod>(&self, win: &Window, disp: usize, data: &[T]) -> Result<()> {
        let bytes = as_bytes(data);
        announce(ModelOp::Write {
            region: model_region(win.id),
            owner: win.comm.rank(),
            lo: disp as u64,
            hi: disp as u64 + bytes.len() as u64,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::local_write(
            win.id,
            win.comm.global_rank(win.comm.rank()),
            disp as u64,
            bytes.len() as u64,
        );
        win.local.put(disp, bytes)
    }

    /// Read `rank`'s window region as a local "load" from whichever
    /// image is executing — the access CAF function shipping needs,
    /// where a shipped closure runs at the data's owner but captured the
    /// shipper's `Window` handle. Unlike [`Mpi::get`] no epoch is
    /// required: under the unified memory model this is a plain load on
    /// the executor. Instrumented as a local access of `rank`'s region.
    pub fn win_read_local_at<T: Pod>(
        &self,
        win: &Window,
        rank: usize,
        disp: usize,
        out: &mut [T],
    ) -> Result<()> {
        let seg = self.target_segment(win, rank)?;
        let bytes = as_bytes_mut(out);
        announce(ModelOp::Read {
            region: model_region(win.id),
            owner: rank,
            lo: disp as u64,
            hi: disp as u64 + bytes.len() as u64,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::local_read(
            win.id,
            win.comm.global_rank(rank),
            disp as u64,
            bytes.len() as u64,
        );
        seg.get(disp, bytes)
    }

    /// Write `rank`'s window region as a local "store" from whichever
    /// image is executing (see [`Mpi::win_read_local_at`]).
    pub fn win_write_local_at<T: Pod>(
        &self,
        win: &Window,
        rank: usize,
        disp: usize,
        data: &[T],
    ) -> Result<()> {
        let seg = self.target_segment(win, rank)?;
        let bytes = as_bytes(data);
        announce(ModelOp::Write {
            region: model_region(win.id),
            owner: rank,
            lo: disp as u64,
            hi: disp as u64 + bytes.len() as u64,
        });
        #[cfg(feature = "check")]
        caf_check::hooks::local_write(
            win.id,
            win.comm.global_rank(rank),
            disp as u64,
            bytes.len() as u64,
        );
        seg.put(disp, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    fn with_window<T: Send>(
        n: usize,
        bytes: usize,
        f: impl Fn(&Mpi, &Window) -> T + Send + Sync,
    ) -> Vec<T> {
        Universe::run(n, |mpi| {
            let w = mpi.world();
            let win = mpi.win_allocate(&w, bytes).unwrap();
            mpi.win_lock_all(&win);
            let r = f(mpi, &win);
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
            r
        })
    }

    #[test]
    fn put_then_remote_reads_after_sync() {
        let res = with_window(2, 64, |mpi, win| {
            if mpi.rank() == 0 {
                mpi.put(win, 1, 8, &[1.5f64, 2.5]).unwrap();
                mpi.win_flush(win, 1).unwrap();
            }
            mpi.barrier(win.comm()).unwrap();
            let mut out = [0.0f64; 2];
            mpi.win_read_local(win, 8, &mut out).unwrap();
            out
        });
        assert_eq!(res[1], [1.5, 2.5]);
    }

    #[test]
    fn get_reads_remote_data() {
        let res = with_window(2, 64, |mpi, win| {
            mpi.win_write_local(win, 0, &[(mpi.rank() as u64 + 1) * 11])
                .unwrap();
            mpi.barrier(win.comm()).unwrap();
            let peer = 1 - mpi.rank();
            let mut out = [0u64; 1];
            mpi.get(win, peer, 0, &mut out).unwrap();
            out[0]
        });
        assert_eq!(res, vec![22, 11]);
    }

    #[test]
    fn one_sided_needs_no_target_participation() {
        // Target computes (never calls MPI) while origin puts and flushes.
        let res = with_window(2, 8, |mpi, win| {
            if mpi.rank() == 0 {
                mpi.put(win, 1, 0, &[7u64]).unwrap();
                mpi.win_flush(win, 1).unwrap();
                // Signal via a different mechanism only after flush.
                mpi.send(&mpi.world(), 1, 0, &[1u8]).unwrap();
                0
            } else {
                use crate::p2p::{Src, Tag};
                let _ = mpi
                    .recv::<u8>(&mpi.world(), Src::Rank(0), Tag::Is(0))
                    .unwrap();
                let mut out = [0u64; 1];
                mpi.win_read_local(win, 0, &mut out).unwrap();
                out[0]
            }
        });
        assert_eq!(res[1], 7);
    }

    #[test]
    fn rput_certifies_local_rget_remote() {
        use crate::request::RmaCompletion;
        with_window(2, 16, |mpi, win| {
            if mpi.rank() == 0 {
                let rp = mpi.rput(win, 1, 0, &[3u64]).unwrap();
                assert_eq!(rp.completion(), RmaCompletion::LocalOnly);
                rp.wait();
                mpi.win_flush(win, 1).unwrap();
            }
            mpi.barrier(win.comm()).unwrap();
            if mpi.rank() == 1 {
                let rg = mpi.rget::<u64>(win, 1, 0, 1).unwrap();
                assert_eq!(rg.completion(), RmaCompletion::LocalAndRemote);
                assert_eq!(rg.wait(), vec![3]);
            }
        });
    }

    #[test]
    fn accumulate_sums_atomically_from_all_ranks() {
        let n = 8;
        let res = with_window(n, 8, |mpi, win| {
            for _ in 0..100 {
                mpi.accumulate(win, 0, 0, &[1u64], AccOp::Sum).unwrap();
            }
            mpi.win_flush(win, 0).unwrap();
            mpi.barrier(win.comm()).unwrap();
            let mut out = [0u64; 1];
            mpi.win_read_local(win, 0, &mut out).unwrap();
            out[0]
        });
        assert_eq!(res[0], (n * 100) as u64);
    }

    #[test]
    fn accumulate_float_sum() {
        let res = with_window(4, 8, |mpi, win| {
            mpi.accumulate(win, 0, 0, &[0.25f64], AccOp::Sum).unwrap();
            mpi.barrier(win.comm()).unwrap();
            let mut out = [0.0f64; 1];
            mpi.win_read_local(win, 0, &mut out).unwrap();
            out[0]
        });
        assert_eq!(res[0], 1.0);
    }

    #[test]
    fn fetch_and_op_returns_previous() {
        let res = with_window(4, 8, |mpi, win| {
            let prev = mpi.fetch_and_op(win, 0, 0, 1u64, AccOp::Sum).unwrap();
            mpi.barrier(win.comm()).unwrap();
            prev
        });
        // The four previous values must be a permutation of 0..4.
        let mut prevs = res.clone();
        prevs.sort_unstable();
        assert_eq!(prevs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn compare_and_swap_elects_one_winner() {
        let res = with_window(8, 8, |mpi, win| {
            let seen = mpi
                .compare_and_swap(win, 0, 0, 0u64, mpi.rank() as u64 + 1)
                .unwrap();
            mpi.barrier(win.comm()).unwrap();
            seen
        });
        let winners = res.iter().filter(|&&s| s == 0).count();
        assert_eq!(winners, 1, "exactly one CAS must win: {res:?}");
    }

    #[test]
    fn get_accumulate_noop_is_atomic_read() {
        let res = with_window(2, 16, |mpi, win| {
            mpi.win_write_local(win, 0, &[5u64, 6]).unwrap();
            mpi.barrier(win.comm()).unwrap();
            let peer = 1 - mpi.rank();
            mpi.get_accumulate(win, peer, 0, &[0u64, 0], AccOp::NoOp)
                .unwrap()
        });
        assert_eq!(res[0], vec![5, 6]);
        assert_eq!(res[1], vec![5, 6]);
    }

    #[test]
    fn flush_all_visits_every_rank() {
        // flush_all charges the per-target flush once per rank of the
        // window — the Θ(P) signature of §4.1 — which the modeled-cost
        // meter records deterministically (no wall clock involved).
        use crate::universe::MpiConfig;
        use caf_fabric::delay::{DelayConfig, OpCost};
        let mut delays = DelayConfig::free();
        delays.flush_per_target = OpCost::fixed(10.0);
        let cfg = MpiConfig {
            delays,
            ..MpiConfig::default()
        };
        let charges_for = |n: usize| -> Vec<(u64, u64)> {
            Universe::run_with_config(n, cfg, |mpi| {
                let w = mpi.world();
                let win = mpi.win_allocate(&w, 8).unwrap();
                mpi.win_lock_all(&win);
                let m = mpi.delay_meter();
                let (count0, ns0) = (
                    m.count(DelayOp::FlushPerTarget),
                    m.modeled_ns(DelayOp::FlushPerTarget),
                );
                mpi.win_flush_all(&win).unwrap();
                let delta = (
                    m.count(DelayOp::FlushPerTarget) - count0,
                    m.modeled_ns(DelayOp::FlushPerTarget) - ns0,
                );
                // Close the epoch without unlock_all's interior flush so
                // the measured delta is exactly one flush_all.
                win.locked_all.store(false, Ordering::Relaxed);
                mpi.win_free(win).unwrap();
                delta
            })
        };
        for n in [2usize, 8] {
            for (count, ns) in charges_for(n) {
                assert_eq!(count, n as u64, "one per-target handshake per rank");
                assert_eq!(ns, 10 * n as u64, "modeled cost scales with ranks");
            }
        }
    }

    #[test]
    fn puts_and_atomics_mark_dirty_and_flushes_clear() {
        with_window(4, 64, |mpi, win| {
            if mpi.rank() == 0 {
                assert_eq!(win.dirty_targets(), Vec::<usize>::new());
                mpi.put(win, 1, 0, &[1u64]).unwrap();
                mpi.accumulate(win, 2, 0, &[1u64], AccOp::Sum).unwrap();
                mpi.fetch_and_op(win, 3, 8, 1u64, AccOp::Sum).unwrap();
                assert_eq!(win.dirty_targets(), vec![1, 2, 3]);
                assert_eq!(win.dirty_count(), 3);
                mpi.win_flush(win, 2).unwrap();
                assert_eq!(win.dirty_targets(), vec![1, 3]);
                mpi.win_flush_all(win).unwrap();
                assert_eq!(win.dirty_targets(), Vec::<usize>::new());
                // get_accumulate and CAS are stores too.
                mpi.get_accumulate(win, 1, 0, &[0u64], AccOp::NoOp).unwrap();
                mpi.compare_and_swap(win, 2, 0, 0u64, 0u64).unwrap();
                assert_eq!(win.dirty_targets(), vec![1, 2]);
                mpi.win_flush_all(win).unwrap();
            }
            mpi.barrier(win.comm()).unwrap();
        });
    }

    #[test]
    fn reads_do_not_mark_dirty() {
        with_window(2, 64, |mpi, win| {
            mpi.barrier(win.comm()).unwrap();
            if mpi.rank() == 0 {
                let mut out = [0u64; 2];
                mpi.get(win, 1, 0, &mut out).unwrap();
                mpi.get_vector(win, 1, 0, 2, &mut out).unwrap();
                mpi.win_write_local(win, 0, &[7u64]).unwrap();
                assert_eq!(win.dirty_count(), 0);
            }
            mpi.barrier(win.comm()).unwrap();
        });
    }

    #[test]
    fn overlapping_epochs_keep_dirty_sets_independent() {
        // Two windows with overlapping passive-target epochs: flushing
        // (or closing) one epoch must not retire the other's targets.
        let _ = Universe::run(3, |mpi| {
            let w = mpi.world();
            let win_a = mpi.win_allocate(&w, 32).unwrap();
            let win_b = mpi.win_allocate(&w, 32).unwrap();
            mpi.win_lock_all(&win_a);
            mpi.win_lock_all(&win_b);
            if mpi.rank() == 0 {
                mpi.put(&win_a, 1, 0, &[1u64]).unwrap();
                mpi.put(&win_b, 2, 0, &[2u64]).unwrap();
                mpi.win_flush(&win_a, 1).unwrap();
                assert_eq!(win_a.dirty_count(), 0);
                assert_eq!(win_b.dirty_targets(), vec![2]);
            }
            // Close A while B's epoch (and dirty target) stays open.
            mpi.win_unlock_all(&win_a).unwrap();
            if mpi.rank() == 0 {
                assert_eq!(win_b.dirty_targets(), vec![2]);
            }
            mpi.win_unlock_all(&win_b).unwrap();
            if mpi.rank() == 0 {
                assert_eq!(win_b.dirty_count(), 0);
            }
            mpi.win_free(win_a).unwrap();
            mpi.win_free(win_b).unwrap();
        });
    }

    #[test]
    fn win_free_with_dirty_targets_completes_them() {
        use crate::universe::MpiConfig;
        use caf_fabric::delay::{DelayConfig, OpCost};
        let mut delays = DelayConfig::free();
        delays.flush_per_target = OpCost::fixed(5.0);
        let cfg = MpiConfig {
            delays,
            ..MpiConfig::default()
        };
        let res = Universe::run_with_config(2, cfg, |mpi| {
            let w = mpi.world();
            let win = mpi.win_allocate(&w, 16).unwrap();
            mpi.win_lock_all(&win);
            let flushes0 = mpi.delay_meter().count(DelayOp::FlushPerTarget);
            if mpi.rank() == 0 {
                mpi.put(&win, 1, 0, &[9u64]).unwrap();
                assert_eq!(win.dirty_targets(), vec![1]);
            }
            // Free with the epoch still open and a target dirty: the free
            // path must complete the outstanding put before teardown.
            mpi.win_free_shared(&win).unwrap();
            let flushes = mpi.delay_meter().count(DelayOp::FlushPerTarget) - flushes0;
            if mpi.rank() == 0 {
                assert_eq!(win.dirty_count(), 0);
                assert_eq!(flushes, 1, "exactly the dirty target was flushed");
            } else {
                assert_eq!(flushes, 0, "clean origins pay nothing at free");
            }
            let mut v = [0u64];
            win.local_segment().get(0, as_bytes_mut(&mut v)).unwrap();
            v[0]
        });
        assert_eq!(res[1], 9);
    }

    #[test]
    fn rflush_overlaps_and_completes_target() {
        use crate::universe::MpiConfig;
        use caf_fabric::delay::{DelayConfig, OpCost};
        let mut delays = DelayConfig::free();
        delays.flush_per_target = OpCost::fixed(20.0);
        let cfg = MpiConfig {
            delays,
            ..MpiConfig::default()
        };
        let res = Universe::run_with_config(2, cfg, |mpi| {
            let w = mpi.world();
            let win = mpi.win_allocate(&w, 16).unwrap();
            mpi.win_lock_all(&win);
            let observed = if mpi.rank() == 0 {
                mpi.put(&win, 1, 0, &[0xabcdu64]).unwrap();
                let m = mpi.delay_meter();
                let (count0, ns0) = (
                    m.count(DelayOp::FlushPerTarget),
                    m.modeled_ns(DelayOp::FlushPerTarget),
                );
                let req = mpi.win_rflush(&win, 1).unwrap();
                // Cost is metered at initiation (the latency runs while
                // the origin keeps working)…
                assert_eq!(m.count(DelayOp::FlushPerTarget) - count0, 1);
                assert_eq!(m.modeled_ns(DelayOp::FlushPerTarget) - ns0, 20);
                // …but the target is retired only at wait.
                assert_eq!(win.dirty_targets(), vec![1]);
                assert_eq!(req.target_global(), 1);
                req.wait();
                assert_eq!(win.dirty_count(), 0);
                // No double charge at wait.
                assert_eq!(m.count(DelayOp::FlushPerTarget) - count0, 1);
                mpi.send(&mpi.world(), 1, 0, &[1u8]).unwrap();
                0
            } else {
                use crate::p2p::{Src, Tag};
                let _ = mpi
                    .recv::<u8>(&mpi.world(), Src::Rank(0), Tag::Is(0))
                    .unwrap();
                let mut out = [0u64; 1];
                mpi.win_read_local(&win, 0, &mut out).unwrap();
                out[0]
            };
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
            observed
        });
        assert_eq!(res[1], 0xabcd);
    }

    #[test]
    fn rflush_out_of_range_is_an_error() {
        with_window(2, 16, |mpi, win| {
            if mpi.rank() == 0 {
                assert!(matches!(
                    mpi.win_rflush(win, 7),
                    Err(FabricError::RankOutOfRange { .. })
                ));
            }
        });
    }

    #[test]
    fn epoch_discipline_is_enforced() {
        let r = std::panic::catch_unwind(|| {
            Universe::run(1, |mpi| {
                let w = mpi.world();
                let win = mpi.win_allocate(&w, 8).unwrap();
                // No lock_all: must panic.
                let _ = mpi.put(&win, 0, 0, &[1u64]);
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn oob_put_is_an_error() {
        with_window(2, 16, |mpi, win| {
            if mpi.rank() == 0 {
                assert!(matches!(
                    mpi.put(win, 1, 12, &[1u64]),
                    Err(FabricError::OutOfBounds { .. })
                ));
            }
        });
    }

    #[test]
    fn vector_put_get_respects_stride() {
        with_window(2, 128, |mpi, win| {
            if mpi.rank() == 0 {
                // Write 4 elements at stride 3 starting at element 1.
                mpi.put_vector(win, 1, 8, 3, &[10u64, 11, 12, 13]).unwrap();
                mpi.win_flush(win, 1).unwrap();
            }
            mpi.barrier(win.comm()).unwrap();
            if mpi.rank() == 1 {
                let mut all = [0u64; 16];
                mpi.win_read_local(win, 0, &mut all).unwrap();
                assert_eq!(all[1], 10);
                assert_eq!(all[4], 11);
                assert_eq!(all[7], 12);
                assert_eq!(all[10], 13);
                assert_eq!(all[2], 0, "gaps untouched");
            }
            mpi.barrier(win.comm()).unwrap();
            // Strided read back from rank 0's side.
            if mpi.rank() == 0 {
                let mut out = [0u64; 4];
                mpi.get_vector(win, 1, 8, 3, &mut out).unwrap();
                assert_eq!(out, [10, 11, 12, 13]);
            }
        });
    }

    #[test]
    fn raccumulate_and_rget_accumulate() {
        with_window(2, 16, |mpi, win| {
            if mpi.rank() == 0 {
                let r = mpi.raccumulate(win, 1, 0, &[5u64], AccOp::Sum).unwrap();
                r.wait();
                mpi.win_flush(win, 1).unwrap();
                let rga = mpi
                    .rget_accumulate(win, 1, 0, &[3u64], AccOp::Sum)
                    .unwrap();
                assert_eq!(rga.wait(), vec![5]);
            }
            mpi.barrier(win.comm()).unwrap();
            if mpi.rank() == 1 {
                let mut v = [0u64];
                mpi.win_read_local(win, 0, &mut v).unwrap();
                assert_eq!(v[0], 8);
            }
        });
    }

    #[test]
    fn shared_query_gives_direct_access() {
        with_window(2, 16, |mpi, win| {
            if mpi.rank() == 0 {
                // Load/store directly through the shared mapping.
                let seg = mpi.win_shared_query(win, 1).unwrap();
                seg.store_u64(0, 0xfeed).unwrap();
            }
            mpi.barrier(win.comm()).unwrap();
            if mpi.rank() == 1 {
                let mut v = [0u64];
                mpi.win_read_local(win, 0, &mut v).unwrap();
                assert_eq!(v[0], 0xfeed);
            }
        });
    }

    #[test]
    fn windows_with_heterogeneous_sizes() {
        let res = Universe::run(3, |mpi| {
            let w = mpi.world();
            let bytes = (mpi.rank() + 1) * 16;
            let win = mpi.win_allocate(&w, bytes).unwrap();
            mpi.win_lock_all(&win);
            let sizes: Vec<usize> = (0..3).map(|r| win.size_of(r)).collect();
            mpi.win_unlock_all(&win).unwrap();
            mpi.win_free(win).unwrap();
            sizes
        });
        for r in res {
            assert_eq!(r, vec![16, 32, 48]);
        }
    }
}
