//! Request objects for request-generating RMA operations (`MPI_Rput`,
//! `MPI_Rget`, `MPI_Raccumulate`, `MPI_Rget_accumulate`).
//!
//! Completion semantics follow MPI-3 §11.3 precisely, because the paper's
//! asynchronous-operation mapping (§3.3) depends on them:
//!
//! * an **`rput`/`raccumulate`** request completes when the operation is
//!   *locally* complete (the origin buffer is reusable) — it says nothing
//!   about the target;
//! * an **`rget`/`rget_accumulate`** request completes when the operation is
//!   both locally and *remotely* complete (the data is at the origin).
//!
//! On this substrate the data plane applies operations at call time, so
//! requests are born complete; the distinction is preserved in the types and
//! in the cost accounting so the runtime layered above behaves exactly as it
//! would on real MPI.

use caf_fabric::Pod;

/// Completion kind certified by a request, mirroring MPI-3 RMA semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmaCompletion {
    /// Local completion only (PUT-style requests).
    LocalOnly,
    /// Local and remote completion (GET-style requests).
    LocalAndRemote,
}

/// A request handle returned by a request-generating RMA operation.
///
/// `T` is the fetched element type for GET-style operations, or `()` for
/// PUT-style operations.
#[derive(Debug)]
#[must_use = "RMA requests must be completed with wait()"]
pub struct RmaRequest<T: Pod> {
    data: Option<Vec<T>>,
    completion: RmaCompletion,
    /// caf-check tracking token (0 = untracked). A tracked request
    /// dropped without `wait()` is the Fig 2 put-ack hazard: nothing
    /// ever certifies the operation's completion.
    #[allow(dead_code)]
    check_token: u64,
    #[allow(dead_code)]
    waited: bool,
}

impl<T: Pod> RmaRequest<T> {
    pub(crate) fn completed_get(data: Vec<T>) -> Self {
        RmaRequest {
            data: Some(data),
            completion: RmaCompletion::LocalAndRemote,
            check_token: 0,
            waited: false,
        }
    }

    /// Attach a caf-check request token (see `hooks::request_open`).
    #[cfg(feature = "check")]
    pub(crate) fn with_check_token(mut self, token: u64) -> Self {
        self.check_token = token;
        self
    }

    /// What completing this request certifies.
    pub fn completion(&self) -> RmaCompletion {
        self.completion
    }

    /// Nonblocking completion test (`MPI_Test`).
    pub fn test(&self) -> bool {
        true
    }

    /// Wait for completion and take the fetched data (`MPI_Wait`).
    pub fn wait(mut self) -> Vec<T> {
        self.waited = true;
        #[cfg(feature = "check")]
        caf_check::hooks::request_wait(self.check_token);
        self.data.take().unwrap_or_default()
    }
}

impl<T: Pod> Drop for RmaRequest<T> {
    fn drop(&mut self) {
        #[cfg(feature = "check")]
        if !self.waited && self.check_token != 0 && !std::thread::panicking() {
            caf_check::hooks::request_drop(self.check_token);
        }
    }
}

impl RmaRequest<()> {
    pub(crate) fn completed_put() -> Self {
        RmaRequest {
            data: None,
            completion: RmaCompletion::LocalOnly,
            check_token: 0,
            waited: false,
        }
    }
}

/// Wait on a set of PUT-style requests (`MPI_Waitall`).
pub fn waitall_put(reqs: Vec<RmaRequest<()>>) {
    for r in reqs {
        let _ = r.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_requests_certify_remote_completion() {
        let r = RmaRequest::completed_get(vec![1u64, 2]);
        assert_eq!(r.completion(), RmaCompletion::LocalAndRemote);
        assert!(r.test());
        assert_eq!(r.wait(), vec![1, 2]);
    }

    #[test]
    fn put_requests_certify_local_only() {
        let r = RmaRequest::completed_put();
        assert_eq!(r.completion(), RmaCompletion::LocalOnly);
        assert!(r.wait().is_empty());
    }

    #[test]
    fn waitall_consumes_everything() {
        waitall_put(vec![RmaRequest::completed_put(), RmaRequest::completed_put()]);
    }
}
