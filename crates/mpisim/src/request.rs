//! Request objects for request-generating RMA operations (`MPI_Rput`,
//! `MPI_Rget`, `MPI_Raccumulate`, `MPI_Rget_accumulate`).
//!
//! Completion semantics follow MPI-3 §11.3 precisely, because the paper's
//! asynchronous-operation mapping (§3.3) depends on them:
//!
//! * an **`rput`/`raccumulate`** request completes when the operation is
//!   *locally* complete (the origin buffer is reusable) — it says nothing
//!   about the target;
//! * an **`rget`/`rget_accumulate`** request completes when the operation is
//!   both locally and *remotely* complete (the data is at the origin).
//!
//! On this substrate the data plane applies operations at call time, so
//! requests are born complete; the distinction is preserved in the types and
//! in the cost accounting so the runtime layered above behaves exactly as it
//! would on real MPI.

use caf_fabric::Pod;

/// Completion kind certified by a request, mirroring MPI-3 RMA semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmaCompletion {
    /// Local completion only (PUT-style requests).
    LocalOnly,
    /// Local and remote completion (GET-style requests).
    LocalAndRemote,
}

/// A request handle returned by a request-generating RMA operation.
///
/// `T` is the fetched element type for GET-style operations, or `()` for
/// PUT-style operations.
#[derive(Debug)]
#[must_use = "RMA requests must be completed with wait()"]
pub struct RmaRequest<T: Pod> {
    data: Option<Vec<T>>,
    completion: RmaCompletion,
    /// caf-check tracking token (0 = untracked). A tracked request
    /// dropped without `wait()` is the Fig 2 put-ack hazard: nothing
    /// ever certifies the operation's completion.
    #[allow(dead_code)]
    check_token: u64,
    #[allow(dead_code)]
    waited: bool,
}

impl<T: Pod> RmaRequest<T> {
    pub(crate) fn completed_get(data: Vec<T>) -> Self {
        RmaRequest {
            data: Some(data),
            completion: RmaCompletion::LocalAndRemote,
            check_token: 0,
            waited: false,
        }
    }

    /// Attach a caf-check request token (see `hooks::request_open`).
    #[cfg(feature = "check")]
    pub(crate) fn with_check_token(mut self, token: u64) -> Self {
        self.check_token = token;
        self
    }

    /// What completing this request certifies.
    pub fn completion(&self) -> RmaCompletion {
        self.completion
    }

    /// Nonblocking completion test (`MPI_Test`).
    pub fn test(&self) -> bool {
        true
    }

    /// Wait for completion and take the fetched data (`MPI_Wait`).
    pub fn wait(mut self) -> Vec<T> {
        self.waited = true;
        #[cfg(feature = "check")]
        caf_check::hooks::request_wait(self.check_token);
        self.data.take().unwrap_or_default()
    }
}

impl<T: Pod> Drop for RmaRequest<T> {
    fn drop(&mut self) {
        #[cfg(feature = "check")]
        if !self.waited && self.check_token != 0 && !std::thread::panicking() {
            caf_check::hooks::request_drop(self.check_token);
        }
    }
}

impl RmaRequest<()> {
    pub(crate) fn completed_put() -> Self {
        RmaRequest {
            data: None,
            completion: RmaCompletion::LocalOnly,
            check_token: 0,
            waited: false,
        }
    }
}

/// Wait on a set of PUT-style requests (`MPI_Waitall`).
pub fn waitall_put(reqs: Vec<RmaRequest<()>>) {
    for r in reqs {
        let _ = r.wait();
    }
}

/// An in-flight non-blocking per-target flush — the request returned by
/// `MPI_WIN_RFLUSH`, the extension the paper proposes in §5 so that an
/// origin can overlap release-time completion with other work.
///
/// The modeled flush latency starts at initiation; [`FlushRequest::wait`]
/// spins only for whatever remains of it, then certifies remote completion
/// (memory fence, checker notification, dirty-target retirement). Dropping
/// the request without waiting abandons the flush: the target stays dirty
/// and, under `caf-check`, its pending puts stay pending — the same hazard
/// an unwaited `rput` models.
#[derive(Debug)]
#[must_use = "an rflush completes nothing until wait()"]
pub struct FlushRequest {
    win_id: u64,
    origin: usize,
    /// Comm-relative target (for dirty-set retirement).
    target: usize,
    /// Global target rank (for tracing and check diagnostics).
    target_global: usize,
    /// Modeled completion time: issue time + per-target flush cost.
    deadline_ns: u64,
    epoch_open: bool,
    dirty: crate::rma::DirtySet,
}

impl FlushRequest {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        win_id: u64,
        origin: usize,
        target: usize,
        target_global: usize,
        deadline_ns: u64,
        epoch_open: bool,
        dirty: crate::rma::DirtySet,
    ) -> Self {
        FlushRequest {
            win_id,
            origin,
            target,
            target_global,
            deadline_ns,
            epoch_open,
            dirty,
        }
    }

    /// The window this flush targets.
    pub fn window_id(&self) -> u64 {
        self.win_id
    }

    /// Global rank of the flushed target.
    pub fn target_global(&self) -> usize {
        self.target_global
    }

    /// Nonblocking completion probe: whether the modeled latency has
    /// already elapsed (an immediate `wait` would not spin).
    pub fn test(&self) -> bool {
        caf_fabric::delay::monotonic_ns() >= self.deadline_ns
    }

    /// Complete the flush: pay whatever remains of the modeled per-target
    /// latency, then certify remote completion of every operation this
    /// origin had outstanding to the target.
    pub fn wait(self) {
        crate::rma::announce_sync(self.win_id);
        let _span = caf_trace::span_t(
            caf_trace::Op::WinRflushWait,
            Some(self.target_global),
            0,
            Some(self.win_id),
        );
        let now = caf_fabric::delay::monotonic_ns();
        if now < self.deadline_ns {
            caf_fabric::delay::spin_for_ns((self.deadline_ns - now) as f64);
        }
        #[cfg(feature = "check")]
        caf_check::hooks::win_flush(self.win_id, self.origin, self.target_global, self.epoch_open);
        #[cfg(not(feature = "check"))]
        let _ = (self.origin, self.epoch_open);
        self.dirty.clear(self.target);
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_requests_certify_remote_completion() {
        let r = RmaRequest::completed_get(vec![1u64, 2]);
        assert_eq!(r.completion(), RmaCompletion::LocalAndRemote);
        assert!(r.test());
        assert_eq!(r.wait(), vec![1, 2]);
    }

    #[test]
    fn put_requests_certify_local_only() {
        let r = RmaRequest::completed_put();
        assert_eq!(r.completion(), RmaCompletion::LocalOnly);
        assert!(r.wait().is_empty());
    }

    #[test]
    fn waitall_consumes_everything() {
        waitall_put(vec![RmaRequest::completed_put(), RmaRequest::completed_put()]);
    }
}
