//! Communicators: ordered process groups with an isolated matching space.

use std::sync::Arc;

/// A communicator: an ordered group of global ranks plus a context id that
/// isolates its point-to-point and collective traffic.
///
/// `Comm` is a cheap handle (two words + an `Arc`); clones refer to the same
/// group. Ranks *within* the communicator index the `ranks` list; fabric
/// packets always carry global ranks.
#[derive(Debug, Clone)]
pub struct Comm {
    pub(crate) id: u64,
    pub(crate) ranks: Arc<[usize]>,
    pub(crate) my_idx: usize,
}

impl Comm {
    pub(crate) fn new(id: u64, ranks: Arc<[usize]>, my_idx: usize) -> Self {
        debug_assert!(my_idx < ranks.len());
        Comm { id, ranks, my_idx }
    }

    /// Context id of this communicator.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This process's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.my_idx
    }

    /// Number of processes in the communicator.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Translate a communicator rank to a global (world) rank.
    pub fn global_rank(&self, comm_rank: usize) -> usize {
        self.ranks[comm_rank]
    }

    /// Translate a global rank back to a rank in this communicator, if the
    /// process is a member.
    pub fn comm_rank_of_global(&self, global: usize) -> Option<usize> {
        self.ranks.iter().position(|&g| g == global)
    }

    /// The member global ranks, in communicator order.
    pub fn members(&self) -> &[usize] {
        &self.ranks
    }
}

/// Deterministic context-id derivation: every member of a parent
/// communicator computes the same child id from the parent id and the
/// parent's creation counter, without communication. (Real MPI agrees on
/// context ids with a collective; the derivation here is the fixed point
/// that collective would reach.)
pub(crate) fn derive_comm_id(parent_id: u64, child_index: u64, color: u64) -> u64 {
    splitmix64(parent_id ^ splitmix64(child_index) ^ splitmix64(color.wrapping_add(0x9e37)))
}

/// SplitMix64 — a tiny, well-distributed 64-bit mixer.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(ranks: &[usize], my_idx: usize) -> Comm {
        Comm::new(42, ranks.to_vec().into(), my_idx)
    }

    #[test]
    fn rank_translation_roundtrips() {
        let c = comm(&[5, 9, 2], 1);
        assert_eq!(c.rank(), 1);
        assert_eq!(c.size(), 3);
        assert_eq!(c.global_rank(2), 2);
        assert_eq!(c.comm_rank_of_global(9), Some(1));
        assert_eq!(c.comm_rank_of_global(7), None);
    }

    #[test]
    fn derived_ids_are_distinct() {
        let a = derive_comm_id(0, 0, 0);
        let b = derive_comm_id(0, 1, 0);
        let c = derive_comm_id(0, 0, 1);
        let d = derive_comm_id(a, 0, 0);
        let ids = [a, b, c, d];
        for i in 0..ids.len() {
            for j in 0..i {
                assert_ne!(ids[i], ids[j], "collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_comm_id(7, 3, 1), derive_comm_id(7, 3, 1));
    }

    #[test]
    fn splitmix_mixes() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
