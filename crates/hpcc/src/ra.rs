//! HPC Challenge RandomAccess (GUPS) — random read-modify-write updates to
//! a distributed table, routed with CAF 2.0's hypercube software-routing
//! algorithm: `log2(P)` rounds of bulk exchanges built from **coarray
//! writes** and **event notify/wait** (paper §4.1: "the CAF 2.0 primitives
//! most heavily used in the RandomAccess benchmark are coarray write and
//! event notify").
//!
//! Those two primitives are exactly where CAF-MPI and CAF-GASNet differ
//! most — the per-op RMA overhead gap and the Θ(P) `MPI_Win_flush_all`
//! inside `event_notify` — which is why the paper uses RandomAccess as the
//! communication-library stress test (Figures 3–5) and profiles it into
//! the Figure-4 decomposition.
//!
//! Performance is reported in GUP/s = total updates / seconds / 10⁹.

use std::time::Instant;

use caf::{AsyncOpts, Coarray, Image, Team};
use caf_fabric::topology::{is_pow2, log2_exact};
use caf_fabric::DelayOp;

use crate::BenchResult;

/// The HPCC RandomAccess LFSR polynomial.
pub const POLY: u64 = 0x7;
/// Period of the update stream.
pub const PERIOD: i64 = 1_317_624_576_693_539_401;

/// One step of the HPCC update stream.
#[inline]
pub fn lcg_next(x: u64) -> u64 {
    (x << 1) ^ (((x as i64) < 0) as u64 * POLY)
}

/// The HPCC `HPCC_starts` function: the `n`-th element of the update
/// stream in O(log n) via GF(2) matrix squaring.
pub fn starts(n: i64) -> u64 {
    let mut n = n;
    while n < 0 {
        n += PERIOD;
    }
    while n > PERIOD {
        n -= PERIOD;
    }
    if n == 0 {
        return 0x1;
    }
    let mut m2 = [0u64; 64];
    let mut temp = 0x1u64;
    for slot in m2.iter_mut() {
        *slot = temp;
        temp = lcg_next(lcg_next(temp));
    }
    let mut i: i32 = 62;
    while i >= 0 && (n >> i) & 1 == 0 {
        i -= 1;
    }
    let mut ran = 0x2u64;
    while i > 0 {
        let mut temp = 0u64;
        for (j, m) in m2.iter().enumerate() {
            if (ran >> j) & 1 == 1 {
                temp ^= m;
            }
        }
        ran = temp;
        i -= 1;
        if (n >> i) & 1 == 1 {
            ran = lcg_next(ran);
        }
    }
    ran
}

/// Serial reference: the exact table contents after all images' update
/// streams are applied (XOR updates commute, so this is deterministic).
pub fn serial_reference(
    num_images: usize,
    local_size: usize,
    updates_per_image: usize,
) -> Vec<u64> {
    let table_size = local_size * num_images;
    let mask = (table_size - 1) as u64;
    let mut table: Vec<u64> = (0..table_size as u64).collect();
    for img in 0..num_images {
        let mut ran = starts((img * updates_per_image) as i64);
        for _ in 0..updates_per_image {
            ran = lcg_next(ran);
            table[(ran & mask) as usize] ^= ran;
        }
    }
    table
}

/// Knobs for the RandomAccess router (see [`run_opts`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RaOpts {
    /// Route staging buckets with `copy_async_put` instead of the blocking
    /// `Coarray::write`. A blocking write flushes its own target at issue,
    /// so by `event_notify` time nothing is dirty and every flush policy
    /// costs the same; async puts defer remote completion to the notify
    /// release barrier — the paper's §4.1 hot path, where `FlushMode::All`
    /// pays Θ(P) per window and the targeted modes pay O(dirty targets).
    pub async_puts: bool,
    /// Route updates through the `caf-agg` subsystem instead of the
    /// explicit staging router: each update becomes one coalesced
    /// XOR-accumulate record inside a `finish` block, drained as batched
    /// AMs (and hypercube-forwarded when `CafConfig::agg.routing` is on).
    /// Requires aggregation enabled in the universe config.
    pub aggregated: bool,
}

/// Result of a distributed RandomAccess run.
#[derive(Debug, Clone)]
pub struct RaOutcome {
    /// Timing and GUP/s.
    pub bench: BenchResult,
    /// This image's final local table (for verification).
    pub local_table: Vec<u64>,
    /// Per-[`DelayOp`] `(op, count, modeled_ns)` deltas attributable to the
    /// timed kernel on this image — the delay-meter snapshot after the
    /// closing barrier minus the one before the opening barrier, so
    /// allocation and teardown costs (which include their own whole-window
    /// flushes) are excluded. Issue-side entries (`!op.receive_side()`)
    /// are a pure function of the program and safe to gate in CI;
    /// receive-side entries (`AmDispatch`, `P2pReceive`) can catch a
    /// straggler message on either side of the snapshot boundary and so
    /// vary with scheduling.
    pub meter_delta: Vec<(DelayOp, u64, u64)>,
}

/// Run RandomAccess over `team`: a table of `2^log2_local` entries per
/// image, `updates_per_image` updates generated on each image and routed
/// through the hypercube.
///
/// # Panics
///
/// Panics unless the team size is a power of two.
pub fn run(
    img: &Image,
    team: &Team,
    log2_local: u32,
    updates_per_image: usize,
) -> RaOutcome {
    run_opts(img, team, log2_local, updates_per_image, RaOpts::default())
}

/// [`run`] with explicit router options.
///
/// # Panics
///
/// Panics unless the team size is a power of two.
pub fn run_opts(
    img: &Image,
    team: &Team,
    log2_local: u32,
    updates_per_image: usize,
    opts: RaOpts,
) -> RaOutcome {
    let p = team.size();
    assert!(is_pow2(p), "RandomAccess requires a power-of-two team");
    let d = log2_exact(p);
    let me = team.rank();
    let local_size = 1usize << log2_local;
    let table_size = local_size * p;
    let mask = (table_size - 1) as u64;

    // Table coarray, initialized to the identity permutation.
    let table: Coarray<u64> = img.coarray_alloc(team, local_size);
    let init: Vec<u64> = (0..local_size as u64)
        .map(|i| me as u64 * local_size as u64 + i)
        .collect();
    table.local_write(img, 0, &init);

    if opts.aggregated {
        return run_aggregated(img, team, table, log2_local, updates_per_image);
    }

    // Per-round staging slots: [header][data ...], one slot per round so a
    // fast partner in round k+1 can never clobber unconsumed round-k data.
    // The slot is a *fixed-size window*, not a bound on the bucket: a
    // bucket larger than `cap` streams through it in chunks (header bit 63
    // = "more chunks follow"), each chunk acknowledged on a dedicated
    // per-round event before the sender overwrites the slot. Low bits of
    // the LCG stream are far from uniform, so at larger P a single image
    // can attract a multiple of the per-image update count in one round —
    // the old `count <= cap` assert tripped at P >= 16 and wedged every
    // other image in `event_wait`.
    let cap = 4 * updates_per_image + 64;
    let staging: Coarray<u64> = img.coarray_alloc(team, d as usize * (cap + 1));
    let round_events: Vec<caf::Event> = (0..d).map(|_| img.event_alloc(team)).collect();
    let ack_events: Vec<caf::Event> = (0..d).map(|_| img.event_alloc(team)).collect();
    const MORE: u64 = 1 << 63;

    img.barrier(team);
    let meter_before = img.delay_meter_snapshot();
    let t = Instant::now();

    // Generate this image's update stream.
    let mut pending: Vec<u64> = Vec::with_capacity(2 * updates_per_image);
    let mut ran = starts((me * updates_per_image) as i64);
    for _ in 0..updates_per_image {
        ran = lcg_next(ran);
        pending.push(ran);
    }

    // Hypercube routing: in round k, updates whose destination differs
    // from me in bit k travel to partner = me ^ 2^k.
    for k in 0..d {
        let partner = me ^ (1usize << k);
        let mut keep = Vec::with_capacity(pending.len());
        let mut out = Vec::with_capacity(pending.len());
        for &u in &pending {
            let dest = ((u & mask) as usize) >> log2_local;
            if (dest >> k) & 1 == (me >> k) & 1 {
                keep.push(u);
            } else {
                out.push(u);
            }
        }
        let slot_base = k as usize * (cap + 1);
        let nchunks = out.len().div_ceil(cap).max(1);
        let send_chunk = |j: usize| {
            let lo = j * cap;
            let hi = (lo + cap).min(out.len());
            let mut buf = Vec::with_capacity(hi - lo + 1);
            let more = if j + 1 < nchunks { MORE } else { 0 };
            buf.push((hi - lo) as u64 | more);
            buf.extend_from_slice(&out[lo..hi]);
            if opts.async_puts {
                // Remote completion deferred to the notify release barrier:
                // this is where the flush policy is actually exercised.
                img.copy_async_put(&staging, partner, slot_base, &buf, AsyncOpts::none());
            } else {
                table_guard(&staging, img, partner, slot_base, &buf);
            }
            img.event_notify(team, &round_events[k as usize], partner);
        };

        // Prime the window with the first chunk, then alternate one
        // receive step (absorb a partner chunk, ack it if more follow)
        // with one send step (wait for the partner's ack of the chunk in
        // flight, then overwrite the slot with the next). Acks are sent
        // *before* blocking again, so two peers chunking at each other
        // always hand each other progress.
        send_chunk(0);
        let mut next = 1;
        let mut recv_done = false;
        while !recv_done || next < nchunks {
            if !recv_done {
                img.event_wait(&round_events[k as usize]);
                let mut header = [0u64; 1];
                staging.local_read(img, slot_base, &mut header);
                let incoming = (header[0] & !MORE) as usize;
                if incoming > 0 {
                    let mut buf = vec![0u64; incoming];
                    staging.local_read(img, slot_base + 1, &mut buf);
                    keep.extend_from_slice(&buf);
                }
                if header[0] & MORE != 0 {
                    img.event_notify(team, &ack_events[k as usize], partner);
                } else {
                    recv_done = true;
                }
            }
            if next < nchunks {
                img.event_wait(&ack_events[k as usize]);
                send_chunk(next);
                next += 1;
            }
        }
        pending = keep;
    }

    // All pending updates are now local: apply the XORs.
    let mut local = table.local_vec(img);
    let base = (me * local_size) as u64;
    for &u in &pending {
        let idx = (u & mask) - base;
        local[idx as usize] ^= u;
    }
    table.local_write(img, 0, &local);

    img.barrier(team);
    let dt = t.elapsed().as_secs_f64();
    let meter_after = img.delay_meter_snapshot();
    let secs = img.allreduce(team, &[dt], |a, b| a.max(b))[0];
    let total_updates = (updates_per_image * p) as f64;

    let meter_delta = meter_after
        .iter()
        .zip(meter_before.iter())
        .map(|(&(op, ca, na), &(_, cb, nb))| (op, ca - cb, na - nb))
        .collect();

    let local_table = table.local_vec(img);
    img.coarray_free(team, staging);
    img.coarray_free(team, table);

    RaOutcome {
        bench: BenchResult {
            seconds: secs,
            metric: total_updates / secs * 1e-9,
        },
        local_table,
        meter_delta,
    }
}

/// Thin wrapper so the staging write shows up as a `coarray_write` in the
/// stats decomposition (it is *the* hot write of this benchmark).
fn table_guard(staging: &Coarray<u64>, img: &Image, partner: usize, off: usize, data: &[u64]) {
    staging.write(img, partner, off, data);
}

/// The aggregated update loop: no staging coarray, no per-round events —
/// every update is one `agg_accumulate_xor` record, coalesced per
/// (next-hop) target and delivered in batched AMs; the closing `finish`
/// awaits all batches and forwarded chains (owner-side application keeps
/// the read-modify-write atomic, so no extra synchronization is needed).
fn run_aggregated(
    img: &Image,
    team: &Team,
    table: Coarray<u64>,
    log2_local: u32,
    updates_per_image: usize,
) -> RaOutcome {
    assert!(
        img.agg_config().enabled,
        "RaOpts::aggregated requires CafConfig::agg.enabled"
    );
    let p = team.size();
    let me = team.rank();
    let local_size = 1usize << log2_local;
    let mask = (local_size * p - 1) as u64;

    img.barrier(team);
    let meter_before = img.delay_meter_snapshot();
    let t = Instant::now();

    let mut ran = starts((me * updates_per_image) as i64);
    img.finish(team, |img| {
        for _ in 0..updates_per_image {
            ran = lcg_next(ran);
            let idx = (ran & mask) as usize;
            let dest = idx >> log2_local;
            img.agg_accumulate_xor(&table, dest, idx & (local_size - 1), ran);
        }
    });

    img.barrier(team);
    let dt = t.elapsed().as_secs_f64();
    let meter_after = img.delay_meter_snapshot();
    let secs = img.allreduce(team, &[dt], |a, b| a.max(b))[0];
    let total_updates = (updates_per_image * p) as f64;

    let meter_delta = meter_after
        .iter()
        .zip(meter_before.iter())
        .map(|(&(op, ca, na), &(_, cb, nb))| (op, ca - cb, na - nb))
        .collect();

    let local_table = table.local_vec(img);
    img.coarray_free(team, table);

    RaOutcome {
        bench: BenchResult {
            seconds: secs,
            metric: total_updates / secs * 1e-9,
        },
        local_table,
        meter_delta,
    }
}

/// One **fault-tolerant** aggregated RandomAccess epoch over `team`
/// (DESIGN.md §17): the kernel of [`run_aggregated`] with every blocking
/// point threading a `Stat`, so a member dying mid-epoch surfaces as
/// `Err(failed)` instead of a hang or a panic. The caller owns recovery:
/// `team_reform` the team and retry the epoch on the survivors (RA needs
/// a power-of-two team, so pick fault plans whose survivor count stays
/// one).
///
/// On a failed epoch the table coarray is intentionally **leaked** — a
/// collective free over a team with a dead member can never complete.
/// The retry allocates a fresh table on the reformed team.
///
/// # Panics
///
/// Panics unless the team size is a power of two and aggregation is
/// enabled in the universe config.
pub fn run_aggregated_epoch_ft(
    img: &Image,
    team: &Team,
    log2_local: u32,
    updates_per_image: usize,
) -> Result<Vec<u64>, Vec<usize>> {
    assert!(
        img.agg_config().enabled,
        "run_aggregated_epoch_ft requires CafConfig::agg.enabled"
    );
    let p = team.size();
    assert!(is_pow2(p), "RandomAccess requires a power-of-two team");
    let me = team.rank();
    let local_size = 1usize << log2_local;
    let mask = (local_size * p - 1) as u64;

    // The alloc is a collective; a member that dies *after* its own
    // participation still lets this complete (its contributions are
    // already in flight and already-delivered data wins over the death).
    let table: Coarray<u64> = img.coarray_alloc(team, local_size);
    let init: Vec<u64> = (0..local_size as u64)
        .map(|i| me as u64 * local_size as u64 + i)
        .collect();
    table.local_write(img, 0, &init);
    let stat = img.barrier_stat(team);
    if !stat.is_ok() {
        return Err(stat.failed().to_vec());
    }

    let ((), stat) = img.finish_stat(team, |img| {
        let mut ran = starts((me * updates_per_image) as i64);
        for _ in 0..updates_per_image {
            ran = lcg_next(ran);
            let idx = (ran & mask) as usize;
            let dest = idx >> log2_local;
            img.agg_accumulate_xor(&table, dest, idx & (local_size - 1), ran);
        }
    });
    if !stat.is_ok() {
        return Err(stat.failed().to_vec());
    }
    let stat = img.barrier_stat(team);
    if !stat.is_ok() {
        return Err(stat.failed().to_vec());
    }

    let local = table.local_vec(img);
    img.coarray_free(team, table);
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf::{CafConfig, CafUniverse, SubstrateKind};

    #[test]
    fn stream_matches_known_values() {
        // starts(0) is defined as 1; the stream must be reproducible and
        // starts(n) must equal n steps from starts(0).
        assert_eq!(starts(0), 1);
        let mut x = starts(0);
        for n in 1..200i64 {
            x = lcg_next(x);
            assert_eq!(starts(n), x, "starts({n})");
        }
    }

    #[test]
    fn lcg_has_no_short_cycle() {
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = lcg_next(x);
            assert_ne!(x, 0);
        }
        assert_ne!(x, 1);
    }

    #[test]
    fn distributed_matches_serial_reference() {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            for p in [1usize, 2, 4] {
                let expect = serial_reference(p, 256, 500);
                let locals = CafUniverse::run_with_config(
                    p,
                    CafConfig::on(kind),
                    |img| {
                        let team = img.team_world();
                        run(img, &team, 8, 500).local_table
                    },
                );
                let got: Vec<u64> = locals.into_iter().flatten().collect();
                assert_eq!(got, expect, "substrate {kind:?} P={p}");
            }
        }
    }

    #[test]
    fn async_put_router_matches_reference_under_all_flush_modes() {
        // The §4.1 hot-path variant must stay correct under every flush
        // policy on both substrates.
        use caf::FlushMode;
        let p = 4;
        let expect = serial_reference(p, 256, 500);
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            for flush in [FlushMode::All, FlushMode::targeted(), FlushMode::rflush()] {
                let cfg = CafConfig {
                    flush,
                    ..CafConfig::on(kind)
                };
                let locals = CafUniverse::run_with_config(p, cfg, |img| {
                    let team = img.team_world();
                    run_opts(img, &team, 8, 500, RaOpts { async_puts: true, ..RaOpts::default() }).local_table
                });
                let got: Vec<u64> = locals.into_iter().flatten().collect();
                assert_eq!(got, expect, "substrate {kind:?} flush {}", flush.name());
            }
        }
    }

    #[test]
    fn targeted_flush_cheaper_than_flush_all_on_notify_path() {
        // The tentpole contrast: with async puts (one dirty target per
        // round), FlushMode::All pays a per-rank flush charge for every
        // rank of every window at each notify, while Targeted pays one.
        // The delay meter isolates the kernel (alloc/free excluded).
        use caf::FlushMode;
        use caf_fabric::DelayOp;
        let p = 8;
        let flush_count = |flush: FlushMode| -> u64 {
            let cfg = CafConfig {
                flush,
                ..CafConfig::on(SubstrateKind::Mpi)
            };
            let counts = CafUniverse::run_with_config(p, cfg, |img| {
                let team = img.team_world();
                let out = run_opts(img, &team, 8, 300, RaOpts { async_puts: true, ..RaOpts::default() });
                out.meter_delta
                    .iter()
                    .find(|(op, _, _)| *op == DelayOp::FlushPerTarget)
                    .map(|&(_, c, _)| c)
                    .unwrap_or(0)
            });
            counts.iter().sum()
        };
        let all = flush_count(FlushMode::All);
        let targeted = flush_count(FlushMode::targeted());
        let rflush = flush_count(FlushMode::rflush());
        // All: every notify flushes both windows rank-by-rank (Θ(P) each).
        // Targeted/rflush: only the round's single dirty partner.
        assert!(
            targeted * 2 < all,
            "targeted ({targeted}) should be far below flush_all ({all})"
        );
        assert!(
            rflush * 2 < all,
            "rflush ({rflush}) should be far below flush_all ({all})"
        );
    }

    #[test]
    fn aggregated_router_matches_reference() {
        // The coalesced-update path must be byte-identical to the
        // explicit router, with and without hypercube forwarding.
        use caf::AggConfig;
        let p = 4;
        let expect = serial_reference(p, 256, 500);
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            for routing in [false, true] {
                let cfg = CafConfig {
                    agg: AggConfig {
                        routing,
                        ..AggConfig::on()
                    },
                    ..CafConfig::on(kind)
                };
                let locals = CafUniverse::run_with_config(p, cfg, |img| {
                    let team = img.team_world();
                    run_opts(
                        img,
                        &team,
                        8,
                        500,
                        RaOpts {
                            aggregated: true,
                            ..RaOpts::default()
                        },
                    )
                    .local_table
                });
                let got: Vec<u64> = locals.into_iter().flatten().collect();
                assert_eq!(got, expect, "substrate {kind:?} routing {routing}");
            }
        }
    }

    #[test]
    fn ra_survives_mid_epoch_failure_with_shrunken_team() {
        // Images 2 and 3 die at their first non-empty aggregation drain —
        // inside the epoch's finish block, after updates are already on
        // the wire. Survivors see the failed epoch as Err(failed), reform
        // the team (4 -> 2, still a power of two), and re-run the epoch;
        // the shrunken run must match the serial reference for 2 images.
        use caf::{AggConfig, FaultPlan, KillSite};
        // 401 updates: prime, so the final partial bucket can never land
        // exactly empty and skip the victims' drain-site kill.
        const UPDATES: usize = 401;
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let cfg = CafConfig {
                agg: AggConfig::on(),
                fault: FaultPlan::kill(2, KillSite::Op { name: "agg_drain", hits: 1 })
                    .with(3, KillSite::Op { name: "agg_drain", hits: 1 }),
                ..CafConfig::on(kind)
            };
            let out = CafUniverse::run_with_config_ft(4, cfg, |img| {
                let me = img.this_image();
                let mut team = img.team_world();
                for attempt in 1..=4 {
                    match run_aggregated_epoch_ft(img, &team, 8, UPDATES) {
                        Ok(local) => return (team.size(), local, attempt),
                        Err(failed) => {
                            assert!(!failed.is_empty());
                            // A victim whose epoch fail-fasted on the
                            // *other* victim's death before its own
                            // drain-site kill fired would survive
                            // forever — and wedge the team at size 3.
                            // Die now: the abort is still mid-epoch.
                            if me == 2 || me == 3 {
                                img.fail_image();
                            }
                            // The two deaths may not surface in the same
                            // epoch: a survivor can see Err([2]) and reform
                            // while image 3's death is still unregistered,
                            // leaving a 3-member (non-power-of-two) team.
                            // Reform until the team is whole again — clean
                            // barrier AND power-of-two — before retrying;
                            // team_reform's own agreement barrier folds in
                            // deaths among current members, so this
                            // converges once both victims are gone.
                            loop {
                                let (reformed, _stat) = img.team_reform(&team);
                                team = reformed;
                                if team.size().is_power_of_two()
                                    && img.barrier_stat(&team).is_ok()
                                {
                                    break;
                                }
                            }
                        }
                    }
                }
                panic!("epoch retry did not converge");
            });
            assert!(out[2].is_none() && out[3].is_none(), "{kind:?}: victims must die");
            let expect = serial_reference(2, 256, UPDATES);
            let mut got = Vec::new();
            for g in [0usize, 1] {
                let (size, local, attempt) = out[g].clone().expect("survivors complete");
                assert_eq!(size, 2, "{kind:?}: image {g} finished on the shrunken team");
                assert!(attempt >= 2, "{kind:?}: image {g} never saw the failed epoch");
                got.extend(local);
            }
            assert_eq!(got, expect, "{kind:?}: shrunken-team RA diverged from reference");
        }
    }

    #[test]
    fn gups_metric_is_positive() {
        CafUniverse::run(4, |img| {
            let team = img.team_world();
            let out = run(img, &team, 8, 1000);
            assert!(out.bench.metric > 0.0);
            assert!(out.bench.seconds > 0.0);
        });
    }

    #[test]
    #[should_panic(expected = "image panicked")]
    fn non_pow2_team_rejected() {
        CafUniverse::run(3, |img| {
            let team = img.team_world();
            let _ = run(img, &team, 4, 10);
        });
    }

    #[test]
    fn updates_touch_remote_images() {
        // Sanity: with 4 images the router must actually move data — the
        // reference differs from what purely-local application would give.
        let p = 4;
        let expect = serial_reference(p, 64, 400);
        let mut local_only: Vec<u64> = (0..(64 * p) as u64).collect();
        for im in 0..p {
            let mut ran = starts((im * 400) as i64);
            let base = im * 64;
            for _ in 0..400 {
                ran = lcg_next(ran);
                let idx = (ran & (64 * p - 1) as u64) as usize;
                if idx >= base && idx < base + 64 {
                    local_only[idx] ^= ran;
                }
            }
        }
        assert_ne!(expect, local_only);
    }
}

