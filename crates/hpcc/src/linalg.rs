//! Small dense linear-algebra kernels (column-major, `f64`) — the local
//! computation underneath the HPL benchmark. Hand-rolled replacements for
//! the BLAS/LAPACK routines HPL calls: `dgemm`, `dtrsm` (unit-lower,
//! left), `idamax`, `dswap`, and an unblocked `dgetf2` panel
//! factorization.

/// `C(m×n) -= A(m×k) · B(k×n)`, all column-major with leading dimensions
/// `lda`, `ldb`, `ldc`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_minus(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    // j-k-i loop order: streams columns of C and A (column-major friendly).
    for j in 0..n {
        for l in 0..k {
            let blj = b[j * ldb + l];
            if blj == 0.0 {
                continue;
            }
            let a_col = &a[l * lda..l * lda + m];
            let c_col = &mut c[j * ldc..j * ldc + m];
            for i in 0..m {
                c_col[i] -= a_col[i] * blj;
            }
        }
    }
}

/// Solve `L · X = B` in place, where `L` is `n×n` unit lower triangular
/// (column-major, leading dimension `ldl`) and `B` is `n×nrhs`
/// (column-major, leading dimension `ldb`).
pub fn trsm_unit_lower(n: usize, nrhs: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    for j in 0..nrhs {
        for i in 0..n {
            let bij = b[j * ldb + i];
            if bij == 0.0 {
                continue;
            }
            for r in i + 1..n {
                b[j * ldb + r] -= l[i * ldl + r] * bij;
            }
        }
    }
}

/// Index of the element with the largest absolute value in `x`.
pub fn idamax(x: &[f64]) -> usize {
    let mut best = 0;
    let mut best_abs = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v.abs() > best_abs {
            best = i;
            best_abs = v.abs();
        }
    }
    best
}

/// Unblocked LU with partial pivoting on an `m×n` column-major panel
/// (`m >= n`), leading dimension `lda`. Returns the pivot row chosen at
/// each step (`piv[k]` is relative to row `k`: the global swap is row `k`
/// with row `k + piv[k]`).
pub fn getf2(m: usize, n: usize, a: &mut [f64], lda: usize, piv: &mut [usize]) {
    assert!(m >= n, "panel must be tall");
    for k in 0..n {
        // Pivot search in column k, rows k..m.
        let rel = idamax(&a[k * lda + k..k * lda + m]);
        piv[k] = rel;
        let p = k + rel;
        if p != k {
            for j in 0..n {
                a.swap(j * lda + k, j * lda + p);
            }
        }
        let akk = a[k * lda + k];
        assert!(akk != 0.0, "singular panel at step {k}");
        // Scale multipliers.
        for i in k + 1..m {
            a[k * lda + i] /= akk;
        }
        // Rank-1 update of the trailing panel.
        for j in k + 1..n {
            let akj = a[j * lda + k];
            if akj == 0.0 {
                continue;
            }
            for i in k + 1..m {
                a[j * lda + i] -= a[k * lda + i] * akj;
            }
        }
    }
}

/// Serial full LU with partial pivoting (reference). `a` is `n×n`
/// column-major; returns the pivot sequence (same convention as
/// [`getf2`]).
pub fn serial_lu(n: usize, a: &mut [f64]) -> Vec<usize> {
    let mut piv = vec![0usize; n];
    getf2(n, n, a, n, &mut piv);
    piv
}

/// Solve `A·x = b` given the in-place LU factors and pivots of
/// [`serial_lu`].
pub fn lu_solve(n: usize, lu: &[f64], piv: &[usize], b: &[f64]) -> Vec<f64> {
    let mut x = b.to_vec();
    // Apply pivots.
    for (k, &pv) in piv.iter().enumerate().take(n) {
        let p = k + pv;
        if p != k {
            x.swap(k, p);
        }
    }
    // Forward: L y = P b (unit lower).
    for k in 0..n {
        let xk = x[k];
        for i in k + 1..n {
            x[i] -= lu[k * n + i] * xk;
        }
    }
    // Backward: U x = y.
    for k in (0..n).rev() {
        x[k] /= lu[k * n + k];
        let xk = x[k];
        for i in 0..k {
            x[i] -= lu[k * n + i] * xk;
        }
    }
    x
}

/// Dense column-major `A·x`.
pub fn matvec(n: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; n];
    for j in 0..n {
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        for i in 0..n {
            y[i] += a[j * n + i] * xj;
        }
    }
    y
}

/// Deterministic pseudo-random matrix entry in `[-0.5, 0.5)`.
pub fn matrix_entry(i: usize, j: usize, seed: u64) -> f64 {
    let mut x = (i as u64) << 32 ^ (j as u64) ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(n: usize, seed: u64) -> Vec<f64> {
        let mut a = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                a[j * n + i] = matrix_entry(i, j, seed);
            }
        }
        a
    }

    #[test]
    fn gemm_small_known() {
        // A = [1 2; 3 4], B = [5 6; 7 8] (column-major), C = 0 → C -= AB.
        let a = [1.0, 3.0, 2.0, 4.0];
        let b = [5.0, 7.0, 6.0, 8.0];
        let mut c = [0.0; 4];
        gemm_minus(2, 2, 2, &a, 2, &b, 2, &mut c, 2);
        assert_eq!(c, [-19.0, -43.0, -22.0, -50.0]);
    }

    #[test]
    fn trsm_inverts_unit_lower() {
        let n = 4;
        let mut l = vec![0.0; n * n];
        for j in 0..n {
            l[j * n + j] = 1.0;
            for i in j + 1..n {
                l[j * n + i] = matrix_entry(i, j, 3);
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        // b = L x
        let mut b = vec![0.0; n];
        for j in 0..n {
            for i in 0..n {
                let lij = if i == j {
                    1.0
                } else if i > j {
                    l[j * n + i]
                } else {
                    0.0
                };
                b[i] += lij * x_true[j];
            }
        }
        trsm_unit_lower(n, 1, &l, n, &mut b, n);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_solve_recovers_solution() {
        for n in [1usize, 2, 5, 16, 33] {
            let a = rand_mat(n, 7);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let b = matvec(n, &a, &x_true);
            let mut lu = a.clone();
            let piv = serial_lu(n, &mut lu);
            let x = lu_solve(n, &lu, &piv, &b);
            for i in 0..n {
                assert!(
                    (x[i] - x_true[i]).abs() < 1e-8 * (n as f64),
                    "n={n} i={i}: {} vs {}",
                    x[i],
                    x_true[i]
                );
            }
        }
    }

    #[test]
    fn idamax_finds_largest_abs() {
        assert_eq!(idamax(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(idamax(&[0.0]), 0);
    }

    #[test]
    fn getf2_matches_full_lu_on_square() {
        let n = 8;
        let a0 = rand_mat(n, 11);
        let mut a1 = a0.clone();
        let mut piv1 = vec![0usize; n];
        getf2(n, n, &mut a1, n, &mut piv1);
        let mut a2 = a0;
        let piv2 = serial_lu(n, &mut a2);
        assert_eq!(piv1, piv2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn matrix_entry_is_bounded_and_deterministic() {
        for i in 0..50 {
            for j in 0..50 {
                let v = matrix_entry(i, j, 1);
                assert!((-0.5..0.5).contains(&v));
                assert_eq!(v, matrix_entry(i, j, 1));
            }
        }
        assert_ne!(matrix_entry(1, 2, 1), matrix_entry(2, 1, 1));
    }
}
