//! HPC Challenge FFT — a large 1-D complex DFT, distributed with the
//! six-step (transpose) algorithm, whose only communication is team
//! alltoall.
//!
//! This is the benchmark where the paper's CAF-MPI consistently beats
//! CAF-GASNet (Figures 6–8): the transposes map to `MPI_ALLTOALL` on the
//! MPI substrate but to a hand-rolled AM exchange on GASNet.
//!
//! Reported performance follows the HPCC convention:
//! `GFlop/s = 5 · m · log2(m) / t · 10⁻⁹`.

use std::time::Instant;

use caf::{Image, Team};
use caf_fabric::topology::{bit_reverse, is_pow2, log2_exact};

use crate::complex::C64;
use crate::BenchResult;

/// In-place serial radix-2 FFT (`inverse = true` for the scaled inverse).
///
/// # Panics
///
/// Panics unless `a.len()` is a power of two.
pub fn serial_fft(a: &mut [C64], inverse: bool) {
    let n = a.len();
    assert!(is_pow2(n), "FFT length {n} is not a power of two");
    let bits = log2_exact(n);
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            a.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::cis(ang);
        for base in (0..n).step_by(len) {
            let mut w = C64::ONE;
            for j in 0..len / 2 {
                let u = a[base + j];
                let v = a[base + j + len / 2] * w;
                a[base + j] = u + v;
                a[base + j + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for z in a.iter_mut() {
            z.re *= inv_n;
            z.im *= inv_n;
        }
    }
}

/// O(n²) reference DFT (forward).
pub fn naive_dft(x: &[C64]) -> Vec<C64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = C64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                acc += v * C64::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

/// Distributed matrix transpose over a team: the input is the local
/// `rows/P × cols` row-major slab of a `rows × cols` row-block-distributed
/// matrix; the output is the local `cols/P × rows` slab of its transpose.
pub fn transpose(img: &Image, team: &Team, local: &[C64], rows: usize, cols: usize) -> Vec<C64> {
    let p = team.size();
    let my_rows = rows / p;
    let out_rows = cols / p;
    assert_eq!(local.len(), my_rows * cols, "transpose slab size mismatch");
    assert!(rows % p == 0 && cols % p == 0, "P must divide both dims");

    // Pack: destination d receives my rows restricted to its column block.
    let block = my_rows * out_rows;
    let mut send = vec![C64::ZERO; p * block];
    for d in 0..p {
        for r in 0..my_rows {
            let src = r * cols + d * out_rows;
            let dst = d * block + r * out_rows;
            send[dst..dst + out_rows].copy_from_slice(&local[src..src + out_rows]);
        }
    }
    let recv = img.alltoall(team, &send, block);
    // Unpack: block from source s holds its rows × my columns; scatter
    // into transposed position.
    let mut out = vec![C64::ZERO; out_rows * rows];
    for s in 0..p {
        for r in 0..my_rows {
            for c in 0..out_rows {
                out[c * rows + s * my_rows + r] = recv[s * block + r * out_rows + c];
            }
        }
    }
    out
}

/// Distributed forward FFT via the six-step algorithm. `local` is this
/// image's contiguous block of the natural-order input (`m / P` elements);
/// the result is this image's block of the natural-order spectrum.
///
/// Requires `m = local.len() · P` a power of two with `P` dividing both
/// factor dimensions (`P² ≤ m` suffices for the split used here).
pub fn distributed_fft(img: &Image, team: &Team, local: &[C64], inverse: bool) -> Vec<C64> {
    if inverse {
        // ifft(x) = conj(fft(conj(x))) / m
        let conj: Vec<C64> = local.iter().map(|z| z.conj()).collect();
        let y = distributed_fft(img, team, &conj, false);
        let m = (local.len() * team.size()) as f64;
        return y
            .iter()
            .map(|z| C64::new(z.re / m, -z.im / m))
            .collect();
    }
    let p = team.size();
    let m = local.len() * p;
    assert!(is_pow2(m), "total FFT size must be a power of two");
    let k = log2_exact(m);
    let n1 = 1usize << (k / 2);
    let n2 = m / n1;
    assert!(
        n1 % p == 0 && n2 % p == 0,
        "P={p} must divide both factors n1={n1}, n2={n2}"
    );

    // Input viewed as matrix X[j2][j1] (n2 × n1 row-major), row-block
    // distributed. Step 1: transpose → rows j1.
    let t1 = transpose(img, team, local, n2, n1);

    // Step 2: DFT of length n2 along each local row; Step 3: twiddle by
    // w_m^{j1·k2}.
    let my_rows1 = n1 / p;
    let mut f2 = t1;
    for r in 0..my_rows1 {
        let j1 = team.rank() * my_rows1 + r;
        let row = &mut f2[r * n2..(r + 1) * n2];
        serial_fft(row, false);
        for (k2, z) in row.iter_mut().enumerate() {
            *z *= C64::cis(-2.0 * std::f64::consts::PI * (j1 * k2) as f64 / m as f64);
        }
    }

    // Step 4: transpose back → rows k2.
    let g = transpose(img, team, &f2, n1, n2);

    // Step 5: DFT of length n1 along each local row.
    let my_rows2 = n2 / p;
    let mut h = g;
    for r in 0..my_rows2 {
        serial_fft(&mut h[r * n1..(r + 1) * n1], false);
    }

    // Step 6: transpose → natural order (y[k] with k = n2·k1 + k2).
    transpose(img, team, &h, n2, n1)
}

/// Deterministic pseudo-random input element for global index `g`.
pub fn input_element(g: usize) -> C64 {
    let mut x = g as u64 ^ 0x9e3779b97f4a7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    let re = (x & 0xffff_ffff) as f64 / u32::MAX as f64 - 0.5;
    let im = (x >> 32) as f64 / u32::MAX as f64 - 0.5;
    C64::new(re, im)
}

/// Timed benchmark entry: a forward FFT of `2^log2_size` points over the
/// team. Returns `(seconds, GFlop/s)`.
pub fn run(img: &Image, team: &Team, log2_size: u32) -> BenchResult {
    let m = 1usize << log2_size;
    let p = team.size();
    let local_n = m / p;
    let me = team.rank();
    let local: Vec<C64> = (0..local_n).map(|i| input_element(me * local_n + i)).collect();

    img.barrier(team);
    let t = Instant::now();
    let spectrum = distributed_fft(img, team, &local, false);
    img.barrier(team);
    let dt = t.elapsed().as_secs_f64();
    // Keep the result alive (prevent dead-code elimination).
    std::hint::black_box(&spectrum);

    let secs = img.allreduce(team, &[dt], |a, b| a.max(b))[0];
    let gflops = 5.0 * m as f64 * log2_size as f64 / secs * 1e-9;
    BenchResult {
        seconds: secs,
        metric: gflops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf::{CafConfig, CafUniverse, SubstrateKind};

    fn close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        let scale = b.iter().map(|z| z.abs()).fold(1.0f64, f64::max);
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() <= tol * scale,
                "element {i}: {x:?} vs {y:?} (scale {scale})"
            );
        }
    }

    #[test]
    fn serial_fft_matches_naive_dft() {
        for bits in 1..=7u32 {
            let n = 1usize << bits;
            let x: Vec<C64> = (0..n).map(input_element).collect();
            let mut got = x.clone();
            serial_fft(&mut got, false);
            close(&got, &naive_dft(&x), 1e-10);
        }
    }

    #[test]
    fn serial_roundtrip() {
        let n = 256;
        let x: Vec<C64> = (0..n).map(input_element).collect();
        let mut y = x.clone();
        serial_fft(&mut y, false);
        serial_fft(&mut y, true);
        close(&y, &x, 1e-12);
    }

    #[test]
    fn distributed_transpose_is_correct() {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            CafUniverse::run_with_config(4, CafConfig::on(kind), |img| {
                let team = img.team_world();
                let (rows, cols) = (8, 12);
                let me = img.this_image();
                let my_rows = rows / 4;
                // M[r][c] = r*1000 + c
                let local: Vec<C64> = (0..my_rows * cols)
                    .map(|i| {
                        let r = me * my_rows + i / cols;
                        let c = i % cols;
                        C64::new((r * 1000 + c) as f64, 0.0)
                    })
                    .collect();
                let t = transpose(img, &team, &local, rows, cols);
                let out_rows = cols / 4;
                for lr in 0..out_rows {
                    let c = me * out_rows + lr; // transposed row = original col
                    for r in 0..rows {
                        assert_eq!(t[lr * rows + r].re, (r * 1000 + c) as f64);
                    }
                }
            });
        }
    }

    #[test]
    fn distributed_fft_matches_serial_on_both_substrates() {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            CafUniverse::run_with_config(4, CafConfig::on(kind), |img| {
                let team = img.team_world();
                let bits = 10u32;
                let m = 1usize << bits;
                let local_n = m / 4;
                let me = img.this_image();
                let local: Vec<C64> =
                    (0..local_n).map(|i| input_element(me * local_n + i)).collect();
                let dist = distributed_fft(img, &team, &local, false);

                let full: Vec<C64> = (0..m).map(input_element).collect();
                let mut expect = full;
                serial_fft(&mut expect, false);
                close(&dist, &expect[me * local_n..(me + 1) * local_n], 1e-9);
            });
        }
    }

    #[test]
    fn distributed_roundtrip() {
        CafUniverse::run(2, |img| {
            let team = img.team_world();
            let local: Vec<C64> = (0..128).map(|i| input_element(img.this_image() * 128 + i)).collect();
            let y = distributed_fft(img, &team, &local, false);
            let back = distributed_fft(img, &team, &y, true);
            close(&back, &local, 1e-10);
        });
    }

    #[test]
    fn single_image_fft() {
        CafUniverse::run(1, |img| {
            let team = img.team_world();
            let local: Vec<C64> = (0..64).map(input_element).collect();
            let dist = distributed_fft(img, &team, &local, false);
            let mut expect = local.clone();
            serial_fft(&mut expect, false);
            close(&dist, &expect, 1e-10);
        });
    }

    #[test]
    fn run_reports_positive_gflops() {
        CafUniverse::run(4, |img| {
            let team = img.team_world();
            let r = run(img, &team, 12);
            assert!(r.seconds > 0.0);
            assert!(r.metric > 0.0);
        });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn serial_fft_rejects_non_pow2() {
        let mut v = vec![C64::ZERO; 12];
        serial_fft(&mut v, false);
    }
}
