#![warn(missing_docs)]

//! # caf-hpcc
//!
//! The paper's four evaluation applications, written against the `caf`
//! public API exactly as the originals were written against CAF 2.0:
//!
//! * [`ra`] — HPC Challenge **RandomAccess**: random read-modify-write
//!   updates routed through a hypercube of bulk exchanges built from
//!   `coarray write` + `event_notify`/`event_wait` (the paper's
//!   communication-library stress test, Figures 3–5);
//! * [`fft`] — HPC Challenge **FFT**: a large 1-D complex DFT whose data
//!   movement is entirely team alltoall (Figures 6–8);
//! * [`hpl`] — **High-Performance Linpack**: blocked right-looking LU with
//!   partial pivoting on a 1-D block-cyclic column distribution —
//!   compute-bound, so substrate-insensitive (Figures 9–10);
//! * [`cgpop`] — the **CGPOP** miniapp: the conjugate-gradient core of the
//!   POP ocean model, a *hybrid MPI+CAF* code mixing coarray halo
//!   exchanges (PUSH or PULL) with `MPI_Allreduce` global sums
//!   (Figures 11–12).
//!
//! Every kernel has a serial reference implementation and correctness
//! tests against it; the timed entry points return both wall-clock seconds
//! and the benchmark's own performance metric.

pub mod cgpop;
pub mod complex;
pub mod fft;
pub mod hpl;
pub mod linalg;
pub mod ra;

/// Outcome of one timed benchmark run on one image set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Wall-clock seconds of the timed section (max across images).
    pub seconds: f64,
    /// Benchmark-defined performance metric (GUP/s, GFlop/s, TFlop/s, or
    /// seconds — see each module).
    pub metric: f64,
}
