//! CGPOP — the conjugate-gradient solver extracted from LANL POP 2.0
//! (global ocean modeling), the paper's *hybrid MPI+CAF* application
//! (Figures 11–12).
//!
//! The algorithm is textbook CG on a 5-point stencil over a 2-D
//! processor grid, with two communication steps per iteration:
//!
//! * **UpdateHalo** — a boundary exchange with the four grid neighbours,
//!   done with coarray one-sided operations in either **PUSH** (write my
//!   boundary into the neighbour's ghost inbox) or **PULL** (read the
//!   neighbour's boundary from its outbox) style — the two variants the
//!   paper benchmarks;
//! * **GlobalSum** — a 3-word vector reduction done with **MPI** (the
//!   original CGPOP keeps its MPI reduction when ported to CAF; that mix
//!   is precisely the interoperability the paper targets).
//!
//! The paper reports execution time; so does [`run`] (the `metric` is
//! seconds, lower is better).

use std::time::Instant;

use caf::{Coarray, Image, Team};
use caf_fabric::topology::Grid2d;

use crate::BenchResult;

/// Halo-exchange style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Write my boundary into the neighbour's inbox (coarray write).
    Push,
    /// Read the neighbour's boundary from its outbox (coarray read).
    Pull,
}

/// Per-image problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct CgpopParams {
    /// Interior cells per image in x.
    pub nx: usize,
    /// Interior cells per image in y.
    pub ny: usize,
    /// CG iterations to run (fixed count, as the miniapp does).
    pub iters: usize,
}

/// Result of a CGPOP run.
#[derive(Debug, Clone)]
pub struct CgpopOutcome {
    /// Timing; `metric` is execution time in seconds.
    pub bench: BenchResult,
    /// Global 2-norm of the final residual.
    pub final_residual: f64,
    /// This image's interior solution (row-major `nx × ny`).
    pub solution: Vec<f64>,
}

/// Diagonal shift of the operator `A = (4 + SHIFT)·I − N₄` (keeps the
/// stencil SPD and well-conditioned, standing in for POP's barotropic
/// operator coefficients).
pub const SHIFT: f64 = 0.2;

/// The right-hand side at global cell `(gi, gj)` of a `gx × gy` domain.
pub fn rhs(gi: usize, gj: usize, gx: usize, gy: usize) -> f64 {
    let x = (gi as f64 + 0.5) / gx as f64;
    let y = (gj as f64 + 0.5) / gy as f64;
    (std::f64::consts::TAU * x).sin() * (std::f64::consts::PI * y).cos() + 0.1
}

/// Apply the 5-point operator to a ghosted field (`(nx+2)·(ny+2)`,
/// row-major, ghosts at the rim) producing the interior result.
fn apply_stencil(u: &[f64], nx: usize, ny: usize, out: &mut [f64]) {
    let w = nx + 2;
    for j in 1..=ny {
        for i in 1..=nx {
            out[(j - 1) * nx + (i - 1)] = (4.0 + SHIFT) * u[j * w + i]
                - u[j * w + i - 1]
                - u[j * w + i + 1]
                - u[(j - 1) * w + i]
                - u[(j + 1) * w + i];
        }
    }
}

/// Serial reference CG on the full `gx × gy` domain; returns the solution
/// and the final residual 2-norm after `iters` iterations.
pub fn serial_cg(gx: usize, gy: usize, iters: usize) -> (Vec<f64>, f64) {
    let w = gx + 2;
    let h = gy + 2;
    let ghosted = |field: &[f64]| {
        let mut g = vec![0.0; w * h];
        for j in 0..gy {
            for i in 0..gx {
                g[(j + 1) * w + i + 1] = field[j * gx + i];
            }
        }
        g
    };
    let b: Vec<f64> = (0..gx * gy).map(|k| rhs(k % gx, k / gx, gx, gy)).collect();
    let mut x = vec![0.0; gx * gy];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs: f64 = r.iter().map(|v| v * v).sum();
    let mut q = vec![0.0; gx * gy];
    for _ in 0..iters {
        let pg = ghosted(&p);
        apply_stencil(&pg, gx, gy, &mut q);
        let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
        let alpha = rs / pq;
        for k in 0..gx * gy {
            x[k] += alpha * p[k];
            r[k] -= alpha * q[k];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs;
        rs = rs_new;
        for k in 0..gx * gy {
            p[k] = r[k] + beta * p[k];
        }
    }
    (x, rs.sqrt())
}

/// The miniapp's GlobalSum: a 3-word vector reduction **through MPI**
/// (`MPI_Allreduce`), exactly as the CAF port of CGPOP keeps doing.
fn global_sum3(img: &Image, vals: [f64; 3]) -> [f64; 3] {
    let mpi = img.mpi().expect(
        "CGPOP is a hybrid MPI+CAF application: on the GASNet substrate it \
         needs CafConfig::hybrid_mpi (duplicate runtimes)",
    );
    let out = mpi
        .allreduce(&mpi.world(), &vals, |a, b| a + b)
        .expect("GlobalSum allreduce");
    [out[0], out[1], out[2]]
}

struct Halo {
    grid: Grid2d,
    buf: Coarray<f64>,
    l: usize,
    nx: usize,
    ny: usize,
    mode: ExchangeMode,
}

// Slot layout in the halo coarray: 4 outboxes then 4 inboxes, each of
// length L = max(nx, ny); order W, E, S, N.
const W: usize = 0;
const E: usize = 1;
const S: usize = 2;
const N: usize = 3;

impl Halo {
    fn new(img: &Image, team: &Team, nx: usize, ny: usize, mode: ExchangeMode) -> Self {
        let grid = Grid2d::new(team.size());
        let l = nx.max(ny);
        let buf = img.coarray_alloc(team, 8 * l);
        Halo {
            grid,
            buf,
            l,
            nx,
            ny,
            mode,
        }
    }

    fn outbox(&self, dir: usize) -> usize {
        dir * self.l
    }

    fn inbox(&self, dir: usize) -> usize {
        (4 + dir) * self.l
    }

    fn pack(&self, u: &[f64], dir: usize) -> Vec<f64> {
        let w = self.nx + 2;
        match dir {
            W => (1..=self.ny).map(|j| u[j * w + 1]).collect(),
            E => (1..=self.ny).map(|j| u[j * w + self.nx]).collect(),
            S => (1..=self.nx).map(|i| u[w + i]).collect(),
            N => (1..=self.nx).map(|i| u[self.ny * w + i]).collect(),
            _ => unreachable!(),
        }
    }

    fn unpack(&self, u: &mut [f64], dir: usize, data: &[f64]) {
        let w = self.nx + 2;
        match dir {
            W => {
                for (j, &v) in data.iter().enumerate() {
                    u[(j + 1) * w] = v;
                }
            }
            E => {
                for (j, &v) in data.iter().enumerate() {
                    u[(j + 1) * w + self.nx + 1] = v;
                }
            }
            S => {
                for (i, &v) in data.iter().enumerate() {
                    u[i + 1] = v;
                }
            }
            N => {
                for (i, &v) in data.iter().enumerate() {
                    u[(self.ny + 1) * w + i + 1] = v;
                }
            }
            _ => unreachable!(),
        }
    }

    /// UpdateHalo: fill the ghost rim of `u` from the four neighbours.
    fn exchange(&self, img: &Image, team: &Team, u: &mut [f64]) {
        let me = team.rank();
        let nbrs = self.grid.neighbours(me); // [W, E, S, N]
        let opposite = [E, W, N, S];
        let lens = [self.ny, self.ny, self.nx, self.nx];

        match self.mode {
            ExchangeMode::Push => {
                // Write my boundary into each neighbour's facing inbox.
                for dir in 0..4 {
                    if let Some(nb) = nbrs[dir] {
                        let data = self.pack(u, dir);
                        self.buf.write(img, nb, self.inbox(opposite[dir]), &data);
                    }
                }
                img.barrier(team);
                for (dir, nb) in nbrs.iter().enumerate() {
                    if nb.is_some() {
                        let mut data = vec![0.0; lens[dir]];
                        self.buf.local_read(img, self.inbox(dir), &mut data);
                        self.unpack(u, dir, &data);
                    }
                }
                img.barrier(team);
            }
            ExchangeMode::Pull => {
                // Publish my boundaries in my own outboxes...
                for (dir, nb) in nbrs.iter().enumerate() {
                    if nb.is_some() {
                        let data = self.pack(u, dir);
                        self.buf.local_write(img, self.outbox(dir), &data);
                    }
                }
                img.barrier(team);
                // ...then read each neighbour's facing outbox.
                for dir in 0..4 {
                    if let Some(nb) = nbrs[dir] {
                        let mut data = vec![0.0; lens[dir]];
                        self.buf.read(img, nb, self.outbox(opposite[dir]), &mut data);
                        self.unpack(u, dir, &data);
                    }
                }
                img.barrier(team);
            }
        }
    }
}

/// Run CGPOP over `team` (which must be `TEAM_WORLD` — the GlobalSum uses
/// `MPI_COMM_WORLD`, as the miniapp does).
pub fn run(img: &Image, team: &Team, params: CgpopParams, mode: ExchangeMode) -> CgpopOutcome {
    let CgpopParams { nx, ny, iters } = params;
    let grid = Grid2d::new(team.size());
    let (px, py) = grid.coords(team.rank());
    let gx = grid.px * nx;
    let gy = grid.py * ny;

    let halo = Halo::new(img, team, nx, ny, mode);
    let w = nx + 2;
    let h = ny + 2;
    let interior = nx * ny;

    // Local right-hand side.
    let b: Vec<f64> = (0..interior)
        .map(|k| {
            let (i, j) = (k % nx, k / nx);
            rhs(px * nx + i, py * ny + j, gx, gy)
        })
        .collect();

    let mut x = vec![0.0f64; interior];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut q = vec![0.0f64; interior];
    let mut pg = vec![0.0f64; w * h]; // ghosted work field

    let local_dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();

    img.barrier(team);
    let t = Instant::now();

    let mut rs = global_sum3(img, [local_dot(&r, &r), 0.0, 0.0])[0];
    for _ in 0..iters {
        // Load p into the ghosted field and update its halo.
        for j in 0..ny {
            pg[(j + 1) * w + 1..(j + 1) * w + 1 + nx]
                .copy_from_slice(&p[j * nx..(j + 1) * nx]);
        }
        halo.exchange(img, team, &mut pg);
        apply_stencil(&pg, nx, ny, &mut q);

        let sums = global_sum3(img, [local_dot(&p, &q), 0.0, 0.0]);
        let alpha = rs / sums[0];
        for k in 0..interior {
            x[k] += alpha * p[k];
            r[k] -= alpha * q[k];
        }
        let rs_new = global_sum3(img, [local_dot(&r, &r), 0.0, 0.0])[0];
        let beta = rs_new / rs;
        rs = rs_new;
        for k in 0..interior {
            p[k] = r[k] + beta * p[k];
        }
    }

    img.barrier(team);
    let dt = t.elapsed().as_secs_f64();
    let secs = img.allreduce(team, &[dt], |a, b| a.max(b))[0];
    img.coarray_free(team, halo.buf);

    CgpopOutcome {
        bench: BenchResult {
            seconds: secs,
            metric: secs,
        },
        final_residual: rs.sqrt(),
        solution: x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf::{CafConfig, CafUniverse, SubstrateKind};
    use caf_fabric::topology::Grid2d;

    fn check_against_serial(p: usize, kind: SubstrateKind, mode: ExchangeMode) {
        let params = CgpopParams {
            nx: 8,
            ny: 6,
            iters: 25,
        };
        let grid = Grid2d::new(p);
        let (gx, gy) = (grid.px * params.nx, grid.py * params.ny);
        let (serial_x, serial_res) = serial_cg(gx, gy, params.iters);

        let cfg = CafConfig {
            hybrid_mpi: true, // needed on the GASNet substrate
            ..CafConfig::on(kind)
        };
        let outcomes = CafUniverse::run_with_config(p, cfg, move |img| {
            let team = img.team_world();
            run(img, &team, params, mode)
        });
        for (rank, out) in outcomes.iter().enumerate() {
            let (cx, cy) = grid.coords(rank);
            assert!(
                (out.final_residual - serial_res).abs() <= 1e-6 * serial_res.max(1e-30),
                "residual mismatch: {} vs {serial_res}",
                out.final_residual
            );
            for j in 0..params.ny {
                for i in 0..params.nx {
                    let got = out.solution[j * params.nx + i];
                    let want = serial_x[(cy * params.ny + j) * gx + cx * params.nx + i];
                    assert!(
                        (got - want).abs() < 1e-8 * want.abs().max(1.0),
                        "P={p} rank={rank} cell ({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn push_matches_serial_mpi_substrate() {
        for p in [1usize, 2, 4, 6] {
            check_against_serial(p, SubstrateKind::Mpi, ExchangeMode::Push);
        }
    }

    #[test]
    fn pull_matches_serial_mpi_substrate() {
        for p in [1usize, 4, 6] {
            check_against_serial(p, SubstrateKind::Mpi, ExchangeMode::Pull);
        }
    }

    #[test]
    fn push_and_pull_match_serial_gasnet_substrate() {
        check_against_serial(4, SubstrateKind::Gasnet, ExchangeMode::Push);
        check_against_serial(4, SubstrateKind::Gasnet, ExchangeMode::Pull);
    }

    #[test]
    fn residual_decreases() {
        let (_x10, r10) = serial_cg(16, 16, 10);
        let (_x40, r40) = serial_cg(16, 16, 40);
        assert!(r40 < r10, "CG must converge: {r40} !< {r10}");
    }

    #[test]
    #[should_panic(expected = "image panicked")]
    fn gasnet_without_hybrid_mpi_panics_clearly() {
        CafUniverse::run_with_config(
            2,
            CafConfig::on(SubstrateKind::Gasnet),
            |img| {
                let team = img.team_world();
                let _ = run(
                    img,
                    &team,
                    CgpopParams {
                        nx: 4,
                        ny: 4,
                        iters: 1,
                    },
                    ExchangeMode::Push,
                );
            },
        );
    }
}
