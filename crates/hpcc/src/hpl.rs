//! High-Performance Linpack — blocked right-looking LU factorization with
//! partial pivoting on a 1-D block-cyclic column distribution, solving
//! `A·x = b`.
//!
//! Communication per panel: one team broadcast (the factored panel plus
//! its pivots). Everything else is local `dtrsm`/`dgemm` — which is why
//! the paper finds HPL "hardly noticeable" between CAF-MPI and CAF-GASNet
//! (Figures 9–10): the benchmark is compute-bound.
//!
//! Performance follows the HPL convention:
//! `flops = 2/3·N³ + 3/2·N²`, reported as GFlop/s (the paper's figures
//! use TFlop/s; the harness converts).

use std::time::Instant;

use caf::{Image, Team};

use crate::linalg::{
    getf2, gemm_minus, lu_solve, matrix_entry, matvec, trsm_unit_lower,
};
use crate::BenchResult;

/// Result of a distributed HPL run.
#[derive(Debug, Clone)]
pub struct HplOutcome {
    /// Timing and GFlop/s of the factorization + solve.
    pub bench: BenchResult,
    /// The scaled HPL residual `‖Ax−b‖∞ / (‖A‖∞·‖x‖∞·N·ε)`; passes
    /// when `< 16`.
    pub residual: f64,
}

/// Global column indices owned by `rank` for an `n`-column matrix with
/// block size `nb` over `p` ranks, ascending.
pub fn my_columns(n: usize, nb: usize, p: usize, rank: usize) -> Vec<usize> {
    (0..n).filter(|j| (j / nb) % p == rank).collect()
}

/// Run HPL over `team`: factor an `n×n` pseudo-random matrix (block size
/// `nb`), solve for a right-hand side built from a known solution, and
/// verify. The timed section covers factorization and solve, as in HPL.
pub fn run(img: &Image, team: &Team, n: usize, nb: usize, seed: u64) -> HplOutcome {
    let p = team.size();
    let me = team.rank();
    let cols = my_columns(n, nb, p, me);
    let ncols = cols.len();

    // Local storage: my columns, column-major, leading dimension n.
    let mut a = vec![0.0f64; ncols * n];
    for (jl, &j) in cols.iter().enumerate() {
        for i in 0..n {
            a[jl * n + i] = matrix_entry(i, j, seed);
        }
    }

    // Known solution and distributed right-hand side b = A·x_true.
    let x_true: Vec<f64> = (0..n).map(|j| (j as f64 * 0.37).sin() + 1.0).collect();
    let mut b_partial = vec![0.0f64; n];
    for (jl, &j) in cols.iter().enumerate() {
        let xj = x_true[j];
        for i in 0..n {
            b_partial[i] += a[jl * n + i] * xj;
        }
    }
    let b = img.allreduce(team, &b_partial, |x, y| x + y);

    img.barrier(team);
    let t = Instant::now();

    // ---- factorization -------------------------------------------------
    let nblocks = n.div_ceil(nb);
    let mut piv_all = vec![0usize; n];
    for kb in 0..nblocks {
        let k0 = kb * nb;
        let w = nb.min(n - k0);
        let owner = kb % p;
        let ld = n - k0;
        let mut panel = vec![0.0f64; ld * w];
        let mut piv = vec![0u64; w];

        if me == owner {
            // Copy my panel columns (rows k0..n), factor, write back.
            let jl0 = cols.partition_point(|&j| j < k0);
            for jj in 0..w {
                debug_assert_eq!(cols[jl0 + jj], k0 + jj);
                panel[jj * ld..(jj + 1) * ld]
                    .copy_from_slice(&a[(jl0 + jj) * n + k0..(jl0 + jj) * n + n]);
            }
            let mut pv = vec![0usize; w];
            getf2(ld, w, &mut panel, ld, &mut pv);
            for jj in 0..w {
                a[(jl0 + jj) * n + k0..(jl0 + jj) * n + n]
                    .copy_from_slice(&panel[jj * ld..(jj + 1) * ld]);
                piv[jj] = pv[jj] as u64;
            }
        }

        // One broadcast per panel: factors + pivots.
        img.broadcast(team, owner, &mut panel);
        img.broadcast(team, owner, &mut piv);
        for (kk, &pv) in piv.iter().enumerate() {
            piv_all[k0 + kk] = pv as usize;
        }

        // Apply the panel's row swaps to all my non-panel columns.
        for (kk, &pv) in piv.iter().enumerate() {
            let r1 = k0 + kk;
            let r2 = r1 + pv as usize;
            if r1 == r2 {
                continue;
            }
            for (jl, &j) in cols.iter().enumerate() {
                if j >= k0 && j < k0 + w {
                    continue; // panel columns were swapped during getf2
                }
                a.swap(jl * n + r1, jl * n + r2);
            }
        }

        // Trailing update on my columns with global index >= k0 + w.
        let jt = cols.partition_point(|&j| j < k0 + w);
        let nt = ncols - jt;
        if nt > 0 {
            // U block: L11⁻¹ applied to rows k0..k0+w of trailing columns.
            trsm_unit_lower(w, nt, &panel, ld, &mut a[jt * n + k0..], n);
            if n > k0 + w {
                // Pack the U block, then GEMM the trailing submatrix.
                let mut ublock = vec![0.0f64; w * nt];
                for c in 0..nt {
                    ublock[c * w..(c + 1) * w]
                        .copy_from_slice(&a[(jt + c) * n + k0..(jt + c) * n + k0 + w]);
                }
                let m = n - k0 - w;
                gemm_minus(
                    m,
                    nt,
                    w,
                    &panel[w..],
                    ld,
                    &ublock,
                    w,
                    &mut a[jt * n + k0 + w..],
                    n,
                );
            }
        }
    }

    // ---- solve (gather factors, triangular solves) ---------------------
    let lu = gather_matrix(img, team, n, nb, &a);
    let x = lu_solve(n, &lu, &piv_all, &b);

    img.barrier(team);
    let dt = t.elapsed().as_secs_f64();
    let secs = img.allreduce(team, &[dt], |x, y| x.max(y))[0];
    let nf = n as f64;
    let flops = 2.0 / 3.0 * nf * nf * nf + 1.5 * nf * nf;

    // ---- verification (untimed): scaled residual ------------------------
    let mut full_a = vec![0.0f64; n * n];
    for j in 0..n {
        for i in 0..n {
            full_a[j * n + i] = matrix_entry(i, j, seed);
        }
    }
    let ax = matvec(n, &full_a, &x);
    let r_inf = ax
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    let a_inf = (0..n)
        .map(|i| (0..n).map(|j| full_a[j * n + i].abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    let x_inf = x.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    let residual = r_inf / (a_inf * x_inf * nf * f64::EPSILON);

    HplOutcome {
        bench: BenchResult {
            seconds: secs,
            metric: flops / secs * 1e-9,
        },
        residual,
    }
}

/// Gather the block-cyclic-distributed matrix onto every image
/// (verification path — not part of a production HPL, which solves
/// distributively; scope documented in DESIGN.md).
fn gather_matrix(img: &Image, team: &Team, n: usize, nb: usize, local: &[f64]) -> Vec<f64> {
    let p = team.size();
    let all = img.allgatherv(team, local);
    let mut full = vec![0.0f64; n * n];
    let mut cursor = 0usize;
    for r in 0..p {
        for j in my_columns(n, nb, p, r) {
            full[j * n..(j + 1) * n].copy_from_slice(&all[cursor..cursor + n]);
            cursor += n;
        }
    }
    debug_assert_eq!(cursor, n * n);
    full
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf::{CafConfig, CafUniverse, SubstrateKind};

    #[test]
    fn column_ownership_partitions() {
        let n = 37;
        let nb = 4;
        let p = 3;
        let mut seen = vec![false; n];
        for r in 0..p {
            for j in my_columns(n, nb, p, r) {
                assert!(!seen[j], "column {j} owned twice");
                seen[j] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn distributed_lu_solves_on_both_substrates() {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            for p in [1usize, 2, 4] {
                let residuals = CafUniverse::run_with_config(
                    p,
                    CafConfig::on(kind),
                    |img| {
                        let team = img.team_world();
                        run(img, &team, 64, 8, 42).residual
                    },
                );
                for r in residuals {
                    assert!(r < 16.0, "HPL residual {r} too large ({kind:?}, P={p})");
                }
            }
        }
    }

    #[test]
    fn distributed_matches_serial_factors() {
        // With P=1 the distributed code path must agree with serial LU
        // bit-for-bit (same kernels, same order).
        CafUniverse::run(1, |img| {
            let team = img.team_world();
            let out = run(img, &team, 32, 8, 9);
            assert!(out.residual < 16.0);
        });
    }

    #[test]
    fn odd_sizes_and_blocks() {
        CafUniverse::run(2, |img| {
            let team = img.team_world();
            // n not a multiple of nb; last panel is narrow.
            let out = run(img, &team, 45, 8, 5);
            assert!(out.residual < 16.0, "residual {}", out.residual);
        });
    }

    #[test]
    fn gflops_positive() {
        CafUniverse::run(2, |img| {
            let team = img.team_world();
            let out = run(img, &team, 48, 8, 1);
            assert!(out.bench.metric > 0.0);
        });
    }
}
