//! Minimal double-precision complex arithmetic for the FFT kernel.

use caf_fabric::Pod;

/// A double-precision complex number. 16 bytes, no padding, any bit
/// pattern valid — hence [`Pod`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

// SAFETY: two f64s, repr(C), no padding, every bit pattern valid, Copy.
unsafe impl Pod for C64 {}

impl C64 {
    /// 0 + 0i.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl std::ops::MulAssign for C64 {
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = C64::cis(k as f64 * 0.5);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conj_negates_imaginary() {
        assert_eq!(C64::new(1.0, 2.0).conj(), C64::new(1.0, -2.0));
    }

    #[test]
    fn pod_roundtrip() {
        use caf_fabric::pod::{as_bytes, vec_from_bytes};
        let xs = [C64::new(1.0, -2.0), C64::new(0.5, 0.25)];
        let back: Vec<C64> = vec_from_bytes(as_bytes(&xs));
        assert_eq!(back, xs);
    }
}
