//! The modeled programs: small, closed CAF jobs whose schedule spaces the
//! explorer walks. Shared by `tests/model_explore.rs` and the
//! `figures model` section so both always talk about the same programs.
//!
//! Every scenario is a plain `fn()` that runs one complete job
//! (`CafUniverse::run_with_config` or `Fabric::run`); the explorer arms
//! the scheduler gate around it and re-runs it once per schedule, so
//! scenario bodies must be self-contained and repeatable.

use caf::{
    AggConfig, AsyncOpts, CafConfig, CafUniverse, Coarray, ExecConfig, FaultPlan, FlushMode,
    GasnetConfig, KillSite, SubstrateKind,
};
use caf_fabric::{Fabric, Packet};

/// One modeled program.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Display name (`figures model` rows, test messages).
    pub name: &'static str,
    /// Image count the job spawns (the gate is armed for exactly this).
    pub images: usize,
    /// Run the whole job once.
    pub run: fn(),
}

/// Fabric-level ping-pong, two ranks, two rounds. The smallest scenario
/// with real branching (each rank's sends are independent of the peer's),
/// used to measure the sleep-set reduction factor against naive
/// enumeration.
pub fn ping_pong() -> Scenario {
    Scenario { name: "ping-pong (fabric)", images: 2, run: ping_pong_run }
}

fn ping_pong_run() {
    Fabric::run(2, |ep| {
        let peer = 1 - ep.rank();
        for round in 0..2i64 {
            ep.send(peer, Packet::control(ep.rank(), 1, round, [0; 4])).unwrap();
            let p = ep.recv_blocking().unwrap();
            assert_eq!(p.tag, round);
        }
    });
}

/// The quickstart ring: write to the right neighbour, `sync_all`, read
/// locally. Race-free in every interleaving — the clean baseline.
pub fn ring(kind: SubstrateKind) -> Scenario {
    match kind {
        SubstrateKind::Mpi => Scenario { name: "ring (CAF-MPI)", images: 2, run: ring_mpi },
        SubstrateKind::Gasnet => {
            Scenario { name: "ring (CAF-GASNet)", images: 2, run: ring_gasnet }
        }
    }
}

fn ring_mpi() {
    ring_run(SubstrateKind::Mpi);
}

fn ring_gasnet() {
    ring_run(SubstrateKind::Gasnet);
}

fn ring_run(kind: SubstrateKind) {
    CafUniverse::run_with_config(2, CafConfig::on(kind), |img| {
        let world = img.team_world();
        let me = img.this_image();
        let ca: Coarray<u64> = img.coarray_alloc(&world, 2);
        let right = (me + 1) % img.num_images();
        ca.write(img, right, 0, &[me as u64 + 100]);
        img.sync_all();
        let left = (me + 1) % 2;
        assert_eq!(ca.local_vec(img)[0], left as u64 + 100);
        img.coarray_free(&world, ca);
    });
}

/// Event ping-pong: image 0 writes and notifies, image 1 waits, reads,
/// writes back and notifies. Event notify/wait carries the
/// happens-before edge, so every interleaving is clean.
pub fn event_ping_pong(kind: SubstrateKind) -> Scenario {
    match kind {
        SubstrateKind::Mpi => {
            Scenario { name: "event ping-pong (CAF-MPI)", images: 2, run: event_pp_mpi }
        }
        SubstrateKind::Gasnet => {
            Scenario { name: "event ping-pong (CAF-GASNet)", images: 2, run: event_pp_gasnet }
        }
    }
}

fn event_pp_mpi() {
    event_pp_run(SubstrateKind::Mpi);
}

fn event_pp_gasnet() {
    event_pp_run(SubstrateKind::Gasnet);
}

fn event_pp_run(kind: SubstrateKind) {
    CafUniverse::run_with_config(2, CafConfig::on(kind), |img| {
        let world = img.team_world();
        let me = img.this_image();
        let ca: Coarray<u64> = img.coarray_alloc(&world, 1);
        let ev = img.event_alloc(&world);
        if me == 0 {
            ca.write(img, 1, 0, &[7]);
            img.event_notify(&world, &ev, 1);
            img.event_wait(&ev);
            assert_eq!(ca.local_vec(img)[0], 9);
        } else {
            img.event_wait(&ev);
            assert_eq!(ca.local_vec(img)[0], 7);
            ca.write(img, 0, 0, &[9]);
            img.event_notify(&world, &ev, 0);
        }
        img.coarray_free(&world, ca);
    });
}

/// The event ping-pong executed by the caf-sched task executor
/// (`ExecMode::Tasks`) on a *single* worker: both images share one OS
/// thread, so every blocking site the schedule reaches must suspend
/// cooperatively through `caf_sched::park` — an OS-level block anywhere
/// would wedge the worker and surface to the explorer as a deadlock
/// counterexample. The gate still decides which image runs; the worker
/// pool only decides where.
pub fn tasks_event_ping_pong(kind: SubstrateKind) -> Scenario {
    match kind {
        SubstrateKind::Mpi => Scenario {
            name: "event ping-pong, task executor (CAF-MPI)",
            images: 2,
            run: tasks_event_pp_mpi,
        },
        SubstrateKind::Gasnet => Scenario {
            name: "event ping-pong, task executor (CAF-GASNet)",
            images: 2,
            run: tasks_event_pp_gasnet,
        },
    }
}

fn tasks_event_pp_mpi() {
    tasks_event_pp_run(SubstrateKind::Mpi);
}

fn tasks_event_pp_gasnet() {
    tasks_event_pp_run(SubstrateKind::Gasnet);
}

fn tasks_event_pp_run(kind: SubstrateKind) {
    let cfg = CafConfig {
        exec: ExecConfig { workers: 1, ..ExecConfig::tasks() },
        ..CafConfig::on(kind)
    };
    CafUniverse::run_with_config(2, cfg, |img| {
        let world = img.team_world();
        let me = img.this_image();
        let ca: Coarray<u64> = img.coarray_alloc(&world, 1);
        let ev = img.event_alloc(&world);
        if me == 0 {
            ca.write(img, 1, 0, &[7]);
            img.event_notify(&world, &ev, 1);
            img.event_wait(&ev);
            assert_eq!(ca.local_vec(img)[0], 9);
        } else {
            img.event_wait(&ev);
            assert_eq!(ca.local_vec(img)[0], 7);
            ca.write(img, 0, 0, &[9]);
            img.event_notify(&world, &ev, 0);
        }
        img.coarray_free(&world, ca);
    });
}

/// One miniature RandomAccess round: every image updates one distinct
/// slot of every other image's table, then all verify after `sync_all`.
/// Disjoint slots, so clean on both substrates.
pub fn ra_round(kind: SubstrateKind) -> Scenario {
    match kind {
        SubstrateKind::Mpi => {
            Scenario { name: "RandomAccess round (CAF-MPI)", images: 2, run: ra_mpi }
        }
        SubstrateKind::Gasnet => {
            Scenario { name: "RandomAccess round (CAF-GASNet)", images: 2, run: ra_gasnet }
        }
    }
}

fn ra_mpi() {
    ra_run(SubstrateKind::Mpi);
}

fn ra_gasnet() {
    ra_run(SubstrateKind::Gasnet);
}

fn ra_run(kind: SubstrateKind) {
    CafUniverse::run_with_config(2, CafConfig::on(kind), |img| {
        let world = img.team_world();
        let me = img.this_image();
        let n = img.num_images();
        let table: Coarray<u64> = img.coarray_alloc(&world, n);
        img.sync_all();
        for other in 0..n {
            let update = ((me as u64) << 8) | other as u64;
            if other == me {
                table.local_write(img, me, &[update]);
            } else {
                table.write(img, other, me, &[update]);
            }
        }
        img.sync_all();
        let v = table.local_vec(img);
        for (slot, val) in v.iter().enumerate() {
            assert_eq!(*val, ((slot as u64) << 8) | me as u64, "slot {slot} on image {me}");
        }
        img.coarray_free(&world, table);
    });
}

/// The paper's Figure 2 on the hazardous configuration: GASNet with
/// AM-mediated puts and a co-resident MPI library. Image 0's coarray
/// write completes only when image 1 makes GASNet progress; image 1 is
/// blocked in `MPI_Barrier`, which never polls GASNet. Every
/// interleaving deadlocks — the explorer reports the wait-for cycle
/// instead of hanging.
pub fn fig2_deadlock() -> Scenario {
    Scenario { name: "Fig 2 (GASNet AM put vs MPI barrier)", images: 2, run: fig2_run }
}

fn fig2_run() {
    let cfg = CafConfig {
        substrate: SubstrateKind::Gasnet,
        gasnet: GasnetConfig {
            put_via_am_threshold: Some(1),
            ..GasnetConfig::default()
        },
        hybrid_mpi: true,
        ..CafConfig::default()
    };
    CafUniverse::run_with_config(2, cfg, |img| {
        let world = img.team_world();
        let a: Coarray<u64> = img.coarray_alloc(&world, 4);
        if img.this_image() == 0 {
            // A(:)[1] = A(:) — blocks on the target's GASNet progress.
            a.write(img, 1, 0, &[7, 8, 9, 10]);
        }
        // CALL MPI_BARRIER — the duplicate runtime, which makes no GASNet
        // progress while blocked.
        let mpi = img.mpi().expect("hybrid MPI library");
        mpi.barrier(&mpi.world()).expect("barrier");
        img.coarray_free(&world, a);
    });
}

/// A schedule-dependent unflushed-put bug on CAF-MPI: image 1 issues an
/// implicitly synchronized `copy_async_put` into image 0's slot and only
/// later completes it; image 0 meanwhile loads the same slot locally. In
/// the default (image-0-first) interleaving the read happens before the
/// put and nothing is wrong; in interleavings where the put lands first,
/// the read observes window memory an unflushed put still targets —
/// `read_before_flush`.
pub fn unflushed_put() -> Scenario {
    Scenario { name: "unflushed put vs local read (CAF-MPI)", images: 2, run: unflushed_run }
}

/// The targeted-flush release path (CAF-MPI, `FlushMode::Targeted`): an
/// async put left dirty until `event_notify`, whose release barrier
/// flushes only the dirty `(window, target)` pair. Correct under every
/// interleaving — the epoch oracle must stay silent across the schedule
/// space (if targeted flushing under-flushed, some schedule would read
/// window memory with a put still pending).
pub fn targeted_flush_release() -> Scenario {
    Scenario {
        name: "targeted-flush release (CAF-MPI)",
        images: 2,
        run: targeted_release_run,
    }
}

fn targeted_release_run() {
    flush_release_run(FlushMode::targeted());
}

/// As [`targeted_flush_release`], under `FlushMode::Rflush`: the release
/// barrier *issues* non-blocking per-target flushes, overlaps the local
/// waitall, and completes them before the notification is sent.
pub fn rflush_release() -> Scenario {
    Scenario {
        name: "rflush release (CAF-MPI)",
        images: 2,
        run: rflush_release_run,
    }
}

fn rflush_release_run() {
    flush_release_run(FlushMode::rflush());
}

fn flush_release_run(flush: FlushMode) {
    let cfg = CafConfig {
        flush,
        ..CafConfig::on(SubstrateKind::Mpi)
    };
    CafUniverse::run_with_config(2, cfg, |img| {
        let world = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&world, 1);
        let ev = img.event_alloc(&world);
        if img.this_image() == 0 {
            img.copy_async_put(&ca, 1, 0, &[0xD1E7], AsyncOpts::none());
            img.event_notify(&world, &ev, 1);
        } else {
            img.event_wait(&ev);
            // The notify's targeted release barrier guarantees the put is
            // remotely complete before the post is observable.
            assert_eq!(ca.local_vec(img)[0], 0xD1E7);
        }
        img.sync_all();
        img.coarray_free(&world, ca);
    });
}

/// Aggregated enqueue/drain/notify: image 0's small puts park in a
/// bucket until `event_notify` drains them as ONE batched AM; the notify
/// AM follows the batch on the same FIFO rt channel, so in every
/// interleaving the waiter observes all records once the post lands.
/// Clean under the full oracle across the schedule space — the batch
/// token's happens-before edge must cover every coalesced record.
pub fn agg_notify_release(kind: SubstrateKind) -> Scenario {
    match kind {
        SubstrateKind::Mpi => Scenario {
            name: "agg enqueue/drain/notify (CAF-MPI)",
            images: 2,
            run: agg_notify_mpi,
        },
        SubstrateKind::Gasnet => Scenario {
            name: "agg enqueue/drain/notify (CAF-GASNet)",
            images: 2,
            run: agg_notify_gasnet,
        },
    }
}

fn agg_notify_mpi() {
    agg_notify_run(SubstrateKind::Mpi);
}

fn agg_notify_gasnet() {
    agg_notify_run(SubstrateKind::Gasnet);
}

fn agg_notify_run(kind: SubstrateKind) {
    let cfg = CafConfig {
        agg: AggConfig::on(),
        ..CafConfig::on(kind)
    };
    CafUniverse::run_with_config(2, cfg, |img| {
        let world = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&world, 4);
        let ev = img.event_alloc(&world);
        if img.this_image() == 0 {
            for i in 0..4 {
                img.copy_async_put(&ca, 1, i, &[0xA660 + i as u64], AsyncOpts::none());
            }
            img.event_notify(&world, &ev, 1);
        } else {
            img.event_wait(&ev);
            for (i, v) in ca.local_vec(img).iter().enumerate() {
                assert_eq!(*v, 0xA660 + i as u64, "record {i} lost or torn");
            }
        }
        img.sync_all();
        img.coarray_free(&world, ca);
    });
}

/// Bucket drains racing `finish`'s termination detection (hypercube
/// routing on): both images coalesce accumulates to each other, the
/// drain ships batches whose target-side application increments the
/// completion counters Yang's loop sums. If a schedule let `finish`
/// declare quiescence while a batch was still in flight (or applied a
/// record after the block exited), the post-finish assertions would see
/// partial sums on some interleaving.
pub fn agg_drain_races_finish() -> Scenario {
    Scenario {
        name: "agg drain vs finish termination (CAF-MPI, routed)",
        images: 2,
        run: agg_drain_finish_run,
    }
}

fn agg_drain_finish_run() {
    let cfg = CafConfig {
        agg: AggConfig::routed(),
        ..CafConfig::on(SubstrateKind::Mpi)
    };
    CafUniverse::run_with_config(2, cfg, |img| {
        let world = img.team_world();
        let me = img.this_image();
        let peer = 1 - me;
        let ca: Coarray<u64> = img.coarray_alloc(&world, 2);
        img.finish(&world, |img| {
            img.agg_accumulate_add(&ca, peer, 0, me as u64 + 1);
            img.agg_accumulate_xor(&ca, peer, 1, 0xB0 | me as u64);
            img.agg_accumulate_add(&ca, me, 0, 10);
        });
        // finish completed: both the peer's batch and the self-applied
        // accumulate must be fully visible.
        let v = ca.local_vec(img);
        assert_eq!(v[0], peer as u64 + 1 + 10, "partial sum after finish");
        assert_eq!(v[1], 0xB0 | peer as u64, "xor record lost after finish");
        img.coarray_free(&world, ca);
    });
}

/// Node ids from the committed `LINT_WAITGRAPH.json` that the
/// wait-graph-seeded scenario drives schedules against. CAFL009's
/// static pass proved no held-across edge connects them; this scenario
/// contends on exactly these lock/park classes so the explorer would
/// surface a deadlock counterexample if the static claim ever went
/// stale (a guard growing across a park site, a new lock-order
/// inversion). `tests/model_explore.rs` asserts each id is present in
/// the committed graph, coupling the scenario to the artifact.
pub const WAITGRAPH_TARGETED_NODES: &[&str] = &[
    "lock:core/slots",
    "park:core/wait",
    "park:fabric/recv",
    "park:fabric/yield_op",
];

/// The wait-graph-seeded scenario: ship-registry contention
/// (`lock:core/slots` taken from both images while Yang's finish
/// accounting parks and unparks them) followed by an async-put
/// notify/wait handshake (`park:core/wait` with the release barrier in
/// flight). Every lock class in [`WAITGRAPH_TARGETED_NODES`] is
/// acquired on paths that interleave with every park class — the
/// dynamic complement of the static wait graph.
pub fn waitgraph_targeted() -> Scenario {
    Scenario {
        name: "wait-graph targeted (CAF-MPI, ship+event)",
        images: 2,
        run: waitgraph_targeted_run,
    }
}

fn waitgraph_targeted_run() {
    CafUniverse::run_with_config(2, CafConfig::on(SubstrateKind::Mpi), |img| {
        let world = img.team_world();
        let me = img.this_image();
        let peer = 1 - me;
        let ca: Coarray<u64> = img.coarray_alloc(&world, 2);
        let ev = img.event_alloc(&world);
        // Both images park a closure in the ship slot registry and the
        // peer's executor claims it: lock:core/slots from two sides,
        // racing finish's termination detection.
        img.finish(&world, |img| {
            let c = ca.clone();
            img.ship(&world, peer, move |exec| {
                c.local_write(exec, 0, &[me as u64 + 0x50]);
            });
        });
        // Async put released by the notify; the waiter sits parked in
        // the event machinery until the post lands.
        img.copy_async_put(&ca, peer, 1, &[me as u64 + 0x60], AsyncOpts::none());
        img.event_notify(&world, &ev, peer);
        img.event_wait(&ev);
        let v = ca.local_vec(img);
        assert_eq!(v[0], peer as u64 + 0x50, "shipped write lost");
        assert_eq!(v[1], peer as u64 + 0x60, "put not released by notify");
        img.sync_all();
        img.coarray_free(&world, ca);
    });
}

// ---------------------------------------------------------------------------
// Failure scenarios (failed-image semantics under the fault plan)

/// Image 1 is killed at its first `event_notify`; image 0 sits in
/// `event_wait_stat`. With detection on (the default), every schedule
/// must end with the waiter observing `Stat::FailedImage([1])` and
/// completing — the explorer proves the detection path hang-free.
pub fn fail_during_notify_wait(kind: SubstrateKind) -> Scenario {
    match kind {
        SubstrateKind::Mpi => Scenario {
            name: "fail during notify/wait (CAF-MPI)",
            images: 2,
            run: fail_nw_mpi,
        },
        SubstrateKind::Gasnet => Scenario {
            name: "fail during notify/wait (CAF-GASNet)",
            images: 2,
            run: fail_nw_gasnet,
        },
    }
}

fn fail_nw_mpi() {
    fail_nw_run(SubstrateKind::Mpi, true);
}

fn fail_nw_gasnet() {
    fail_nw_run(SubstrateKind::Gasnet, true);
}

/// The negative control for [`fail_during_notify_wait`]: the same kill
/// with detection *disabled* — no registry mark, no failure notices.
/// Image 0 waits for a post that can never arrive, so every schedule
/// deadlocks; the explorer must report a replayable wait-for cycle
/// instead of hanging.
pub fn fail_notify_wait_undetected(kind: SubstrateKind) -> Scenario {
    match kind {
        SubstrateKind::Mpi => Scenario {
            name: "fail during notify/wait, detection off (CAF-MPI)",
            images: 2,
            run: fail_nw_undet_mpi,
        },
        SubstrateKind::Gasnet => Scenario {
            name: "fail during notify/wait, detection off (CAF-GASNet)",
            images: 2,
            run: fail_nw_undet_gasnet,
        },
    }
}

fn fail_nw_undet_mpi() {
    fail_nw_run(SubstrateKind::Mpi, false);
}

fn fail_nw_undet_gasnet() {
    fail_nw_run(SubstrateKind::Gasnet, false);
}

fn fail_nw_run(kind: SubstrateKind, detect: bool) {
    let mut cfg = CafConfig::on(kind);
    cfg.fault = FaultPlan::kill(1, KillSite::Op { name: "event_notify", hits: 1 });
    if !detect {
        cfg.fault = cfg.fault.undetected();
    }
    let results = CafUniverse::run_with_config_ft(2, cfg, |img| {
        let world = img.team_world();
        let ev = img.event_alloc(&world);
        if img.this_image() == 1 {
            img.event_notify(&world, &ev, 0); // killed at this op
            unreachable!("image 1 is killed by the fault plan");
        }
        let stat = img.event_wait_stat(&ev);
        assert_eq!(stat.failed(), &[1], "waiter must observe the failure");
        let (survivors, stat) = img.team_reform(&world);
        assert_eq!(stat.failed(), &[1]);
        assert_eq!(survivors.size(), 1);
    });
    assert!(results[0].is_some() && results[1].is_none());
}

/// Image 2 of three is killed on entry to `finish`; the survivors'
/// termination-detection SUM-reduce doubles as the failure detector, so
/// every schedule must end with `finish_stat` returning
/// `Stat::FailedImage([2])` on both survivors, followed by a clean
/// two-image reform.
pub fn fail_during_finish(kind: SubstrateKind) -> Scenario {
    match kind {
        SubstrateKind::Mpi => Scenario {
            name: "fail during finish (CAF-MPI)",
            images: 3,
            run: fail_fin_mpi,
        },
        SubstrateKind::Gasnet => Scenario {
            name: "fail during finish (CAF-GASNet)",
            images: 3,
            run: fail_fin_gasnet,
        },
    }
}

fn fail_fin_mpi() {
    fail_fin_run(SubstrateKind::Mpi);
}

fn fail_fin_gasnet() {
    fail_fin_run(SubstrateKind::Gasnet);
}

fn fail_fin_run(kind: SubstrateKind) {
    let mut cfg = CafConfig::on(kind);
    cfg.fault = FaultPlan::kill(2, KillSite::Op { name: "finish", hits: 1 });
    let results = CafUniverse::run_with_config_ft(3, cfg, |img| {
        let world = img.team_world();
        let ((), stat) = img.finish_stat(&world, |_| ());
        assert_eq!(stat.failed(), &[2], "finish must surface the death");
        let (survivors, stat) = img.team_reform(&world);
        assert_eq!(stat.failed(), &[2]);
        assert_eq!(survivors.size(), 2);
        img.barrier(&survivors);
    });
    assert!(results[0].is_some() && results[1].is_some() && results[2].is_none());
}

/// Image 1 is killed at its first bucket drain (`agg_drain`, inside the
/// closing `finish_stat`), with coalescing on. Image 0's drain has
/// in-flight coalesced puts toward the dead image; its finish must
/// return `Stat::FailedImage([1])` — never a hang and never a lost
/// record toward a *surviving* destination.
pub fn fail_mid_agg_drain(kind: SubstrateKind) -> Scenario {
    match kind {
        SubstrateKind::Mpi => Scenario {
            name: "fail mid agg drain (CAF-MPI)",
            images: 2,
            run: fail_agg_mpi,
        },
        SubstrateKind::Gasnet => Scenario {
            name: "fail mid agg drain (CAF-GASNet)",
            images: 2,
            run: fail_agg_gasnet,
        },
    }
}

fn fail_agg_mpi() {
    fail_agg_run(SubstrateKind::Mpi);
}

fn fail_agg_gasnet() {
    fail_agg_run(SubstrateKind::Gasnet);
}

fn fail_agg_run(kind: SubstrateKind) {
    let mut cfg = CafConfig {
        agg: AggConfig::on(),
        ..CafConfig::on(kind)
    };
    cfg.fault = FaultPlan::kill(1, KillSite::Op { name: "agg_drain", hits: 1 });
    let results = CafUniverse::run_with_config_ft(2, cfg, |img| {
        let world = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&world, 2);
        let peer = 1 - img.this_image();
        let ((), stat) = img.finish_stat(&world, |img| {
            // Both images coalesce puts toward the peer; image 1 dies
            // draining its bucket inside the finish epilogue.
            img.copy_async_put(&ca, peer, 0, &[0xFA], AsyncOpts::none());
            img.copy_async_put(&ca, peer, 1, &[0xFB], AsyncOpts::none());
        });
        assert_eq!(stat.failed(), &[1], "finish must surface the death");
        let (survivors, stat) = img.team_reform(&world);
        assert_eq!(stat.failed(), &[1]);
        assert_eq!(survivors.size(), 1);
    });
    assert!(results[0].is_some() && results[1].is_none());
}

fn unflushed_run() {
    CafUniverse::run_with_config(2, CafConfig::on(SubstrateKind::Mpi), |img| {
        let world = img.team_world();
        let ca: Coarray<u64> = img.coarray_alloc(&world, 1);
        if img.this_image() == 1 {
            img.copy_async_put(&ca, 0, 0, &[42], AsyncOpts::none());
            img.cofence();
        } else {
            let v = ca.local_vec(img)[0];
            assert!(v == 0 || v == 42, "torn read: {v}");
        }
        img.sync_all();
        // Complete the put globally before the windows are freed.
        img.finish(&world, |_| {});
        img.coarray_free(&world, ca);
    });
}
