//! Systematic schedule exploration for the CAF runtime (DPOR-lite).
//!
//! `caf-fabric`'s scheduler gate ([`caf_fabric::sched`]) serializes the
//! image threads of one simulated job and consults a [`Chooser`] at every
//! yield point. This crate supplies the choosers and the drivers around
//! them:
//!
//! * **DFS enumeration** of every maximal interleaving, optionally with
//!   **sleep sets** (Godefroid's partial-order reduction): because every
//!   parked thread's next operation is announced before it executes, the
//!   explorer knows which pending operations commute
//!   ([`ModelOp::conflicts`]) and prunes interleavings that only reorder
//!   independent operations.
//! * **Seeded random walks** for state spaces too large to enumerate.
//!
//! Each explored schedule runs the *real* runtime — substrates, windows,
//! active messages — under the `caf-check` oracle (MPI-3 epoch legality +
//! happens-before races), so a schedule-dependent bug surfaces as an
//! ordinary sanitizer diagnostic attached to a replayable schedule token:
//! `dfs:1,0,0,…` (the exact choice sequence) or `rand:<seed>` (the walk
//! seed). [`replay`] re-executes a token deterministically — same seed,
//! same schedule, same diagnostic.
//!
//! ```text
//! let report = caf_model::explore(&scenarios::fig2_deadlock(), &cfg);
//! for cx in &report.counterexamples {
//!     println!("{}: replay with {}", cx.kind, cx.token);
//! }
//! ```

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once};

use caf_check::{CheckConfig, CheckMode, CheckSession, Report};
use caf_fabric::sched::{self, Choice, Chooser, ModelOp, RunOutcome, RunStatus, StepRecord};

pub mod scenarios;
pub use scenarios::Scenario;

/// How to walk the schedule space.
#[derive(Debug, Clone, Copy)]
pub enum ExploreMode {
    /// Depth-first enumeration of every maximal schedule. With
    /// `sleep_sets`, interleavings that only reorder independent
    /// operations are pruned (DPOR-lite); without, the naive full
    /// enumeration (the baseline the reduction factor is measured
    /// against).
    Dfs {
        /// Enable sleep-set pruning.
        sleep_sets: bool,
    },
    /// `walks` independent runs under a seeded random scheduler.
    Random {
        /// Base seed; walk `w` derives its own seed from it.
        seed: u64,
        /// Number of walks.
        walks: usize,
    },
}

/// Which `caf-check` analyses judge each explored schedule.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// MPI-3 epoch-legality checker (unflushed puts, epoch overlap, ...).
    pub epochs: bool,
    /// CAF-level happens-before race detector.
    pub races: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { epochs: true, races: true }
    }
}

/// Exploration budget and policy.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Per-schedule step budget (livelock guard).
    pub max_steps: usize,
    /// Total run budget (completed + pruned).
    pub max_schedules: usize,
    /// The walk policy.
    pub mode: ExploreMode,
    /// Judge schedules with the `caf-check` sanitizer. `None` still
    /// detects deadlocks, step-budget blowups and panics.
    pub oracle: Option<OracleConfig>,
    /// Stop at the first counterexample instead of draining the budget.
    pub stop_at_first: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 20_000,
            max_schedules: 400,
            mode: ExploreMode::Dfs { sleep_sets: true },
            oracle: Some(OracleConfig::default()),
            stop_at_first: false,
        }
    }
}

/// One bug found by exploration, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Replay token: `dfs:<choice,...>` or `rand:<seed>`. Feed to
    /// [`replay`] with the same scenario and config.
    pub token: String,
    /// `deadlock`, `panic`, `step_budget`, or a `caf-check` violation
    /// kind (`read_before_flush`, `coarray_race`, ...).
    pub kind: String,
    /// Human-readable specifics (wait-for edges, the violation line).
    pub detail: String,
    /// The schedule, one rendered line per scheduling decision.
    pub schedule: Vec<String>,
}

/// What an exploration covered and found.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Maximal schedules executed to an end state (completion, deadlock,
    /// panic or step budget).
    pub schedules: usize,
    /// Runs abandoned by sleep-set pruning (their suffixes are covered by
    /// sibling branches).
    pub pruned: usize,
    /// The DFS tree was exhausted within budget: every maximal schedule
    /// (modulo pruned equivalents) was executed. Always false in random
    /// mode.
    pub complete: bool,
    /// Total scheduling decisions across all runs.
    pub total_steps: usize,
    /// Runs that ended in a deadlock, panic, budget blowup or oracle
    /// violation.
    pub flagged: usize,
    /// The first [`MAX_COUNTEREXAMPLES`] flagged runs, in discovery order.
    pub counterexamples: Vec<Counterexample>,
}

/// Stored-counterexample cap; [`ExploreReport::flagged`] keeps the full
/// count.
pub const MAX_COUNTEREXAMPLES: usize = 32;

/// The result of one [`replay`].
#[derive(Debug)]
pub struct Replay {
    /// The run record (status + every scheduling decision).
    pub outcome: RunOutcome,
    /// The oracle's report, when an oracle was configured.
    pub report: Option<Report>,
    /// The schedule, rendered as in [`Counterexample::schedule`].
    pub schedule: Vec<String>,
}

/// Model runs are process-exclusive (one scheduler gate, one check
/// session); everything in this crate serializes on this lock.
static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

/// While > 0, the installed panic hook swallows all panic output: aborted
/// image threads unwind with `ModelAbort` by design, and modeled-program
/// panics are reported as counterexamples instead.
static SUPPRESS_PANICS: AtomicUsize = AtomicUsize::new(0);
static HOOK: Once = Once::new();

fn install_panic_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANICS.load(Ordering::SeqCst) == 0 {
                prev(info);
            }
        }));
    });
}

fn lock_exploration() -> MutexGuard<'static, ()> {
    EXPLORE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Render a recorded schedule, one line per decision.
pub fn render_schedule(steps: &[StepRecord]) -> Vec<String> {
    steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                "{i:>4}  image {}  {}{}",
                s.chosen,
                s.op.brief(),
                if s.retry { "  (retry)" } else { "" }
            )
        })
        .collect()
}

/// Run one schedule: arm the oracle and the gate, execute the scenario,
/// collect both. The caller holds [`EXPLORE_LOCK`].
fn run_controlled(
    scenario: &Scenario,
    cfg: &ExploreConfig,
    chooser: Box<dyn Chooser>,
) -> (RunOutcome, Option<Report>) {
    let session = cfg.oracle.map(|o| {
        CheckSession::start(CheckConfig {
            mode: CheckMode::Collect,
            epochs: o.epochs,
            races: o.races,
            ..CheckConfig::default()
        })
        .expect("a caf-check session is already active")
    });
    sched::arm(scenario.images, cfg.max_steps, chooser).expect("scheduler gate already armed");
    SUPPRESS_PANICS.fetch_add(1, Ordering::SeqCst);
    let result = catch_unwind(AssertUnwindSafe(|| (scenario.run)()));
    SUPPRESS_PANICS.fetch_sub(1, Ordering::SeqCst);
    let mut outcome = sched::disarm().expect("gate was armed");
    if result.is_err() && matches!(outcome.status, RunStatus::Completed) {
        // The job panicked outside any scheduling decision (launcher-side
        // assertion): still a failed run.
        outcome.status = RunStatus::Panicked;
    }
    (outcome, session.map(CheckSession::finish))
}

/// Classify one finished run into the report. Returns true when the run
/// was flagged.
fn record_run(
    rep: &mut ExploreReport,
    token: String,
    outcome: &RunOutcome,
    oracle: Option<&Report>,
) -> bool {
    rep.total_steps += outcome.steps.len();
    let finding: Option<(String, String)> = match &outcome.status {
        RunStatus::Pruned => {
            rep.pruned += 1;
            return false;
        }
        RunStatus::Deadlock(edges) => Some((
            "deadlock".into(),
            edges.iter().map(ToString::to_string).collect::<Vec<_>>().join("; "),
        )),
        RunStatus::StepBudget => Some((
            "step_budget".into(),
            format!("no end state within {} steps (livelock?)", outcome.steps.len()),
        )),
        RunStatus::Panicked => Some(("panic".into(), "an image panicked".into())),
        RunStatus::Completed => oracle.and_then(|r| {
            r.violations.first().map(|v| (v.kind.name().to_string(), v.to_string()))
        }),
    };
    rep.schedules += 1;
    let Some((kind, detail)) = finding else { return false };
    rep.flagged += 1;
    if rep.counterexamples.len() < MAX_COUNTEREXAMPLES {
        rep.counterexamples.push(Counterexample {
            token,
            kind,
            detail,
            schedule: render_schedule(&outcome.steps),
        });
    }
    true
}

// ---------------------------------------------------------------------------
// DFS with sleep sets

/// Remove from `z` every entry whose operation does not commute with
/// `op` — executing `op` "wakes" those threads (Godefroid's sleep-set
/// update rule).
fn wake(z: &mut Vec<(usize, ModelOp)>, op: ModelOp) {
    z.retain(|(_, o)| !ModelOp::conflicts(o, &op));
}

/// One branch point of the DFS tree (a scheduling decision with its
/// sleep-set bookkeeping).
#[derive(Debug, Clone)]
struct DfsNode {
    /// The choice this path currently takes.
    chosen: usize,
    /// The operation `chosen` had announced.
    op: ModelOp,
    /// Sleep set *entering* this node: threads whose pending operation is
    /// already covered by a previously explored sibling subtree.
    sleep: Vec<(usize, ModelOp)>,
    /// Siblings fully explored at this node (fed into child sleep sets).
    tried: Vec<(usize, ModelOp)>,
    /// Enabled, non-sleeping siblings still to explore.
    alternatives: Vec<usize>,
    /// Every live thread's announced operation at this node.
    pending: Vec<(usize, ModelOp)>,
}

/// The in-run half of the DFS: replays the forced prefix (the current
/// tree path), then extends the path lowest-tid-first, recording each
/// fresh branch point, and prunes when every enabled thread sleeps.
struct DfsChooser {
    forced: Vec<usize>,
    next: usize,
    sleep_sets: bool,
    /// Sleep set at the frontier (precomputed by the driver for the
    /// divergence point, then maintained per fresh step).
    z: Vec<(usize, ModelOp)>,
    fresh: Arc<Mutex<Vec<DfsNode>>>,
}

impl Chooser for DfsChooser {
    fn choose(&mut self, _step: usize, enabled: &[usize], pending: &[(usize, ModelOp)]) -> Choice {
        if self.next < self.forced.len() {
            let t = self.forced[self.next];
            self.next += 1;
            return Choice::Pick(t);
        }
        let op_of = |t: usize| {
            pending
                .iter()
                .find(|&&(p, _)| p == t)
                .map(|&(_, o)| o)
                .expect("enabled thread has a pending op")
        };
        let mut candidates: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|&t| !(self.sleep_sets && self.z.contains(&(t, op_of(t)))))
            .collect();
        if candidates.is_empty() {
            return Choice::Prune;
        }
        let chosen = candidates.remove(0);
        let op = op_of(chosen);
        self.fresh.lock().unwrap_or_else(|e| e.into_inner()).push(DfsNode {
            chosen,
            op,
            sleep: self.z.clone(),
            tried: Vec::new(),
            alternatives: candidates,
            pending: pending.to_vec(),
        });
        wake(&mut self.z, op);
        Choice::Pick(chosen)
    }
}

fn explore_dfs(scenario: &Scenario, cfg: &ExploreConfig, sleep_sets: bool) -> ExploreReport {
    let mut tree: Vec<DfsNode> = Vec::new();
    let mut rep = ExploreReport::default();
    loop {
        if rep.schedules + rep.pruned >= cfg.max_schedules {
            break; // budget drained; rep.complete stays false
        }
        let forced: Vec<usize> = tree.iter().map(|n| n.chosen).collect();
        // Sleep set at the divergence point: the frontier node's own
        // sleep set plus its already-explored siblings, woken by the
        // operation it now executes.
        let z0 = tree
            .last()
            .map(|n| {
                let mut z = n.sleep.clone();
                z.extend(n.tried.iter().copied());
                wake(&mut z, n.op);
                z
            })
            .unwrap_or_default();
        let fresh = Arc::new(Mutex::new(Vec::new()));
        let chooser = DfsChooser {
            forced: forced.clone(),
            next: 0,
            sleep_sets,
            z: z0,
            fresh: Arc::clone(&fresh),
        };
        let (outcome, oracle) = run_controlled(scenario, cfg, Box::new(chooser));
        let mut new_nodes =
            std::mem::take(&mut *fresh.lock().unwrap_or_else(|e| e.into_inner()));
        let token = {
            let mut all = forced;
            all.extend(new_nodes.iter().map(|n| n.chosen));
            format!(
                "dfs:{}",
                all.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
            )
        };
        tree.append(&mut new_nodes);
        let flagged = record_run(&mut rep, token, &outcome, oracle.as_ref());
        if flagged && cfg.stop_at_first {
            break;
        }
        // Backtrack to the deepest node with an unexplored sibling.
        let advanced = loop {
            let Some(node) = tree.last_mut() else { break false };
            node.tried.push((node.chosen, node.op));
            if let Some(&a) = node.alternatives.first() {
                node.alternatives.remove(0);
                node.chosen = a;
                node.op = node
                    .pending
                    .iter()
                    .find(|&&(t, _)| t == a)
                    .expect("alternative was enabled at this node")
                    .1;
                break true;
            }
            tree.pop();
        };
        if !advanced {
            rep.complete = true;
            break;
        }
    }
    rep
}

// ---------------------------------------------------------------------------
// Seeded random walks

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic seeded scheduler (SplitMix64 over the enabled set).
struct RandomChooser {
    state: u64,
}

impl RandomChooser {
    fn new(seed: u64) -> Self {
        RandomChooser { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, _step: usize, enabled: &[usize], _p: &[(usize, ModelOp)]) -> Choice {
        let i = (self.next_u64() % enabled.len() as u64) as usize;
        Choice::Pick(enabled[i])
    }
}

fn explore_random(scenario: &Scenario, cfg: &ExploreConfig, seed: u64, walks: usize) -> ExploreReport {
    let mut rep = ExploreReport::default();
    for w in 0..walks.min(cfg.max_schedules) {
        let walk_seed = splitmix64(seed ^ (w as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let chooser = Box::new(RandomChooser::new(walk_seed));
        let (outcome, oracle) = run_controlled(scenario, cfg, chooser);
        let token = format!("rand:{walk_seed:016x}");
        let flagged = record_run(&mut rep, token, &outcome, oracle.as_ref());
        if flagged && cfg.stop_at_first {
            break;
        }
    }
    rep
}

// ---------------------------------------------------------------------------
// Entry points

/// Explore the scenario's schedule space under `cfg`. Serializes with
/// every other exploration/replay in the process.
pub fn explore(scenario: &Scenario, cfg: &ExploreConfig) -> ExploreReport {
    let _x = lock_exploration();
    let _c = caf_check::SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    install_panic_hook();
    match cfg.mode {
        ExploreMode::Dfs { sleep_sets } => explore_dfs(scenario, cfg, sleep_sets),
        ExploreMode::Random { seed, walks } => explore_random(scenario, cfg, seed, walks),
    }
}

/// A chooser that replays a recorded choice sequence, then continues
/// lowest-tid-first (sufficient for tokens recorded up to the end state).
struct ReplayChooser {
    forced: Vec<usize>,
    next: usize,
}

impl Chooser for ReplayChooser {
    fn choose(&mut self, _step: usize, enabled: &[usize], _p: &[(usize, ModelOp)]) -> Choice {
        if self.next < self.forced.len() {
            let t = self.forced[self.next];
            self.next += 1;
            return Choice::Pick(t);
        }
        Choice::Pick(enabled[0])
    }
}

/// Parse a [`Counterexample::token`] into its chooser.
fn parse_token(token: &str) -> Result<Box<dyn Chooser>, String> {
    if let Some(list) = token.strip_prefix("dfs:") {
        let forced = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse::<usize>().map_err(|e| format!("bad dfs token `{token}`: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Box::new(ReplayChooser { forced, next: 0 }));
    }
    if let Some(hex) = token.strip_prefix("rand:") {
        let seed = u64::from_str_radix(hex, 16)
            .map_err(|e| format!("bad rand token `{token}`: {e}"))?;
        return Ok(Box::new(RandomChooser::new(seed)));
    }
    Err(format!("unknown token scheme `{token}` (expected dfs:... or rand:...)"))
}

/// Re-execute one recorded schedule. Deterministic: the same token on the
/// same scenario and config reproduces the same schedule and the same
/// diagnostics.
pub fn replay(scenario: &Scenario, cfg: &ExploreConfig, token: &str) -> Replay {
    let chooser = parse_token(token).expect("valid replay token");
    let _x = lock_exploration();
    let _c = caf_check::SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    install_panic_hook();
    let (outcome, report) = run_controlled(scenario, cfg, chooser);
    Replay {
        schedule: render_schedule(&outcome.steps),
        outcome,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_removes_conflicting_entries_only() {
        let w = ModelOp::Write { region: 1, owner: 0, lo: 0, hi: 8 };
        let r = ModelOp::Read { region: 1, owner: 0, lo: 0, hi: 8 };
        let t = ModelOp::Tick;
        let mut z = vec![(0, r), (1, t)];
        wake(&mut z, w); // the read conflicts with the write; the tick does not
        assert_eq!(z, vec![(1, t)]);
    }

    #[test]
    fn token_roundtrip_parses() {
        assert!(parse_token("dfs:0,1,1,0").is_ok());
        assert!(parse_token("dfs:").is_ok());
        assert!(parse_token("rand:00ff00ff00ff00ff").is_ok());
        assert!(parse_token("bogus:1").is_err());
        assert!(parse_token("dfs:x").is_err());
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let a = splitmix64(1);
        let b = splitmix64(1);
        let c = splitmix64(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
