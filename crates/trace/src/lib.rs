//! `caf-trace`: structured runtime tracing for the CAF stack.
//!
//! The paper's evaluation (Figs 4 and 8) is HPCToolkit-style time
//! decomposition: every performance gap — the Θ(P) `flush_all` inside
//! `event_notify`, the SRQ slow path, the hand-rolled alltoall — was found
//! by attributing wall-clock time to runtime primitives. This crate is the
//! equivalent first-class instrument for the in-process runtime:
//!
//! * **Per-image collectors** — each runtime thread owns a lock-free
//!   ring buffer of fixed-size event records; recording is a handful of
//!   relaxed atomic stores, and when tracing is disabled every probe is a
//!   single relaxed atomic load ([`enabled`]).
//! * **Spans and instants** — [`span`] brackets an operation
//!   (recorded on drop with its duration); [`instant`] records a point
//!   event. Both carry an optional target image, payload size, and
//!   window/segment id.
//! * **A global session** — [`Session::start`] turns tracing on,
//!   registers collectors as threads first record, and
//!   [`Session::finish`] merges all per-image buffers into one
//!   time-sorted [`Trace`].
//! * **Exports** — [`Trace::to_chrome_json`] emits Chrome
//!   `trace_event` JSON loadable in `chrome://tracing` / Perfetto;
//!   [`Trace::decomposition`] reproduces the `StatCat` decomposition of
//!   Figs 4/8 from the trace itself (the runtime's `stats` view is the
//!   same data aggregated eagerly).
//! * **Stall detection** — a watchdog thread samples open spans; any
//!   blocking operation open past a threshold produces a
//!   [`StallReport`] naming the blocked image and the image/window edge
//!   it is blocked on, turning the paper's Figure 2 interoperability
//!   deadlock into an actionable diagnostic instead of a silent hang.

#![warn(missing_docs)]

mod chrome;
mod collector;
mod decomp;
mod op;
mod ring;
mod session;
mod stall;

pub use collector::SpanGuard;
pub use decomp::{Cat, Decomposition, NCAT};
pub use op::{EventKind, Op};
pub use session::{
    enabled, instant, instant_d, set_image, set_stall_watchdog_inhibit, span, span_d, span_t,
    stall_watchdog_inhibited, Session, Trace, TraceConfig, TraceError, TraceEvent,
};
pub use stall::StallReport;

/// Nanosecond timestamp on the process-global trace clock.
///
/// All collectors share one epoch (the first call in the process), so
/// timestamps are directly comparable across images.
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}
