//! Traced operations across the four runtime layers.

use crate::decomp::Cat;

/// One traced operation. Variants cover the hot paths of all four layers:
/// `caf` core, `mpisim`, `gasnetsim`, and the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Op {
    // --- caf core (the ten StatCat categories) ---
    /// Application compute bracketed by the benchmark harness.
    Computation = 0,
    /// Remote coarray write (`a(..)[p] = v`).
    CoarrayWrite,
    /// Remote coarray read (`v = a(..)[p]`).
    CoarrayRead,
    /// `event_wait` blocking on a count.
    EventWait,
    /// `event_notify` (includes the pre-notify flush).
    EventNotify,
    /// CAF-level alltoall.
    Alltoall,
    /// CAF-level barrier (`sync all`).
    Barrier,
    /// CAF-level reduction.
    Reduction,
    /// `finish` termination detection.
    Finish,
    /// Asynchronous copy (`copy_async`).
    CopyAsync,
    // --- caf core (non-StatCat) ---
    /// Function shipping (`ship`) send side.
    Ship,
    /// Runtime control message send.
    RtMsgSend,
    /// Blocking receive of a runtime control message.
    RtMsgRecvBlocking,
    // --- mpisim ---
    /// Two-sided send / isend injection.
    MpiSend,
    /// Blocking two-sided receive (includes matching).
    MpiRecv,
    /// MPI barrier.
    MpiBarrier,
    /// MPI broadcast.
    MpiBcast,
    /// MPI reduce / allreduce.
    MpiReduce,
    /// MPI allgather / gather.
    MpiGather,
    /// MPI alltoall.
    MpiAlltoall,
    /// One-sided put into an RMA window.
    RmaPut,
    /// One-sided get from an RMA window.
    RmaGet,
    /// One-sided accumulate / fetch-op / compare-and-swap.
    RmaAtomic,
    /// `MPI_Win_flush` to one target.
    WinFlush,
    /// `MPI_Win_flush_all` — the Θ(P) loop over every rank.
    WinFlushAll,
    // --- gasnetsim ---
    /// Active-message handler dispatch at the target.
    AmDispatch,
    /// `gasnet_AMPoll` that dispatched at least one AM.
    AmPoll,
    /// SRQ slow path charged on AM receive.
    SrqSlowPath,
    /// AM-mediated put waiting for the target's acknowledgement
    /// (the Figure 2 hazard: completion requires the target to poll).
    AmPutAckWait,
    /// GASNet barrier (dissemination rounds).
    GasnetBarrier,
    /// GASNet RDMA put.
    GasnetPut,
    /// GASNet RDMA get.
    GasnetGet,
    // --- fabric ---
    /// Packet handed to a mailbox.
    PacketInject,
    /// Packet taken out of a mailbox.
    PacketDeliver,
    /// Byte store into a registered segment.
    SegmentPut,
    /// Byte load from a registered segment.
    SegmentGet,
    // --- mpi (epoch lifecycle, appended so discriminants stay stable) ---
    /// `MPI_Win_lock_all` — passive-target epoch opened.
    WinLockAll,
    /// `MPI_Win_unlock_all` — epoch closed (completes everything).
    WinUnlockAll,
    /// `MPI_Win_free` — window torn down.
    WinFree,
    // --- mpi (targeted-flush extension, appended for stable decode) ---
    /// `MPI_WIN_RFLUSH` initiation — non-blocking per-target flush issued
    /// (the paper's §5 proposal).
    WinRflush,
    /// Waiting out the remainder of an rflush's modeled latency.
    WinRflushWait,
    // --- caf core (small-put aggregation, appended for stable decode) ---
    /// Record parked in an aggregation bucket (target = next hop,
    /// bytes = payload, window/disp = region/offset).
    AggEnqueue,
    /// Bucket drained into one batched AM (bytes = encoded batch size,
    /// disp = record count).
    AggDrain,
    /// Record re-bucketed toward its next hop at an intermediate rank
    /// (hypercube store-and-forward).
    AggForward,
    // --- caf-fault (failed-image semantics, appended for stable decode) ---
    /// An image died (injected fault or `fail_image()`); `bytes` = the
    /// failed rank.
    ImageFailed,
    /// A blocking call returned `STAT_FAILED_IMAGE` to the program;
    /// `bytes` = number of failed images in the delivered set.
    StatDelivered,
}

/// Number of [`Op`] variants (for decode bounds checks).
pub(crate) const NOPS: u16 = Op::StatDelivered as u16 + 1;

impl Op {
    /// Display name (used verbatim in Chrome trace output).
    pub fn name(self) -> &'static str {
        match self {
            Op::Computation => "Computation",
            Op::CoarrayWrite => "CoarrayWrite",
            Op::CoarrayRead => "CoarrayRead",
            Op::EventWait => "EventWait",
            Op::EventNotify => "EventNotify",
            Op::Alltoall => "Alltoall",
            Op::Barrier => "Barrier",
            Op::Reduction => "Reduction",
            Op::Finish => "Finish",
            Op::CopyAsync => "CopyAsync",
            Op::Ship => "Ship",
            Op::RtMsgSend => "RtMsgSend",
            Op::RtMsgRecvBlocking => "RtMsgRecvBlocking",
            Op::MpiSend => "MpiSend",
            Op::MpiRecv => "MpiRecv",
            Op::MpiBarrier => "MpiBarrier",
            Op::MpiBcast => "MpiBcast",
            Op::MpiReduce => "MpiReduce",
            Op::MpiGather => "MpiGather",
            Op::MpiAlltoall => "MpiAlltoall",
            Op::RmaPut => "RmaPut",
            Op::RmaGet => "RmaGet",
            Op::RmaAtomic => "RmaAtomic",
            Op::WinFlush => "WinFlush",
            Op::WinFlushAll => "WinFlushAll",
            Op::AmDispatch => "AmDispatch",
            Op::AmPoll => "AmPoll",
            Op::SrqSlowPath => "SrqSlowPath",
            Op::AmPutAckWait => "AmPutAckWait",
            Op::GasnetBarrier => "GasnetBarrier",
            Op::GasnetPut => "GasnetPut",
            Op::GasnetGet => "GasnetGet",
            Op::PacketInject => "PacketInject",
            Op::PacketDeliver => "PacketDeliver",
            Op::SegmentPut => "SegmentPut",
            Op::SegmentGet => "SegmentGet",
            Op::WinLockAll => "WinLockAll",
            Op::WinUnlockAll => "WinUnlockAll",
            Op::WinFree => "WinFree",
            Op::WinRflush => "WinRflush",
            Op::WinRflushWait => "WinRflushWait",
            Op::AggEnqueue => "AggEnqueue",
            Op::AggDrain => "AggDrain",
            Op::AggForward => "AggForward",
            Op::ImageFailed => "ImageFailed",
            Op::StatDelivered => "StatDelivered",
        }
    }

    /// Runtime layer, used as the Chrome `cat` field.
    pub fn layer(self) -> &'static str {
        use Op::*;
        match self {
            Computation | CoarrayWrite | CoarrayRead | EventWait | EventNotify | Alltoall
            | Barrier | Reduction | Finish | CopyAsync | Ship | RtMsgSend | RtMsgRecvBlocking
            | AggEnqueue | AggDrain | AggForward | ImageFailed | StatDelivered => "caf",
            MpiSend | MpiRecv | MpiBarrier | MpiBcast | MpiReduce | MpiGather | MpiAlltoall
            | RmaPut | RmaGet | RmaAtomic | WinFlush | WinFlushAll | WinLockAll
            | WinUnlockAll | WinFree | WinRflush | WinRflushWait => "mpi",
            AmDispatch | AmPoll | SrqSlowPath | AmPutAckWait | GasnetBarrier | GasnetPut
            | GasnetGet => "gasnet",
            PacketInject | PacketDeliver | SegmentPut | SegmentGet => "fabric",
        }
    }

    /// The decomposition category this op rolls up into (the paper's
    /// Fig 4/8 legend), if any. Only the ten `StatCat`-mirroring ops
    /// participate; substrate-internal ops are attributed to whichever
    /// category encloses them.
    pub fn cat(self) -> Option<Cat> {
        Some(match self {
            Op::Computation => Cat::Computation,
            Op::CoarrayWrite => Cat::CoarrayWrite,
            Op::CoarrayRead => Cat::CoarrayRead,
            Op::EventWait => Cat::EventWait,
            Op::EventNotify => Cat::EventNotify,
            Op::Alltoall => Cat::Alltoall,
            Op::Barrier => Cat::Barrier,
            Op::Reduction => Cat::Reduction,
            Op::Finish => Cat::Finish,
            Op::CopyAsync => Cat::CopyAsync,
            _ => return None,
        })
    }

    /// Whether an open span of this op means the image is *waiting* on
    /// remote progress — the set the stall watchdog considers.
    pub fn is_blocking(self) -> bool {
        use Op::*;
        matches!(
            self,
            EventWait
                | EventNotify
                | Alltoall
                | Barrier
                | Reduction
                | Finish
                | CoarrayWrite
                | CoarrayRead
                | RtMsgRecvBlocking
                | MpiRecv
                | MpiBarrier
                | MpiBcast
                | MpiReduce
                | MpiGather
                | MpiAlltoall
                | WinFlush
                | WinFlushAll
                | WinRflushWait
                | AmPutAckWait
                | GasnetBarrier
        )
    }

    pub(crate) fn from_u16(v: u16) -> Option<Op> {
        if v < NOPS {
            // SAFETY: repr(u16) fieldless enum with contiguous
            // discriminants 0..NOPS, checked above.
            Some(unsafe { std::mem::transmute::<u16, Op>(v) })
        } else {
            None
        }
    }
}

/// Whether an event was recorded as a bracketed span or a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Completed [`crate::span`] with a duration.
    Span,
    /// Point event from [`crate::instant`].
    Instant,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_roundtrips_through_u16() {
        for v in 0..NOPS {
            let op = Op::from_u16(v).unwrap();
            assert_eq!(op as u16, v);
            assert!(!op.name().is_empty());
            assert!(!op.layer().is_empty());
        }
        assert!(Op::from_u16(NOPS).is_none());
    }

    #[test]
    fn exactly_ten_cat_ops() {
        let n = (0..NOPS)
            .filter(|&v| Op::from_u16(v).unwrap().cat().is_some())
            .count();
        assert_eq!(n, crate::NCAT);
    }
}
