//! Chrome `trace_event` JSON export: the merged timeline rendered as an
//! array of complete (`"ph":"X"`) and instant (`"ph":"i"`) events,
//! loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! One process (`pid` 0) with one track (`tid`) per image; timestamps
//! are microseconds on the shared trace clock.

use std::fmt::Write as _;

use crate::op::EventKind;
use crate::session::{Trace, TraceEvent};

/// Nanoseconds rendered as microseconds with fixed three decimals
/// (Chrome's `ts`/`dur` unit).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn write_event(out: &mut String, e: &TraceEvent) {
    let tid: i64 = if e.image == usize::MAX {
        -1
    } else {
        e.image as i64
    };
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}",
        e.op.name(),
        e.op.layer(),
        match e.kind {
            EventKind::Span => "X",
            EventKind::Instant => "i",
        },
        us(e.t0_ns)
    );
    if e.kind == EventKind::Span {
        let _ = write!(out, ",\"dur\":{}", us(e.dur_ns));
    } else {
        let _ = write!(out, ",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"pid\":0,\"tid\":{tid},\"args\":{{\"bytes\":{}", e.bytes);
    if let Some(t) = e.target {
        let _ = write!(out, ",\"target\":{t}");
    }
    if let Some(w) = e.window {
        let _ = write!(out, ",\"window\":{w}");
    }
    let _ = write!(out, "}}}}");
}

impl Trace {
    /// Render the whole trace as Chrome `trace_event` JSON (the
    /// "JSON array format": a single array of event objects).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 * self.events.len() + 2);
        out.push_str("[\n");
        for (i, e) in self.events.iter().enumerate() {
            write_event(&mut out, e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    /// Golden-file test: the exporter's exact output for a small fixed
    /// trace. Any format change must be deliberate.
    #[test]
    fn chrome_json_golden() {
        let trace = Trace {
            events: vec![
                TraceEvent {
                    image: 0,
                    op: Op::EventNotify,
                    kind: EventKind::Span,
                    t0_ns: 1_234_567,
                    dur_ns: 89_012,
                    target: Some(1),
                    bytes: 64,
                    window: Some(2),
                    depth: 0,
                    top_cat: true,
                    disp: None,
                },
                TraceEvent {
                    image: 1,
                    op: Op::RmaPut,
                    kind: EventKind::Instant,
                    t0_ns: 2_000_000,
                    dur_ns: 0,
                    target: None,
                    bytes: 8,
                    window: None,
                    depth: 1,
                    top_cat: false,
                    disp: None,
                },
                TraceEvent {
                    image: usize::MAX,
                    op: Op::AmPoll,
                    kind: EventKind::Span,
                    t0_ns: 3_000_001,
                    dur_ns: 1_000,
                    target: None,
                    bytes: 0,
                    window: None,
                    depth: 0,
                    top_cat: false,
                    disp: None,
                },
            ],
            stalls: vec![],
            dropped_events: 0,
        };
        let golden = concat!(
            "[\n",
            "{\"name\":\"EventNotify\",\"cat\":\"caf\",\"ph\":\"X\",\"ts\":1234.567,",
            "\"dur\":89.012,\"pid\":0,\"tid\":0,",
            "\"args\":{\"bytes\":64,\"target\":1,\"window\":2}},\n",
            "{\"name\":\"RmaPut\",\"cat\":\"mpi\",\"ph\":\"i\",\"ts\":2000.000,",
            "\"s\":\"t\",\"pid\":0,\"tid\":1,\"args\":{\"bytes\":8}},\n",
            "{\"name\":\"AmPoll\",\"cat\":\"gasnet\",\"ph\":\"X\",\"ts\":3000.001,",
            "\"dur\":1.000,\"pid\":0,\"tid\":-1,\"args\":{\"bytes\":0}}\n",
            "]"
        );
        assert_eq!(trace.to_chrome_json(), golden);
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        let t = Trace::default();
        assert_eq!(t.to_chrome_json(), "[\n]");
    }
}
