//! Aggregation of a merged trace into the paper's Fig 4/8 time
//! decomposition: per-image seconds attributed to the ten runtime
//! primitive categories.

use crate::op::{EventKind, Op};
use crate::session::Trace;

/// Number of decomposition categories.
pub const NCAT: usize = 10;

/// Decomposition category — mirrors the runtime's `StatCat` (and the
/// legend of the paper's Figs 4 and 8) exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cat {
    /// Application compute.
    Computation,
    /// Remote coarray writes.
    CoarrayWrite,
    /// Remote coarray reads.
    CoarrayRead,
    /// `event_wait`.
    EventWait,
    /// `event_notify` (includes the pre-notify flush).
    EventNotify,
    /// Alltoall exchanges.
    Alltoall,
    /// Barriers.
    Barrier,
    /// Reductions.
    Reduction,
    /// `finish` termination detection.
    Finish,
    /// Asynchronous copies.
    CopyAsync,
}

impl Cat {
    /// All categories in display order (matches `StatCat::ALL_CATS`).
    pub const ALL: [Cat; NCAT] = [
        Cat::Computation,
        Cat::CoarrayWrite,
        Cat::CoarrayRead,
        Cat::EventWait,
        Cat::EventNotify,
        Cat::Alltoall,
        Cat::Barrier,
        Cat::Reduction,
        Cat::Finish,
        Cat::CopyAsync,
    ];

    /// Position in [`Cat::ALL`] (constant-time).
    pub const fn index(self) -> usize {
        match self {
            Cat::Computation => 0,
            Cat::CoarrayWrite => 1,
            Cat::CoarrayRead => 2,
            Cat::EventWait => 3,
            Cat::EventNotify => 4,
            Cat::Alltoall => 5,
            Cat::Barrier => 6,
            Cat::Reduction => 7,
            Cat::Finish => 8,
            Cat::CopyAsync => 9,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Cat::Computation => "Computation",
            Cat::CoarrayWrite => "CoarrayWrite",
            Cat::CoarrayRead => "CoarrayRead",
            Cat::EventWait => "EventWait",
            Cat::EventNotify => "EventNotify",
            Cat::Alltoall => "Alltoall",
            Cat::Barrier => "Barrier",
            Cat::Reduction => "Reduction",
            Cat::Finish => "Finish",
            Cat::CopyAsync => "CopyAsync",
        }
    }
}

/// Per-image, per-category seconds and call counts computed from a
/// trace — the same numbers `caf::stats` accumulates eagerly, making
/// `stats` a thin view over trace data.
#[derive(Debug, Clone, Default)]
pub struct Decomposition {
    /// Images present, sorted.
    pub images: Vec<usize>,
    /// `seconds[i][cat.index()]` for `images[i]`.
    pub seconds: Vec<[f64; NCAT]>,
    /// `calls[i][cat.index()]` for `images[i]`.
    pub calls: Vec<[u64; NCAT]>,
    /// Per-image seconds spent inside flush operations (`WinFlushAll`
    /// spans and `WinRflushWait` remainders). Flushes run *within* the
    /// ten categories — mostly EventNotify and Finish — so this column is
    /// a drill-down, not an eleventh share-bearing category.
    pub flush_seconds: Vec<f64>,
    /// Per-image count of per-target flush handshakes: one per `WinFlush`
    /// or `WinRflush`, and one per rank visited by a `WinFlushAll` (whose
    /// span carries the per-target count in its `bytes` field). This is
    /// the Θ(P)-vs-targeted signature in trace form.
    pub flush_calls: Vec<u64>,
    /// Per-image count of records parked in aggregation buckets
    /// (`AggEnqueue` instants). Like the flush column this is a
    /// drill-down: enqueues happen *inside* CoarrayWrite/CopyAsync.
    pub agg_records: Vec<u64>,
    /// Per-image count of drained buckets (`AggDrain` instants) — each
    /// one batched AM on the wire.
    pub agg_batches: Vec<u64>,
    /// Per-image encoded bytes across drained buckets (the `bytes`
    /// field of `AggDrain`); `agg_batch_bytes / agg_batches` is the
    /// bytes-per-packet figure of merit.
    pub agg_batch_bytes: Vec<u64>,
    /// Per-image count of records re-bucketed at an intermediate hop
    /// (`AggForward` instants) — nonzero only with routing on.
    pub agg_forwards: Vec<u64>,
}

impl Decomposition {
    /// Seconds image `image` spent in `cat` (0.0 if absent).
    pub fn seconds_for(&self, image: usize, cat: Cat) -> f64 {
        match self.images.binary_search(&image) {
            Ok(i) => self.seconds[i][cat.index()],
            Err(_) => 0.0,
        }
    }

    /// Mean seconds per image in `cat`.
    pub fn mean_seconds(&self, cat: Cat) -> f64 {
        if self.images.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.seconds.iter().map(|row| row[cat.index()]).sum();
        sum / self.images.len() as f64
    }

    /// Total calls across images in `cat`.
    pub fn total_calls(&self, cat: Cat) -> u64 {
        self.calls.iter().map(|row| row[cat.index()]).sum()
    }

    /// Median per-image seconds in `cat` (0.0 with no images). At
    /// microsecond scale a single preempted image can swamp the mean, so
    /// cross-substrate comparisons should use medians.
    pub fn median_seconds(&self, cat: Cat) -> f64 {
        if self.images.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.seconds.iter().map(|row| row[cat.index()]).collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }

    /// `cat`'s share of the summed per-category median time (0.0 when
    /// the trace attributed no time at all).
    pub fn median_share(&self, cat: Cat) -> f64 {
        let total: f64 = Cat::ALL.iter().map(|&c| self.median_seconds(c)).sum();
        if total <= 0.0 {
            0.0
        } else {
            self.median_seconds(cat) / total
        }
    }

    /// `cat`'s share of the summed per-category mean time (0.0 when the
    /// trace attributed no time at all).
    pub fn share(&self, cat: Cat) -> f64 {
        let total: f64 = Cat::ALL.iter().map(|&c| self.mean_seconds(c)).sum();
        if total <= 0.0 {
            0.0
        } else {
            self.mean_seconds(cat) / total
        }
    }

    /// Seconds image `image` spent flushing (0.0 if absent).
    pub fn flush_seconds_for(&self, image: usize) -> f64 {
        match self.images.binary_search(&image) {
            Ok(i) => self.flush_seconds[i],
            Err(_) => 0.0,
        }
    }

    /// Mean per-image flush seconds.
    pub fn mean_flush_seconds(&self) -> f64 {
        if self.images.is_empty() {
            return 0.0;
        }
        self.flush_seconds.iter().sum::<f64>() / self.images.len() as f64
    }

    /// Total per-target flush handshakes across images.
    pub fn total_flush_calls(&self) -> u64 {
        self.flush_calls.iter().sum()
    }

    /// Total records enqueued into aggregation buckets across images.
    pub fn total_agg_records(&self) -> u64 {
        self.agg_records.iter().sum()
    }

    /// Total drained buckets (batched AMs) across images.
    pub fn total_agg_batches(&self) -> u64 {
        self.agg_batches.iter().sum()
    }

    /// Total records forwarded at intermediate hops across images.
    pub fn total_agg_forwards(&self) -> u64 {
        self.agg_forwards.iter().sum()
    }

    /// Mean encoded bytes per batched AM (0.0 when nothing drained) —
    /// the coalescing figure of merit against a small-put wire size.
    pub fn agg_bytes_per_batch(&self) -> f64 {
        let batches = self.total_agg_batches();
        if batches == 0 {
            return 0.0;
        }
        self.agg_batch_bytes.iter().sum::<u64>() as f64 / batches as f64
    }

    /// Plain-text table: one row per category with mean seconds, share,
    /// and call counts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>14} {:>12} {:>8} {:>12} {:>8} {:>10}",
            "category", "mean (s)", "share", "median (s)", "share", "calls"
        );
        for &cat in &Cat::ALL {
            let _ = writeln!(
                out,
                "{:>14} {:>12.6} {:>7.1}% {:>12.6} {:>7.1}% {:>10}",
                cat.name(),
                self.mean_seconds(cat),
                self.share(cat) * 100.0,
                self.median_seconds(cat),
                self.median_share(cat) * 100.0,
                self.total_calls(cat)
            );
        }
        let _ = writeln!(
            out,
            "{:>14} {:>12.6} {:>8} {:>12} {:>8} {:>10}  (within categories)",
            "flush",
            self.mean_flush_seconds(),
            "-",
            "-",
            "-",
            self.total_flush_calls()
        );
        if self.total_agg_records() + self.total_agg_batches() > 0 {
            let _ = writeln!(
                out,
                "{:>14} {:>12} {:>8} {:>12.1} {:>8} {:>10}  (records/batches, B/batch, fwds)",
                "agg",
                format!(
                    "{}/{}",
                    self.total_agg_records(),
                    self.total_agg_batches()
                ),
                "-",
                self.agg_bytes_per_batch(),
                "-",
                self.total_agg_forwards()
            );
        }
        out
    }
}

impl Trace {
    /// Roll the trace up into the Fig 4/8 decomposition. Only top-level
    /// category spans count (a category span nested inside another
    /// category span is attributed to the outer one), mirroring the
    /// double-count guard of `caf::stats`.
    pub fn decomposition(&self) -> Decomposition {
        let mut images: Vec<usize> = self
            .events
            .iter()
            .filter(|e| e.image != usize::MAX)
            .map(|e| e.image)
            .collect();
        images.sort_unstable();
        images.dedup();
        let mut seconds = vec![[0.0f64; NCAT]; images.len()];
        let mut calls = vec![[0u64; NCAT]; images.len()];
        let mut flush_seconds = vec![0.0f64; images.len()];
        let mut flush_calls = vec![0u64; images.len()];
        let mut agg_records = vec![0u64; images.len()];
        let mut agg_batches = vec![0u64; images.len()];
        let mut agg_batch_bytes = vec![0u64; images.len()];
        let mut agg_forwards = vec![0u64; images.len()];
        for e in &self.events {
            let Ok(i) = images.binary_search(&e.image) else {
                continue;
            };
            match e.op {
                Op::WinFlush | Op::WinRflush => flush_calls[i] += 1,
                Op::AggEnqueue => agg_records[i] += 1,
                Op::AggDrain => {
                    agg_batches[i] += 1;
                    agg_batch_bytes[i] += e.bytes;
                }
                Op::AggForward => agg_forwards[i] += 1,
                Op::WinFlushAll if e.kind == EventKind::Span => {
                    // The span's `bytes` field carries the per-target
                    // flush count (see `Mpi::win_flush_all`).
                    flush_calls[i] += e.bytes;
                    flush_seconds[i] += e.dur_ns as f64 / 1e9;
                }
                Op::WinRflushWait if e.kind == EventKind::Span => {
                    flush_seconds[i] += e.dur_ns as f64 / 1e9;
                }
                _ => {}
            }
            if !e.top_cat || e.kind != EventKind::Span {
                continue;
            }
            let Some(cat) = e.op.cat() else { continue };
            seconds[i][cat.index()] += e.dur_ns as f64 / 1e9;
            calls[i][cat.index()] += 1;
        }
        Decomposition {
            images,
            seconds,
            calls,
            flush_seconds,
            flush_calls,
            agg_records,
            agg_batches,
            agg_batch_bytes,
            agg_forwards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::session::TraceEvent;

    fn ev(image: usize, op: Op, kind: EventKind, dur_ns: u64, top_cat: bool) -> TraceEvent {
        TraceEvent {
            image,
            op,
            kind,
            t0_ns: 0,
            dur_ns,
            target: None,
            bytes: 0,
            window: None,
            depth: 0,
            top_cat,
            disp: None,
        }
    }

    #[test]
    fn rollup_counts_only_top_level_category_spans() {
        let trace = Trace {
            events: vec![
                ev(0, Op::EventNotify, EventKind::Span, 2_000_000_000, true),
                // Nested category span: excluded.
                ev(0, Op::Barrier, EventKind::Span, 500_000_000, false),
                // Substrate op: never a category.
                ev(0, Op::WinFlushAll, EventKind::Span, 1_000_000_000, false),
                // Instant events never carry duration.
                ev(0, Op::RmaPut, EventKind::Instant, 0, false),
                ev(1, Op::EventNotify, EventKind::Span, 1_000_000_000, true),
                ev(1, Op::Computation, EventKind::Span, 3_000_000_000, true),
            ],
            stalls: vec![],
            dropped_events: 0,
        };
        let d = trace.decomposition();
        assert_eq!(d.images, vec![0, 1]);
        assert!((d.seconds_for(0, Cat::EventNotify) - 2.0).abs() < 1e-9);
        assert_eq!(d.seconds_for(0, Cat::Barrier), 0.0);
        assert!((d.mean_seconds(Cat::EventNotify) - 1.5).abs() < 1e-9);
        assert!((d.median_seconds(Cat::EventNotify) - 2.0).abs() < 1e-9);
        assert_eq!(d.total_calls(Cat::EventNotify), 2);
        let mshare_sum: f64 = Cat::ALL.iter().map(|&c| d.median_share(c)).sum();
        assert!((mshare_sum - 1.0).abs() < 1e-9);
        let share_sum: f64 = Cat::ALL.iter().map(|&c| d.share(c)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        let table = d.render();
        assert!(table.contains("EventNotify"));
    }

    #[test]
    fn flush_column_aggregates_all_flush_flavours() {
        let mut flush_all = ev(0, Op::WinFlushAll, EventKind::Span, 1_500_000_000, false);
        flush_all.bytes = 4; // four per-target handshakes inside one flush_all
        let trace = Trace {
            events: vec![
                ev(0, Op::EventNotify, EventKind::Span, 2_000_000_000, true),
                flush_all,
                ev(0, Op::WinFlush, EventKind::Instant, 0, false),
                ev(1, Op::WinRflush, EventKind::Instant, 0, false),
                ev(1, Op::WinRflushWait, EventKind::Span, 500_000_000, false),
            ],
            stalls: vec![],
            dropped_events: 0,
        };
        let d = trace.decomposition();
        assert_eq!(d.flush_calls, vec![5, 1]);
        assert!((d.flush_seconds_for(0) - 1.5).abs() < 1e-9);
        assert!((d.flush_seconds_for(1) - 0.5).abs() < 1e-9);
        assert!((d.mean_flush_seconds() - 1.0).abs() < 1e-9);
        assert_eq!(d.total_flush_calls(), 6);
        // The flush column is a drill-down: category shares are unchanged.
        assert!((d.share(Cat::EventNotify) - 1.0).abs() < 1e-9);
        assert!(d.render().contains("flush"));
    }

    #[test]
    fn agg_column_counts_records_batches_and_forwards() {
        let mut drain = ev(0, Op::AggDrain, EventKind::Instant, 0, false);
        drain.bytes = 400;
        let trace = Trace {
            events: vec![
                ev(0, Op::CopyAsync, EventKind::Span, 1_000_000_000, true),
                ev(0, Op::AggEnqueue, EventKind::Instant, 0, false),
                ev(0, Op::AggEnqueue, EventKind::Instant, 0, false),
                drain,
                ev(1, Op::AggForward, EventKind::Instant, 0, false),
            ],
            stalls: vec![],
            dropped_events: 0,
        };
        let d = trace.decomposition();
        assert_eq!(d.total_agg_records(), 2);
        assert_eq!(d.total_agg_batches(), 1);
        assert!((d.agg_bytes_per_batch() - 400.0).abs() < 1e-9);
        assert_eq!(d.total_agg_forwards(), 1);
        // Drill-down only: the category shares are untouched.
        assert!((d.share(Cat::CopyAsync) - 1.0).abs() < 1e-9);
        assert!(d.render().contains("agg"));
    }

    #[test]
    fn cat_index_matches_all_order() {
        for (i, c) in Cat::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
