//! The global trace session: the enable flag every probe checks, the
//! registry collecting per-thread buffers, and the merge into one
//! timeline.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::collector::{Collector, SpanGuard};
use crate::op::{EventKind, Op};
use crate::stall::{self, StallReport};

/// The near-zero disabled path: every probe is gated on this single
/// relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Bumped on session start *and* finish so stale thread-local
/// collectors from a previous session are never written into a new one.
static GENERATION: AtomicU64 = AtomicU64::new(0);

static CURRENT: Mutex<Option<Arc<SessionShared>>> = Mutex::new(None);

thread_local! {
    static TLS: RefCell<Option<(u64, Arc<Collector>)>> = const { RefCell::new(None) };
}

/// Whether a trace session is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Set while a model-checking gate controls the process: sessions started
/// with it set do not spawn the stall watchdog, whose free-running
/// sampling thread would perturb (and outlive) explored schedules — and
/// whose wall-clock thresholds are meaningless under a logical clock.
static WATCHDOG_INHIBIT: AtomicBool = AtomicBool::new(false);

/// Inhibit (or re-allow) the stall watchdog for sessions started from now
/// on. Called by the model-checking scheduler when it arms/disarms.
pub fn set_stall_watchdog_inhibit(inhibit: bool) {
    WATCHDOG_INHIBIT.store(inhibit, Ordering::SeqCst);
}

/// Whether the stall watchdog is currently inhibited.
pub fn stall_watchdog_inhibited() -> bool {
    WATCHDOG_INHIBIT.load(Ordering::SeqCst)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Run `f` against this thread's collector, creating and registering it
/// with the active session on first use. No-op (returns `None`) when
/// tracing is disabled.
fn with_collector<R>(f: impl FnOnce(&Arc<Collector>) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        let gen_now = GENERATION.load(Ordering::Acquire);
        let stale = !matches!(&*tls, Some((g, _)) if *g == gen_now);
        if stale {
            let shared = lock(&CURRENT).clone()?;
            if shared.gen != gen_now {
                return None; // session is mid-start/finish; skip this probe
            }
            let col = Arc::new(Collector::new(shared.cfg.ring_capacity));
            lock(&shared.collectors).push(Arc::clone(&col));
            *tls = Some((gen_now, col));
        }
        let (_, col) = tls.as_ref().expect("collector just installed");
        Some(f(col))
    })
}

/// Declare this thread's image index; recorded events and stall reports
/// are attributed to it. Call early (e.g. in image init).
pub fn set_image(rank: usize) {
    let _ = with_collector(|c| c.image.store(rank as u64, Ordering::Relaxed));
}

/// Open a span for `op`; it is recorded with its duration when the
/// returned guard drops. Inert when tracing is disabled.
#[inline]
pub fn span(op: Op) -> SpanGuard {
    span_t(op, None, 0, None)
}

/// [`span`] with a target image, payload size, and window/segment id.
#[inline]
pub fn span_t(op: Op, target: Option<usize>, bytes: u64, window: Option<u64>) -> SpanGuard {
    span_d(op, target, bytes, window, None)
}

/// [`span_t`] plus a displacement / sync-token word (byte offset for
/// data ops, event id for notify/wait, team id for collectives) — the
/// extra coordinate offline checkers need.
#[inline]
pub fn span_d(
    op: Op,
    target: Option<usize>,
    bytes: u64,
    window: Option<u64>,
    disp: Option<u64>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    with_collector(|c| c.open_span(op, target, bytes, window, disp))
        .unwrap_or_else(SpanGuard::disabled)
}

/// Record a point event. Inert when tracing is disabled.
#[inline]
pub fn instant(op: Op, target: Option<usize>, bytes: u64, window: Option<u64>) {
    instant_d(op, target, bytes, window, None);
}

/// [`instant`] with the displacement / sync-token word (see [`span_d`]).
#[inline]
pub fn instant_d(op: Op, target: Option<usize>, bytes: u64, window: Option<u64>, disp: Option<u64>) {
    if !enabled() {
        return;
    }
    let _ = with_collector(|c| c.record_instant(op, target, bytes, window, disp));
}

/// Configuration for a trace session.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Events retained per image before the oldest are overwritten.
    pub ring_capacity: usize,
    /// Blocking ops open at least this long produce a [`StallReport`];
    /// `None` disables the watchdog.
    pub stall_threshold: Option<Duration>,
    /// How often the watchdog samples open spans.
    pub stall_poll_period: Duration,
    /// Print each stall report to stderr as it is detected.
    pub announce_stalls: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 1 << 16,
            stall_threshold: Some(Duration::from_millis(100)),
            stall_poll_period: Duration::from_millis(10),
            announce_stalls: true,
        }
    }
}

/// Why a session could not be started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Another [`Session`] is already recording in this process.
    SessionActive,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::SessionActive => write!(f, "a trace session is already active"),
        }
    }
}

impl std::error::Error for TraceError {}

pub(crate) struct SessionShared {
    pub gen: u64,
    pub cfg: TraceConfig,
    pub collectors: Mutex<Vec<Arc<Collector>>>,
    pub stalls: Mutex<Vec<StallReport>>,
}

/// An active recording session. Only one can exist per process; finish
/// it (after the traced job's threads have been joined) to obtain the
/// merged [`Trace`].
pub struct Session {
    shared: Arc<SessionShared>,
    watchdog: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
    active: bool,
}

impl Session {
    /// Begin recording. Fails if a session is already active.
    pub fn start(cfg: TraceConfig) -> Result<Session, TraceError> {
        let mut cur = lock(&CURRENT);
        if cur.is_some() {
            return Err(TraceError::SessionActive);
        }
        let gen = GENERATION.fetch_add(1, Ordering::AcqRel) + 1;
        let shared = Arc::new(SessionShared {
            gen,
            cfg: cfg.clone(),
            collectors: Mutex::new(Vec::new()),
            stalls: Mutex::new(Vec::new()),
        });
        *cur = Some(Arc::clone(&shared));
        drop(cur);
        ENABLED.store(true, Ordering::SeqCst);
        let watchdog = cfg
            .stall_threshold
            .filter(|_| !stall_watchdog_inhibited())
            .map(|threshold| {
            let stop = Arc::new(AtomicBool::new(false));
            let handle = stall::spawn_watchdog(
                Arc::clone(&shared),
                Arc::clone(&stop),
                threshold,
                cfg.stall_poll_period,
                cfg.announce_stalls,
            );
            (stop, handle)
        });
        Ok(Session {
            shared,
            watchdog,
            active: true,
        })
    }

    /// Stall reports accumulated so far (live view; the watchdog keeps
    /// running until [`Session::finish`]).
    pub fn stall_reports(&self) -> Vec<StallReport> {
        lock(&self.shared.stalls).clone()
    }

    /// Stop recording and merge every per-image buffer into one
    /// time-sorted trace. Call after the traced job's threads have been
    /// joined; events recorded by still-running threads afterwards are
    /// not included.
    pub fn finish(mut self) -> Trace {
        self.teardown();
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for col in lock(&self.shared.collectors).iter() {
            let image = col.image_index().unwrap_or(usize::MAX);
            dropped += col.ring.dropped();
            for r in col.records() {
                events.push(TraceEvent {
                    image,
                    op: r.op,
                    kind: r.kind,
                    t0_ns: r.t0_ns,
                    dur_ns: r.dur_ns,
                    target: r.target,
                    bytes: r.bytes,
                    window: r.window,
                    depth: r.depth,
                    top_cat: r.top_cat,
                    disp: r.disp,
                });
            }
        }
        // Stable by start time: ties keep per-image recording order.
        events.sort_by_key(|e| (e.t0_ns, e.image));
        Trace {
            events,
            stalls: lock(&self.shared.stalls).clone(),
            dropped_events: dropped,
        }
    }

    fn teardown(&mut self) {
        if !self.active {
            return;
        }
        self.active = false;
        ENABLED.store(false, Ordering::SeqCst);
        if let Some((stop, handle)) = self.watchdog.take() {
            stop.store(true, Ordering::SeqCst);
            let _ = handle.join();
        }
        *lock(&CURRENT) = None;
        // Invalidate surviving thread-local collectors.
        GENERATION.fetch_add(1, Ordering::AcqRel);
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// One event of the merged timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Recording image (`usize::MAX` if the thread never identified).
    pub image: usize,
    /// What ran.
    pub op: Op,
    /// Span (has `dur_ns`) or instant.
    pub kind: EventKind,
    /// Start time on the shared trace clock.
    pub t0_ns: u64,
    /// Duration (zero for instants).
    pub dur_ns: u64,
    /// Target image of the operation, if any.
    pub target: Option<usize>,
    /// Payload bytes moved, if meaningful.
    pub bytes: u64,
    /// RMA window / segment id, if any.
    pub window: Option<u64>,
    /// Span nesting depth at which this was recorded.
    pub depth: u8,
    /// Whether the Fig 4/8 decomposition counts this event (it maps to
    /// a category and no enclosing span did).
    pub top_cat: bool,
    /// Byte displacement within the window/region for data ops, or the
    /// sync token (event id, team id) for synchronization ops.
    pub disp: Option<u64>,
}

/// A finished, merged trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events, sorted by start time.
    pub events: Vec<TraceEvent>,
    /// Stall reports raised during the session.
    pub stalls: Vec<StallReport>,
    /// Events lost to ring-buffer wraparound across all images.
    pub dropped_events: u64,
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Sessions are process-global; the crate's session-using tests
    /// serialize on this.
    pub(crate) static SESSION_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_probes_are_inert() {
        let _guard = lock(&SESSION_TEST_LOCK);
        assert!(!enabled());
        instant(Op::RmaPut, Some(1), 8, None);
        let g = span(Op::Barrier);
        drop(g);
        // Nothing to assert beyond "did not panic / did not allocate a
        // session": no session exists, so no state changed.
        assert!(lock(&CURRENT).is_none());
    }

    #[test]
    fn session_records_and_merges_across_threads() {
        let _guard = lock(&SESSION_TEST_LOCK);
        let session = Session::start(TraceConfig {
            stall_threshold: None,
            ..TraceConfig::default()
        })
        .expect("no other session");
        assert!(enabled());
        let handles: Vec<_> = (0..3)
            .map(|img| {
                std::thread::spawn(move || {
                    set_image(img);
                    for i in 0..4 {
                        let mut s = span_t(Op::CoarrayWrite, Some((img + 1) % 3), 8, None);
                        s.set_bytes(16 + i);
                        drop(s);
                    }
                    instant_d(Op::RmaPut, Some(0), 8, Some(7), Some(img as u64 * 8));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = session.finish();
        assert!(!enabled());
        assert_eq!(trace.events.len(), 3 * 5);
        assert_eq!(trace.dropped_events, 0);
        // Merged ordering: start times are globally non-decreasing.
        for pair in trace.events.windows(2) {
            assert!(pair[0].t0_ns <= pair[1].t0_ns);
        }
        // Every image contributed, attributed correctly.
        for img in 0..3 {
            let mine: Vec<_> = trace.events.iter().filter(|e| e.image == img).collect();
            assert_eq!(mine.len(), 5);
            assert!(mine.iter().all(|e| e.depth == 0));
        }
        // Per-image recording order survives the merge (bytes ascend).
        for img in 0..3 {
            let b: Vec<u64> = trace
                .events
                .iter()
                .filter(|e| e.image == img && e.kind == EventKind::Span)
                .map(|e| e.bytes)
                .collect();
            assert_eq!(b, vec![16, 17, 18, 19]);
        }
    }

    #[test]
    fn second_session_is_rejected_while_active() {
        let _guard = lock(&SESSION_TEST_LOCK);
        let s1 = Session::start(TraceConfig::default()).unwrap();
        assert_eq!(
            Session::start(TraceConfig::default()).err(),
            Some(TraceError::SessionActive)
        );
        drop(s1); // Drop (without finish) must still tear down.
        assert!(!enabled());
        let s2 = Session::start(TraceConfig::default()).unwrap();
        s2.finish();
    }
}
