//! Per-image trace collector: a ring buffer of completed events plus a
//! small table of currently-open spans that the stall watchdog can
//! sample from another thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::op::{EventKind, Op};
use crate::ring::{Record, Ring, NONE_SENTINEL};

/// Open spans tracked per collector; deeper nesting still times
/// correctly but is invisible to the watchdog.
pub(crate) const MAX_OPEN: usize = 32;

/// Globally unique (nonzero) ids for open spans, so the watchdog can
/// report each stalled span exactly once.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// One currently-open span, readable concurrently by the watchdog.
/// `seq` is nonzero while the span is open; readers must re-check it
/// after loading the payload words (torn reads are discarded).
#[derive(Debug)]
pub(crate) struct OpenSlot {
    pub seq: AtomicU64,
    pub op: AtomicU64,
    pub t0: AtomicU64,
    pub target: AtomicU64,
    pub window: AtomicU64,
}

impl OpenSlot {
    fn empty() -> OpenSlot {
        OpenSlot {
            seq: AtomicU64::new(0),
            op: AtomicU64::new(0),
            t0: AtomicU64::new(0),
            target: AtomicU64::new(NONE_SENTINEL),
            window: AtomicU64::new(NONE_SENTINEL),
        }
    }
}

/// Trace state owned by one runtime thread (one image, usually).
pub(crate) struct Collector {
    /// Image index, `NONE_SENTINEL` until [`crate::set_image`] runs.
    pub image: AtomicU64,
    /// Completed events.
    pub ring: Ring,
    /// Raw span nesting depth (written only by the owning thread).
    depth: AtomicU64,
    /// Nesting depth counting only category-mapped spans; a span is the
    /// decomposition's "top" span when this is zero at open.
    cat_depth: AtomicU64,
    /// Open-span stack indexed by raw depth.
    pub open: [OpenSlot; MAX_OPEN],
}

impl Collector {
    pub fn new(ring_capacity: usize) -> Collector {
        Collector {
            image: AtomicU64::new(NONE_SENTINEL),
            ring: Ring::new(ring_capacity),
            depth: AtomicU64::new(0),
            cat_depth: AtomicU64::new(0),
            open: std::array::from_fn(|_| OpenSlot::empty()),
        }
    }

    pub fn image_index(&self) -> Option<usize> {
        match self.image.load(Ordering::Relaxed) {
            NONE_SENTINEL => None,
            v => Some(v as usize),
        }
    }

    /// Record a point event at the current depth.
    pub fn record_instant(
        &self,
        op: Op,
        target: Option<usize>,
        bytes: u64,
        window: Option<u64>,
        disp: Option<u64>,
    ) {
        let depth = self.depth.load(Ordering::Relaxed).min(255) as u8;
        let top_cat = op.cat().is_some() && self.cat_depth.load(Ordering::Relaxed) == 0;
        self.ring.push(
            op,
            EventKind::Instant,
            top_cat,
            depth,
            crate::now_ns(),
            0,
            target,
            bytes,
            window,
            disp,
        );
    }

    /// Open a span; the returned guard records it on drop.
    pub fn open_span(
        self: &Arc<Self>,
        op: Op,
        target: Option<usize>,
        bytes: u64,
        window: Option<u64>,
        disp: Option<u64>,
    ) -> SpanGuard {
        let depth = self.depth.load(Ordering::Relaxed);
        let cat_depth = self.cat_depth.load(Ordering::Relaxed);
        let top_cat = op.cat().is_some() && cat_depth == 0;
        let t0 = crate::now_ns();
        let open_idx = (depth as usize) < MAX_OPEN;
        if open_idx {
            let slot = &self.open[depth as usize];
            slot.op.store(op as u64, Ordering::Relaxed);
            slot.t0.store(t0, Ordering::Relaxed);
            slot.target
                .store(target.map_or(NONE_SENTINEL, |t| t as u64), Ordering::Relaxed);
            slot.window.store(window.unwrap_or(NONE_SENTINEL), Ordering::Relaxed);
            // Publish last: a nonzero seq tells the watchdog the payload
            // words above are meaningful.
            slot.seq
                .store(NEXT_SEQ.fetch_add(1, Ordering::Relaxed), Ordering::Release);
        }
        self.depth.store(depth + 1, Ordering::Relaxed);
        if op.cat().is_some() {
            self.cat_depth.store(cat_depth + 1, Ordering::Relaxed);
        }
        SpanGuard {
            inner: Some(SpanInner {
                col: Arc::clone(self),
                op,
                t0,
                depth: depth.min(255) as u8,
                top_cat,
                tracked: open_idx,
                target,
                bytes,
                window,
                disp,
            }),
        }
    }

    pub(crate) fn records(&self) -> Vec<Record> {
        self.ring.drain()
    }
}

struct SpanInner {
    col: Arc<Collector>,
    op: Op,
    t0: u64,
    depth: u8,
    top_cat: bool,
    tracked: bool,
    target: Option<usize>,
    bytes: u64,
    window: Option<u64>,
    disp: Option<u64>,
}

/// RAII guard for an open span; completes (and records) it on drop.
/// Inert when tracing is disabled, costing only its `Option` check.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// The inert guard handed out when tracing is off.
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// Attach or update the payload byte count after opening.
    pub fn set_bytes(&mut self, bytes: u64) {
        if let Some(inner) = &mut self.inner {
            inner.bytes = bytes;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur = crate::now_ns().saturating_sub(inner.t0);
        let col = &inner.col;
        let depth = col.depth.load(Ordering::Relaxed);
        debug_assert_eq!(depth, u64::from(inner.depth) + 1, "span drop out of order");
        col.depth.store(depth.saturating_sub(1), Ordering::Relaxed);
        if inner.op.cat().is_some() {
            let cd = col.cat_depth.load(Ordering::Relaxed);
            col.cat_depth.store(cd.saturating_sub(1), Ordering::Relaxed);
        }
        if inner.tracked {
            col.open[inner.depth as usize].seq.store(0, Ordering::Release);
        }
        col.ring.push(
            inner.op,
            EventKind::Span,
            inner.top_cat,
            inner.depth,
            inner.t0,
            dur,
            inner.target,
            inner.bytes,
            inner.window,
            inner.disp,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_track_depth_and_top_cat() {
        let col = Arc::new(Collector::new(64));
        {
            let _outer = col.open_span(Op::CoarrayWrite, Some(1), 8, None, Some(64));
            {
                let _mid = col.open_span(Op::WinFlushAll, None, 0, Some(2), None);
                let _inner = col.open_span(Op::EventNotify, Some(1), 0, None, None);
            }
            col.record_instant(Op::RmaPut, Some(1), 8, Some(2), Some(16));
        }
        let recs = col.records();
        // Drop order: inner EventNotify, WinFlushAll, RmaPut instant, outer.
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].op, Op::EventNotify);
        assert_eq!(recs[0].depth, 2);
        assert!(!recs[0].top_cat, "nested under CoarrayWrite");
        assert_eq!(recs[1].op, Op::WinFlushAll);
        assert!(!recs[1].top_cat, "never a category op");
        assert_eq!(recs[2].op, Op::RmaPut);
        assert_eq!(recs[2].depth, 1);
        assert_eq!(recs[2].disp, Some(16));
        assert_eq!(recs[3].op, Op::CoarrayWrite);
        assert_eq!(recs[3].depth, 0);
        assert_eq!(recs[3].disp, Some(64));
        assert!(recs[3].top_cat);
        assert_eq!(col.depth.load(Ordering::Relaxed), 0);
        assert_eq!(col.cat_depth.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn open_slot_visible_while_span_is_open() {
        let col = Arc::new(Collector::new(64));
        let guard = col.open_span(Op::AmPutAckWait, Some(3), 16, None, None);
        let slot = &col.open[0];
        assert_ne!(slot.seq.load(Ordering::Acquire), 0);
        assert_eq!(slot.op.load(Ordering::Relaxed), Op::AmPutAckWait as u64);
        assert_eq!(slot.target.load(Ordering::Relaxed), 3);
        drop(guard);
        assert_eq!(slot.seq.load(Ordering::Acquire), 0);
    }
}
