//! Fixed-capacity single-writer ring buffer of trace records.
//!
//! Each record is seven `AtomicU64` words, so the owning image thread can
//! record with plain atomic stores (no locks, no allocation) while the
//! merge pass — which runs after the traced job's threads are joined —
//! reads the same words back. On overflow the oldest records are
//! overwritten; the push counter keeps the survivors' order exact.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::op::{EventKind, Op};

pub(crate) const WORDS: usize = 7;

/// Sentinel for "no target image" / "no window id".
pub(crate) const NONE_SENTINEL: u64 = u64::MAX;

/// One decoded trace record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Record {
    pub op: Op,
    pub kind: EventKind,
    /// True when the op maps to a decomposition category and no
    /// enclosing span did — i.e. this record is the one the Fig 4/8
    /// roll-up should count.
    pub top_cat: bool,
    pub depth: u8,
    pub t0_ns: u64,
    pub dur_ns: u64,
    pub target: Option<usize>,
    pub bytes: u64,
    pub window: Option<u64>,
    /// Byte displacement within the window/region, or a sync token
    /// (event id, team id) for ops that carry one.
    pub disp: Option<u64>,
}

pub(crate) struct Ring {
    slots: Box<[[AtomicU64; WORDS]]>,
    /// Total pushes ever; `head % capacity` is the next write index.
    head: AtomicU64,
}

const KIND_SPAN: u64 = 1 << 24;
const TOP_CAT: u64 = 1 << 25;

impl Ring {
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0, "ring capacity must be positive");
        let slots = (0..capacity)
            .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Total records ever pushed (including overwritten ones).
    #[cfg(test)]
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Record one event. Single-writer: only the owning thread calls this.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &self,
        op: Op,
        kind: EventKind,
        top_cat: bool,
        depth: u8,
        t0_ns: u64,
        dur_ns: u64,
        target: Option<usize>,
        bytes: u64,
        window: Option<u64>,
        disp: Option<u64>,
    ) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        let mut w0 = op as u64 | (u64::from(depth) << 16);
        if matches!(kind, EventKind::Span) {
            w0 |= KIND_SPAN;
        }
        if top_cat {
            w0 |= TOP_CAT;
        }
        slot[0].store(w0, Ordering::Relaxed);
        slot[1].store(t0_ns, Ordering::Relaxed);
        slot[2].store(dur_ns, Ordering::Relaxed);
        slot[3].store(target.map_or(NONE_SENTINEL, |t| t as u64), Ordering::Relaxed);
        slot[4].store(bytes, Ordering::Relaxed);
        slot[5].store(window.unwrap_or(NONE_SENTINEL), Ordering::Relaxed);
        slot[6].store(disp.unwrap_or(NONE_SENTINEL), Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Read back the surviving records, oldest first. Records that were
    /// overwritten by wraparound are gone; `dropped()` says how many.
    pub fn drain(&self) -> Vec<Record> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let live = head.min(cap);
        let mut out = Vec::with_capacity(live as usize);
        for i in (head - live)..head {
            let slot = &self.slots[(i % cap) as usize];
            let w0 = slot[0].load(Ordering::Relaxed);
            let Some(op) = Op::from_u16((w0 & 0xffff) as u16) else {
                continue;
            };
            let target = match slot[3].load(Ordering::Relaxed) {
                NONE_SENTINEL => None,
                t => Some(t as usize),
            };
            let window = match slot[5].load(Ordering::Relaxed) {
                NONE_SENTINEL => None,
                w => Some(w),
            };
            let disp = match slot[6].load(Ordering::Relaxed) {
                NONE_SENTINEL => None,
                d => Some(d),
            };
            out.push(Record {
                op,
                kind: if w0 & KIND_SPAN != 0 {
                    EventKind::Span
                } else {
                    EventKind::Instant
                },
                top_cat: w0 & TOP_CAT != 0,
                depth: ((w0 >> 16) & 0xff) as u8,
                t0_ns: slot[1].load(Ordering::Relaxed),
                dur_ns: slot[2].load(Ordering::Relaxed),
                target,
                bytes: slot[4].load(Ordering::Relaxed),
                window,
                disp,
            });
        }
        out
    }

    /// Records lost to wraparound.
    pub fn dropped(&self) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        head.saturating_sub(self.slots.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(ring: &Ring, n: u64) {
        for i in 0..n {
            ring.push(
                Op::RmaPut,
                EventKind::Instant,
                false,
                0,
                i,
                0,
                Some(1),
                8,
                Some(3),
                None,
            );
        }
    }

    #[test]
    fn records_roundtrip() {
        let ring = Ring::new(8);
        ring.push(
            Op::EventNotify,
            EventKind::Span,
            true,
            2,
            100,
            50,
            Some(4),
            64,
            None,
            Some(12),
        );
        let recs = ring.drain();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.op, Op::EventNotify);
        assert_eq!(r.kind, EventKind::Span);
        assert!(r.top_cat);
        assert_eq!(r.depth, 2);
        assert_eq!((r.t0_ns, r.dur_ns), (100, 50));
        assert_eq!(r.target, Some(4));
        assert_eq!(r.bytes, 64);
        assert_eq!(r.window, None);
        assert_eq!(r.disp, Some(12));
    }

    #[test]
    fn wraparound_keeps_newest_in_order() {
        let ring = Ring::new(4);
        push_n(&ring, 11);
        assert_eq!(ring.pushed(), 11);
        assert_eq!(ring.dropped(), 7);
        let recs = ring.drain();
        assert_eq!(recs.len(), 4);
        // The four newest, oldest-first.
        let t0s: Vec<u64> = recs.iter().map(|r| r.t0_ns).collect();
        assert_eq!(t0s, vec![7, 8, 9, 10]);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let ring = Ring::new(16);
        push_n(&ring, 5);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.drain().len(), 5);
    }
}
