//! Stall detection: a watchdog thread samples every collector's open
//! spans and reports blocking operations stuck past a threshold —
//! turning a silent interoperability deadlock (the paper's Figure 2)
//! into a diagnostic that names the blocked image and the image/window
//! edge it is waiting on.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::collector::{Collector, MAX_OPEN};
use crate::op::Op;
use crate::ring::NONE_SENTINEL;
use crate::session::SessionShared;

/// A blocking operation observed open past the configured threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// The blocked image (`None` if its thread never called
    /// [`crate::set_image`]).
    pub image: Option<usize>,
    /// The operation it is stuck in.
    pub op: Op,
    /// The image it is blocked on, when the operation has one.
    pub target: Option<usize>,
    /// The RMA window / segment involved, when known.
    pub window: Option<u64>,
    /// How long the span had been open when detected.
    pub waited_ns: u64,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.image {
            Some(i) => write!(f, "image {i}")?,
            None => write!(f, "unidentified image")?,
        }
        write!(
            f,
            " blocked in {} for {} ms",
            self.op.name(),
            self.waited_ns / 1_000_000
        )?;
        if let Some(t) = self.target {
            write!(f, ", waiting on image {t}")?;
            if self.op == Op::AmPutAckWait {
                write!(f, " (target must poll to acknowledge the AM put)")?;
            }
        }
        if let Some(w) = self.window {
            write!(f, " [window {w}]")?;
        }
        Ok(())
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Scan one collector for its deepest over-threshold blocking span.
fn scan_collector(col: &Collector, now: u64, threshold_ns: u64) -> Option<(u64, StallReport)> {
    for idx in (0..MAX_OPEN).rev() {
        let slot = &col.open[idx];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 {
            continue;
        }
        let op_raw = slot.op.load(Ordering::Relaxed);
        let t0 = slot.t0.load(Ordering::Relaxed);
        let target = slot.target.load(Ordering::Relaxed);
        let window = slot.window.load(Ordering::Relaxed);
        // Discard torn reads: the owner may have closed/reopened the
        // slot while we were reading the payload words.
        if slot.seq.load(Ordering::Acquire) != seq {
            continue;
        }
        let Some(op) = Op::from_u16(op_raw as u16) else {
            continue;
        };
        if !op.is_blocking() {
            continue;
        }
        let waited = now.saturating_sub(t0);
        if waited < threshold_ns {
            // A fast-churning inner wait; an enclosing span may still be
            // stuck, so keep scanning shallower slots.
            continue;
        }
        return Some((
            seq,
            StallReport {
                image: col.image_index(),
                op,
                target: match target {
                    NONE_SENTINEL => None,
                    t => Some(t as usize),
                },
                window: match window {
                    NONE_SENTINEL => None,
                    w => Some(w),
                },
                waited_ns: waited,
            },
        ));
    }
    None
}

pub(crate) fn spawn_watchdog(
    shared: Arc<SessionShared>,
    stop: Arc<AtomicBool>,
    threshold: Duration,
    period: Duration,
    announce: bool,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("caf-trace-stall-watchdog".into())
        .spawn(move || {
            let threshold_ns = threshold.as_nanos() as u64;
            let mut reported: HashSet<u64> = HashSet::new();
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(period);
                let collectors: Vec<Arc<Collector>> = lock(&shared.collectors).clone();
                let now = crate::now_ns();
                for col in &collectors {
                    if let Some((seq, report)) = scan_collector(col, now, threshold_ns) {
                        if reported.insert(seq) {
                            if announce {
                                eprintln!("[caf-trace] STALL: {report}");
                            }
                            lock(&shared.stalls).push(report);
                        }
                    }
                }
            }
        })
        .expect("spawn stall watchdog")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::tests::SESSION_TEST_LOCK;
    use crate::session::{set_image, span_t, Session, TraceConfig};

    #[test]
    fn report_display_names_the_edge() {
        let r = StallReport {
            image: Some(0),
            op: Op::AmPutAckWait,
            target: Some(1),
            window: Some(3),
            waited_ns: 150_000_000,
        };
        let s = r.to_string();
        assert!(s.contains("image 0"), "{s}");
        assert!(s.contains("AmPutAckWait"), "{s}");
        assert!(s.contains("150 ms"), "{s}");
        assert!(s.contains("waiting on image 1"), "{s}");
        assert!(s.contains("window 3"), "{s}");
    }

    #[test]
    #[cfg_attr(miri, ignore = "watchdog thread + wall-clock sleeps")]
    fn watchdog_reports_long_open_blocking_span_once() {
        let _guard = lock(&SESSION_TEST_LOCK);
        let session = Session::start(TraceConfig {
            stall_threshold: Some(Duration::from_millis(20)),
            stall_poll_period: Duration::from_millis(5),
            announce_stalls: false,
            ..TraceConfig::default()
        })
        .unwrap();
        let worker = std::thread::spawn(|| {
            set_image(7);
            let g = span_t(Op::EventWait, Some(2), 0, None);
            std::thread::sleep(Duration::from_millis(120));
            drop(g);
        });
        worker.join().unwrap();
        let trace = session.finish();
        assert_eq!(trace.stalls.len(), 1, "{:?}", trace.stalls);
        let r = &trace.stalls[0];
        assert_eq!(r.image, Some(7));
        assert_eq!(r.op, Op::EventWait);
        assert_eq!(r.target, Some(2));
        assert!(r.waited_ns >= 20_000_000);
    }

    #[test]
    #[cfg_attr(miri, ignore = "watchdog thread + wall-clock sleeps")]
    fn short_spans_do_not_trip_the_watchdog() {
        let _guard = lock(&SESSION_TEST_LOCK);
        let session = Session::start(TraceConfig {
            stall_threshold: Some(Duration::from_millis(80)),
            stall_poll_period: Duration::from_millis(5),
            announce_stalls: false,
            ..TraceConfig::default()
        })
        .unwrap();
        let worker = std::thread::spawn(|| {
            set_image(1);
            for _ in 0..10 {
                let g = span_t(Op::MpiRecv, Some(0), 0, None);
                std::thread::sleep(Duration::from_millis(2));
                drop(g);
            }
        });
        worker.join().unwrap();
        let trace = session.finish();
        assert!(trace.stalls.is_empty(), "{:?}", trace.stalls);
    }
}
