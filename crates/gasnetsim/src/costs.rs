//! Preset software-overhead tables for the GASNet substrate.
//!
//! Anchored to the paper's microbenchmark panels and scaled down by the
//! same factor as the MPI presets (see `caf_mpisim::costs`), so
//! GASNet-vs-MPI *ratios* are preserved in wall-clock measurements:
//! GASNet point-to-point put/get rates are 2–5× the MPI rates on both Mira
//! and Edison, while `event_notify` rates are comparable.

use caf_fabric::delay::{DelayConfig, OpCost};

/// Same scale-down factor as the MPI substrate's presets.
pub const TIME_SCALE: f64 = 100.0;

/// GASNet-on-InfiniBand-like cost table (the paper's Fusion platform).
pub fn ibv_conduit_like() -> DelayConfig {
    DelayConfig {
        p2p_inject: scaled(900.0, 0.20),
        p2p_receive: scaled(900.0, 0.20),
        rma_put: scaled(1_900.0, 0.18),
        rma_get: scaled(2_300.0, 0.18),
        rma_atomic: scaled(2_500.0, 0.0),
        // GASNet puts/gets are remotely complete at sync; a "flush" in the
        // runtime above maps to nbi sync, a local operation.
        flush_per_target: scaled(40.0, 0.0),
        am_dispatch: scaled(700.0, 0.0),
    }
}

/// GASNet-on-Aries-like cost table (the paper's Edison platform).
pub fn aries_conduit_like() -> DelayConfig {
    DelayConfig {
        p2p_inject: scaled(700.0, 0.16),
        p2p_receive: scaled(700.0, 0.16),
        rma_put: scaled(1_800.0, 0.15),
        rma_get: scaled(2_400.0, 0.15),
        rma_atomic: scaled(2_600.0, 0.0),
        flush_per_target: scaled(40.0, 0.0),
        am_dispatch: scaled(650.0, 0.0),
    }
}

/// Extra per-message reception cost (ns, pre-scaling) when the SRQ slow
/// path is active. The paper's Fusion RandomAccess data implies roughly a
/// 2× hit on the AM-heavy path at 128 cores.
pub const SRQ_PENALTY_NS: f64 = 2_200.0 / TIME_SCALE;

/// No artificial overheads — use for correctness tests.
pub fn zero() -> DelayConfig {
    DelayConfig::free()
}

fn scaled(base_ns: f64, per_byte_ns: f64) -> OpCost {
    OpCost {
        base_ns: base_ns / TIME_SCALE,
        per_byte_ns: per_byte_ns / TIME_SCALE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gasnet_rma_cheaper_than_mpi_rma() {
        let g = ibv_conduit_like();
        let m = caf_mpisim::costs::mvapich_like();
        assert!(g.rma_put.base_ns < m.rma_put.base_ns);
        assert!(g.rma_get.base_ns < m.rma_get.base_ns);
        // But GASNet has no Θ(P) flush_all: its per-target flush is tiny.
        assert!(g.flush_per_target.base_ns < m.flush_per_target.base_ns);
    }

    #[test]
    fn srq_penalty_is_substantial() {
        let g = ibv_conduit_like();
        assert!(SRQ_PENALTY_NS > g.am_dispatch.base_ns);
    }
}
