//! Active Messages — the GASNet core API's defining mechanism.
//!
//! Three request categories, mirroring `gasnet_AMRequestShortM` /
//! `MediumM` / `LongM`:
//!
//! * **short** — up to [`AM_MAX_ARGS`] 64-bit arguments, no payload;
//! * **medium** — arguments plus an opaque payload of at most
//!   [`AM_MAX_MEDIUM`] bytes, delivered to a library buffer;
//! * **long** — arguments plus a payload deposited at a *caller-specified
//!   offset in the target's segment* before the handler runs.
//!
//! Handlers run **only inside a poll** ([`Gasnet::poll`] or any blocking
//! GASNet call). There is no asynchronous progress thread; that is the
//! exact progress property the paper's interoperability discussion turns
//! on.

use std::cell::RefCell;
use std::sync::Arc;

use bytes::Bytes;

use caf_fabric::delay::{spin_for_ns, DelayOp};
use caf_fabric::pod::{as_bytes, vec_from_bytes};
use caf_fabric::{Packet, Result};

use crate::universe::{Gasnet, KIND_AM_LONG, KIND_AM_MEDIUM, KIND_AM_SHORT};

/// Maximum number of 64-bit arguments an AM may carry
/// (`gasnet_AMMaxArgs()`).
pub const AM_MAX_ARGS: usize = 16;

/// Maximum medium-AM payload in bytes (`gasnet_AMMaxMedium()`).
pub const AM_MAX_MEDIUM: usize = 4096;

/// Maximum long-AM payload in bytes (`gasnet_AMMaxLongRequest()`):
/// bounded only by the target segment on this substrate.
pub const AM_MAX_LONG: usize = usize::MAX;

/// Reserved handler: AM-mediated put, target side (deposits are already in
/// the segment; replies with an ack).
pub(crate) const H_PUT_ACK_REQ: usize = 0;
/// Reserved handler: AM-mediated put acknowledgement, origin side.
pub(crate) const H_PUT_ACK_REPLY: usize = 1;
/// First handler index available to clients.
pub const FIRST_USER_HANDLER: usize = 2;

/// An AM handler: `(gasnet, token, args, payload)`. For long AMs the
/// payload has already been deposited in the local segment; the slice
/// passed here is a copy read back for convenience.
pub type Handler = Arc<dyn Fn(&Gasnet, Token, &[u64], &[u8]) + Send + Sync>;

/// Identifies the requester inside a handler; required for replies.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Rank the request came from.
    pub src: usize,
}

/// The per-rank handler registration table.
pub struct HandlerTable {
    slots: RefCell<Vec<Option<Handler>>>,
}

impl HandlerTable {
    /// A table with the library-reserved handlers pre-registered.
    pub(crate) fn with_reserved() -> Self {
        let t = HandlerTable {
            slots: RefCell::new(vec![None; 64]),
        };
        t.set(
            H_PUT_ACK_REQ,
            Arc::new(|g: &Gasnet, tok: Token, args: &[u64], _data: &[u8]| {
                g.am_reply_short(tok, H_PUT_ACK_REPLY, args)
                    .expect("put-ack reply");
            }),
        );
        t.set(
            H_PUT_ACK_REPLY,
            Arc::new(|g: &Gasnet, _tok: Token, _args: &[u64], _data: &[u8]| {
                g.put_acks_received.set(g.put_acks_received.get() + 1);
            }),
        );
        t
    }

    pub(crate) fn set(&self, idx: usize, h: Handler) {
        let mut slots = self.slots.borrow_mut();
        if idx >= slots.len() {
            slots.resize(idx + 1, None);
        }
        slots[idx] = Some(h);
    }

    pub(crate) fn get(&self, idx: usize) -> Option<Handler> {
        self.slots.borrow().get(idx).and_then(|s| s.clone())
    }
}

impl Gasnet {
    /// Register `handler` at table index `idx` (must be
    /// `>= FIRST_USER_HANDLER`).
    pub fn register_handler(
        &self,
        idx: usize,
        handler: impl Fn(&Gasnet, Token, &[u64], &[u8]) + Send + Sync + 'static,
    ) {
        assert!(
            idx >= FIRST_USER_HANDLER,
            "handler indices below {FIRST_USER_HANDLER} are reserved"
        );
        self.handlers.set(idx, Arc::new(handler));
    }

    fn am_send(&self, dest: usize, kind: u16, handler: usize, h: [u64; 4], payload: Bytes) -> Result<()> {
        self.delays.charge(DelayOp::P2pInject, payload.len());
        self.ep.send(
            dest,
            Packet::with_payload(self.rank(), kind, handler as i64, h, payload),
        )
    }

    /// `gasnet_AMRequestShort`: integer arguments only.
    pub fn am_request_short(&self, dest: usize, handler: usize, args: &[u64]) -> Result<()> {
        assert!(args.len() <= AM_MAX_ARGS, "too many AM arguments");
        self.am_send(
            dest,
            KIND_AM_SHORT,
            handler,
            [args.len() as u64, 0, 0, 0],
            Bytes::copy_from_slice(as_bytes(args)),
        )
    }

    /// `gasnet_AMRequestMedium`: arguments plus an opaque payload delivered
    /// to a library buffer at the target.
    pub fn am_request_medium(
        &self,
        dest: usize,
        handler: usize,
        args: &[u64],
        data: &[u8],
    ) -> Result<()> {
        assert!(args.len() <= AM_MAX_ARGS, "too many AM arguments");
        assert!(data.len() <= AM_MAX_MEDIUM, "medium AM payload too large");
        let mut buf = Vec::with_capacity(args.len() * 8 + data.len());
        buf.extend_from_slice(as_bytes(args));
        buf.extend_from_slice(data);
        self.am_send(
            dest,
            KIND_AM_MEDIUM,
            handler,
            [args.len() as u64, 0, 0, 0],
            Bytes::from(buf),
        )
    }

    /// `gasnet_AMRequestLong`: the payload is deposited at `dest_offset` in
    /// the target's segment *before* the handler is invoked.
    pub fn am_request_long(
        &self,
        dest: usize,
        handler: usize,
        args: &[u64],
        data: &[u8],
        dest_offset: usize,
    ) -> Result<()> {
        assert!(args.len() <= AM_MAX_ARGS, "too many AM arguments");
        // Deposit the payload (the RDMA part of a long AM).
        let seg = self.ep.segment(self.seg_ids[dest])?;
        self.delays.charge(DelayOp::RmaPut, data.len());
        seg.put(dest_offset, data)?;
        self.am_send(
            dest,
            KIND_AM_LONG,
            handler,
            [
                args.len() as u64,
                dest_offset as u64,
                data.len() as u64,
                0,
            ],
            Bytes::copy_from_slice(as_bytes(args)),
        )
    }

    /// Reply with a short AM from within a handler.
    pub fn am_reply_short(&self, token: Token, handler: usize, args: &[u64]) -> Result<()> {
        self.am_request_short(token.src, handler, args)
    }

    /// Reply with a medium AM from within a handler
    /// (`gasnet_AMReplyMedium`).
    pub fn am_reply_medium(
        &self,
        token: Token,
        handler: usize,
        args: &[u64],
        data: &[u8],
    ) -> Result<()> {
        self.am_request_medium(token.src, handler, args, data)
    }

    /// `gasnet_AMPoll`: drain arrived packets, invoking AM handlers;
    /// non-AM packets are stashed for their blocking consumers. Returns the
    /// number of AMs dispatched.
    pub fn poll(&self) -> usize {
        let mut dispatched = 0;
        while let Some(pkt) = self.ep.try_recv() {
            if self.is_am(&pkt) {
                self.dispatch_am(pkt);
                dispatched += 1;
            } else {
                self.pending.borrow_mut().push_back(pkt);
            }
        }
        // Only productive polls are recorded (`bytes` = AMs dispatched);
        // empty polls run in spin loops and would flood the ring.
        if dispatched > 0 && caf_trace::enabled() {
            caf_trace::instant(caf_trace::Op::AmPoll, None, dispatched as u64, None);
        }
        dispatched
    }

    /// Decode and run one AM packet.
    pub(crate) fn dispatch_am(&self, pkt: Packet) {
        let _span = caf_trace::span_t(
            caf_trace::Op::AmDispatch,
            Some(pkt.src),
            pkt.payload.len() as u64,
            None,
        );
        self.delays.charge(DelayOp::AmDispatch, pkt.payload.len());
        let srq_ns = self.srq_penalty_ns();
        if srq_ns > 0.0 && caf_trace::enabled() {
            caf_trace::instant(caf_trace::Op::SrqSlowPath, Some(pkt.src), srq_ns as u64, None);
        }
        spin_for_ns(srq_ns);
        let nargs = pkt.h[0] as usize;
        let args: Vec<u64> = vec_from_bytes(&pkt.payload[..nargs * 8]);
        let handler_idx = pkt.tag as usize;
        let handler = self
            .handlers
            .get(handler_idx)
            .unwrap_or_else(|| panic!("AM for unregistered handler {handler_idx}"));
        let token = Token { src: pkt.src };
        match pkt.kind {
            KIND_AM_SHORT => handler(self, token, &args, &[]),
            KIND_AM_MEDIUM => handler(self, token, &args, &pkt.payload[nargs * 8..]),
            KIND_AM_LONG => {
                let offset = pkt.h[1] as usize;
                let len = pkt.h[2] as usize;
                let mut data = vec![0u8; len];
                self.local
                    .get(offset, &mut data)
                    .expect("long AM payload within segment");
                handler(self, token, &args, &data);
            }
            _ => unreachable!("dispatch_am on non-AM packet"),
        }
    }
}

#[cfg(test)]
mod tests {

    use crate::universe::GasnetUniverse;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn short_am_delivers_args() {
        GasnetUniverse::run(2, |g| {
            static SUM: AtomicU64 = AtomicU64::new(0);
            if g.rank() == 1 {
                g.register_handler(2, |_g, tok, args, data| {
                    assert_eq!(tok.src, 0);
                    assert!(data.is_empty());
                    SUM.store(args.iter().sum(), Ordering::SeqCst);
                });
            }
            g.barrier();
            if g.rank() == 0 {
                g.am_request_short(1, 2, &[10, 20, 30]).unwrap();
            }
            g.barrier(); // target polls inside the barrier
            if g.rank() == 1 {
                assert_eq!(SUM.load(Ordering::SeqCst), 60);
            }
        });
    }

    #[test]
    fn medium_am_carries_payload() {
        GasnetUniverse::run(2, |g| {
            static GOT: AtomicU64 = AtomicU64::new(0);
            g.register_handler(3, |_g, _tok, args, data| {
                assert_eq!(args, &[7]);
                GOT.store(data.iter().map(|&b| b as u64).sum(), Ordering::SeqCst);
            });
            g.barrier();
            if g.rank() == 0 {
                g.am_request_medium(1, 3, &[7], &[1, 2, 3, 4]).unwrap();
            }
            g.barrier();
            if g.rank() == 1 {
                assert_eq!(GOT.load(Ordering::SeqCst), 10);
            }
        });
    }

    #[test]
    fn long_am_deposits_into_segment_before_handler() {
        GasnetUniverse::run(2, |g| {
            static OK: AtomicU64 = AtomicU64::new(0);
            g.register_handler(4, |g, _tok, args, data| {
                // Payload must already be in the local segment.
                let mut seg_copy = vec![0u8; data.len()];
                g.local_segment().get(args[0] as usize, &mut seg_copy).unwrap();
                assert_eq!(seg_copy, data);
                OK.store(1, Ordering::SeqCst);
            });
            g.barrier();
            if g.rank() == 0 {
                g.am_request_long(1, 4, &[64], &[9, 8, 7], 64).unwrap();
            }
            g.barrier();
            if g.rank() == 1 {
                assert_eq!(OK.load(Ordering::SeqCst), 1);
            }
        });
    }

    #[test]
    fn replies_reach_the_requester() {
        GasnetUniverse::run(2, |g| {
            static PONG: AtomicU64 = AtomicU64::new(0);
            g.register_handler(5, |g, tok, args, _| {
                g.am_reply_short(tok, 6, &[args[0] * 2]).unwrap();
            });
            g.register_handler(6, |_g, _tok, args, _| {
                PONG.store(args[0], Ordering::SeqCst);
            });
            g.barrier();
            if g.rank() == 0 {
                g.am_request_short(1, 5, &[21]).unwrap();
                while PONG.load(Ordering::SeqCst) == 0 {
                    g.poll();
                }
                assert_eq!(PONG.load(Ordering::SeqCst), 42);
            }
            g.barrier();
        });
    }

    #[test]
    fn medium_replies_carry_payload() {
        GasnetUniverse::run(2, |g| {
            static SUM: AtomicU64 = AtomicU64::new(0);
            // Handler 7 replies with the payload doubled.
            g.register_handler(7, |g, tok, _args, data| {
                let doubled: Vec<u8> = data.iter().map(|b| b * 2).collect();
                g.am_reply_medium(tok, 8, &[], &doubled).unwrap();
            });
            g.register_handler(8, |_g, _tok, _args, data| {
                SUM.store(data.iter().map(|&b| b as u64).sum(), Ordering::SeqCst);
            });
            g.barrier();
            if g.rank() == 0 {
                g.am_request_medium(1, 7, &[], &[1, 2, 3]).unwrap();
                while SUM.load(Ordering::SeqCst) == 0 {
                    g.poll();
                }
                assert_eq!(SUM.load(Ordering::SeqCst), 12);
            }
            g.barrier();
        });
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing / raw spin")]
    fn no_progress_without_poll() {
        GasnetUniverse::run(2, |g| {
            static HIT: AtomicU64 = AtomicU64::new(0);
            g.register_handler(2, |_g, _tok, _args, _| {
                HIT.fetch_add(1, Ordering::SeqCst);
            });
            g.barrier();
            if g.rank() == 0 {
                g.am_request_short(1, 2, &[1]).unwrap();
                g.barrier();
            } else {
                // Wait until the message must have arrived, without polling.
                std::thread::sleep(std::time::Duration::from_millis(30));
                assert_eq!(HIT.load(Ordering::SeqCst), 0, "AM ran without a poll");
                g.barrier(); // barrier polls; handler fires here
                assert_eq!(HIT.load(Ordering::SeqCst), 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn reserved_handler_indices_rejected() {
        GasnetUniverse::run(1, |g| {
            g.register_handler(0, |_g, _t, _a, _d| {});
        });
    }

    #[test]
    fn poll_dispatches_all_arrivals() {
        // Note: blocking GASNet calls (the barrier) also dispatch AMs, so
        // the handler-side counter is the reliable ledger, not poll()'s
        // return value.
        GasnetUniverse::run(2, |g| {
            static HITS: AtomicU64 = AtomicU64::new(0);
            g.register_handler(2, |_g, _t, _a, _d| {
                HITS.fetch_add(1, Ordering::SeqCst);
            });
            g.barrier();
            if g.rank() == 0 {
                for _ in 0..5 {
                    g.am_request_short(1, 2, &[]).unwrap();
                }
                g.barrier();
            } else {
                g.barrier();
                while HITS.load(Ordering::SeqCst) < 5 {
                    g.poll();
                }
                assert_eq!(HITS.load(Ordering::SeqCst), 5);
            }
        });
    }
}
