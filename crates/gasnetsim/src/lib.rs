#![warn(missing_docs)]

//! # caf-gasnetsim
//!
//! A GASNet *core API* subset over [`caf_fabric`] — the baseline substrate
//! of the paper (*Portable, MPI-Interoperable Coarray Fortran*, PPoPP'14):
//! the original CAF 2.0 runtime was built on GASNet, and the paper's
//! evaluation compares CAF-MPI against it.
//!
//! What is modelled, and why it matters for the reproduction:
//!
//! * **Active Messages** — short / medium / long requests plus replies, with
//!   registered handler tables and an explicit [`Gasnet::poll`] progress
//!   call (`gasnet_AMPoll`). AMs are only serviced when the application (or
//!   a blocking GASNet call) polls: this is the interoperability hazard of
//!   the paper's Figure 2 — a process blocked inside an *MPI* call makes no
//!   GASNet progress.
//! * **One-sided put/get** on registered segments, with lower per-operation
//!   overhead than the MPI substrate (GASNet's thin RMA layer), plus
//!   non-blocking (`_nb`/`_nbi`) variants.
//! * **No collectives.** GASNet's core API has none; the CAF-GASNet runtime
//!   must hand-roll barriers/alltoall from puts and AMs. (A dissemination
//!   barrier is provided because GASNet itself ships one.)
//! * **SRQ (Shared Receive Queue) emulation** — GASNet-on-InfiniBand
//!   enables SRQ automatically above a node-count threshold to save memory,
//!   at the cost of a slower message-reception path; the paper traces the
//!   RandomAccess performance dip at 128 cores to exactly this, and
//!   re-measures with SRQ disabled (`CAF-GASNet-NOSRQ`). [`SrqMode`]
//!   reproduces all three configurations.
//! * An optional **AM-mediated put threshold**
//!   ([`GasnetConfig::put_via_am_threshold`]) at and above which puts
//!   require the *target* to poll before they complete — the
//!   implementation-specific behaviour that makes the Figure 2 program
//!   deadlock on some CAF stacks.

pub mod am;
pub mod costs;
pub mod rma;
pub mod universe;

pub use am::{Token, AM_MAX_ARGS, AM_MAX_MEDIUM, FIRST_USER_HANDLER};
pub use caf_fabric::{FabricError, Pod, Result};
pub use costs::{ibv_conduit_like, SRQ_PENALTY_NS, TIME_SCALE};
pub use rma::NbHandle;
pub use universe::{Gasnet, GasnetConfig, GasnetUniverse, SrqMode};
