//! GASNet one-sided put/get on registered segments.
//!
//! Gets and (by default) puts are pure RDMA: they access the remote segment
//! directly with no involvement of the target thread, at a lower
//! per-operation cost than the MPI substrate's RMA — the constant-factor
//! advantage visible in the paper's RandomAccess results at small scale.
//!
//! With [`crate::GasnetConfig::put_via_am_threshold`] set, puts of at least
//! that size are transported as long AMs and block until the target polls —
//! reproducing the class of CAF implementations for which the paper's
//! Figure 2 program deadlocks.

use std::sync::Arc;

use caf_fabric::delay::DelayOp;
use caf_fabric::pod::{as_bytes, as_bytes_mut};
use caf_fabric::sched::{self, ModelOp};
use caf_fabric::{FabricError, Pod, Result, Segment};

use crate::am::H_PUT_ACK_REQ;
use crate::universe::Gasnet;

/// Explicit-handle completion object for `_nb` operations
/// (`gasnet_handle_t`). Operations on this substrate complete at call time,
/// so the handle certifies rather than awaits.
#[derive(Debug)]
#[must_use = "non-blocking handles must be synced"]
pub struct NbHandle(pub(crate) ());

impl NbHandle {
    /// `gasnet_wait_syncnb`.
    pub fn wait(self) {}

    /// `gasnet_try_syncnb`.
    pub fn try_sync(&self) -> bool {
        true
    }
}

/// Announce a segment operation at the model-checking gate before it
/// executes. GASNet segment ids occupy the low half of the region
/// namespace (MPI window ids carry the high bit).
fn announce(op: ModelOp) {
    if sched::active() {
        sched::yield_op(op);
    }
}

impl Gasnet {
    /// Direct handle to this rank's attached segment.
    pub fn local_segment(&self) -> &Arc<Segment> {
        &self.local
    }

    /// Blocking put of `data` at byte `offset` in `node`'s segment
    /// (`gasnet_put`). Complete at return, both locally and remotely —
    /// unless the AM-mediated threshold applies, in which case this blocks
    /// until the target acknowledges (which requires the target to poll).
    pub fn put<T: Pod>(&self, node: usize, offset: usize, data: &[T]) -> Result<()> {
        let bytes = as_bytes(data);
        if self.fault.is_failed(node) {
            // The target is dead: its data can never be observed, so the
            // put is dropped and completes locally (never blocks).
            return Ok(());
        }
        if self
            .config
            .put_via_am_threshold
            .is_some_and(|t| bytes.len() >= t)
        {
            return self.put_via_am(node, offset, bytes);
        }
        announce(ModelOp::Write {
            region: self.seg_ids[node].0,
            owner: node,
            lo: offset as u64,
            hi: offset as u64 + bytes.len() as u64,
        });
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::GasnetPut,
                Some(node),
                bytes.len() as u64,
                None,
            );
        }
        self.delays.charge(DelayOp::RmaPut, bytes.len());
        self.ep.segment(self.seg_ids[node])?.put(offset, bytes)
    }

    /// AM-mediated put: deposit via long AM, then wait for the target's
    /// acknowledgement (dispatching our own incoming AMs meanwhile).
    fn put_via_am(&self, node: usize, offset: usize, bytes: &[u8]) -> Result<()> {
        let seq = self.put_acks_expected.get() + 1;
        self.put_acks_expected.set(seq);
        // The long-AM deposit writes the data; the reserved handler at the
        // target replies with an ack once it polls.
        self.am_request_long_raw(node, H_PUT_ACK_REQ, &[seq], bytes, offset)?;
        // This wait is the Figure-2 hazard: it completes only when `node`
        // polls, so the open span gives the stall watchdog its blocked-on
        // edge (origin image → target image).
        let _span = caf_trace::span_t(
            caf_trace::Op::AmPutAckWait,
            Some(node),
            bytes.len() as u64,
            None,
        );
        // Under the model this wait-for edge (origin → target) is what a
        // deadlock report of the Fig 2 program names.
        let _hint = caf_fabric::sched::wait_hint(node);
        while self.put_acks_received.get() < self.put_acks_expected.get() {
            match self.wait_for(&[node], |p| self.is_am(p)) {
                Ok(pkt) => self.dispatch_am(pkt),
                Err(FabricError::ImageFailed { .. }) => {
                    // The target died with the ack outstanding: it will
                    // never arrive. Forgive it (expected down to received,
                    // never the reverse — later acks must still count).
                    self.put_acks_expected.set(self.put_acks_received.get());
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    pub(crate) fn am_request_long_raw(
        &self,
        dest: usize,
        handler: usize,
        args: &[u64],
        data: &[u8],
        dest_offset: usize,
    ) -> Result<()> {
        // Internal variant of am_request_long that bypasses the user-index
        // assertion (reserved handlers are allowed here).
        announce(ModelOp::Write {
            region: self.seg_ids[dest].0,
            owner: dest,
            lo: dest_offset as u64,
            hi: dest_offset as u64 + data.len() as u64,
        });
        let seg = self.ep.segment(self.seg_ids[dest])?;
        self.delays.charge(DelayOp::RmaPut, data.len());
        seg.put(dest_offset, data)?;
        let mut buf = Vec::with_capacity(args.len() * 8);
        buf.extend_from_slice(as_bytes(args));
        self.delays.charge(DelayOp::P2pInject, 0);
        self.ep.send(
            dest,
            caf_fabric::Packet::with_payload(
                self.rank(),
                crate::universe::KIND_AM_LONG,
                handler as i64,
                [args.len() as u64, dest_offset as u64, data.len() as u64, 0],
                bytes::Bytes::from(buf),
            ),
        )
    }

    /// Blocking get from `node`'s segment (`gasnet_get`). Always direct
    /// RDMA.
    pub fn get<T: Pod>(&self, node: usize, offset: usize, out: &mut [T]) -> Result<()> {
        if self.fault.is_failed(node) {
            // Unlike a put, a get has nowhere to take its value from.
            return Err(FabricError::ImageFailed {
                failed: vec![node],
            });
        }
        let bytes_len = std::mem::size_of_val(out);
        announce(ModelOp::Read {
            region: self.seg_ids[node].0,
            owner: node,
            lo: offset as u64,
            hi: offset as u64 + bytes_len as u64,
        });
        let seg = self.ep.segment(self.seg_ids[node])?;
        let bytes = as_bytes_mut(out);
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::GasnetGet,
                Some(node),
                bytes.len() as u64,
                None,
            );
        }
        self.delays.charge(DelayOp::RmaGet, bytes.len());
        seg.get(offset, bytes)
    }

    /// Non-blocking put with an explicit handle (`gasnet_put_nb`).
    pub fn put_nb<T: Pod>(&self, node: usize, offset: usize, data: &[T]) -> Result<NbHandle> {
        self.put(node, offset, data)?;
        Ok(NbHandle(()))
    }

    /// Non-blocking get with an explicit handle (`gasnet_get_nb`).
    pub fn get_nb<T: Pod>(
        &self,
        node: usize,
        offset: usize,
        out: &mut [T],
    ) -> Result<NbHandle> {
        self.get(node, offset, out)?;
        Ok(NbHandle(()))
    }

    /// Implicit-handle put (`gasnet_put_nbi`).
    pub fn put_nbi<T: Pod>(&self, node: usize, offset: usize, data: &[T]) -> Result<()> {
        self.put(node, offset, data)
    }

    /// Implicit-handle get (`gasnet_get_nbi`).
    pub fn get_nbi<T: Pod>(&self, node: usize, offset: usize, out: &mut [T]) -> Result<()> {
        self.get(node, offset, out)
    }

    /// Complete all outstanding implicit-handle puts
    /// (`gasnet_wait_syncnbi_puts`).
    pub fn wait_syncnbi_puts(&self) {}

    /// Complete all outstanding implicit-handle operations
    /// (`gasnet_wait_syncnbi_all`).
    pub fn wait_syncnbi_all(&self) {}

    /// Strided put (`gasnet_puts` of the VIS extension): element `i` of
    /// `data` lands at `offset + i·stride_elems·size_of::<T>()`.
    pub fn put_strided<T: Pod>(
        &self,
        node: usize,
        offset: usize,
        stride_elems: usize,
        data: &[T],
    ) -> Result<()> {
        let esz = std::mem::size_of::<T>();
        announce(ModelOp::Write {
            region: self.seg_ids[node].0,
            owner: node,
            lo: offset as u64,
            hi: offset as u64 + (data.len() * stride_elems.max(1) * esz) as u64,
        });
        let seg = self.ep.segment(self.seg_ids[node])?;
        self.delays
            .charge(DelayOp::RmaPut, std::mem::size_of_val(data));
        for (i, v) in data.iter().enumerate() {
            seg.put(offset + i * stride_elems * esz, as_bytes(std::slice::from_ref(v)))?;
        }
        Ok(())
    }

    /// Strided get (`gasnet_gets` of the VIS extension).
    pub fn get_strided<T: Pod>(
        &self,
        node: usize,
        offset: usize,
        stride_elems: usize,
        out: &mut [T],
    ) -> Result<()> {
        let esz = std::mem::size_of::<T>();
        announce(ModelOp::Read {
            region: self.seg_ids[node].0,
            owner: node,
            lo: offset as u64,
            hi: offset as u64 + (out.len() * stride_elems.max(1) * esz) as u64,
        });
        let seg = self.ep.segment(self.seg_ids[node])?;
        self.delays
            .charge(DelayOp::RmaGet, std::mem::size_of_val(out));
        for (i, v) in out.iter_mut().enumerate() {
            seg.get(
                offset + i * stride_elems * esz,
                as_bytes_mut(std::slice::from_mut(v)),
            )?;
        }
        Ok(())
    }

    /// Write into this rank's own segment.
    pub fn write_local<T: Pod>(&self, offset: usize, data: &[T]) -> Result<()> {
        let me = self.rank();
        announce(ModelOp::Write {
            region: self.seg_ids[me].0,
            owner: me,
            lo: offset as u64,
            hi: offset as u64 + std::mem::size_of_val(data) as u64,
        });
        self.local.put(offset, as_bytes(data))
    }

    /// Read from this rank's own segment.
    pub fn read_local<T: Pod>(&self, offset: usize, out: &mut [T]) -> Result<()> {
        let me = self.rank();
        announce(ModelOp::Read {
            region: self.seg_ids[me].0,
            owner: me,
            lo: offset as u64,
            hi: offset as u64 + std::mem::size_of_val(out) as u64,
        });
        self.local.get(offset, as_bytes_mut(out))
    }
}

#[cfg(test)]
mod tests {

    use crate::universe::{GasnetConfig, GasnetUniverse};

    #[test]
    fn put_get_roundtrip_between_nodes() {
        let res = GasnetUniverse::run(2, |g| {
            if g.rank() == 0 {
                g.put(1, 16, &[1.25f64, 2.5]).unwrap();
            }
            g.barrier();
            if g.rank() == 1 {
                let mut out = [0.0f64; 2];
                g.read_local(16, &mut out).unwrap();
                out[0] + out[1]
            } else {
                let mut out = [0.0f64; 2];
                g.get(1, 16, &mut out).unwrap();
                out[0] + out[1]
            }
        });
        assert_eq!(res, vec![3.75, 3.75]);
    }

    #[test]
    fn nb_variants_complete() {
        GasnetUniverse::run(2, |g| {
            if g.rank() == 0 {
                let h = g.put_nb(1, 0, &[5u64]).unwrap();
                assert!(h.try_sync());
                h.wait();
                g.put_nbi(1, 8, &[6u64]).unwrap();
                g.wait_syncnbi_puts();
            }
            g.barrier();
            if g.rank() == 1 {
                let mut out = [0u64; 2];
                g.read_local(0, &mut out).unwrap();
                assert_eq!(out, [5, 6]);
            }
        });
    }

    #[test]
    fn am_mediated_put_completes_when_target_polls() {
        let cfg = GasnetConfig {
            put_via_am_threshold: Some(1),
            ..GasnetConfig::default()
        };
        let res = GasnetUniverse::run_with_config(2, cfg, |g| {
            if g.rank() == 0 {
                // Blocks until rank 1 polls (inside its barrier).
                g.put(1, 0, &[0xabcdu64]).unwrap();
                g.barrier();
                0
            } else {
                g.barrier();
                let mut out = [0u64; 1];
                g.read_local(0, &mut out).unwrap();
                out[0]
            }
        });
        assert_eq!(res[1], 0xabcd);
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing / raw spin")]
    fn am_mediated_put_stalls_without_target_polling() {
        // The Figure-2 hazard in miniature: the target never polls, so the
        // put cannot complete within the deadline.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let cfg = GasnetConfig {
            put_via_am_threshold: Some(1),
            ..GasnetConfig::default()
        };
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        GasnetUniverse::run_with_config(2, cfg, move |g| {
            if g.rank() == 0 {
                // Try the put on a watchdog: it must NOT complete while the
                // target refuses to poll.
                let started = std::time::Instant::now();
                let mut acked = false;
                let seq = g.put_acks_expected.get() + 1;
                g.put_acks_expected.set(seq);
                g.am_request_long_raw(1, crate::am::H_PUT_ACK_REQ, &[seq], &[1u8], 0)
                    .unwrap();
                while started.elapsed() < std::time::Duration::from_millis(50) {
                    g.poll();
                    if g.put_acks_received.get() >= seq {
                        acked = true;
                        break;
                    }
                }
                assert!(!acked, "ack arrived although target never polled");
                done2.store(true, Ordering::SeqCst);
            } else {
                // Busy-wait on shared state; never calls into GASNet.
                while !done2.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
            }
        });
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn strided_put_get() {
        GasnetUniverse::run(2, |g| {
            if g.rank() == 0 {
                g.put_strided(1, 0, 2, &[1.5f64, 2.5, 3.5]).unwrap();
            }
            g.barrier();
            if g.rank() == 1 {
                let mut all = [0.0f64; 6];
                g.read_local(0, &mut all).unwrap();
                assert_eq!(all, [1.5, 0.0, 2.5, 0.0, 3.5, 0.0]);
            }
            g.barrier();
            if g.rank() == 0 {
                let mut out = [0.0f64; 3];
                g.get_strided(1, 0, 2, &mut out).unwrap();
                assert_eq!(out, [1.5, 2.5, 3.5]);
            }
        });
    }

    #[test]
    fn oob_access_is_an_error() {
        GasnetUniverse::run_with_config(
            1,
            GasnetConfig {
                segment_size: 32,
                ..GasnetConfig::default()
            },
            |g| {
                assert!(g.put(0, 30, &[1u64]).is_err());
                let mut out = [0u8; 64];
                assert!(g.get(0, 0, &mut out).is_err());
            },
        );
    }
}
