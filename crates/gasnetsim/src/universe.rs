//! GASNet job initialization (`gasnet_init` + `gasnet_attach`) and per-rank
//! library state.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;

use caf_fabric::delay::{DelayConfig, DelayMeter, Delays};
use caf_fabric::{
    Endpoint, Fabric, FabricError, Fault, MemAccount, MemCategory, Packet, Result, Segment,
    SegmentId,
};

use crate::am::HandlerTable;

pub(crate) const KIND_AM_SHORT: u16 = 10;
pub(crate) const KIND_AM_MEDIUM: u16 = 11;
pub(crate) const KIND_AM_LONG: u16 = 12;
pub(crate) const KIND_BARRIER: u16 = 13;
pub(crate) const KIND_BOOTSTRAP: u16 = 14;

/// Shared-Receive-Queue configuration (InfiniBand conduit behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrqMode {
    /// GASNet's default: enable SRQ automatically once the job is large
    /// enough that SRQ reduces memory usage (threshold in
    /// [`GasnetConfig::srq_auto_threshold`]).
    Auto,
    /// Never use SRQ (the paper's `CAF-GASNet-NOSRQ` configuration).
    Disabled,
    /// Always use SRQ regardless of job size.
    Forced,
}

/// Configuration of one GASNet job.
#[derive(Debug, Clone, Copy)]
pub struct GasnetConfig {
    /// Software-overhead table charged per operation.
    pub delays: DelayConfig,
    /// Bytes of remotely accessible segment each rank attaches.
    pub segment_size: usize,
    /// SRQ policy.
    pub srq: SrqMode,
    /// Job size at which [`SrqMode::Auto`] switches SRQ on.
    pub srq_auto_threshold: usize,
    /// Extra nanoseconds charged on every message *reception* while SRQ is
    /// active (the slow receive path the paper identified).
    pub srq_receive_penalty_ns: f64,
    /// When set, puts of at least this many bytes are transported as long
    /// AMs and only complete once the target polls — modelling CAF
    /// implementations where "a coarray write operation may require the
    /// involvement of the target process" (paper Figure 2 discussion).
    pub put_via_am_threshold: Option<usize>,
    /// Fixed library state mapped at init.
    pub base_footprint: usize,
    /// Per-peer connection state mapped at init without SRQ.
    pub per_peer_state: usize,
    /// Per-peer connection state with SRQ active (smaller — that is SRQ's
    /// purpose).
    pub per_peer_state_srq: usize,
}

impl Default for GasnetConfig {
    fn default() -> Self {
        GasnetConfig {
            delays: DelayConfig::free(),
            segment_size: 4 << 20,
            srq: SrqMode::Auto,
            srq_auto_threshold: 128,
            srq_receive_penalty_ns: 0.0,
            put_via_am_threshold: None,
            // Scaled-down stand-ins; full-scale Figure-1 magnitudes live in
            // the netmodel crate. GASNet maps far less than MPI.
            base_footprint: 256 << 10,
            per_peer_state: 4 << 10,
            per_peer_state_srq: 1 << 10,
        }
    }
}

/// Launcher for SPMD jobs over the GASNet substrate.
pub struct GasnetUniverse;

impl GasnetUniverse {
    /// Run `f` on `size` ranks with default configuration.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Gasnet) -> T + Send + Sync,
    {
        Self::run_with_config(size, GasnetConfig::default(), f)
    }

    /// Run `f` on `size` ranks with an explicit configuration.
    pub fn run_with_config<T, F>(size: usize, config: GasnetConfig, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Gasnet) -> T + Send + Sync,
    {
        Fabric::run(size, |ep| {
            let g = Gasnet::init(ep, config);
            f(&g)
        })
    }
}

/// A rank's handle to the GASNet library. One per rank thread; not `Sync`.
pub struct Gasnet {
    pub(crate) ep: Endpoint,
    pub(crate) fault: Fault,
    pub(crate) config: GasnetConfig,
    pub(crate) delays: Delays,
    pub(crate) srq_active: bool,
    pub(crate) mem: Arc<MemAccount>,
    pub(crate) seg_ids: Vec<SegmentId>,
    pub(crate) seg_sizes: Vec<usize>,
    pub(crate) local: Arc<Segment>,
    pub(crate) handlers: HandlerTable,
    /// Stash for non-AM packets pulled while polling.
    pub(crate) pending: RefCell<VecDeque<Packet>>,
    pub(crate) barrier_seq: Cell<u64>,
    /// Open split-phase barrier: (sequence, next round awaited).
    pub(crate) barrier_phase: Cell<Option<(u64, u64)>>,
    /// AM-mediated put acknowledgement counters (see `rma::put`).
    pub(crate) put_acks_expected: Cell<u64>,
    pub(crate) put_acks_received: Cell<u64>,
    /// Keeps accounted library allocations alive.
    _state_pool: Vec<u8>,
}

impl Gasnet {
    /// `gasnet_init` + `gasnet_attach`: allocate and exchange segments,
    /// build library state.
    pub fn init(ep: Endpoint, config: GasnetConfig) -> Self {
        let size = ep.size();
        let rank = ep.rank();
        let srq_active = match config.srq {
            SrqMode::Auto => size >= config.srq_auto_threshold,
            SrqMode::Disabled => false,
            SrqMode::Forced => true,
        };

        let mem = Arc::new(MemAccount::new());
        let per_peer = if srq_active {
            config.per_peer_state_srq
        } else {
            config.per_peer_state
        };
        let pool_bytes = config.base_footprint + per_peer * size;
        let state_pool = vec![0u8; pool_bytes];
        mem.map(MemCategory::SegmentMeta, config.base_footprint / 2);
        mem.map(MemCategory::Matching, config.base_footprint / 2);
        mem.map(MemCategory::PerPeerState, per_peer * size);
        mem.map(MemCategory::UserData, config.segment_size);

        // Attach the segment and bootstrap-exchange (id, size) with every
        // peer over raw fabric packets (GASNet bootstraps out-of-band).
        let id = ep.register_segment(Segment::new(config.segment_size));
        let local = ep.segment(id).expect("just registered");
        for peer in 0..size {
            if peer != rank {
                ep.send(
                    peer,
                    Packet::control(
                        rank,
                        KIND_BOOTSTRAP,
                        0,
                        [id.0, config.segment_size as u64, 0, 0],
                    ),
                )
                .expect("bootstrap send");
            }
        }
        let mut seg_ids = vec![SegmentId(0); size];
        let mut seg_sizes = vec![0usize; size];
        seg_ids[rank] = id;
        seg_sizes[rank] = config.segment_size;
        let fault = ep.fault();
        let mut stash = VecDeque::new();
        let mut have = vec![false; size];
        have[rank] = true;
        loop {
            // A peer that died before (or while) bootstrapping will never
            // send its segment id; count it as resolved with a dead
            // zero-sized segment rather than hang the exchange.
            for (peer, h) in have.iter_mut().enumerate() {
                if !*h && fault.is_failed(peer) {
                    *h = true;
                }
            }
            if have.iter().all(|&h| h) {
                break;
            }
            match ep.recv_blocking() {
                Ok(pkt) if pkt.kind == KIND_BOOTSTRAP => {
                    seg_ids[pkt.src] = SegmentId(pkt.h[0]);
                    seg_sizes[pkt.src] = pkt.h[1] as usize;
                    have[pkt.src] = true;
                }
                Ok(pkt) => stash.push_back(pkt),
                Err(FabricError::ImageFailed { .. }) => continue,
                Err(e) => panic!("bootstrap recv: {e}"),
            }
        }

        Gasnet {
            ep,
            fault,
            delays: Delays::new(config.delays),
            config,
            srq_active,
            mem,
            seg_ids,
            seg_sizes,
            local,
            handlers: HandlerTable::with_reserved(),
            pending: RefCell::new(stash),
            barrier_seq: Cell::new(0),
            barrier_phase: Cell::new(None),
            put_acks_expected: Cell::new(0),
            put_acks_received: Cell::new(0),
            _state_pool: state_pool,
        }
    }

    /// This rank's id (`gasnet_mynode`).
    pub fn rank(&self) -> usize {
        self.ep.rank()
    }

    /// Job size (`gasnet_nodes`).
    pub fn size(&self) -> usize {
        self.ep.size()
    }

    /// True when the SRQ slow path is active for this job.
    pub fn srq_active(&self) -> bool {
        self.srq_active
    }

    /// Handle onto the fabric's failure registry.
    pub fn fault(&self) -> Fault {
        self.fault.clone()
    }

    /// Kill this rank here (fault injection / `fail image`).
    pub fn fail_now(&self) -> ! {
        self.ep.fail_now()
    }

    /// The memory accountant for this rank's library instance.
    pub fn mem(&self) -> &MemAccount {
        &self.mem
    }

    /// The modeled-cost ledger for this rank (counts and modeled
    /// nanoseconds per [`caf_fabric::DelayOp`]); deterministic across runs.
    pub fn delay_meter(&self) -> &DelayMeter {
        self.delays.meter()
    }

    /// Segment size attached by `rank`.
    pub fn segment_size_of(&self, rank: usize) -> usize {
        self.seg_sizes[rank]
    }

    /// Extra reception cost while SRQ is active, in nanoseconds.
    pub(crate) fn srq_penalty_ns(&self) -> f64 {
        if self.srq_active {
            self.config.srq_receive_penalty_ns
        } else {
            0.0
        }
    }

    /// Dissemination barrier (`gasnet_barrier_notify` + `_wait`, fused).
    /// Polls AMs while waiting, as GASNet's barrier does.
    pub fn barrier(&self) {
        self.barrier_notify();
        self.barrier_wait();
    }

    /// `gasnet_barrier_notify`: enter the split-phase barrier. Sends the
    /// first dissemination round and returns immediately; AMs keep being
    /// serviced by subsequent polls. Must be paired with
    /// [`Gasnet::barrier_wait`] (or repeated [`Gasnet::barrier_try`]).
    pub fn barrier_notify(&self) {
        assert!(
            self.barrier_phase.get().is_none(),
            "barrier_notify while a split-phase barrier is already open"
        );
        let seq = self.barrier_seq.get();
        self.barrier_seq.set(seq + 1);
        self.barrier_phase.set(Some((seq, 0)));
        if self.size() > 1 {
            self.send_barrier_round(seq, 0);
        }
    }

    fn send_barrier_round(&self, seq: u64, round: u64) {
        let n = self.size();
        let me = self.rank();
        let dist = 1usize << round;
        let to = (me + dist) % n;
        self.ep
            .send(
                to,
                Packet::control(me, KIND_BARRIER, 0, [seq, round, 0, 0]),
            )
            .expect("barrier send");
    }

    fn barrier_round_done(&self, seq: u64, round: u64, blocking: bool) -> Result<bool> {
        let n = self.size();
        let me = self.rank();
        let dist = 1usize << round;
        let from = (me + n - dist) % n;
        let pred = |p: &Packet| {
            p.kind == KIND_BARRIER && p.src == from && p.h[0] == seq && p.h[1] == round
        };
        if blocking {
            // A dissemination round waits on exactly one peer: name it so
            // model deadlock reports carry the wait-for edge. Failure
            // detection watches the *whole* job — a dissemination barrier
            // hangs if any rank dies, not just the round neighbour.
            let _hint = caf_fabric::sched::wait_hint(from);
            let watch: Vec<usize> = (0..n).collect();
            let _ = self.wait_for(&watch, pred)?;
            return Ok(true);
        }
        // Nonblocking: poll AMs, scan the stash, drain arrivals.
        self.poll();
        let mut q = self.pending.borrow_mut();
        if let Some(pos) = q.iter().position(pred) {
            q.remove(pos);
            return Ok(true);
        }
        Ok(false)
    }

    /// `gasnet_barrier_wait`: complete the split-phase barrier opened by
    /// [`Gasnet::barrier_notify`], blocking (and servicing AMs) until all
    /// ranks have entered.
    ///
    /// # Panics
    ///
    /// Panics if a member image failed; use [`Gasnet::barrier_wait_stat`]
    /// to observe the failure instead.
    pub fn barrier_wait(&self) {
        self.barrier_wait_stat()
            .expect("barrier: partner image failed")
    }

    /// Fallible [`Gasnet::barrier_wait`]: returns
    /// [`FabricError::ImageFailed`] naming the dead members instead of
    /// hanging (or panicking) when an image fails. The split-phase barrier
    /// is closed either way — survivors must re-form before the next one.
    pub fn barrier_wait_stat(&self) -> Result<()> {
        let _span = caf_trace::span(caf_trace::Op::GasnetBarrier);
        let (seq, mut round) = self
            .barrier_phase
            .get()
            .expect("barrier_wait without barrier_notify");
        let n = self.size();
        while (1usize << round) < n {
            if let Err(e) = self.barrier_round_done(seq, round, true) {
                self.barrier_phase.set(None);
                return Err(e);
            }
            round += 1;
            if (1usize << round) < n {
                self.send_barrier_round(seq, round);
            }
        }
        self.barrier_phase.set(None);
        Ok(())
    }

    /// `gasnet_barrier_try`: nonblocking completion attempt; returns true
    /// once the barrier is complete. Services AMs on every call.
    pub fn barrier_try(&self) -> bool {
        let Some((seq, mut round)) = self.barrier_phase.get() else {
            panic!("barrier_try without barrier_notify");
        };
        let n = self.size();
        while (1usize << round) < n {
            let done = self
                .barrier_round_done(seq, round, false)
                .expect("nonblocking barrier round cannot observe a failure");
            if !done {
                self.barrier_phase.set(Some((seq, round)));
                return false;
            }
            round += 1;
            if (1usize << round) < n {
                self.send_barrier_round(seq, round);
            }
        }
        self.barrier_phase.set(None);
        true
    }

    /// Block until a packet matching `pred` arrives, dispatching AMs and
    /// stashing unrelated packets meanwhile. This is the polling loop every
    /// blocking GASNet operation sits in.
    ///
    /// `watch` names the images this wait depends on: if any of them is
    /// marked failed the wait returns [`FabricError::ImageFailed`] instead
    /// of hanging. An empty `watch` waits unconditionally. Already-stashed
    /// matches win over a failure notice.
    pub(crate) fn wait_for(
        &self,
        watch: &[usize],
        pred: impl Fn(&Packet) -> bool,
    ) -> Result<Packet> {
        // Check the stash first.
        {
            let mut q = self.pending.borrow_mut();
            if let Some(pos) = q.iter().position(&pred) {
                return Ok(q.remove(pos).expect("position from iter"));
            }
        }
        loop {
            // Pull everything already delivered *before* consulting the
            // failure registry: sends inject synchronously, so anything a
            // member sent before dying sits in the mailbox ahead of its
            // failure notice — that data must win over the death, or an
            // exchange the dead rank fully completed would spuriously
            // fail on survivors.
            while let Some(pkt) = self.ep.try_recv() {
                if pred(&pkt) {
                    return Ok(pkt);
                }
                if self.is_am(&pkt) {
                    self.dispatch_am(pkt);
                } else {
                    self.pending.borrow_mut().push_back(pkt);
                }
            }
            // The registry is authoritative (marked before notices go
            // out), so the loop-top check covers notices consumed by
            // unrelated waits.
            let failed = self.fault.failed_of(watch);
            if !failed.is_empty() {
                return Err(FabricError::ImageFailed { failed });
            }
            match self.ep.recv_blocking() {
                Ok(pkt) => {
                    if pred(&pkt) {
                        return Ok(pkt);
                    }
                    if self.is_am(&pkt) {
                        self.dispatch_am(pkt);
                    } else {
                        self.pending.borrow_mut().push_back(pkt);
                    }
                }
                // Notice for an image outside `watch`: re-check, keep
                // waiting.
                Err(FabricError::ImageFailed { .. }) => continue,
                Err(e) => panic!("fabric torn down: {e}"),
            }
        }
    }

    pub(crate) fn is_am(&self, pkt: &Packet) -> bool {
        matches!(pkt.kind, KIND_AM_SHORT | KIND_AM_MEDIUM | KIND_AM_LONG)
    }

    /// Block until an AM packet arrives, *without* dispatching it;
    /// unrelated packets are stashed for their blocking consumers.
    ///
    /// Exposed for runtimes layered on GASNet whose blocking waits (e.g. a
    /// CAF `event_wait`) must drive AM progress themselves.
    pub fn wait_am_packet(&self) -> Packet {
        self.wait_for(&[], |p| self.is_am(p))
            .expect("unconditional wait cannot fail")
    }

    /// Like [`Gasnet::wait_am_packet`] but returns
    /// [`FabricError::ImageFailed`] if any image in `watch` is marked
    /// failed — the hook a layered runtime's blocking waits (e.g. CAF
    /// `event_wait`) use to survive partner death.
    pub fn wait_am_packet_watching(&self, watch: &[usize]) -> Result<Packet> {
        self.wait_for(watch, |p| self.is_am(p))
    }

    /// Dispatch one packet previously returned by
    /// [`Gasnet::wait_am_packet`], invoking its handler.
    pub fn dispatch_packet(&self, pkt: Packet) {
        assert!(self.is_am(&pkt), "dispatch_packet on a non-AM packet");
        self.dispatch_am(pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_exchanges_segments() {
        let res = GasnetUniverse::run(4, |g| {
            (0..4).map(|r| g.segment_size_of(r)).collect::<Vec<_>>()
        });
        for r in res {
            assert_eq!(r, vec![4 << 20; 4]);
        }
    }

    #[test]
    fn srq_auto_threshold_applies() {
        let cfg = GasnetConfig {
            srq_auto_threshold: 4,
            ..GasnetConfig::default()
        };
        let small = GasnetUniverse::run_with_config(2, cfg, |g| g.srq_active());
        let large = GasnetUniverse::run_with_config(4, cfg, |g| g.srq_active());
        assert!(!small[0]);
        assert!(large[0]);
    }

    #[test]
    fn srq_reduces_per_peer_memory() {
        let base = GasnetConfig {
            srq_auto_threshold: 4,
            ..GasnetConfig::default()
        };
        let on = GasnetUniverse::run_with_config(4, base, |g| {
            g.mem().mapped(MemCategory::PerPeerState)
        })[0];
        let off = GasnetUniverse::run_with_config(
            4,
            GasnetConfig {
                srq: SrqMode::Disabled,
                ..base
            },
            |g| g.mem().mapped(MemCategory::PerPeerState),
        )[0];
        assert!(on < off, "SRQ must reduce per-peer memory: {on} !< {off}");
    }

    #[test]
    fn gasnet_overhead_smaller_than_mpi_default() {
        // The Figure-1 premise: GASNet maps less runtime memory than MPI.
        let g = GasnetUniverse::run(4, |g| g.mem().runtime_overhead())[0];
        let m = caf_mpisim::Universe::run(4, |m| m.mem().runtime_overhead())[0];
        assert!(g < m, "GASNet {g} must be below MPI {m}");
    }

    #[test]
    fn barrier_completes_repeatedly() {
        for n in [1usize, 2, 3, 8] {
            GasnetUniverse::run(n, |g| {
                for _ in 0..5 {
                    g.barrier();
                }
            });
        }
    }

    #[test]
    fn split_phase_barrier_overlaps_computation() {
        GasnetUniverse::run(4, |g| {
            for _ in 0..3 {
                g.barrier_notify();
                // "Computation" between notify and wait.
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                std::hint::black_box(acc);
                g.barrier_wait();
            }
        });
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing / raw spin")]
    fn barrier_try_eventually_succeeds() {
        GasnetUniverse::run(3, |g| {
            g.barrier_notify();
            let mut spins = 0u64;
            while !g.barrier_try() {
                spins += 1;
                std::hint::spin_loop();
            }
            let _ = spins;
            // A second barrier still works after a try-completed one.
            g.barrier();
        });
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn double_notify_rejected() {
        GasnetUniverse::run(2, |g| {
            g.barrier_notify();
            g.barrier_notify();
        });
    }
}
