//! Diagnostics produced by the checkers.

use std::fmt;

/// Half-open byte interval `[start, end)` within a window region (epoch
/// checker) or a coarray member's local part (race detector). Also used
/// for origin-buffer *address* ranges in the request-lifetime checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteRange {
    /// First byte covered.
    pub start: u64,
    /// One past the last byte covered.
    pub end: u64,
}

impl ByteRange {
    /// The range `[start, start + len)`.
    pub fn new(start: u64, len: u64) -> Self {
        ByteRange {
            start,
            end: start.saturating_add(len),
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True when the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// True when the two ranges share at least one byte. Empty ranges
    /// overlap nothing.
    pub fn overlaps(&self, other: &ByteRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The shared bytes of two overlapping ranges.
    pub fn intersect(&self, other: &ByteRange) -> ByteRange {
        ByteRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Which rule was broken. The first six are MPI-3 passive-target RMA
/// obligations (epoch checker); the last is the CAF-level happens-before
/// race (vector-clock detector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// An RMA call on a window with no open `lock_all` epoch.
    OutsideEpoch,
    /// `win_lock_all` on an already-open epoch, or `win_unlock_all` with
    /// none open.
    UnbalancedEpoch,
    /// `win_free` while the calling rank's epoch is still open.
    OpenEpochAtFree,
    /// A local load of window memory that an unflushed inbound put still
    /// targets (the data is not guaranteed visible until the origin
    /// flushes).
    ReadBeforeFlush,
    /// Two RMA operations (or an RMA put and a local store) touch
    /// overlapping bytes of the same target within one epoch with no
    /// separating flush — undefined behavior under MPI-3.
    EpochOverlap,
    /// An origin buffer handed to `rput`/`rget` was reused by another RMA
    /// call before the request completed.
    BufferReuse,
    /// A request-generating operation was dropped without `wait` — its
    /// completion certificate is lost (the paper's Fig 2 put-ack hazard).
    LostCompletion,
    /// Two coarray accesses, at least one a write, to overlapping bytes of
    /// the same member's part, unordered by happens-before.
    CoarrayRace,
}

impl ViolationKind {
    /// Stable lower-snake name (used in reports and tests).
    pub fn name(&self) -> &'static str {
        match self {
            ViolationKind::OutsideEpoch => "outside_epoch",
            ViolationKind::UnbalancedEpoch => "unbalanced_epoch",
            ViolationKind::OpenEpochAtFree => "open_epoch_at_free",
            ViolationKind::ReadBeforeFlush => "read_before_flush",
            ViolationKind::EpochOverlap => "epoch_overlap",
            ViolationKind::BufferReuse => "buffer_reuse",
            ViolationKind::LostCompletion => "lost_completion",
            ViolationKind::CoarrayRace => "coarray_race",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: what rule, who broke it, where.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule.
    pub kind: ViolationKind,
    /// Window id (epoch checker) or region id (race detector) involved.
    pub window: Option<u64>,
    /// Global rank / image whose operation triggered the check.
    pub image: usize,
    /// The other global rank involved, when the violation is a pair
    /// (conflicting-put origin, racing image, ...).
    pub other: Option<usize>,
    /// Byte range of the conflict, in window/region coordinates.
    pub range: Option<ByteRange>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: image {}", self.kind, self.image)?;
        if let Some(o) = self.other {
            write!(f, " vs image {o}")?;
        }
        if let Some(w) = self.window {
            write!(f, ", window {w:#x}")?;
        }
        if let Some(r) = self.range {
            write!(f, ", bytes {r}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Everything a check session collected.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The diagnostics, in detection order.
    pub violations: Vec<Violation>,
    /// Diagnostics discarded after the session's cap was reached.
    pub dropped: usize,
}

impl Report {
    /// True when nothing was flagged (and nothing dropped).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Diagnostics of one kind.
    pub fn of_kind(&self, kind: ViolationKind) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.kind == kind).collect()
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "clean (no violations)".to_string();
        }
        let mut out = format!(
            "{} violation(s){}:\n",
            self.violations.len(),
            if self.dropped > 0 {
                format!(" (+{} dropped)", self.dropped)
            } else {
                String::new()
            }
        );
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_overlap_iff_sharing_bytes() {
        let a = ByteRange::new(0, 8);
        assert!(a.overlaps(&ByteRange::new(7, 1)));
        assert!(!a.overlaps(&ByteRange::new(8, 8)));
        assert!(!a.overlaps(&ByteRange::new(0, 0)), "empty overlaps nothing");
        assert_eq!(
            a.intersect(&ByteRange::new(4, 8)),
            ByteRange { start: 4, end: 8 }
        );
    }

    #[test]
    fn report_renders_kind_and_parties() {
        let mut r = Report::default();
        r.violations.push(Violation {
            kind: ViolationKind::EpochOverlap,
            window: Some(0x77),
            image: 2,
            other: Some(1),
            range: Some(ByteRange::new(8, 8)),
            detail: "put overlaps unflushed put".into(),
        });
        assert!(!r.is_clean());
        let s = r.render();
        assert!(s.contains("epoch_overlap"), "{s}");
        assert!(s.contains("image 2 vs image 1"), "{s}");
        assert!(s.contains("[8, 16)"), "{s}");
        assert_eq!(r.of_kind(ViolationKind::EpochOverlap).len(), 1);
    }
}
