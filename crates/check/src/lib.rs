//! # caf-check
//!
//! An RMA epoch-legality checker and a vector-clock happens-before race
//! sanitizer for the CAF-MPI runtime (see DESIGN.md, "The caf-check
//! sanitizer").
//!
//! Two cooperating analyses:
//!
//! 1. **Epoch legality** ([`EpochChecker`]) — shadow state per RMA
//!    window enforcing the MPI-3 passive-target obligations the paper's
//!    coarray mapping leans on: every operation inside a
//!    `lock_all`/`unlock_all` epoch, no local reads of window memory
//!    with unflushed inbound puts, no overlapping unflushed put/put or
//!    put/get in one epoch, no origin-buffer reuse before request
//!    completion, no `win_free` with an open epoch, and no dropped
//!    request-generating operations (the Fig 2 put-ack hazard).
//! 2. **Happens-before races** ([`RaceDetector`]) — per-image vector
//!    clocks advanced by the runtime's sync edges (event notify/wait,
//!    collectives, `finish`, function shipping) with a FastTrack-style
//!    shadow access history per coarray member, flagging unordered
//!    conflicting accesses on either substrate.
//!
//! Both run **online** — arm a [`CheckSession`] around a simulator run;
//! the runtime's hooks (compiled in with the `check` feature of
//! `caf`/`caf-mpisim`, a single relaxed load when disarmed) feed the
//! checkers — or **offline** via [`check_trace`] over a recorded
//! `caf-trace` timeline.

mod epoch;
mod hb;
mod offline;
mod report;
mod session;

pub use epoch::EpochChecker;
pub use hb::{RaceDetector, NS_AGG, NS_EVENT, NS_SHIP};
pub use offline::{check_events, check_trace};
pub use report::{ByteRange, Report, Violation, ViolationKind};
pub use session::{
    enabled, hooks, CheckConfig, CheckError, CheckMode, CheckSession, SESSION_TEST_LOCK,
};
