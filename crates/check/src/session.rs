//! Online check sessions and the runtime hook surface.
//!
//! Mirrors the `caf-trace` session pattern: a process-global session
//! guarded by one relaxed [`enabled`] flag, so every hook is a single
//! relaxed load when no session is active — the sanitizer costs nothing
//! unless armed. Hooks take only primitive arguments (ids, global ranks,
//! `(start, len)` byte pairs) so the instrumented crates need no types
//! from this one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::epoch::EpochChecker;
use crate::hb::RaceDetector;
use crate::report::{ByteRange, Report, Violation};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True while a check session is active. The fast path of every hook.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// What to do when a violation fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Collect diagnostics; [`CheckSession::finish`] returns them.
    Collect,
    /// Panic at the violation site (pinpoints the offending call in a
    /// backtrace; inside the in-process simulator this surfaces as an
    /// "image panicked" job failure).
    Panic,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Violation handling.
    pub mode: CheckMode,
    /// Run the MPI-3 epoch-legality checker.
    pub epochs: bool,
    /// Run the happens-before race detector.
    pub races: bool,
    /// Access-history bound per `(region, owner)` shadow cell.
    pub history_limit: usize,
    /// Collected-diagnostic cap; further violations are counted as
    /// dropped.
    pub max_violations: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            mode: CheckMode::Collect,
            epochs: true,
            races: true,
            history_limit: 1 << 14,
            max_violations: 1 << 14,
        }
    }
}

/// Why a session could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckError {
    /// Another check session is active in this process.
    SessionActive,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::SessionActive => write!(f, "another check session is active"),
        }
    }
}

impl std::error::Error for CheckError {}

struct State {
    cfg: CheckConfig,
    epoch: EpochChecker,
    hb: RaceDetector,
    violations: Vec<Violation>,
    dropped: usize,
}

static STATE: Mutex<Option<State>> = Mutex::new(None);

/// Lock the session state, surviving poisoning (a `Panic`-mode violation
/// panics with the lock held; later hooks and `finish` must still work).
fn lock() -> MutexGuard<'static, Option<State>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// An active sanitizer session. Start one around a simulator run, then
/// [`CheckSession::finish`] to collect the [`Report`]. One per process.
#[must_use = "finish() the session to collect its report"]
pub struct CheckSession {
    _priv: (),
}

impl CheckSession {
    /// Arm the sanitizer. Fails if a session is already active.
    pub fn start(cfg: CheckConfig) -> Result<CheckSession, CheckError> {
        let mut st = lock();
        if st.is_some() {
            return Err(CheckError::SessionActive);
        }
        let history_limit = cfg.history_limit;
        *st = Some(State {
            cfg,
            epoch: EpochChecker::new(),
            hb: RaceDetector::new(history_limit),
            violations: Vec::new(),
            dropped: 0,
        });
        ENABLED.store(true, Ordering::SeqCst);
        Ok(CheckSession { _priv: () })
    }

    /// Disarm and return everything collected.
    pub fn finish(self) -> Report {
        teardown().unwrap_or_default()
    }
}

impl Drop for CheckSession {
    fn drop(&mut self) {
        teardown();
    }
}

fn teardown() -> Option<Report> {
    ENABLED.store(false, Ordering::SeqCst);
    lock().take().map(|s| Report {
        violations: s.violations,
        dropped: s.dropped,
    })
}

/// Record `found` per the session's mode. Panics in `Panic` mode.
fn sink(st: &mut State, found: Vec<Violation>) {
    for v in found {
        if st.cfg.mode == CheckMode::Panic {
            panic!("caf-check: {v}");
        }
        if st.violations.len() >= st.cfg.max_violations {
            st.dropped += 1;
        } else {
            st.violations.push(v);
        }
    }
}

/// Serializes tests that start their own global session (mirrors
/// `caf_trace::SESSION_TEST_LOCK`).
pub static SESSION_TEST_LOCK: Mutex<()> = Mutex::new(());

/// Instrumentation entry points called by the runtime crates. All are
/// no-ops (one relaxed load) unless a session is active.
pub mod hooks {
    use super::*;

    /// Re-exported channel namespaces for `hb_send`/`hb_recv` callers.
    pub use crate::hb::{NS_AGG, NS_EVENT, NS_SHIP};

    fn with_state(f: impl FnOnce(&mut State) -> Vec<Violation>) {
        if !enabled() {
            return;
        }
        let mut guard = lock();
        let Some(st) = guard.as_mut() else { return };
        let found = f(st);
        if !found.is_empty() {
            sink(st, found);
        }
    }

    fn epochs_on(st: &State) -> bool {
        st.cfg.epochs
    }

    /// `win_lock_all` by global rank `origin`.
    pub fn win_lock_all(window: u64, origin: usize) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch.lock_all(window, origin, &mut out);
            }
            out
        });
    }

    /// `win_unlock_all`; `epoch_open` is the runtime's `locked_all` flag.
    pub fn win_unlock_all(window: u64, origin: usize, epoch_open: bool) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch.unlock_all(window, origin, epoch_open, &mut out);
            }
            out
        });
    }

    /// `win_free` by `origin`.
    pub fn win_free(window: u64, origin: usize, epoch_open: bool) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch.free(window, origin, epoch_open, &mut out);
            }
            out
        });
    }

    /// An `MPI_Put`-family data transfer. `(disp, len)` is the byte range
    /// in `target`'s region; `(buf_addr, buf_len)` the origin buffer's
    /// address range.
    #[allow(clippy::too_many_arguments)]
    pub fn rma_put(
        window: u64,
        origin: usize,
        target: usize,
        disp: u64,
        len: u64,
        buf_addr: u64,
        buf_len: u64,
        epoch_open: bool,
    ) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch.rma_put(
                    window,
                    origin,
                    target,
                    ByteRange::new(disp, len),
                    ByteRange::new(buf_addr, buf_len),
                    epoch_open,
                    &mut out,
                );
            }
            out
        });
    }

    /// An `MPI_Get`-family data transfer.
    #[allow(clippy::too_many_arguments)]
    pub fn rma_get(
        window: u64,
        origin: usize,
        target: usize,
        disp: u64,
        len: u64,
        buf_addr: u64,
        buf_len: u64,
        epoch_open: bool,
    ) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch.rma_get(
                    window,
                    origin,
                    target,
                    ByteRange::new(disp, len),
                    ByteRange::new(buf_addr, buf_len),
                    epoch_open,
                    &mut out,
                );
            }
            out
        });
    }

    /// An accumulate-family operation.
    pub fn rma_atomic(
        window: u64,
        origin: usize,
        target: usize,
        disp: u64,
        len: u64,
        epoch_open: bool,
    ) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch.rma_atomic(
                    window,
                    origin,
                    target,
                    ByteRange::new(disp, len),
                    epoch_open,
                    &mut out,
                );
            }
            out
        });
    }

    /// A local load of `owner`'s own window region.
    pub fn local_read(window: u64, owner: usize, disp: u64, len: u64) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch
                    .local_read(window, owner, ByteRange::new(disp, len), &mut out);
            }
            out
        });
    }

    /// A local store into `owner`'s own window region.
    pub fn local_write(window: u64, owner: usize, disp: u64, len: u64) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch
                    .local_write(window, owner, ByteRange::new(disp, len), &mut out);
            }
            out
        });
    }

    /// `win_flush(origin → target)`.
    pub fn win_flush(window: u64, origin: usize, target: usize, epoch_open: bool) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch.flush(window, origin, target, epoch_open, &mut out);
            }
            out
        });
    }

    /// `win_flush_all(origin)`.
    pub fn win_flush_all(window: u64, origin: usize, epoch_open: bool) {
        with_state(|st| {
            let mut out = Vec::new();
            if epochs_on(st) {
                st.epoch.flush_all(window, origin, epoch_open, &mut out);
            }
            out
        });
    }

    /// A request-generating RMA op went live; returns a tracking token
    /// (0 when no session is active — callers skip wait/drop reporting).
    pub fn request_open(
        window: u64,
        origin: usize,
        buf_addr: u64,
        buf_len: u64,
        kind: &'static str,
    ) -> u64 {
        if !enabled() {
            return 0;
        }
        let mut guard = lock();
        let Some(st) = guard.as_mut() else { return 0 };
        if !st.cfg.epochs {
            return 0;
        }
        st.epoch
            .request_open(window, origin, ByteRange::new(buf_addr, buf_len), kind)
    }

    /// The tracked request completed properly.
    pub fn request_wait(token: u64) {
        if token == 0 {
            return;
        }
        with_state(|st| {
            st.epoch.request_wait(token);
            Vec::new()
        });
    }

    /// The tracked request was dropped without completion.
    pub fn request_drop(token: u64) {
        if token == 0 {
            return;
        }
        with_state(|st| {
            let mut out = Vec::new();
            st.epoch.request_drop(token, &mut out);
            out
        });
    }

    /// A happens-before send edge (event post, ship dispatch) towards
    /// image `dest` — the image whose event counter / run queue the send
    /// targets, which is part of the channel identity.
    pub fn hb_send(img: usize, ns: u8, token: u64, dest: usize) {
        with_state(|st| {
            if st.cfg.races {
                st.hb.send(img, ns, token, dest);
            }
            Vec::new()
        });
    }

    /// The matching receive edge (event wait, ship execution).
    pub fn hb_recv(img: usize, ns: u8, token: u64) {
        with_state(|st| {
            if st.cfg.races {
                st.hb.recv(img, ns, token);
            }
            Vec::new()
        });
    }

    /// `img` enters a collective on `team`.
    pub fn hb_coll_enter(img: usize, team: u64) {
        with_state(|st| {
            if st.cfg.races {
                st.hb.collective_enter(img, team);
            }
            Vec::new()
        });
    }

    /// `img` exits the collective; `members` = team size.
    pub fn hb_coll_exit(img: usize, team: u64, members: usize) {
        with_state(|st| {
            if st.cfg.races {
                st.hb.collective_exit(img, team, members);
            }
            Vec::new()
        });
    }

    /// A coarray access to `(disp, len)` of `owner`'s part of `region`.
    pub fn hb_access(img: usize, region: u64, owner: usize, disp: u64, len: u64, write: bool) {
        with_state(|st| {
            let mut out = Vec::new();
            if st.cfg.races {
                st.hb
                    .access(img, region, owner, ByteRange::new(disp, len), write, &mut out);
            }
            out
        });
    }

    /// The region was freed; drops its shadow access history.
    pub fn hb_region_free(region: u64) {
        with_state(|st| {
            st.hb.region_free(region);
            Vec::new()
        });
    }

    /// Image `img` observed (via a `Stat` delivery) that image `failed`
    /// died. Happens-before edges to failed images terminate: the dead
    /// image's recorded accesses and undeliverable channel snapshots are
    /// purged so survivors' post-stat accesses are not flagged against a
    /// past that can no longer be ordered. Idempotent per failed image.
    pub fn image_failed(img: usize, failed: usize) {
        let _ = img;
        with_state(|st| {
            if st.cfg.races {
                st.hb.image_failed(failed);
            }
            Vec::new()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ViolationKind;

    #[test]
    fn hooks_are_inert_without_a_session_and_live_with_one() {
        let _guard = SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        hooks::rma_put(1, 0, 1, 0, 8, 0, 0, false); // no session: swallowed
        assert_eq!(hooks::request_open(1, 0, 0, 8, "rput"), 0);

        let s = CheckSession::start(CheckConfig::default()).expect("no active session");
        assert!(enabled());
        assert!(CheckSession::start(CheckConfig::default()).is_err());
        hooks::rma_put(1, 0, 1, 0, 8, 0, 0, false);
        hooks::hb_access(0, 9, 0, 0, 8, true);
        hooks::hb_access(1, 9, 0, 0, 8, true);
        let report = s.finish();
        assert!(!enabled());
        assert_eq!(report.of_kind(ViolationKind::OutsideEpoch).len(), 1);
        assert_eq!(report.of_kind(ViolationKind::CoarrayRace).len(), 1);
    }

    #[test]
    fn panic_mode_fires_at_the_violation_site() {
        let _guard = SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let s = CheckSession::start(CheckConfig {
            mode: CheckMode::Panic,
            ..CheckConfig::default()
        })
        .expect("no active session");
        let r = std::panic::catch_unwind(|| hooks::rma_put(1, 0, 1, 0, 8, 0, 0, false));
        assert!(r.is_err(), "panic mode must panic");
        let report = s.finish();
        assert!(report.is_clean(), "panic mode does not collect");
    }
}
