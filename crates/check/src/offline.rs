//! Offline checking: replay a recorded [`caf_trace::Trace`] through the
//! same epoch and happens-before analyses the online hooks drive.
//!
//! The trace carries enough to reconstruct most of the online view on
//! the MPI substrate: `WinLockAll`/`WinUnlockAll`/`WinFree` instants,
//! `RmaPut`/`RmaGet`/`RmaAtomic` instants with the target displacement
//! in the `disp` field, `WinFlush`/`WinFlushAll`, coarray read/write
//! spans tagged with region id + displacement, and sync tokens on
//! `EventNotify`/`EventWait` spans (the event id in `disp`) and
//! collective spans (the team id in `disp`).
//!
//! The offline pass is necessarily approximate where the trace is:
//! origin-buffer addresses and request lifetimes are not recorded (no
//! buffer-reuse / lost-completion detection), local loads of window
//! memory are not traced (no read-before-flush), and function-shipping
//! edges are not replayed. The online session sees all of those; use
//! the offline pass to audit traces collected without the sanitizer.

use std::collections::HashSet;

use caf_trace::{Op, Trace, TraceEvent};

use crate::epoch::EpochChecker;
use crate::hb::{RaceDetector, NS_EVENT};
use crate::report::{ByteRange, Report, Violation};

enum Action {
    LockAll { win: u64 },
    UnlockAll { win: u64 },
    Free { win: u64 },
    Put { win: u64, target: usize, range: ByteRange },
    Get { win: u64, target: usize, range: ByteRange },
    Atomic { win: u64, target: usize, range: ByteRange },
    Flush { win: u64, target: usize },
    FlushAll { win: u64 },
    EventSend { id: u64, dest: usize },
    EventRecv { id: u64 },
    CollEnter { team: u64 },
    CollExit { team: u64 },
    Access { region: u64, owner: usize, range: ByteRange, write: bool },
}

/// Replay `trace` through both checkers and report what they flag.
pub fn check_trace(trace: &Trace) -> Report {
    let mut actions: Vec<(u64, usize, usize, Action)> = Vec::new();
    let mut push = |t: u64, seq: usize, img: usize, a: Action| actions.push((t, seq, img, a));

    for (seq, e) in trace.events.iter().enumerate() {
        let img = e.image;
        let t0 = e.t0_ns;
        let t_end = e.t0_ns.saturating_add(e.dur_ns);
        match e.op {
            Op::WinLockAll => {
                if let Some(win) = e.window {
                    push(t0, seq, img, Action::LockAll { win });
                }
            }
            Op::WinUnlockAll => {
                if let Some(win) = e.window {
                    push(t0, seq, img, Action::UnlockAll { win });
                }
            }
            Op::WinFree => {
                if let Some(win) = e.window {
                    push(t0, seq, img, Action::Free { win });
                }
            }
            Op::RmaPut | Op::RmaGet | Op::RmaAtomic => {
                if let (Some(win), Some(target), Some(disp)) = (e.window, e.target, e.disp) {
                    let range = ByteRange::new(disp, e.bytes);
                    let a = match e.op {
                        Op::RmaPut => Action::Put { win, target, range },
                        Op::RmaGet => Action::Get { win, target, range },
                        _ => Action::Atomic { win, target, range },
                    };
                    push(t0, seq, img, a);
                }
            }
            Op::WinFlush => {
                if let (Some(win), Some(target)) = (e.window, e.target) {
                    push(t0, seq, img, Action::Flush { win, target });
                }
            }
            Op::WinFlushAll => {
                if let Some(win) = e.window {
                    push(t0, seq, img, Action::FlushAll { win });
                }
            }
            Op::EventNotify => {
                // The span's target is the notified image; it is part of
                // the channel key (posts count at the receiver).
                if let (Some(id), Some(dest)) = (e.disp, e.target) {
                    push(t_end, seq, img, Action::EventSend { id, dest });
                }
            }
            Op::EventWait => {
                if let Some(id) = e.disp {
                    push(t_end, seq, img, Action::EventRecv { id });
                }
            }
            Op::Barrier | Op::Reduction | Op::Alltoall => {
                if let Some(team) = e.disp {
                    push(t0, seq, img, Action::CollEnter { team });
                    push(t_end, seq, img, Action::CollExit { team });
                }
            }
            Op::CoarrayWrite | Op::CoarrayRead => {
                if let (Some(region), Some(owner), Some(disp)) = (e.window, e.target, e.disp) {
                    push(
                        t0,
                        seq,
                        img,
                        Action::Access {
                            region,
                            owner,
                            range: ByteRange::new(disp, e.bytes),
                            write: e.op == Op::CoarrayWrite,
                        },
                    );
                }
            }
            _ => {}
        }
    }
    actions.sort_by_key(|&(t, seq, _, _)| (t, seq));

    let mut epoch = EpochChecker::new();
    let mut hb = RaceDetector::new(1 << 14);
    let mut open: HashSet<(u64, usize)> = HashSet::new();
    let mut out: Vec<Violation> = Vec::new();
    let none = ByteRange::new(0, 0);

    for (_, _, img, a) in actions {
        match a {
            Action::LockAll { win } => {
                epoch.lock_all(win, img, &mut out);
                open.insert((win, img));
            }
            Action::UnlockAll { win } => {
                let was = open.remove(&(win, img));
                epoch.unlock_all(win, img, was, &mut out);
            }
            Action::Free { win } => {
                let is_open = open.remove(&(win, img));
                epoch.free(win, img, is_open, &mut out);
            }
            Action::Put { win, target, range } => {
                let o = open.contains(&(win, img));
                epoch.rma_put(win, img, target, range, none, o, &mut out);
            }
            Action::Get { win, target, range } => {
                let o = open.contains(&(win, img));
                epoch.rma_get(win, img, target, range, none, o, &mut out);
            }
            Action::Atomic { win, target, range } => {
                let o = open.contains(&(win, img));
                epoch.rma_atomic(win, img, target, range, o, &mut out);
            }
            Action::Flush { win, target } => {
                let o = open.contains(&(win, img));
                epoch.flush(win, img, target, o, &mut out);
            }
            Action::FlushAll { win } => {
                let o = open.contains(&(win, img));
                epoch.flush_all(win, img, o, &mut out);
            }
            Action::EventSend { id, dest } => hb.send(img, NS_EVENT, id, dest),
            Action::EventRecv { id } => hb.recv(img, NS_EVENT, id),
            Action::CollEnter { team } => hb.collective_enter(img, team),
            // Offline member counts are unknown; rounds are retired
            // once every image seen so far has exited (usize::MAX keeps
            // them alive, bounded by the number of collectives).
            Action::CollExit { team } => hb.collective_exit(img, team, usize::MAX),
            Action::Access { region, owner, range, write } => {
                hb.access(img, region, owner, range, write, &mut out);
            }
        }
    }

    Report {
        violations: out,
        dropped: 0,
    }
}

/// Convenience for tests: replay a hand-built event list.
pub fn check_events(events: Vec<TraceEvent>) -> Report {
    check_trace(&Trace {
        events,
        stalls: Vec::new(),
        dropped_events: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ViolationKind;
    use caf_trace::EventKind;

    fn ev(image: usize, op: Op, t0: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            image,
            op,
            kind: if dur == 0 { EventKind::Instant } else { EventKind::Span },
            t0_ns: t0,
            dur_ns: dur,
            target: None,
            bytes: 0,
            window: None,
            depth: 0,
            top_cat: false,
            disp: None,
        }
    }

    #[test]
    fn offline_flags_put_outside_epoch_and_overlap() {
        let mut put0 = ev(0, Op::RmaPut, 10, 0);
        put0.window = Some(7);
        put0.target = Some(2);
        put0.disp = Some(0);
        put0.bytes = 16;
        // Image 1 puts to an overlapping range later, inside an epoch.
        let mut lock0 = ev(0, Op::WinLockAll, 5, 0);
        lock0.window = Some(7);
        let mut lock1 = ev(1, Op::WinLockAll, 5, 0);
        lock1.window = Some(7);
        let mut put1 = ev(1, Op::RmaPut, 20, 0);
        put1.window = Some(7);
        put1.target = Some(2);
        put1.disp = Some(8);
        put1.bytes = 16;

        // Without image 0's lock the first put is outside an epoch.
        let r = check_events(vec![lock1.clone(), put0.clone(), put1.clone()]);
        assert_eq!(r.of_kind(ViolationKind::OutsideEpoch).len(), 1);
        assert_eq!(r.of_kind(ViolationKind::EpochOverlap).len(), 1);

        // With both locks: only the overlap remains.
        let r = check_events(vec![lock0, lock1, put0, put1]);
        assert!(r.of_kind(ViolationKind::OutsideEpoch).is_empty());
        let overlaps = r.of_kind(ViolationKind::EpochOverlap);
        assert_eq!(overlaps.len(), 1);
        assert_eq!(overlaps[0].image, 1);
        assert_eq!(overlaps[0].other, Some(0));
        assert_eq!(overlaps[0].range, Some(ByteRange { start: 8, end: 16 }));
    }

    #[test]
    fn offline_event_edge_orders_coarray_accesses() {
        let access = |img: usize, t0: u64, write: bool| {
            let mut e = ev(img, if write { Op::CoarrayWrite } else { Op::CoarrayRead }, t0, 1);
            e.window = Some(9);
            e.target = Some(0);
            e.disp = Some(0);
            e.bytes = 8;
            e
        };
        let mut notify = ev(0, Op::EventNotify, 20, 5);
        notify.disp = Some(42);
        notify.target = Some(1);
        let mut wait = ev(1, Op::EventWait, 21, 10);
        wait.disp = Some(42);

        // write(0) → notify(0) → wait(1) → read(1): clean.
        let r = check_events(vec![access(0, 10, true), notify.clone(), wait.clone(), access(1, 40, false)]);
        assert!(r.is_clean(), "{}", r.render());

        // Same accesses with no edge: a race.
        let r = check_events(vec![access(0, 10, true), access(1, 40, false)]);
        assert_eq!(r.of_kind(ViolationKind::CoarrayRace).len(), 1);
    }

    #[test]
    fn offline_collective_round_synchronizes() {
        let access = |img: usize, t0: u64| {
            let mut e = ev(img, Op::CoarrayWrite, t0, 1);
            e.window = Some(9);
            e.target = Some(0);
            e.disp = Some(0);
            e.bytes = 8;
            e
        };
        let barrier = |img: usize, t0: u64| {
            let mut e = ev(img, Op::Barrier, t0, 10);
            e.disp = Some(5);
            e
        };
        let r = check_events(vec![
            access(0, 10),
            barrier(0, 20),
            barrier(1, 22),
            access(1, 50),
        ]);
        assert!(r.is_clean(), "{}", r.render());
    }
}
