//! The vector-clock happens-before race detector (CAF layer).
//!
//! Each image carries a vector clock advanced by the runtime's
//! synchronization edges:
//!
//! - **event notify → event wait**: every post pushes a snapshot of the
//!   notifier's clock onto a FIFO per `(event id, destination image)`
//!   channel; every successful wait pops one and joins it. The
//!   destination is part of the key because the runtime's post counters
//!   live at the *receiver* — one event id notified to several images is
//!   several independent counters, and collapsing them would mispair
//!   snapshots. FIFO pairing within a channel is the *minimal*
//!   guaranteed edge for counting events (a waiter can only rely on
//!   "some post happened", and the oldest unconsumed post is the one
//!   whose increment made the count observable), so it never invents an
//!   edge.
//! - **team collectives** (barrier, reductions, `finish`'s termination
//!   allreduce, `team_split`): round `n` of a team joins every member's
//!   entry snapshot at exit. Treating one-to-all collectives as full
//!   joins adds edges that real broadcast semantics do not promise —
//!   that can only *mask* races (false negative), never invent one.
//! - **function shipping**: the shipper's clock at `ship` is joined by
//!   the executor before the shipped closure runs (token = the globally
//!   unique ship-registry slot).
//!
//! Coarray accesses are checked FastTrack-style against a bounded
//! per-`(region, owner)` access history: a new access races a recorded
//! one when the two images differ, at least one side writes, the byte
//! ranges overlap, and the recorded access is not in the new access's
//! causal past. Same-image program order supersedes older records, so
//! the history stays small for the common rewrite-in-place patterns.

use std::collections::{HashMap, VecDeque};

use crate::report::{ByteRange, Violation, ViolationKind};

/// Channel namespace: counting-event posts.
pub const NS_EVENT: u8 = 1;
/// Channel namespace: function-shipping slots.
pub const NS_SHIP: u8 = 2;
/// Channel namespace: aggregation batches (one token per drained
/// bucket; the batch carries the union of its records' edges).
pub const NS_AGG: u8 = 3;

/// Ceiling on queued unconsumed snapshots per channel.
const MAX_CHANNEL: usize = 1 << 16;

type Clock = Vec<u64>;

fn join(a: &mut Clock, b: &Clock) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x = (*x).max(y);
    }
}

fn component(c: &Clock, i: usize) -> u64 {
    c.get(i).copied().unwrap_or(0)
}

#[derive(Debug, Clone, Copy)]
struct AccessRec {
    img: usize,
    /// The accessor's own clock component at access time (>= 1).
    at: u64,
    range: ByteRange,
    write: bool,
}

#[derive(Debug, Default)]
struct CollRound {
    snaps: Vec<Clock>,
    exits: usize,
}

/// One race detector per check session.
#[derive(Debug)]
pub struct RaceDetector {
    clocks: Vec<Clock>,
    /// FIFO of sender snapshots per `(namespace, token, destination)`
    /// channel.
    chans: HashMap<(u8, u64, usize), VecDeque<Clock>>,
    /// In-flight collective rounds per `(team, round)`.
    colls: HashMap<(u64, u64), CollRound>,
    enter_rounds: HashMap<(u64, usize), u64>,
    exit_rounds: HashMap<(u64, usize), u64>,
    /// Access history per `(region, owner)`.
    hist: HashMap<(u64, usize), Vec<AccessRec>>,
    history_limit: usize,
}

impl RaceDetector {
    /// Detector remembering at most `history_limit` accesses per
    /// `(region, owner)` shadow cell (oldest forgotten first; forgetting
    /// can only cause false negatives).
    pub fn new(history_limit: usize) -> Self {
        RaceDetector {
            clocks: Vec::new(),
            chans: HashMap::new(),
            colls: HashMap::new(),
            enter_rounds: HashMap::new(),
            exit_rounds: HashMap::new(),
            hist: HashMap::new(),
            history_limit: history_limit.max(2),
        }
    }

    /// Grow state to cover image `img`; a fresh clock starts with its own
    /// component at 1 so the first access is not vacuously ordered
    /// before everything (all other clocks hold 0 for it).
    fn ensure(&mut self, img: usize) {
        if self.clocks.len() <= img {
            self.clocks.resize_with(img + 1, Clock::new);
        }
        if self.clocks[img].len() <= img {
            self.clocks[img].resize(img + 1, 0);
        }
        if self.clocks[img][img] == 0 {
            self.clocks[img][img] = 1;
        }
    }

    fn tick(&mut self, img: usize) {
        self.clocks[img][img] += 1;
    }

    /// A synchronization send by `img` on channel `(ns, token)` towards
    /// image `dest` (the image whose counter the post increments).
    pub fn send(&mut self, img: usize, ns: u8, token: u64, dest: usize) {
        self.ensure(img);
        let q = self.chans.entry((ns, token, dest)).or_default();
        if q.len() >= MAX_CHANNEL {
            q.pop_front();
        }
        q.push_back(self.clocks[img].clone());
        self.tick(img);
    }

    /// A matching receive: join the oldest unconsumed snapshot sent
    /// towards `img`. Receives with no queued snapshot (a post already
    /// consumed) are no-ops.
    pub fn recv(&mut self, img: usize, ns: u8, token: u64) {
        self.ensure(img);
        if let Some(snap) = self
            .chans
            .get_mut(&(ns, token, img))
            .and_then(VecDeque::pop_front)
        {
            join(&mut self.clocks[img], &snap);
        }
    }

    /// `img` enters its next collective round on `team`.
    pub fn collective_enter(&mut self, img: usize, team: u64) {
        self.ensure(img);
        let r = self.enter_rounds.entry((team, img)).or_insert(0);
        let round = *r;
        *r += 1;
        let snap = self.clocks[img].clone();
        self.colls.entry((team, round)).or_default().snaps.push(snap);
        self.tick(img);
    }

    /// `img` exits the collective round it last entered on `team`,
    /// joining every member's entry snapshot. `members` is the team
    /// size, used to retire the round once everyone has left.
    pub fn collective_exit(&mut self, img: usize, team: u64, members: usize) {
        self.ensure(img);
        let r = self.exit_rounds.entry((team, img)).or_insert(0);
        let round = *r;
        *r += 1;
        let done = if let Some(c) = self.colls.get_mut(&(team, round)) {
            c.exits += 1;
            let snaps = std::mem::take(&mut c.snaps);
            for s in &snaps {
                join(&mut self.clocks[img], s);
            }
            c.snaps = snaps;
            c.exits >= members
        } else {
            false
        };
        if done {
            self.colls.remove(&(team, round));
        }
    }

    /// A coarray access by `img` to `range` of `owner`'s part of
    /// `region`; flags every recorded conflicting access not in this
    /// access's causal past.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        img: usize,
        region: u64,
        owner: usize,
        range: ByteRange,
        write: bool,
        out: &mut Vec<Violation>,
    ) {
        if range.is_empty() {
            return;
        }
        self.ensure(img);
        let clock = &self.clocks[img];
        let hist = self.hist.entry((region, owner)).or_default();
        for rec in hist.iter() {
            if rec.img == img || !(write || rec.write) || !rec.range.overlaps(&range) {
                continue;
            }
            if component(clock, rec.img) < rec.at {
                out.push(Violation {
                    kind: ViolationKind::CoarrayRace,
                    window: Some(region),
                    image: img,
                    other: Some(rec.img),
                    range: Some(rec.range.intersect(&range)),
                    detail: format!(
                        "{} by image {img} races earlier {} by image {} on image {owner}'s \
                         part: no happens-before edge orders them",
                        if write { "write" } else { "read" },
                        if rec.write { "write" } else { "read" },
                        rec.img
                    ),
                });
            }
        }
        // Program order supersedes this image's earlier records that the
        // new access fully covers with equal-or-stronger kind.
        hist.retain(|r| {
            !(r.img == img
                && range.start <= r.range.start
                && r.range.end <= range.end
                && (write || !r.write))
        });
        if hist.len() >= self.history_limit {
            hist.remove(0);
        }
        hist.push(AccessRec {
            img,
            at: component(&self.clocks[img], img),
            range,
            write,
        });
    }

    /// The region was freed: drop its shadow history so a recycled
    /// region id never inherits stale accesses.
    pub fn region_free(&mut self, region: u64) {
        self.hist.retain(|&(r, _), _| r != region);
    }

    /// Image `failed` died: happens-before edges to a failed image
    /// terminate. Its recorded accesses are purged (a survivor's
    /// post-`Stat` access can no longer race a dead image's past — the
    /// stat delivery is the ordering surrogate) and channel snapshots
    /// destined for it are dropped (they will never be received).
    /// Idempotent; called once per observing survivor.
    pub fn image_failed(&mut self, failed: usize) {
        for recs in self.hist.values_mut() {
            recs.retain(|r| r.img != failed);
        }
        self.chans.retain(|&(_, _, dest), _| dest != failed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(d: &mut RaceDetector, img: usize, off: u64, out: &mut Vec<Violation>) {
        d.access(img, 9, 0, ByteRange::new(off, 8), true, out);
    }

    #[test]
    fn unordered_writes_race_and_notify_wait_orders_them() {
        let mut d = RaceDetector::new(1024);
        let mut out = Vec::new();
        w(&mut d, 0, 0, &mut out);
        w(&mut d, 1, 0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::CoarrayRace);
        assert_eq!((out[0].image, out[0].other), (1, Some(0)));

        // Same shape with an event edge between: clean.
        let mut d = RaceDetector::new(1024);
        let mut out = Vec::new();
        w(&mut d, 0, 0, &mut out);
        d.send(0, NS_EVENT, 42, 1);
        d.recv(1, NS_EVENT, 42);
        w(&mut d, 1, 0, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn reads_never_race_reads_and_disjoint_ranges_never_race() {
        let mut d = RaceDetector::new(1024);
        let mut out = Vec::new();
        d.access(0, 9, 0, ByteRange::new(0, 8), false, &mut out);
        d.access(1, 9, 0, ByteRange::new(0, 8), false, &mut out);
        assert!(out.is_empty());
        w(&mut d, 0, 0, &mut out);
        w(&mut d, 1, 64, &mut out);
        // Image 1's write at 64 does not overlap image 0's at 0 — but
        // image 0's earlier *read* at [0,8) does race image 0's write?
        // No: same image. The only candidate pair is read(1)@[0,8) vs
        // write(0)@[0,8).
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].image, out[0].other), (0, Some(1)));
    }

    #[test]
    fn barrier_round_orders_all_members() {
        let mut d = RaceDetector::new(1024);
        let mut out = Vec::new();
        w(&mut d, 0, 0, &mut out);
        for img in 0..3 {
            d.collective_enter(img, 5);
        }
        for img in 0..3 {
            d.collective_exit(img, 5, 3);
        }
        w(&mut d, 2, 0, &mut out);
        assert!(out.is_empty(), "write after barrier ordered: {out:?}");
        // Two post-barrier writes by different images with no further
        // edge between them genuinely race.
        w(&mut d, 1, 0, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].image, out[0].other), (1, Some(2)));
    }

    #[test]
    fn ship_edge_orders_shipper_before_executor() {
        let mut d = RaceDetector::new(1024);
        let mut out = Vec::new();
        w(&mut d, 0, 0, &mut out);
        d.send(0, NS_SHIP, 77, 3);
        d.recv(3, NS_SHIP, 77);
        w(&mut d, 3, 0, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn fifo_pairing_takes_oldest_post() {
        let mut d = RaceDetector::new(1024);
        let mut out = Vec::new();
        w(&mut d, 0, 0, &mut out);
        d.send(0, NS_EVENT, 1, 2);
        w(&mut d, 1, 8, &mut out);
        d.send(1, NS_EVENT, 1, 2);
        // Waiter joins image 0's (oldest) snapshot: ordered after 0's
        // write but NOT after image 1's.
        d.recv(2, NS_EVENT, 1);
        d.access(2, 9, 0, ByteRange::new(0, 16), true, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].other, Some(1));
    }

    #[test]
    fn region_free_drops_history() {
        let mut d = RaceDetector::new(1024);
        let mut out = Vec::new();
        w(&mut d, 0, 0, &mut out);
        d.region_free(9);
        w(&mut d, 1, 0, &mut out);
        assert!(out.is_empty(), "recycled region id is clean: {out:?}");
    }

    #[test]
    fn failed_image_accesses_stop_racing_survivors() {
        // Image 0 writes, then dies with no ordering edge to image 1.
        // Without the purge the survivor's write would be flagged; the
        // failure notification terminates the HB obligation instead.
        let mut d = RaceDetector::new(1024);
        let mut out = Vec::new();
        w(&mut d, 0, 0, &mut out);
        d.send(0, NS_EVENT, 5, 1); // pending post the survivor never waits on
        d.image_failed(0);
        w(&mut d, 1, 0, &mut out);
        assert!(out.is_empty(), "dead image's past is purged: {out:?}");
        // Survivors still race each other normally afterwards.
        w(&mut d, 2, 0, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].image, out[0].other), (2, Some(1)));
    }
}
