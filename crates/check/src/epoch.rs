//! The MPI-3 passive-target epoch-legality checker.
//!
//! Pure shadow state — no clocks, no threads: the simulator (or the
//! offline trace replay) feeds it one call per RMA entry point, with the
//! **global** ranks of origin and target and the byte range touched in
//! the target's window coordinates. The checker tracks, per window:
//!
//! - which origins currently hold a `lock_all` epoch (to catch unbalanced
//!   lock/unlock pairs and frees with an epoch open — the real epoch
//!   status used for `OutsideEpoch` comes from the runtime's own
//!   `locked_all` flag, passed in as `epoch_open`, so a checker attached
//!   mid-run never false-positives);
//! - the set of *pending* (issued, not yet flushed) puts and accumulates
//!   as `(origin, target, byte range)` triples, cleared by
//!   `win_flush(origin → target)` / `win_flush_all(origin)`;
//! - open request-generating operations (`rput`/`rget`/…) with the
//!   address range of the origin buffer they borrow, for the Fig 2
//!   lost-completion and buffer-reuse hazards.
//!
//! Overlap rules enforced (MPI-3 §11.7, separate memory model):
//! put/put, put/get, put/local-load, put/local-store and put/accumulate
//! conflicts within one epoch with no separating flush are flagged;
//! accumulate/accumulate is *allowed* (accumulates are atomic and
//! ordered with respect to each other).

use std::collections::HashMap;

use crate::report::{ByteRange, Violation, ViolationKind};

/// Ceiling on remembered pending operations per window; older entries are
/// forgotten first (can only cause false negatives).
const MAX_PENDING: usize = 1 << 16;

#[derive(Debug, Clone, Copy)]
struct Pending {
    origin: usize,
    target: usize,
    range: ByteRange,
    /// True for accumulate-family operations (atomic, mutually ordered).
    atomic: bool,
}

#[derive(Debug, Default)]
struct WinState {
    /// Origins whose shadow epoch is open (lock_all seen, no unlock_all).
    open: Vec<usize>,
    pending: Vec<Pending>,
}

#[derive(Debug, Clone)]
struct OpenRequest {
    window: u64,
    origin: usize,
    /// Origin buffer *address* range the request still borrows.
    buf: ByteRange,
    kind: &'static str,
}

/// Shadow state for every window of the job. One instance per check
/// session; all methods append any diagnostics to `out`.
#[derive(Debug, Default)]
pub struct EpochChecker {
    windows: HashMap<u64, WinState>,
    requests: HashMap<u64, OpenRequest>,
    next_token: u64,
}

impl EpochChecker {
    /// Fresh checker with no windows known.
    pub fn new() -> Self {
        Self::default()
    }

    fn win(&mut self, window: u64) -> &mut WinState {
        self.windows.entry(window).or_default()
    }

    /// `win_lock_all` by `origin`.
    pub fn lock_all(&mut self, window: u64, origin: usize, out: &mut Vec<Violation>) {
        let st = self.win(window);
        if st.open.contains(&origin) {
            out.push(Violation {
                kind: ViolationKind::UnbalancedEpoch,
                window: Some(window),
                image: origin,
                other: None,
                range: None,
                detail: "win_lock_all with this rank's epoch already open".into(),
            });
            return;
        }
        st.open.push(origin);
    }

    /// `win_unlock_all` by `origin`; `epoch_open` is the runtime's own
    /// epoch flag at call time.
    pub fn unlock_all(
        &mut self,
        window: u64,
        origin: usize,
        epoch_open: bool,
        out: &mut Vec<Violation>,
    ) {
        let st = self.win(window);
        if !epoch_open && !st.open.contains(&origin) {
            out.push(Violation {
                kind: ViolationKind::UnbalancedEpoch,
                window: Some(window),
                image: origin,
                other: None,
                range: None,
                detail: "win_unlock_all with no epoch open".into(),
            });
        }
        st.open.retain(|&o| o != origin);
        // unlock_all completes everything this origin issued.
        st.pending.retain(|p| p.origin != origin);
    }

    /// `win_free` by `origin`.
    pub fn free(
        &mut self,
        window: u64,
        origin: usize,
        epoch_open: bool,
        out: &mut Vec<Violation>,
    ) {
        let st = self.win(window);
        if epoch_open || st.open.contains(&origin) {
            out.push(Violation {
                kind: ViolationKind::OpenEpochAtFree,
                window: Some(window),
                image: origin,
                other: None,
                range: None,
                detail: "win_free while the passive-target epoch is still open".into(),
            });
        }
        st.open.retain(|&o| o != origin);
        st.pending.retain(|p| p.origin != origin);
    }

    fn outside(window: u64, origin: usize, what: &str, out: &mut Vec<Violation>) {
        out.push(Violation {
            kind: ViolationKind::OutsideEpoch,
            window: Some(window),
            image: origin,
            other: None,
            range: None,
            detail: format!("{what} outside a passive-target epoch (no win_lock_all)"),
        });
    }

    /// Scan for a pending conflict at `target` overlapping `range`.
    /// `vs_atomics` selects whether pending accumulates also conflict.
    fn conflict(
        st: &WinState,
        target: usize,
        range: ByteRange,
        vs_atomics: bool,
    ) -> Option<Pending> {
        st.pending
            .iter()
            .find(|p| {
                p.target == target && (vs_atomics || !p.atomic) && p.range.overlaps(&range)
            })
            .copied()
    }

    fn push_pending(st: &mut WinState, p: Pending) {
        if st.pending.len() >= MAX_PENDING {
            st.pending.remove(0);
        }
        st.pending.push(p);
    }

    /// An `MPI_Put` (or `rput`) of `range` bytes at `target`'s region.
    /// `buf` is the origin buffer's address range (for the buffer-reuse
    /// check); pass an empty range when unknown (offline replay).
    #[allow(clippy::too_many_arguments)]
    pub fn rma_put(
        &mut self,
        window: u64,
        origin: usize,
        target: usize,
        range: ByteRange,
        buf: ByteRange,
        epoch_open: bool,
        out: &mut Vec<Violation>,
    ) {
        self.buffer_reuse(origin, buf, out);
        if !epoch_open {
            Self::outside(window, origin, "put", out);
        }
        let st = self.win(window);
        if let Some(p) = Self::conflict(st, target, range, true) {
            out.push(Violation {
                kind: ViolationKind::EpochOverlap,
                window: Some(window),
                image: origin,
                other: Some(p.origin),
                range: Some(p.range.intersect(&range)),
                detail: format!(
                    "put to image {target} overlaps an unflushed {} from image {} with no \
                     separating win_flush (undefined under MPI-3)",
                    if p.atomic { "accumulate" } else { "put" },
                    p.origin
                ),
            });
        }
        Self::push_pending(
            st,
            Pending {
                origin,
                target,
                range,
                atomic: false,
            },
        );
    }

    /// An `MPI_Get` (or `rget`) of `range` bytes from `target`'s region.
    /// Gets are not recorded as pending: on this substrate they complete
    /// in place, and get/get pairs never conflict.
    #[allow(clippy::too_many_arguments)]
    pub fn rma_get(
        &mut self,
        window: u64,
        origin: usize,
        target: usize,
        range: ByteRange,
        buf: ByteRange,
        epoch_open: bool,
        out: &mut Vec<Violation>,
    ) {
        self.buffer_reuse(origin, buf, out);
        if !epoch_open {
            Self::outside(window, origin, "get", out);
        }
        let st = self.win(window);
        if let Some(p) = Self::conflict(st, target, range, true) {
            out.push(Violation {
                kind: ViolationKind::EpochOverlap,
                window: Some(window),
                image: origin,
                other: Some(p.origin),
                range: Some(p.range.intersect(&range)),
                detail: format!(
                    "get from image {target} overlaps an unflushed {} from image {} with no \
                     separating win_flush",
                    if p.atomic { "accumulate" } else { "put" },
                    p.origin
                ),
            });
        }
    }

    /// An accumulate-family operation (atomic; conflicts with pending
    /// puts but not with other accumulates).
    pub fn rma_atomic(
        &mut self,
        window: u64,
        origin: usize,
        target: usize,
        range: ByteRange,
        epoch_open: bool,
        out: &mut Vec<Violation>,
    ) {
        if !epoch_open {
            Self::outside(window, origin, "accumulate", out);
        }
        let st = self.win(window);
        if let Some(p) = Self::conflict(st, target, range, false) {
            out.push(Violation {
                kind: ViolationKind::EpochOverlap,
                window: Some(window),
                image: origin,
                other: Some(p.origin),
                range: Some(p.range.intersect(&range)),
                detail: format!(
                    "accumulate at image {target} overlaps an unflushed put from image {}",
                    p.origin
                ),
            });
        }
        Self::push_pending(
            st,
            Pending {
                origin,
                target,
                range,
                atomic: true,
            },
        );
    }

    /// A local load of `owner`'s own window region.
    pub fn local_read(
        &mut self,
        window: u64,
        owner: usize,
        range: ByteRange,
        out: &mut Vec<Violation>,
    ) {
        let st = self.win(window);
        if let Some(p) = st
            .pending
            .iter()
            .find(|p| p.target == owner && p.range.overlaps(&range))
        {
            out.push(Violation {
                kind: ViolationKind::ReadBeforeFlush,
                window: Some(window),
                image: owner,
                other: Some(p.origin),
                range: Some(p.range.intersect(&range)),
                detail: format!(
                    "local read of window memory that an unflushed {} from image {} still \
                     targets (origin must win_flush first)",
                    if p.atomic { "accumulate" } else { "put" },
                    p.origin
                ),
            });
        }
    }

    /// A local store into `owner`'s own window region.
    pub fn local_write(
        &mut self,
        window: u64,
        owner: usize,
        range: ByteRange,
        out: &mut Vec<Violation>,
    ) {
        let st = self.win(window);
        if let Some(p) = st
            .pending
            .iter()
            .find(|p| p.target == owner && p.range.overlaps(&range))
        {
            out.push(Violation {
                kind: ViolationKind::EpochOverlap,
                window: Some(window),
                image: owner,
                other: Some(p.origin),
                range: Some(p.range.intersect(&range)),
                detail: format!(
                    "local store overlaps an unflushed {} from image {} within the epoch",
                    if p.atomic { "accumulate" } else { "put" },
                    p.origin
                ),
            });
        }
    }

    /// `win_flush(origin → target)`: completes that origin's pending
    /// operations at that target.
    pub fn flush(
        &mut self,
        window: u64,
        origin: usize,
        target: usize,
        epoch_open: bool,
        out: &mut Vec<Violation>,
    ) {
        if !epoch_open {
            Self::outside(window, origin, "win_flush", out);
        }
        self.win(window)
            .pending
            .retain(|p| !(p.origin == origin && p.target == target));
    }

    /// `win_flush_all(origin)`: completes all of that origin's pending
    /// operations on the window.
    pub fn flush_all(
        &mut self,
        window: u64,
        origin: usize,
        epoch_open: bool,
        out: &mut Vec<Violation>,
    ) {
        if !epoch_open {
            Self::outside(window, origin, "win_flush_all", out);
        }
        self.win(window).pending.retain(|p| p.origin != origin);
    }

    /// Register a live request-generating operation borrowing origin
    /// buffer addresses `buf`. Returns the tracking token (never 0).
    pub fn request_open(
        &mut self,
        window: u64,
        origin: usize,
        buf: ByteRange,
        kind: &'static str,
    ) -> u64 {
        self.next_token += 1;
        let token = self.next_token;
        self.requests.insert(
            token,
            OpenRequest {
                window,
                origin,
                buf,
                kind,
            },
        );
        token
    }

    /// The request was properly completed with `wait`/`test`.
    pub fn request_wait(&mut self, token: u64) {
        self.requests.remove(&token);
    }

    /// The request was dropped without completion — the Fig 2 hazard.
    pub fn request_drop(&mut self, token: u64, out: &mut Vec<Violation>) {
        if let Some(r) = self.requests.remove(&token) {
            out.push(Violation {
                kind: ViolationKind::LostCompletion,
                window: Some(r.window),
                image: r.origin,
                other: None,
                range: None,
                detail: format!(
                    "{} request dropped without wait: its completion certificate is lost \
                     (paper Fig 2 put-ack hazard)",
                    r.kind
                ),
            });
        }
    }

    /// Flag any live request of `origin` whose borrowed buffer overlaps
    /// `buf` (address ranges).
    fn buffer_reuse(&mut self, origin: usize, buf: ByteRange, out: &mut Vec<Violation>) {
        if buf.is_empty() {
            return;
        }
        for r in self.requests.values() {
            if r.origin == origin && r.buf.overlaps(&buf) {
                out.push(Violation {
                    kind: ViolationKind::BufferReuse,
                    window: Some(r.window),
                    image: origin,
                    other: None,
                    range: None,
                    detail: format!(
                        "origin buffer handed to a live {} request reused by another RMA \
                         operation before completion",
                        r.kind
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(start: u64, len: u64) -> ByteRange {
        ByteRange::new(start, len)
    }

    #[test]
    fn put_outside_epoch_is_flagged() {
        let mut c = EpochChecker::new();
        let mut out = Vec::new();
        c.rma_put(7, 0, 1, rng(0, 8), rng(0, 0), false, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::OutsideEpoch);
        assert_eq!(out[0].image, 0);
    }

    #[test]
    fn overlapping_unflushed_puts_conflict_and_flush_separates() {
        let mut c = EpochChecker::new();
        let mut out = Vec::new();
        c.lock_all(7, 0, &mut out);
        c.lock_all(7, 1, &mut out);
        c.rma_put(7, 0, 2, rng(0, 16), rng(0, 0), true, &mut out);
        assert!(out.is_empty());
        c.rma_put(7, 1, 2, rng(8, 16), rng(0, 0), true, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::EpochOverlap);
        assert_eq!(out[0].other, Some(0));
        assert_eq!(out[0].range, Some(ByteRange { start: 8, end: 16 }));
        out.clear();
        // After both origins flush, the same puts are legal again.
        c.flush(7, 0, 2, true, &mut out);
        c.flush_all(7, 1, true, &mut out);
        c.rma_put(7, 0, 2, rng(0, 16), rng(0, 0), true, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn local_read_of_unflushed_put_target_is_flagged() {
        let mut c = EpochChecker::new();
        let mut out = Vec::new();
        c.lock_all(7, 0, &mut out);
        c.rma_put(7, 0, 1, rng(0, 8), rng(0, 0), true, &mut out);
        c.local_read(7, 1, rng(4, 4), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, ViolationKind::ReadBeforeFlush);
        assert_eq!(out[0].image, 1);
        assert_eq!(out[0].other, Some(0));
        out.clear();
        c.flush(7, 0, 1, true, &mut out);
        c.local_read(7, 1, rng(0, 8), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn accumulates_commute_but_conflict_with_puts() {
        let mut c = EpochChecker::new();
        let mut out = Vec::new();
        c.lock_all(7, 0, &mut out);
        c.lock_all(7, 1, &mut out);
        c.rma_atomic(7, 0, 2, rng(0, 8), true, &mut out);
        c.rma_atomic(7, 1, 2, rng(0, 8), true, &mut out);
        assert!(out.is_empty(), "accumulate/accumulate is ordered: {out:?}");
        c.rma_put(7, 1, 2, rng(0, 8), rng(0, 0), true, &mut out);
        assert_eq!(out.len(), 1, "put vs pending accumulate: {out:?}");
        assert_eq!(out[0].kind, ViolationKind::EpochOverlap);
    }

    #[test]
    fn request_lifecycle_flags_drop_and_reuse() {
        let mut c = EpochChecker::new();
        let mut out = Vec::new();
        let t = c.request_open(7, 0, rng(1000, 64), "rput");
        assert_ne!(t, 0);
        // Reusing the borrowed buffer in another op...
        c.rma_put(7, 0, 1, rng(64, 8), rng(1032, 8), true, &mut out);
        assert_eq!(out[0].kind, ViolationKind::BufferReuse);
        out.clear();
        // ...but a disjoint buffer is fine.
        c.rma_put(7, 0, 1, rng(128, 8), rng(5000, 8), true, &mut out);
        assert!(out.iter().all(|v| v.kind != ViolationKind::BufferReuse));
        out.clear();
        c.request_drop(t, &mut out);
        assert_eq!(out[0].kind, ViolationKind::LostCompletion);
        out.clear();
        let t2 = c.request_open(7, 0, rng(2000, 8), "rget");
        c.request_wait(t2);
        c.request_drop(t2, &mut out);
        assert!(out.is_empty(), "waited request never flags");
    }

    #[test]
    fn epoch_pairing_is_enforced() {
        let mut c = EpochChecker::new();
        let mut out = Vec::new();
        c.unlock_all(7, 0, false, &mut out);
        assert_eq!(out[0].kind, ViolationKind::UnbalancedEpoch);
        out.clear();
        c.lock_all(7, 0, &mut out);
        c.lock_all(7, 0, &mut out);
        assert_eq!(out[0].kind, ViolationKind::UnbalancedEpoch);
        out.clear();
        c.free(7, 0, true, &mut out);
        assert_eq!(out[0].kind, ViolationKind::OpenEpochAtFree);
    }
}
