//! Per-runtime mapped-memory accounting.
//!
//! The paper's Figure 1 measures the per-process mapped memory of a program
//! that initializes GASNet only, MPI only, or both runtimes. Each substrate
//! in this workspace reports every buffer it maps (eager buffers, segment
//! metadata, matching structures, window tables, ...) to a [`MemAccount`],
//! so the same experiment can be rerun over the simulated runtimes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The runtime layer a mapping belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemCategory {
    /// User-visible data (coarrays, window contents). Excluded from the
    /// Figure-1 style "runtime overhead" totals.
    UserData,
    /// Eager / bounce buffers for two-sided messaging.
    EagerBuffers,
    /// Message-matching metadata (posted/unexpected queues, per-peer state).
    Matching,
    /// Segment or window bookkeeping (translation tables, epoch state).
    SegmentMeta,
    /// Collective scratch space.
    CollectiveScratch,
    /// Connection state that scales with the number of peers.
    PerPeerState,
}

const N_CATS: usize = 6;

fn idx(c: MemCategory) -> usize {
    match c {
        MemCategory::UserData => 0,
        MemCategory::EagerBuffers => 1,
        MemCategory::Matching => 2,
        MemCategory::SegmentMeta => 3,
        MemCategory::CollectiveScratch => 4,
        MemCategory::PerPeerState => 5,
    }
}

/// Thread-safe ledger of bytes mapped by one runtime instance.
#[derive(Debug, Default)]
pub struct MemAccount {
    cats: [AtomicUsize; N_CATS],
}

impl MemAccount {
    /// New, empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` newly mapped under `cat`.
    pub fn map(&self, cat: MemCategory, bytes: usize) {
        self.cats[idx(cat)].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `bytes` unmapped from `cat`.
    pub fn unmap(&self, cat: MemCategory, bytes: usize) {
        let prev = self.cats[idx(cat)].fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "unmap of more bytes than mapped");
    }

    /// Bytes currently mapped under `cat`.
    pub fn mapped(&self, cat: MemCategory) -> usize {
        self.cats[idx(cat)].load(Ordering::Relaxed)
    }

    /// Total runtime-overhead bytes: everything except user data.
    pub fn runtime_overhead(&self) -> usize {
        self.total() - self.mapped(MemCategory::UserData)
    }

    /// Total mapped bytes including user data.
    pub fn total(&self) -> usize {
        self.cats.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_unmap_balance() {
        let a = MemAccount::new();
        a.map(MemCategory::EagerBuffers, 1024);
        a.map(MemCategory::EagerBuffers, 512);
        a.unmap(MemCategory::EagerBuffers, 1024);
        assert_eq!(a.mapped(MemCategory::EagerBuffers), 512);
    }

    #[test]
    fn overhead_excludes_user_data() {
        let a = MemAccount::new();
        a.map(MemCategory::UserData, 1 << 20);
        a.map(MemCategory::Matching, 100);
        a.map(MemCategory::PerPeerState, 200);
        assert_eq!(a.runtime_overhead(), 300);
        assert_eq!(a.total(), (1 << 20) + 300);
    }

    #[test]
    fn categories_are_independent() {
        let a = MemAccount::new();
        for (i, c) in [
            MemCategory::UserData,
            MemCategory::EagerBuffers,
            MemCategory::Matching,
            MemCategory::SegmentMeta,
            MemCategory::CollectiveScratch,
            MemCategory::PerPeerState,
        ]
        .into_iter()
        .enumerate()
        {
            a.map(c, i + 1);
        }
        assert_eq!(a.mapped(MemCategory::SegmentMeta), 4);
        assert_eq!(a.total(), 1 + 2 + 3 + 4 + 5 + 6);
    }
}
