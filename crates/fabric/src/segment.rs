//! Registered memory segments — the fabric's "RDMA-able" memory.
//!
//! A [`Segment`] is a block of memory that remote ranks may read, write, and
//! atomically update *without any involvement of the owning rank's thread*.
//! This is the property that makes MPI-3 passive-target RMA (and GASNet
//! puts/gets) genuinely one-sided in this workspace, and it is what makes the
//! paper's Figure 2 program deadlock-free under CAF-MPI.
//!
//! The backing store is a boxed slice of `AtomicU64`. All data-plane accesses
//! are `Relaxed` atomics: racy overlapping access yields an undefined *value*
//! (exactly the MPI unified-model contract) but never undefined *behaviour*.
//! Cross-rank ordering is established by the synchronization operations of
//! the layers above (mailbox hand-offs, flush counters, events), each of
//! which performs a release/acquire edge.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::FabricError;
use crate::Result;

/// Identifier of a registered segment, unique within one [`crate::Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u64);

const WORD: usize = 8;

/// A registered, remotely accessible memory region.
///
/// Sizes are rounded up to a whole number of 8-byte words; [`Segment::len`]
/// reports the size originally requested, which is also the bound enforced
/// on every remote access.
pub struct Segment {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment").field("len", &self.len).finish()
    }
}

impl Segment {
    /// Allocate a zero-initialized segment of `len` bytes.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(WORD);
        let mut v = Vec::with_capacity(n_words);
        v.resize_with(n_words, || AtomicU64::new(0));
        Segment {
            words: v.into_boxed_slice(),
            len,
        }
    }

    /// Requested size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the segment holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check(&self, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(FabricError::OutOfBounds {
                offset,
                len,
                capacity: self.len,
            });
        }
        Ok(())
    }

    fn check_aligned(&self, offset: usize, size: usize) -> Result<()> {
        self.check(offset, size)?;
        if offset % size != 0 {
            return Err(FabricError::BadAlignment {
                offset,
                required: size,
            });
        }
        Ok(())
    }

    /// Write `data` into the segment at byte `offset` (a remote or local PUT).
    ///
    /// Whole words are stored with single relaxed atomic stores; partial edge
    /// words use a read-modify-write merge. Concurrent writers to *disjoint*
    /// word-aligned ranges never disturb each other; concurrent writers to
    /// the same word follow MPI's "undefined result" rule.
    pub fn put(&self, offset: usize, data: &[u8]) -> Result<()> {
        self.check(offset, data.len())?;
        if caf_trace::enabled() {
            caf_trace::instant(caf_trace::Op::SegmentPut, None, data.len() as u64, None);
        }
        let mut off = offset;
        let mut src = data;

        // Leading partial word.
        let lead = off % WORD;
        if lead != 0 && !src.is_empty() {
            let take = (WORD - lead).min(src.len());
            self.rmw_bytes(off / WORD, lead, &src[..take]);
            off += take;
            src = &src[take..];
        }
        // Full words.
        let mut w = off / WORD;
        while src.len() >= WORD {
            let v = u64::from_le_bytes(src[..WORD].try_into().expect("chunk is 8 bytes"));
            self.words[w].store(v, Ordering::Relaxed);
            w += 1;
            src = &src[WORD..];
        }
        // Trailing partial word.
        if !src.is_empty() {
            self.rmw_bytes(w, 0, src);
        }
        Ok(())
    }

    /// Merge `bytes` into word `w` starting at in-word byte `shift`.
    fn rmw_bytes(&self, w: usize, shift: usize, bytes: &[u8]) {
        debug_assert!(shift + bytes.len() <= WORD);
        let mut mask: u64 = 0;
        let mut val: u64 = 0;
        for (i, &b) in bytes.iter().enumerate() {
            mask |= 0xffu64 << ((shift + i) * 8);
            val |= (b as u64) << ((shift + i) * 8);
        }
        let _ = self.words[w].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
            Some((old & !mask) | val)
        });
    }

    /// Read `out.len()` bytes from byte `offset` (a remote or local GET).
    pub fn get(&self, offset: usize, out: &mut [u8]) -> Result<()> {
        self.check(offset, out.len())?;
        if caf_trace::enabled() {
            caf_trace::instant(caf_trace::Op::SegmentGet, None, out.len() as u64, None);
        }
        let mut off = offset;
        let mut dst = &mut out[..];

        let lead = off % WORD;
        if lead != 0 && !dst.is_empty() {
            let take = (WORD - lead).min(dst.len());
            let word = self.words[off / WORD].load(Ordering::Relaxed).to_le_bytes();
            dst[..take].copy_from_slice(&word[lead..lead + take]);
            off += take;
            dst = &mut dst[take..];
        }
        let mut w = off / WORD;
        while dst.len() >= WORD {
            let v = self.words[w].load(Ordering::Relaxed);
            dst[..WORD].copy_from_slice(&v.to_le_bytes());
            w += 1;
            dst = &mut dst[WORD..];
        }
        if !dst.is_empty() {
            let word = self.words[w].load(Ordering::Relaxed).to_le_bytes();
            let n = dst.len();
            dst.copy_from_slice(&word[..n]);
        }
        Ok(())
    }

    /// Atomically load the aligned `u64` at byte `offset`.
    pub fn load_u64(&self, offset: usize) -> Result<u64> {
        self.check_aligned(offset, WORD)?;
        Ok(self.words[offset / WORD].load(Ordering::Acquire))
    }

    /// Atomically store the aligned `u64` at byte `offset`.
    pub fn store_u64(&self, offset: usize, value: u64) -> Result<()> {
        self.check_aligned(offset, WORD)?;
        self.words[offset / WORD].store(value, Ordering::Release);
        Ok(())
    }

    /// Atomic fetch-and-add on the aligned `u64` at byte `offset`.
    pub fn fetch_add_u64(&self, offset: usize, value: u64) -> Result<u64> {
        self.check_aligned(offset, WORD)?;
        Ok(self.words[offset / WORD].fetch_add(value, Ordering::AcqRel))
    }

    /// Atomic fetch-and-xor on the aligned `u64` at byte `offset`.
    pub fn fetch_xor_u64(&self, offset: usize, value: u64) -> Result<u64> {
        self.check_aligned(offset, WORD)?;
        Ok(self.words[offset / WORD].fetch_xor(value, Ordering::AcqRel))
    }

    /// Atomic compare-and-swap; returns the value observed before the swap.
    pub fn compare_exchange_u64(&self, offset: usize, expected: u64, new: u64) -> Result<u64> {
        self.check_aligned(offset, WORD)?;
        Ok(
            match self.words[offset / WORD].compare_exchange(
                expected,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(prev) => prev,
                Err(prev) => prev,
            },
        )
    }

    /// Atomic read-modify-write with an arbitrary pure update function.
    ///
    /// Returns the previous value. Used to implement `MPI_Accumulate` /
    /// `MPI_Get_accumulate` element updates (e.g. floating-point SUM via a
    /// CAS loop on the bit pattern).
    pub fn fetch_update_u64(
        &self,
        offset: usize,
        mut f: impl FnMut(u64) -> u64,
    ) -> Result<u64> {
        self.check_aligned(offset, WORD)?;
        Ok(self.words[offset / WORD]
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |old| Some(f(old)))
            .expect("fetch_update closure always returns Some"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::{as_bytes, vec_from_bytes};

    #[test]
    fn put_get_roundtrip_aligned() {
        let seg = Segment::new(64);
        let data = [1.0f64, 2.0, 3.0, 4.0];
        seg.put(0, as_bytes(&data)).unwrap();
        let mut out = [0u8; 32];
        seg.get(0, &mut out).unwrap();
        assert_eq!(vec_from_bytes::<f64>(&out), data);
    }

    #[test]
    fn put_get_unaligned_offsets() {
        let seg = Segment::new(64);
        for off in 0..17 {
            let data: Vec<u8> = (0..23).map(|i| (i + off) as u8).collect();
            seg.put(off, &data).unwrap();
            let mut out = vec![0u8; 23];
            seg.get(off, &mut out).unwrap();
            assert_eq!(out, data, "offset {off}");
        }
    }

    #[test]
    fn partial_writes_do_not_clobber_neighbours() {
        let seg = Segment::new(24);
        seg.put(0, &[0xaa; 24]).unwrap();
        seg.put(3, &[0x55; 2]).unwrap();
        let mut out = [0u8; 24];
        seg.get(0, &mut out).unwrap();
        let mut expect = [0xaa; 24];
        expect[3] = 0x55;
        expect[4] = 0x55;
        assert_eq!(out, expect);
    }

    #[test]
    fn bounds_are_enforced() {
        let seg = Segment::new(16);
        assert!(matches!(
            seg.put(10, &[0u8; 8]),
            Err(FabricError::OutOfBounds { .. })
        ));
        let mut out = [0u8; 4];
        assert!(matches!(
            seg.get(16, &mut out),
            Err(FabricError::OutOfBounds { .. })
        ));
        // Zero-length access at the very end is fine.
        seg.put(16, &[]).unwrap();
    }

    #[test]
    fn atomics_require_alignment() {
        let seg = Segment::new(32);
        assert!(matches!(
            seg.fetch_add_u64(4, 1),
            Err(FabricError::BadAlignment { .. })
        ));
        assert_eq!(seg.fetch_add_u64(8, 5).unwrap(), 0);
        assert_eq!(seg.load_u64(8).unwrap(), 5);
    }

    #[test]
    fn compare_exchange_reports_previous() {
        let seg = Segment::new(8);
        seg.store_u64(0, 7).unwrap();
        assert_eq!(seg.compare_exchange_u64(0, 7, 9).unwrap(), 7);
        assert_eq!(seg.load_u64(0).unwrap(), 9);
        // Failed CAS returns the observed value and leaves memory unchanged.
        assert_eq!(seg.compare_exchange_u64(0, 7, 11).unwrap(), 9);
        assert_eq!(seg.load_u64(0).unwrap(), 9);
    }

    #[test]
    fn fetch_update_applies_float_sum() {
        let seg = Segment::new(8);
        seg.store_u64(0, 1.5f64.to_bits()).unwrap();
        seg.fetch_update_u64(0, |old| (f64::from_bits(old) + 2.25).to_bits())
            .unwrap();
        assert_eq!(f64::from_bits(seg.load_u64(0).unwrap()), 3.75);
    }

    #[test]
    fn fetch_xor_updates() {
        let seg = Segment::new(8);
        seg.store_u64(0, 0b1100).unwrap();
        assert_eq!(seg.fetch_xor_u64(0, 0b1010).unwrap(), 0b1100);
        assert_eq!(seg.load_u64(0).unwrap(), 0b0110);
    }

    #[test]
    fn concurrent_disjoint_puts_are_exact() {
        use std::sync::Arc;
        let seg = Arc::new(Segment::new(8 * 64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let seg = Arc::clone(&seg);
                std::thread::spawn(move || {
                    let data = vec![t as u8; 64];
                    seg.put(t * 64, &data).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8usize {
            let mut out = vec![0u8; 64];
            seg.get(t * 64, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == t as u8));
        }
    }

    #[test]
    fn concurrent_fetch_add_is_atomic() {
        use std::sync::Arc;
        let seg = Arc::new(Segment::new(8));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let seg = Arc::clone(&seg);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        seg.fetch_add_u64(0, 1).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seg.load_u64(0).unwrap(), 4000);
    }

    #[test]
    fn len_reports_requested_bytes() {
        assert_eq!(Segment::new(13).len(), 13);
        assert!(Segment::new(0).is_empty());
        // Access within the requested (non-word-multiple) length works.
        let seg = Segment::new(13);
        seg.put(12, &[9]).unwrap();
        let mut b = [0u8];
        seg.get(12, &mut b).unwrap();
        assert_eq!(b[0], 9);
        assert!(seg.put(13, &[1]).is_err());
    }
}
