//! Configurable per-operation cost model.
//!
//! Software overheads are what separate the paper's two runtimes: a GASNet
//! put has a smaller constant overhead than an MPICH `MPI_Put`; an MPICH
//! `MPI_Win_flush_all` visits every rank in the window; GASNet's SRQ adds a
//! slow path to message reception. On an in-process fabric those overheads
//! are otherwise nanoseconds of function-call cost, so the substrates charge
//! them explicitly here: each operation spin-waits for a configured number
//! of nanoseconds (plus a per-byte term), making the shapes of the paper's
//! figures visible in actual wall-clock measurements.
//!
//! The default configuration charges **zero** everywhere, so unit tests and
//! correctness-oriented examples run at full speed.

use std::cell::Cell;
use std::time::{Duration, Instant};

/// The fabric operations that can be charged a cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelayOp {
    /// Injecting a two-sided message (send side).
    P2pInject,
    /// Receiving/matching a two-sided message (receive side).
    P2pReceive,
    /// A one-sided put.
    RmaPut,
    /// A one-sided get.
    RmaGet,
    /// A one-sided atomic (accumulate / fetch-op / CAS).
    RmaAtomic,
    /// Completing outstanding ops to one target (one `flush` handshake).
    FlushPerTarget,
    /// An active-message dispatch on the receive side.
    AmDispatch,
}

/// Every [`DelayOp`], in [`DelayOp::index`] order.
pub const ALL_DELAY_OPS: [DelayOp; NDELAY_OPS] = [
    DelayOp::P2pInject,
    DelayOp::P2pReceive,
    DelayOp::RmaPut,
    DelayOp::RmaGet,
    DelayOp::RmaAtomic,
    DelayOp::FlushPerTarget,
    DelayOp::AmDispatch,
];

/// Number of [`DelayOp`] variants.
pub const NDELAY_OPS: usize = 7;

impl DelayOp {
    /// Dense index into per-op tables; agrees with [`ALL_DELAY_OPS`].
    pub const fn index(self) -> usize {
        match self {
            DelayOp::P2pInject => 0,
            DelayOp::P2pReceive => 1,
            DelayOp::RmaPut => 2,
            DelayOp::RmaGet => 3,
            DelayOp::RmaAtomic => 4,
            DelayOp::FlushPerTarget => 5,
            DelayOp::AmDispatch => 6,
        }
    }

    /// Whether this op is charged on the *receive* side (the image that
    /// dispatches or matches an incoming message) rather than at issue.
    ///
    /// Issue-side counts are a pure function of the program: an image
    /// charges them at its own call sites, so they are identical across
    /// substatially different schedules (OS threads vs. caf-sched tasks).
    /// Receive-side counts are charged when the *poll* that drains the
    /// message runs, and a metered window bounded by snapshots (e.g.
    /// [`DelayMeter`] deltas around a timed kernel) can catch a straggler
    /// on one side of the boundary under one schedule and the other side
    /// under another. Comparisons across execution modes should restrict
    /// themselves to issue-side ops.
    pub const fn receive_side(self) -> bool {
        matches!(self, DelayOp::P2pReceive | DelayOp::AmDispatch)
    }

    /// Stable snake_case name (used in bench JSON keys).
    pub const fn name(self) -> &'static str {
        match self {
            DelayOp::P2pInject => "p2p_inject",
            DelayOp::P2pReceive => "p2p_receive",
            DelayOp::RmaPut => "rma_put",
            DelayOp::RmaGet => "rma_get",
            DelayOp::RmaAtomic => "rma_atomic",
            DelayOp::FlushPerTarget => "flush_per_target",
            DelayOp::AmDispatch => "am_dispatch",
        }
    }
}

/// Per-operation base + per-byte costs, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Fixed overhead per operation.
    pub base_ns: f64,
    /// Additional cost per payload byte.
    pub per_byte_ns: f64,
}

impl OpCost {
    /// Zero cost.
    pub const FREE: OpCost = OpCost {
        base_ns: 0.0,
        per_byte_ns: 0.0,
    };

    /// A pure per-op overhead.
    pub const fn fixed(base_ns: f64) -> Self {
        OpCost {
            base_ns,
            per_byte_ns: 0.0,
        }
    }

    /// Total cost of an operation moving `bytes` bytes.
    pub fn cost_ns(&self, bytes: usize) -> f64 {
        self.base_ns + self.per_byte_ns * bytes as f64
    }
}

/// A full delay configuration for one substrate instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayConfig {
    /// Cost table indexed by [`DelayOp`].
    pub p2p_inject: OpCost,
    /// See [`DelayOp::P2pReceive`].
    pub p2p_receive: OpCost,
    /// See [`DelayOp::RmaPut`].
    pub rma_put: OpCost,
    /// See [`DelayOp::RmaGet`].
    pub rma_get: OpCost,
    /// See [`DelayOp::RmaAtomic`].
    pub rma_atomic: OpCost,
    /// See [`DelayOp::FlushPerTarget`]. Charged once per target rank, which
    /// is how `MPI_Win_flush_all`'s Θ(P) cost arises.
    pub flush_per_target: OpCost,
    /// See [`DelayOp::AmDispatch`].
    pub am_dispatch: OpCost,
}

impl Default for DelayConfig {
    fn default() -> Self {
        DelayConfig::free()
    }
}

impl DelayConfig {
    /// The all-zero configuration (no artificial delays).
    pub const fn free() -> Self {
        DelayConfig {
            p2p_inject: OpCost::FREE,
            p2p_receive: OpCost::FREE,
            rma_put: OpCost::FREE,
            rma_get: OpCost::FREE,
            rma_atomic: OpCost::FREE,
            flush_per_target: OpCost::FREE,
            am_dispatch: OpCost::FREE,
        }
    }

    /// Cost entry for `op`.
    pub fn cost(&self, op: DelayOp) -> OpCost {
        match op {
            DelayOp::P2pInject => self.p2p_inject,
            DelayOp::P2pReceive => self.p2p_receive,
            DelayOp::RmaPut => self.rma_put,
            DelayOp::RmaGet => self.rma_get,
            DelayOp::RmaAtomic => self.rma_atomic,
            DelayOp::FlushPerTarget => self.flush_per_target,
            DelayOp::AmDispatch => self.am_dispatch,
        }
    }

    /// Charge the configured cost of `op` on `bytes` bytes by spin-waiting.
    ///
    /// Spinning (rather than sleeping) keeps sub-microsecond costs accurate;
    /// the OS cannot sleep for 200 ns.
    pub fn charge(&self, op: DelayOp, bytes: usize) {
        let ns = self.cost(op).cost_ns(bytes);
        spin_for_ns(ns);
    }
}

/// Per-rank ledger of modeled costs: how many times each [`DelayOp`] was
/// charged and how many *modeled* nanoseconds that amounted to.
///
/// Unlike the wall-clock statistics, these numbers are functions of the
/// program and the cost table only — they are byte-identical across runs,
/// schedulers, and machines, which is what lets the bench harness gate on
/// them with a tight regression threshold. Not thread-safe by design: each
/// rank owns its own (same discipline as `Stats`).
#[derive(Debug, Default)]
pub struct DelayMeter {
    counts: [Cell<u64>; NDELAY_OPS],
    modeled_ns: [Cell<u64>; NDELAY_OPS],
}

impl DelayMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one charge of `op` costing `ns` modeled nanoseconds.
    pub fn record(&self, op: DelayOp, ns: f64) {
        let i = op.index();
        self.counts[i].set(self.counts[i].get() + 1);
        self.modeled_ns[i].set(self.modeled_ns[i].get() + ns.max(0.0) as u64);
    }

    /// Number of times `op` was charged.
    pub fn count(&self, op: DelayOp) -> u64 {
        self.counts[op.index()].get()
    }

    /// Total modeled nanoseconds charged to `op`.
    pub fn modeled_ns(&self, op: DelayOp) -> u64 {
        self.modeled_ns[op.index()].get()
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for c in &self.counts {
            c.set(0);
        }
        for c in &self.modeled_ns {
            c.set(0);
        }
    }

    /// Plain-data snapshot: `(op, count, modeled_ns)` in
    /// [`ALL_DELAY_OPS`] order.
    pub fn snapshot(&self) -> Vec<(DelayOp, u64, u64)> {
        ALL_DELAY_OPS
            .iter()
            .map(|&op| (op, self.count(op), self.modeled_ns(op)))
            .collect()
    }
}

/// A cost table plus its metering ledger — what the substrates actually
/// carry. `charge` spins like [`DelayConfig::charge`] *and* records the
/// modeled cost; `note` records without spinning (used by non-blocking
/// operations whose latency is paid at completion time).
#[derive(Debug, Default)]
pub struct Delays {
    cfg: DelayConfig,
    meter: DelayMeter,
}

impl Delays {
    /// Wrap a cost table with a fresh meter.
    pub fn new(cfg: DelayConfig) -> Self {
        Delays {
            cfg,
            meter: DelayMeter::new(),
        }
    }

    /// The underlying cost table.
    pub fn config(&self) -> &DelayConfig {
        &self.cfg
    }

    /// The metering ledger.
    pub fn meter(&self) -> &DelayMeter {
        &self.meter
    }

    /// Cost entry for `op` (see [`DelayConfig::cost`]).
    pub fn cost(&self, op: DelayOp) -> OpCost {
        self.cfg.cost(op)
    }

    /// Record and spin-charge `op` on `bytes` bytes.
    pub fn charge(&self, op: DelayOp, bytes: usize) {
        let ns = self.cfg.cost(op).cost_ns(bytes);
        self.meter.record(op, ns);
        spin_for_ns(ns);
    }

    /// Record `op` without spinning and return its modeled cost in
    /// nanoseconds. Callers that defer the latency (e.g. `rflush`) spin for
    /// whatever remains of it at completion time.
    pub fn note(&self, op: DelayOp, bytes: usize) -> f64 {
        let ns = self.cfg.cost(op).cost_ns(bytes);
        self.meter.record(op, ns);
        ns
    }
}

/// Busy-wait for approximately `ns` nanoseconds. No-op for `ns <= 0`.
///
/// Under model control ([`crate::sched`]) the wait becomes a single
/// scheduler yield instead: wall-clock cost is meaningless in a modeled
/// schedule, and a busy-wait would wedge exploration (only one thread
/// runs at a time, and it would spin inside its quantum).
pub fn spin_for_ns(ns: f64) {
    if ns <= 0.0 {
        return;
    }
    if crate::sched::yield_tick() {
        return;
    }
    if caf_sched::on_task() {
        // On the task executor the charged wall-clock delay still
        // elapses, but the worker is yielded between clock checks so the
        // other N-W images keep making progress underneath the spin.
        let deadline = monotonic_ns().saturating_add(ns as u64);
        while monotonic_ns() < deadline {
            caf_sched::yield_now();
        }
        return;
    }
    let dur = Duration::from_nanos(ns as u64);
    let start = Instant::now();
    while start.elapsed() < dur {
        std::hint::spin_loop();
    }
}

/// Monotonic nanoseconds since an arbitrary process-local origin.
///
/// This is the workspace's one sanctioned wall-clock read for timing
/// statistics (the nondeterminism lint forbids raw `Instant::now` outside
/// this file): under model control it returns the gate's deterministic
/// logical clock instead of real time, so timed wrappers don't reintroduce
/// schedule-dependent values into modeled runs.
pub fn monotonic_ns() -> u64 {
    if crate::sched::active() {
        // One scheduled operation ≙ 1 µs of logical time.
        return crate::sched::logical_steps() * 1_000;
    }
    use std::sync::OnceLock;
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    origin.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing")]
    fn free_config_charges_nothing_fast() {
        let cfg = DelayConfig::free();
        let t = Instant::now();
        for _ in 0..10_000 {
            cfg.charge(DelayOp::RmaPut, 1 << 20);
        }
        assert!(t.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn cost_combines_base_and_per_byte() {
        let c = OpCost {
            base_ns: 100.0,
            per_byte_ns: 0.5,
        };
        assert_eq!(c.cost_ns(0), 100.0);
        assert_eq!(c.cost_ns(200), 200.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing")]
    fn spin_waits_roughly_the_requested_time() {
        let t = Instant::now();
        spin_for_ns(2_000_000.0); // 2 ms
        let el = t.elapsed();
        assert!(el >= Duration::from_millis(2), "{el:?}");
        assert!(el < Duration::from_millis(200), "{el:?}");
    }

    #[test]
    fn cost_lookup_matches_fields() {
        let mut cfg = DelayConfig::free();
        cfg.flush_per_target = OpCost::fixed(42.0);
        assert_eq!(cfg.cost(DelayOp::FlushPerTarget).base_ns, 42.0);
        assert_eq!(cfg.cost(DelayOp::RmaGet), OpCost::FREE);
    }

    #[test]
    fn delay_op_index_matches_all_ops() {
        for (i, &op) in ALL_DELAY_OPS.iter().enumerate() {
            assert_eq!(op.index(), i, "{op:?}");
        }
    }

    #[test]
    fn meter_records_counts_and_modeled_ns() {
        let mut cfg = DelayConfig::free();
        cfg.flush_per_target = OpCost::fixed(10.0);
        cfg.rma_put = OpCost {
            base_ns: 5.0,
            per_byte_ns: 1.0,
        };
        let d = Delays::new(cfg);
        d.charge(DelayOp::FlushPerTarget, 0);
        d.charge(DelayOp::FlushPerTarget, 0);
        d.charge(DelayOp::RmaPut, 3);
        assert_eq!(d.meter().count(DelayOp::FlushPerTarget), 2);
        assert_eq!(d.meter().modeled_ns(DelayOp::FlushPerTarget), 20);
        assert_eq!(d.meter().count(DelayOp::RmaPut), 1);
        assert_eq!(d.meter().modeled_ns(DelayOp::RmaPut), 8);
        assert_eq!(d.meter().count(DelayOp::AmDispatch), 0);
        d.meter().reset();
        assert_eq!(d.meter().snapshot(), {
            use DelayOp::*;
            vec![
                (P2pInject, 0, 0),
                (P2pReceive, 0, 0),
                (RmaPut, 0, 0),
                (RmaGet, 0, 0),
                (RmaAtomic, 0, 0),
                (FlushPerTarget, 0, 0),
                (AmDispatch, 0, 0),
            ]
        });
    }

    #[test]
    fn note_records_without_spinning() {
        let mut cfg = DelayConfig::free();
        cfg.flush_per_target = OpCost::fixed(1e12); // would spin ~17 min if charged
        let d = Delays::new(cfg);
        let ns = d.note(DelayOp::FlushPerTarget, 0);
        assert_eq!(ns, 1e12);
        assert_eq!(d.meter().count(DelayOp::FlushPerTarget), 1);
        assert_eq!(d.meter().modeled_ns(DelayOp::FlushPerTarget), 1_000_000_000_000);
    }
}
