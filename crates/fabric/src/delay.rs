//! Configurable per-operation cost model.
//!
//! Software overheads are what separate the paper's two runtimes: a GASNet
//! put has a smaller constant overhead than an MPICH `MPI_Put`; an MPICH
//! `MPI_Win_flush_all` visits every rank in the window; GASNet's SRQ adds a
//! slow path to message reception. On an in-process fabric those overheads
//! are otherwise nanoseconds of function-call cost, so the substrates charge
//! them explicitly here: each operation spin-waits for a configured number
//! of nanoseconds (plus a per-byte term), making the shapes of the paper's
//! figures visible in actual wall-clock measurements.
//!
//! The default configuration charges **zero** everywhere, so unit tests and
//! correctness-oriented examples run at full speed.

use std::time::{Duration, Instant};

/// The fabric operations that can be charged a cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelayOp {
    /// Injecting a two-sided message (send side).
    P2pInject,
    /// Receiving/matching a two-sided message (receive side).
    P2pReceive,
    /// A one-sided put.
    RmaPut,
    /// A one-sided get.
    RmaGet,
    /// A one-sided atomic (accumulate / fetch-op / CAS).
    RmaAtomic,
    /// Completing outstanding ops to one target (one `flush` handshake).
    FlushPerTarget,
    /// An active-message dispatch on the receive side.
    AmDispatch,
}

/// Per-operation base + per-byte costs, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Fixed overhead per operation.
    pub base_ns: f64,
    /// Additional cost per payload byte.
    pub per_byte_ns: f64,
}

impl OpCost {
    /// Zero cost.
    pub const FREE: OpCost = OpCost {
        base_ns: 0.0,
        per_byte_ns: 0.0,
    };

    /// A pure per-op overhead.
    pub const fn fixed(base_ns: f64) -> Self {
        OpCost {
            base_ns,
            per_byte_ns: 0.0,
        }
    }

    /// Total cost of an operation moving `bytes` bytes.
    pub fn cost_ns(&self, bytes: usize) -> f64 {
        self.base_ns + self.per_byte_ns * bytes as f64
    }
}

/// A full delay configuration for one substrate instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayConfig {
    /// Cost table indexed by [`DelayOp`].
    pub p2p_inject: OpCost,
    /// See [`DelayOp::P2pReceive`].
    pub p2p_receive: OpCost,
    /// See [`DelayOp::RmaPut`].
    pub rma_put: OpCost,
    /// See [`DelayOp::RmaGet`].
    pub rma_get: OpCost,
    /// See [`DelayOp::RmaAtomic`].
    pub rma_atomic: OpCost,
    /// See [`DelayOp::FlushPerTarget`]. Charged once per target rank, which
    /// is how `MPI_Win_flush_all`'s Θ(P) cost arises.
    pub flush_per_target: OpCost,
    /// See [`DelayOp::AmDispatch`].
    pub am_dispatch: OpCost,
}

impl Default for DelayConfig {
    fn default() -> Self {
        DelayConfig::free()
    }
}

impl DelayConfig {
    /// The all-zero configuration (no artificial delays).
    pub const fn free() -> Self {
        DelayConfig {
            p2p_inject: OpCost::FREE,
            p2p_receive: OpCost::FREE,
            rma_put: OpCost::FREE,
            rma_get: OpCost::FREE,
            rma_atomic: OpCost::FREE,
            flush_per_target: OpCost::FREE,
            am_dispatch: OpCost::FREE,
        }
    }

    /// Cost entry for `op`.
    pub fn cost(&self, op: DelayOp) -> OpCost {
        match op {
            DelayOp::P2pInject => self.p2p_inject,
            DelayOp::P2pReceive => self.p2p_receive,
            DelayOp::RmaPut => self.rma_put,
            DelayOp::RmaGet => self.rma_get,
            DelayOp::RmaAtomic => self.rma_atomic,
            DelayOp::FlushPerTarget => self.flush_per_target,
            DelayOp::AmDispatch => self.am_dispatch,
        }
    }

    /// Charge the configured cost of `op` on `bytes` bytes by spin-waiting.
    ///
    /// Spinning (rather than sleeping) keeps sub-microsecond costs accurate;
    /// the OS cannot sleep for 200 ns.
    pub fn charge(&self, op: DelayOp, bytes: usize) {
        let ns = self.cost(op).cost_ns(bytes);
        spin_for_ns(ns);
    }
}

/// Busy-wait for approximately `ns` nanoseconds. No-op for `ns <= 0`.
///
/// Under model control ([`crate::sched`]) the wait becomes a single
/// scheduler yield instead: wall-clock cost is meaningless in a modeled
/// schedule, and a busy-wait would wedge exploration (only one thread
/// runs at a time, and it would spin inside its quantum).
pub fn spin_for_ns(ns: f64) {
    if ns <= 0.0 {
        return;
    }
    if crate::sched::yield_tick() {
        return;
    }
    let dur = Duration::from_nanos(ns as u64);
    let start = Instant::now();
    while start.elapsed() < dur {
        std::hint::spin_loop();
    }
}

/// Monotonic nanoseconds since an arbitrary process-local origin.
///
/// This is the workspace's one sanctioned wall-clock read for timing
/// statistics (the nondeterminism lint forbids raw `Instant::now` outside
/// this file): under model control it returns the gate's deterministic
/// logical clock instead of real time, so timed wrappers don't reintroduce
/// schedule-dependent values into modeled runs.
pub fn monotonic_ns() -> u64 {
    if crate::sched::active() {
        // One scheduled operation ≙ 1 µs of logical time.
        return crate::sched::logical_steps() * 1_000;
    }
    use std::sync::OnceLock;
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    origin.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing")]
    fn free_config_charges_nothing_fast() {
        let cfg = DelayConfig::free();
        let t = Instant::now();
        for _ in 0..10_000 {
            cfg.charge(DelayOp::RmaPut, 1 << 20);
        }
        assert!(t.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn cost_combines_base_and_per_byte() {
        let c = OpCost {
            base_ns: 100.0,
            per_byte_ns: 0.5,
        };
        assert_eq!(c.cost_ns(0), 100.0);
        assert_eq!(c.cost_ns(200), 200.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing")]
    fn spin_waits_roughly_the_requested_time() {
        let t = Instant::now();
        spin_for_ns(2_000_000.0); // 2 ms
        let el = t.elapsed();
        assert!(el >= Duration::from_millis(2), "{el:?}");
        assert!(el < Duration::from_millis(200), "{el:?}");
    }

    #[test]
    fn cost_lookup_matches_fields() {
        let mut cfg = DelayConfig::free();
        cfg.flush_per_target = OpCost::fixed(42.0);
        assert_eq!(cfg.cost(DelayOp::FlushPerTarget).base_ns, 42.0);
        assert_eq!(cfg.cost(DelayOp::RmaGet), OpCost::FREE);
    }
}
