//! Deterministic fault injection: the `FaultPlan` knob, the per-fabric
//! failure registry, and the [`Fault`] query handle.
//!
//! A fault plan kills a chosen image at a chosen site — its *n*-th
//! blocking point (counted per rank across every blocking receive) or
//! the *k*-th hit of a named runtime operation. The kill is an ordinary
//! panic with an [`ImageKilled`] payload, so the scheduler's existing
//! unwind paths (carrier release, parked-waiter wakeup, model-gate
//! thread retirement) do the teardown; fault-tolerant launchers turn it
//! into a `None` result instead of a job failure.
//!
//! Detection is **perfect-detector** style and piggybacks on the wires
//! that already exist: before it unwinds, a dying image (a) marks the
//! per-fabric registry and (b) broadcasts one `KIND_FAULT` control
//! packet to every rank on every plane. The registry is written *before*
//! any notice is sent, so any rank that has seen a notice — or merely
//! re-checks the registry at the top of a blocking loop — observes a
//! consistent failed set. With [`FaultPlan::detect`] off, neither the
//! registry nor the notices are produced: survivors hang on the dead
//! partner, which is exactly the negative control the model explorer
//! turns into a replayable deadlock token.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Packet kind reserved for failure notices. Substrate kinds live in
/// 1..=3 (mpisim) and 10..=14 (gasnetsim); 0xFA is clear of both.
pub const KIND_FAULT: u16 = 0xFA;

/// Maximum number of kill directives one plan can carry (kept fixed-size
/// so `FaultPlan` stays `Copy`, like every other config knob).
pub const MAX_KILLS: usize = 4;

/// Where in an image's execution the plan kills it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillSite {
    /// At the image's `n`-th blocking point (0-based count of blocking
    /// receives it enters), independent of which operation blocks.
    Blocking(u64),
    /// At the `hits`-th occurrence (1-based) of the named runtime
    /// operation on that image (`"event_notify"`, `"finish"`,
    /// `"agg_forward"`, ...). Names are declared by the instrumented
    /// layer via [`Fault::op_hit`].
    Op {
        /// Operation name as passed to [`Fault::op_hit`].
        name: &'static str,
        /// 1-based occurrence count that triggers the kill.
        hits: u32,
    },
}

/// One kill directive: which image dies, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kill {
    /// Global rank of the image to kill.
    pub rank: usize,
    /// The site at which it dies.
    pub site: KillSite,
}

/// Deterministic, seeded fault schedule carried inside `FabricConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Kill directives (first match per rank wins; `None` slots unused).
    pub kills: [Option<Kill>; MAX_KILLS],
    /// Produce failure notices and registry marks so survivors *detect*
    /// the death. `false` is the negative control: the image dies
    /// silently and partners hang (the model gate reports the deadlock).
    pub detect: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: nothing dies. This is the hot-path default; every
    /// fault check is gated on one `any_failed` load that can never flip.
    pub const fn none() -> FaultPlan {
        FaultPlan { kills: [None; MAX_KILLS], detect: true }
    }

    /// A plan with a single kill directive.
    pub const fn kill(rank: usize, site: KillSite) -> FaultPlan {
        let mut p = FaultPlan::none();
        p.kills[0] = Some(Kill { rank, site });
        p
    }

    /// Add another kill directive (panics past [`MAX_KILLS`]).
    pub fn with(mut self, rank: usize, site: KillSite) -> FaultPlan {
        let slot = self
            .kills
            .iter()
            .position(|k| k.is_none())
            .expect("fault plan full");
        self.kills[slot] = Some(Kill { rank, site });
        self
    }

    /// Disable detection: the negative control (survivors hang).
    pub fn undetected(mut self) -> FaultPlan {
        self.detect = false;
        self
    }

    /// Derive a single-kill plan from a proptest-style seed: kills a
    /// non-zero rank (rank 0 usually owns verification) at a small
    /// blocking-point index, both taken from the seed.
    pub fn seeded(seed: u64, p: usize) -> FaultPlan {
        let rank = if p <= 1 { 0 } else { 1 + (seed as usize % (p - 1)) };
        let site = KillSite::Blocking(seed >> 32 & 0x7);
        FaultPlan::kill(rank, site)
    }

    /// True when no kill directive is present.
    pub fn is_empty(&self) -> bool {
        self.kills.iter().all(|k| k.is_none())
    }

    fn kill_for(&self, rank: usize) -> Option<KillSite> {
        self.kills
            .iter()
            .flatten()
            .find(|k| k.rank == rank)
            .map(|k| k.site)
    }
}

/// Panic payload carried by a killed image's unwind. Fault-tolerant
/// launchers downcast join errors to this to distinguish an injected
/// death from a real bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageKilled {
    /// The rank that died.
    pub rank: usize,
}

/// Per-fabric failure registry. One per `Fabric` (not process-global:
/// concurrent test fabrics must not see each other's failures).
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Fast path: false until the first failure; a single relaxed load
    /// keeps the fault-free path free of per-rank scans.
    any: AtomicBool,
    failed: Vec<AtomicBool>,
    blocking_hits: Vec<AtomicU64>,
    op_hits: Vec<AtomicU64>,
}

impl FaultState {
    pub(crate) fn new(n: usize, plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            any: AtomicBool::new(false),
            failed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            blocking_hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
            op_hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Cloneable handle onto a fabric's failure registry, exposed to the
/// substrates and the runtime via `Endpoint::fault()`.
#[derive(Debug, Clone)]
pub struct Fault {
    state: Arc<FaultState>,
    rank: usize,
}

impl Fault {
    pub(crate) fn new(state: Arc<FaultState>, rank: usize) -> Fault {
        Fault { state, rank }
    }

    /// The fault plan this fabric was configured with.
    pub fn plan(&self) -> FaultPlan {
        self.state.plan
    }

    /// The rank this handle belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// True when any image has failed (one relaxed load).
    #[inline]
    pub fn any_failed(&self) -> bool {
        self.state.any.load(Ordering::Relaxed)
    }

    /// True when `rank` has failed.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.any_failed() && self.state.failed[rank].load(Ordering::Acquire)
    }

    /// The failed members of `watch`, ascending. Empty on the fault-free
    /// fast path after a single relaxed load.
    pub fn failed_of(&self, watch: &[usize]) -> Vec<usize> {
        if !self.any_failed() {
            return Vec::new();
        }
        let mut out: Vec<usize> = watch
            .iter()
            .copied()
            .filter(|&r| self.state.failed[r].load(Ordering::Acquire))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every failed rank, ascending.
    pub fn failed_set(&self) -> Vec<usize> {
        if !self.any_failed() {
            return Vec::new();
        }
        (0..self.state.failed.len())
            .filter(|&r| self.state.failed[r].load(Ordering::Acquire))
            .collect()
    }

    /// Mark `rank` failed in the registry. Ordered release so a notice
    /// consumer's acquire load observes the mark.
    pub(crate) fn mark_failed(&self, rank: usize) {
        self.state.failed[rank].store(true, Ordering::Release);
        self.state.any.store(true, Ordering::Release);
    }

    /// Count one blocking-point entry for this rank; true when the plan
    /// says this is the one it dies at.
    pub(crate) fn blocking_hit(&self) -> bool {
        let Some(KillSite::Blocking(n)) = self.state.plan.kill_for(self.rank) else {
            return false;
        };
        let k = self.state.blocking_hits[self.rank].fetch_add(1, Ordering::Relaxed);
        k == n && !self.is_failed(self.rank)
    }

    /// Count one hit of the named operation for this rank; true when the
    /// plan kills this rank at this occurrence. The caller is expected to
    /// then invoke its layer's `fail_now` path.
    pub fn op_hit(&self, name: &str) -> bool {
        let Some(KillSite::Op { name: want, hits }) = self.state.plan.kill_for(self.rank) else {
            return false;
        };
        if want != name {
            return false;
        }
        let k = self.state.op_hits[self.rank].fetch_add(1, Ordering::Relaxed);
        k + 1 == u64::from(hits) && !self.is_failed(self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_copy_and_defaults_empty() {
        let p = FaultPlan::default();
        let q = p; // Copy
        assert!(p.is_empty() && q.is_empty() && p.detect);
    }

    #[test]
    fn kill_for_first_match_wins() {
        let p = FaultPlan::kill(1, KillSite::Blocking(3))
            .with(1, KillSite::Blocking(9))
            .with(2, KillSite::Op { name: "finish", hits: 2 });
        assert_eq!(p.kill_for(1), Some(KillSite::Blocking(3)));
        assert_eq!(p.kill_for(2), Some(KillSite::Op { name: "finish", hits: 2 }));
        assert_eq!(p.kill_for(0), None);
    }

    #[test]
    fn registry_counts_and_marks() {
        let st = Arc::new(FaultState::new(4, FaultPlan::kill(2, KillSite::Blocking(1))));
        let f2 = Fault::new(Arc::clone(&st), 2);
        let f0 = Fault::new(Arc::clone(&st), 0);
        assert!(!f2.blocking_hit(), "0th blocking point survives");
        assert!(f2.blocking_hit(), "1st blocking point kills");
        assert!(!f0.blocking_hit(), "other ranks never match");
        assert!(!f0.any_failed());
        f2.mark_failed(2);
        assert!(f0.any_failed() && f0.is_failed(2) && !f0.is_failed(0));
        assert_eq!(f0.failed_of(&[0, 1, 3]), Vec::<usize>::new());
        assert_eq!(f0.failed_of(&[0, 2, 3]), vec![2]);
        assert_eq!(f0.failed_set(), vec![2]);
    }

    #[test]
    fn op_hits_are_one_based() {
        let st = Arc::new(FaultState::new(
            2,
            FaultPlan::kill(1, KillSite::Op { name: "event_notify", hits: 2 }),
        ));
        let f = Fault::new(st, 1);
        assert!(!f.op_hit("finish"), "wrong name never matches");
        assert!(!f.op_hit("event_notify"), "first hit survives");
        assert!(f.op_hit("event_notify"), "second hit kills");
    }

    #[test]
    fn seeded_plans_avoid_rank_zero() {
        for seed in 0..64u64 {
            let p = FaultPlan::seeded(seed, 8);
            let k = p.kills[0].unwrap();
            assert!(k.rank >= 1 && k.rank < 8);
        }
    }
}
