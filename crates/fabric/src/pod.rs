//! Plain-old-data marker trait and byte-level views.
//!
//! Substrates move typed buffers (`&[f64]`, `&[u64]`, ...) through byte-
//! oriented fabric primitives. [`Pod`] marks element types for which a
//! byte-level reinterpretation is sound, mirroring what an MPI datatype
//! engine does for predefined contiguous types.

/// Marker for types that are valid for any bit pattern and contain no
/// padding, so `&[T] -> &[u8]` and back are sound.
///
/// # Safety
///
/// Implementors must guarantee:
/// * every bit pattern of `size_of::<T>()` bytes is a valid `T`,
/// * `T` has no padding bytes,
/// * `T` has no interior mutability and no drop glue (`T: Copy`).
// SAFETY: unsafe trait declaration — the contract implementors must
// uphold is the `# Safety` section above.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// Predefined "MPI datatypes".
// SAFETY: (this and the impls below) primitive integers and `()` accept
// every bit pattern, have no padding, no interior mutability, no drop glue.
unsafe impl Pod for () {}
unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {} // SAFETY: see block comment above.
unsafe impl Pod for u16 {} // SAFETY: see block comment above.
unsafe impl Pod for i16 {} // SAFETY: see block comment above.
unsafe impl Pod for u32 {} // SAFETY: see block comment above.
unsafe impl Pod for i32 {} // SAFETY: see block comment above.
unsafe impl Pod for u64 {} // SAFETY: see block comment above.
unsafe impl Pod for i64 {} // SAFETY: see block comment above.
unsafe impl Pod for usize {} // SAFETY: see block comment above.
unsafe impl Pod for isize {} // SAFETY: see block comment above.
// SAFETY: every 32-/64-bit pattern is a valid float (NaN payloads
// included); no padding, `Copy`.
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {} // SAFETY: see f32 above.
// SAFETY: an array of Pod elements is element-wise valid for any bytes,
// and `[T; N]` inserts no padding between elements.
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Reinterpret a typed slice as bytes.
pub fn as_bytes<T: Pod>(s: &[T]) -> &[u8] {
    // SAFETY: `T: Pod` guarantees no padding and bit-pattern validity; the
    // length arithmetic cannot overflow because the slice already exists.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// Reinterpret a typed slice as mutable bytes.
pub fn as_bytes_mut<T: Pod>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: as `as_bytes`, plus exclusive access via `&mut`.
    unsafe {
        std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(s))
    }
}

/// Copy a byte buffer into a freshly allocated typed vector.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`; that is
/// always a protocol bug in the caller.
pub fn vec_from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let elem = std::mem::size_of::<T>();
    assert!(
        elem == 0 || bytes.len() % elem == 0,
        "byte length {} not a multiple of element size {}",
        bytes.len(),
        elem
    );
    let n = bytes.len().checked_div(elem).unwrap_or(0);
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: capacity reserved above; Pod means any bit pattern is valid.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    out
}

/// Copy bytes into an existing typed slice.
///
/// # Panics
///
/// Panics if the byte length does not exactly cover `dst`.
pub fn copy_to_slice<T: Pod>(dst: &mut [T], bytes: &[u8]) {
    assert_eq!(
        std::mem::size_of_val(dst),
        bytes.len(),
        "destination size mismatch"
    );
    as_bytes_mut(dst).copy_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let xs = [1.5f64, -2.25, 0.0, f64::MAX];
        let bytes = as_bytes(&xs);
        assert_eq!(bytes.len(), 32);
        let back: Vec<f64> = vec_from_bytes(bytes);
        assert_eq!(back, xs);
    }

    #[test]
    fn roundtrip_u64() {
        let xs = [u64::MAX, 0, 42];
        let back: Vec<u64> = vec_from_bytes(as_bytes(&xs));
        assert_eq!(back, xs);
    }

    #[test]
    fn copy_to_slice_works() {
        let src = [7u32, 8, 9];
        let mut dst = [0u32; 3];
        copy_to_slice(&mut dst, as_bytes(&src));
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn vec_from_bytes_rejects_ragged() {
        let bytes = [0u8; 7];
        let _: Vec<u64> = vec_from_bytes(&bytes);
    }

    #[test]
    fn as_bytes_mut_roundtrip() {
        let mut xs = [1u16, 2, 3];
        as_bytes_mut(&mut xs)[0] = 0xff;
        // Low byte replaced, high byte untouched (little-endian).
        assert_eq!(xs[0], 0x00ff);
    }

    #[test]
    fn nested_arrays_are_pod() {
        let xs = [[1u8, 2], [3, 4]];
        assert_eq!(as_bytes(&xs), &[1, 2, 3, 4]);
    }
}
