//! The model-checking scheduler gate (loom/shuttle-style).
//!
//! When a gate is **armed** (by `caf-model`'s exploration engine), every
//! image thread of one simulated job serializes through this module:
//! exactly one thread runs at a time, and control changes hands only at
//! *yield points* — the instrumented substrate entry points (RMA
//! put/get/atomic/flush, local window access), the fabric mailbox
//! operations (send / try_recv / recv_blocking), segment registry
//! updates, and charged delays ([`crate::delay::spin_for_ns`] becomes a
//! single yield instead of a busy-wait). The segment-direct lint
//! (`cargo xtask lint`) guarantees that no data-plane access bypasses
//! these entry points, so the yield set covers every schedule-visible
//! operation.
//!
//! The protocol is *announce-before-execute*: a thread declares its next
//! operation ([`ModelOp`]) and parks; the scheduler (running on whichever
//! thread yielded last) picks the next thread to run from the enabled
//! set, consulting a [`Chooser`] installed by the exploration engine.
//! Because every parked thread's next operation is known, the engine can
//! compute conflicts *before* execution — the prerequisite for sleep-set
//! partial-order reduction.
//!
//! Blocking operations register a wait edge (op + optional target image,
//! via [`wait_hint`]); a blocked thread becomes schedulable again only
//! after some other thread performs a real operation. When no thread is
//! runnable and at least one is blocked, the run is a **deadlock**: the
//! gate aborts all threads with a [`ModelAbort`] panic and reports the
//! wait-for edges instead of hanging (the paper's Figure 2 scenario).
//!
//! When no gate is armed, every entry point here is a single relaxed
//! atomic load — the same disarmed-cost discipline as `caf-trace` and
//! `caf-check`.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Sentinel owner matching any rank (whole-window operations: flush,
/// epoch open/close, free).
pub const ANY_OWNER: usize = usize::MAX;

/// A schedule-visible operation, announced at a yield point *before* it
/// executes. Memory operations carry the resource they touch — a region
/// id (MPI window id or GASNet segment id, disjoint by namespace), the
/// owning rank, and a byte range — so the exploration engine can decide
/// whether two pending operations commute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // fields are documented on the variants
pub enum ModelOp {
    /// Thread registered but has not yet announced its first operation.
    /// Conservatively conflicts with everything.
    Start,
    /// Mailbox injection into `(plane, to)`.
    Send { plane: usize, to: usize },
    /// Mailbox poll/consume of `(plane, rank)`.
    Recv { plane: usize, rank: usize },
    /// Data-plane read of `owner`'s part of `region`, bytes `[lo, hi)`.
    Read { region: u64, owner: usize, lo: u64, hi: u64 },
    /// Data-plane write.
    Write { region: u64, owner: usize, lo: u64, hi: u64 },
    /// Data-plane atomic (accumulate / fetch-op / CAS), or an
    /// order-sensitive whole-window transition (flush, lock_all, free)
    /// with `owner == ANY_OWNER`.
    Atomic { region: u64, owner: usize, lo: u64, hi: u64 },
    /// Segment registry mutation (register/unregister).
    Registry,
    /// A charged delay or other neutral yield; independent of everything.
    Tick,
    /// Image `rank` dies here (fault injection). Failure changes the
    /// enabledness of every blocking operation, so it conservatively
    /// conflicts with everything — the explorer interleaves the kill
    /// against every other pending operation.
    Fail { rank: usize },
}

impl ModelOp {
    fn mem(&self) -> Option<(u64, usize, u64, u64, bool)> {
        match *self {
            ModelOp::Read { region, owner, lo, hi } => Some((region, owner, lo, hi, false)),
            ModelOp::Write { region, owner, lo, hi } | ModelOp::Atomic { region, owner, lo, hi } => {
                Some((region, owner, lo, hi, true))
            }
            _ => None,
        }
    }

    /// Do two pending operations fail to commute? Same mailbox queue, or
    /// overlapping byte ranges of the same region with a write/atomic
    /// involved. `Start` is unknown and conservatively conflicts.
    pub fn conflicts(a: &ModelOp, b: &ModelOp) -> bool {
        use ModelOp::*;
        match (a, b) {
            (Start, _) | (_, Start) => true,
            (Fail { .. }, _) | (_, Fail { .. }) => true,
            (Tick, _) | (_, Tick) => false,
            (Send { plane: p1, to: t1 }, Send { plane: p2, to: t2 }) => p1 == p2 && t1 == t2,
            (Send { plane: p1, to }, Recv { plane: p2, rank })
            | (Recv { plane: p2, rank }, Send { plane: p1, to }) => p1 == p2 && to == rank,
            (Recv { plane: p1, rank: r1 }, Recv { plane: p2, rank: r2 }) => p1 == p2 && r1 == r2,
            (Registry, Registry) => true,
            _ => match (a.mem(), b.mem()) {
                (Some((ra, oa, la, ha, wa)), Some((rb, ob, lb, hb, wb))) => {
                    ra == rb
                        && (oa == ob || oa == ANY_OWNER || ob == ANY_OWNER)
                        && la < hb
                        && lb < ha
                        && (wa || wb)
                }
                _ => false,
            },
        }
    }

    /// Compact single-token rendering for schedule traces.
    pub fn brief(&self) -> String {
        match *self {
            ModelOp::Start => "start".into(),
            ModelOp::Send { plane, to } => format!("send(p{plane}->{to})"),
            ModelOp::Recv { plane, rank } => format!("recv(p{plane}@{rank})"),
            ModelOp::Read { region, owner, lo, hi } => {
                format!("read(r{region:x}@{owner}:{lo}..{hi})")
            }
            ModelOp::Write { region, owner, lo, hi } => {
                format!("write(r{region:x}@{owner}:{lo}..{hi})")
            }
            ModelOp::Atomic { region, owner, lo, hi } => {
                if owner == ANY_OWNER {
                    format!("sync(r{region:x})")
                } else {
                    format!("atomic(r{region:x}@{owner}:{lo}..{hi})")
                }
            }
            ModelOp::Registry => "registry".into(),
            ModelOp::Tick => "tick".into(),
            ModelOp::Fail { rank } => format!("fail({rank})"),
        }
    }
}

/// One scheduling decision, recorded for replay and partial-order
/// reduction.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Image whose operation was scheduled.
    pub chosen: usize,
    /// The operation it announced.
    pub op: ModelOp,
    /// True when this step re-attempted a blocked operation rather than
    /// executing a fresh announcement.
    pub retry: bool,
    /// Images that were schedulable at this step.
    pub enabled: Vec<usize>,
    /// Every live image's announced next operation at this step.
    pub pending: Vec<(usize, ModelOp)>,
}

/// One edge of the wait-for graph at a deadlock.
#[derive(Debug, Clone)]
pub struct BlockedEdge {
    /// The blocked image.
    pub image: usize,
    /// The operation it is parked in.
    pub op: ModelOp,
    /// The image it waits on, when the blocking call site declared one
    /// via [`wait_hint`].
    pub target: Option<usize>,
}

impl std::fmt::Display for BlockedEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "image {} blocked in {}", self.image, self.op.brief())?;
        if let Some(t) = self.target {
            write!(f, " waiting on image {t}")?;
        }
        Ok(())
    }
}

/// How one controlled run ended.
#[derive(Debug, Clone)]
pub enum RunStatus {
    /// Every image ran to completion.
    Completed,
    /// No image was runnable: the wait-for edges of every blocked image.
    Deadlock(Vec<BlockedEdge>),
    /// The per-schedule step budget was exhausted (livelock guard).
    StepBudget,
    /// The chooser cut the run short (sleep-set prune: every enabled
    /// thread is asleep, so this subtree is covered elsewhere).
    Pruned,
    /// An image panicked with a non-gate payload (a real bug or a failed
    /// assertion inside the modeled program).
    Panicked,
}

/// The full record of one controlled run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Every scheduling decision, in order.
    pub steps: Vec<StepRecord>,
    /// Why the run ended.
    pub status: RunStatus,
}

/// A scheduling decision returned by a [`Chooser`].
#[derive(Debug, Clone, Copy)]
pub enum Choice {
    /// Run this image next (must be a member of the enabled set).
    Pick(usize),
    /// Abandon the run: the exploration engine knows the remaining
    /// suffix is covered by a sibling branch.
    Prune,
}

/// The policy consulted at every scheduling point. Implemented by the
/// exploration engine (DFS replay, seeded random walk).
pub trait Chooser: Send {
    /// Pick the next image to run. `step` is the global step index
    /// (including forced start-discovery steps), `enabled` the
    /// schedulable images in ascending order, `pending` every live
    /// image's announced operation.
    fn choose(&mut self, step: usize, enabled: &[usize], pending: &[(usize, ModelOp)]) -> Choice;
}

/// Panic payload used to tear down image threads on abort. The
/// exploration engine suppresses it in its panic hook.
pub struct ModelAbort;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TStatus {
    Ready,
    Blocked { epoch: u64 },
    Done,
}

struct PendingOp {
    op: ModelOp,
    target: Option<usize>,
}

struct GateState {
    n: usize,
    registered: usize,
    started: bool,
    status: Vec<TStatus>,
    pending: Vec<PendingOp>,
    current: Option<usize>,
    /// Bumped whenever a fresh (non-retry) operation is scheduled;
    /// blocked threads become schedulable only when it has advanced past
    /// the value captured when they parked.
    progress: u64,
    abort: Option<RunStatus>,
    chooser: Box<dyn Chooser>,
    steps: Vec<StepRecord>,
    max_steps: usize,
    panicked: bool,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static GATE: Mutex<Option<GateState>> = Mutex::new(None);
static GATE_CV: Condvar = Condvar::new();
/// Deterministic logical clock: total steps scheduled under the current
/// gate (read by [`crate::delay::monotonic_ns`]).
static LOGICAL_STEPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
    static HINT: Cell<Option<usize>> = const { Cell::new(None) };
    static FAULT_DYING: Cell<bool> = const { Cell::new(false) };
}

/// Mark the calling thread as unwinding from an *injected* image death.
/// Its gate retirement then counts as normal completion rather than a
/// program panic (the surviving images keep running; without this the
/// gate would abort the whole schedule as `Panicked`).
pub fn set_fault_dying() {
    FAULT_DYING.with(|f| f.set(true));
}

/// True while a gate is armed in this process. The fast path of every
/// yield point.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// True when the calling thread is a registered participant of an armed
/// gate — i.e. when yield points must actually yield.
#[inline]
pub fn active() -> bool {
    armed() && TID.with(|t| t.get().is_some())
}

/// The gate's deterministic logical clock, in scheduled steps.
pub fn logical_steps() -> u64 {
    LOGICAL_STEPS.load(Ordering::Relaxed)
}

fn lock() -> MutexGuard<'static, Option<GateState>> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wake every parked gate participant to re-check the schedule. Thread
/// participants sleep on [`GATE_CV`]; under `ExecMode::Tasks` they are
/// cooperatively parked on the caf-sched executor instead, so every
/// notify pairs with an `unpark_all` (spurious permits are harmless —
/// a woken task re-checks `current` and parks again). Lock order is
/// GATE → task-ctrl → run-queue, never reversed.
fn wake_waiters() {
    GATE_CV.notify_all();
    caf_sched::unpark_all();
}

/// Arm the gate for one controlled run of `n` image threads. Fails if a
/// gate is already armed (model runs are process-exclusive; serialize
/// tests on a lock). Also inhibits the `caf-trace` stall watchdog so no
/// free-running sampling thread perturbs or outlives the schedule.
pub fn arm(n: usize, max_steps: usize, chooser: Box<dyn Chooser>) -> Result<(), &'static str> {
    assert!(n > 0, "model run needs at least one image");
    let mut st = lock();
    if st.is_some() {
        return Err("scheduler gate already armed");
    }
    *st = Some(GateState {
        n,
        registered: 0,
        started: false,
        status: vec![TStatus::Ready; n],
        pending: (0..n)
            .map(|_| PendingOp { op: ModelOp::Start, target: None })
            .collect(),
        current: None,
        progress: 0,
        abort: None,
        chooser,
        steps: Vec::new(),
        max_steps,
        panicked: false,
    });
    LOGICAL_STEPS.store(0, Ordering::Relaxed);
    caf_trace::set_stall_watchdog_inhibit(true);
    ARMED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Disarm the gate and collect the run record. Call after every image
/// thread has been joined.
pub fn disarm() -> Option<RunOutcome> {
    let mut st = lock();
    let g = st.take()?;
    ARMED.store(false, Ordering::SeqCst);
    caf_trace::set_stall_watchdog_inhibit(false);
    let status = match g.abort {
        Some(s) => s,
        None if g.panicked => RunStatus::Panicked,
        None => RunStatus::Completed,
    };
    Some(RunOutcome { steps: g.steps, status })
}

/// RAII registration of an image thread with the armed gate. A no-op
/// handle when no gate is armed. On drop (normal return or unwind) the
/// thread is marked done and the scheduler moves on.
pub struct ThreadGuard {
    tid: Option<usize>,
}

/// Register the calling thread as image `rank` of the armed gate and
/// park until all `n` images have registered and this thread is
/// scheduled. Returns a no-op guard when no gate is armed.
pub fn register_thread(rank: usize) -> ThreadGuard {
    if !armed() {
        return ThreadGuard { tid: None };
    }
    let mut st = lock();
    let Some(g) = st.as_mut() else {
        return ThreadGuard { tid: None };
    };
    assert!(
        rank < g.n,
        "model gate armed for {} images but thread registered as rank {rank}",
        g.n
    );
    assert!(
        g.status[rank] == TStatus::Ready && !g.started,
        "duplicate registration for image {rank}"
    );
    TID.with(|t| t.set(Some(rank)));
    g.registered += 1;
    if g.registered == g.n {
        g.started = true;
        schedule_next(g);
        wake_waiters();
    }
    let st = wait_turn(st, rank);
    drop(st);
    ThreadGuard { tid: Some(rank) }
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        let Some(me) = self.tid else { return };
        TID.with(|t| t.set(None));
        HINT.with(|h| h.set(None));
        let fault_dying = FAULT_DYING.with(|f| f.replace(false));
        let mut st = lock();
        let Some(g) = st.as_mut() else { return };
        g.status[me] = TStatus::Done;
        if std::thread::panicking() && !fault_dying {
            g.panicked = true;
            if g.abort.is_none() {
                // A real panic inside the modeled program: tear the other
                // images down rather than letting them park forever.
                g.abort = Some(RunStatus::Panicked);
            }
        }
        if g.current == Some(me) {
            g.current = None;
            if g.abort.is_none() {
                schedule_next(g);
            }
        }
        wake_waiters();
    }
}

/// Park until the gate schedules `me`; panics with [`ModelAbort`] when
/// the run is aborted.
fn wait_turn(
    mut st: MutexGuard<'static, Option<GateState>>,
    me: usize,
) -> MutexGuard<'static, Option<GateState>> {
    loop {
        let Some(g) = st.as_mut() else {
            // Gate disarmed under us (abort teardown): unwind.
            drop(st);
            std::panic::panic_any(ModelAbort);
        };
        if g.abort.is_some() {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if g.current == Some(me) {
            return st;
        }
        if caf_sched::on_task() {
            // Task-mode participant: a condvar wait here would OS-block
            // the carrier *and occupy its worker*; with fewer workers
            // than images the job could never schedule the image whose
            // turn it is. Release the gate lock, return the worker via
            // the cooperative park, and re-check on wake (every
            // `wake_waiters` hands out permits; a permit that raced this
            // park is banked, so the wake cannot be lost).
            drop(st);
            caf_sched::park();
            st = lock();
        } else {
            st = GATE_CV.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Announce `op` as the calling thread's next operation and park until
/// the scheduler grants it. No-op when the calling thread is not a gate
/// participant.
pub fn yield_op(op: ModelOp) {
    if !armed() {
        return;
    }
    let Some(me) = TID.with(|t| t.get()) else { return };
    let st = lock();
    if st.is_none() {
        return;
    }
    {
        let mut st = st;
        let g = st.as_mut().expect("checked above");
        if g.abort.is_some() {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        g.pending[me] = PendingOp { op, target: HINT.with(|h| h.get()) };
        g.current = None;
        schedule_next(g);
        wake_waiters();
        let _st = wait_turn(st, me);
    }
}

/// Park the calling thread as blocked (its announced operation could not
/// complete). It becomes schedulable again only after another thread
/// performs a fresh operation; being rescheduled is permission to retry.
fn park_blocked() {
    let Some(me) = TID.with(|t| t.get()) else { return };
    let st = lock();
    if st.is_none() {
        return;
    }
    let mut st = st;
    let g = st.as_mut().expect("checked above");
    if g.abort.is_some() {
        drop(st);
        std::panic::panic_any(ModelAbort);
    }
    g.status[me] = TStatus::Blocked { epoch: g.progress };
    g.current = None;
    schedule_next(g);
    wake_waiters();
    let mut st = wait_turn(st, me);
    let g = st.as_mut().expect("gate present while scheduled");
    g.status[me] = TStatus::Ready;
}

/// Run a blocking operation under the gate: announce `op`, then attempt
/// `try_fn`; on failure park until progress elsewhere, then retry. The
/// caller must be a gate participant (check [`active`] first).
pub fn model_blocking<T>(op: ModelOp, mut try_fn: impl FnMut() -> Option<T>) -> T {
    yield_op(op);
    loop {
        if let Some(v) = try_fn() {
            return v;
        }
        park_blocked();
    }
}

/// Yield for a charged delay. Returns true when the gate consumed the
/// delay (the caller must then skip its real wait).
pub fn yield_tick() -> bool {
    if !active() {
        return false;
    }
    yield_op(ModelOp::Tick);
    true
}

/// RAII wait-target annotation: while alive, blocking operations on this
/// thread report `target` as the image they wait on (the wait-for graph
/// edge in deadlock reports).
pub struct WaitHint {
    prev: Option<usize>,
}

/// Declare that blocking operations performed while the returned guard
/// is alive wait on image `target`.
pub fn wait_hint(target: usize) -> WaitHint {
    let prev = HINT.with(|h| h.replace(Some(target)));
    WaitHint { prev }
}

impl Drop for WaitHint {
    fn drop(&mut self) {
        let prev = self.prev;
        HINT.with(|h| h.set(prev));
    }
}

/// Pick the next thread to run. Called with the gate locked and no
/// current thread.
fn schedule_next(g: &mut GateState) {
    debug_assert!(g.current.is_none());
    if g.abort.is_some() {
        return;
    }
    if g.steps.len() >= g.max_steps {
        g.abort = Some(RunStatus::StepBudget);
        return;
    }
    let pending_snapshot = |g: &GateState| -> Vec<(usize, ModelOp)> {
        (0..g.n)
            .filter(|&t| g.status[t] != TStatus::Done)
            .map(|t| (t, g.pending[t].op))
            .collect()
    };
    // Start discovery: run threads that have not announced their first
    // operation yet, in tid order. These are forced (single-candidate)
    // steps, so they create no exploration branching.
    if let Some(t) = (0..g.n)
        .find(|&t| g.status[t] == TStatus::Ready && g.pending[t].op == ModelOp::Start)
    {
        let pending = pending_snapshot(g);
        g.steps.push(StepRecord {
            chosen: t,
            op: ModelOp::Start,
            retry: false,
            enabled: vec![t],
            pending,
        });
        LOGICAL_STEPS.fetch_add(1, Ordering::Relaxed);
        g.current = Some(t);
        return;
    }
    let enabled: Vec<usize> = (0..g.n)
        .filter(|&t| match g.status[t] {
            TStatus::Ready => true,
            TStatus::Blocked { epoch } => epoch < g.progress,
            TStatus::Done => false,
        })
        .collect();
    if enabled.is_empty() {
        if g.status.iter().all(|s| *s == TStatus::Done) {
            return; // run complete
        }
        let edges = (0..g.n)
            .filter(|&t| matches!(g.status[t], TStatus::Blocked { .. }))
            .map(|t| BlockedEdge {
                image: t,
                op: g.pending[t].op,
                target: g.pending[t].target,
            })
            .collect();
        g.abort = Some(RunStatus::Deadlock(edges));
        return;
    }
    let pending = pending_snapshot(g);
    match g.chooser.choose(g.steps.len(), &enabled, &pending) {
        Choice::Prune => {
            g.abort = Some(RunStatus::Pruned);
        }
        Choice::Pick(t) => {
            assert!(
                enabled.contains(&t),
                "chooser picked image {t} outside the enabled set {enabled:?}"
            );
            let retry = matches!(g.status[t], TStatus::Blocked { .. });
            if !retry {
                g.progress += 1;
            }
            g.steps.push(StepRecord {
                chosen: t,
                op: g.pending[t].op,
                retry,
                enabled,
                pending,
            });
            LOGICAL_STEPS.fetch_add(1, Ordering::Relaxed);
            g.current = Some(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fabric, Packet};
    use std::sync::Mutex as StdMutex;

    /// Model runs are process-exclusive; tests in this binary serialize.
    pub(crate) static GATE_TEST_LOCK: StdMutex<()> = StdMutex::new(());

    struct FirstEnabled;
    impl Chooser for FirstEnabled {
        fn choose(&mut self, _s: usize, enabled: &[usize], _p: &[(usize, ModelOp)]) -> Choice {
            Choice::Pick(enabled[0])
        }
    }

    fn run_gated(n: usize, f: impl Fn(crate::Endpoint) + Send + Sync) -> RunOutcome {
        arm(n, 10_000, Box::new(FirstEnabled)).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Fabric::run(n, &f)
        }));
        let out = disarm().expect("gate was armed");
        if matches!(out.status, RunStatus::Completed) {
            assert!(r.is_ok(), "completed run must not panic");
        }
        out
    }

    #[test]
    fn conflict_table() {
        use ModelOp::*;
        let w = Write { region: 1, owner: 0, lo: 0, hi: 8 };
        let r_olap = Read { region: 1, owner: 0, lo: 4, hi: 12 };
        let r_apart = Read { region: 1, owner: 0, lo: 8, hi: 16 };
        let r_other = Read { region: 2, owner: 0, lo: 0, hi: 8 };
        assert!(ModelOp::conflicts(&w, &r_olap));
        assert!(!ModelOp::conflicts(&w, &r_apart));
        assert!(!ModelOp::conflicts(&w, &r_other));
        assert!(!ModelOp::conflicts(&r_olap, &r_olap));
        let sync = Atomic { region: 1, owner: ANY_OWNER, lo: 0, hi: u64::MAX };
        assert!(ModelOp::conflicts(&sync, &w));
        assert!(ModelOp::conflicts(
            &Send { plane: 0, to: 1 },
            &Recv { plane: 0, rank: 1 }
        ));
        assert!(!ModelOp::conflicts(
            &Send { plane: 0, to: 1 },
            &Recv { plane: 1, rank: 1 }
        ));
        assert!(!ModelOp::conflicts(&Tick, &w));
        assert!(ModelOp::conflicts(&Start, &Tick));
    }

    #[test]
    fn gated_ping_pong_completes_and_records_steps() {
        let _l = GATE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let out = run_gated(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, Packet::control(0, 1, 7, [0; 4])).unwrap();
                let p = ep.recv_blocking().unwrap();
                assert_eq!(p.tag, 8);
            } else {
                let p = ep.recv_blocking().unwrap();
                assert_eq!(p.tag, 7);
                ep.send(0, Packet::control(1, 1, 8, [0; 4])).unwrap();
            }
        });
        assert!(matches!(out.status, RunStatus::Completed), "{:?}", out.status);
        // Both sends and both receives appear as scheduled operations.
        let sends = out
            .steps
            .iter()
            .filter(|s| matches!(s.op, ModelOp::Send { .. }))
            .count();
        assert_eq!(sends, 2, "steps: {:?}", out.steps);
    }

    #[test]
    fn cross_recv_deadlock_is_detected_not_hung() {
        let _l = GATE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Both ranks receive first: a genuine deadlock.
        let out = run_gated(2, |ep| {
            let peer = 1 - ep.rank();
            let _h = wait_hint(peer);
            let p = ep.recv_blocking().unwrap();
            ep.send(peer, p).unwrap();
        });
        match out.status {
            RunStatus::Deadlock(edges) => {
                assert_eq!(edges.len(), 2, "{edges:?}");
                assert_eq!(edges[0].target, Some(1));
                assert_eq!(edges[1].target, Some(0));
                assert!(matches!(edges[0].op, ModelOp::Recv { .. }));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn step_budget_bounds_livelock() {
        let _l = GATE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arm(1, 64, Box::new(FirstEnabled)).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Fabric::run(1, |ep| {
                // Spin forever polling an empty mailbox.
                loop {
                    if ep.try_recv().is_some() {
                        break;
                    }
                }
            })
        }));
        assert!(r.is_err());
        let out = disarm().unwrap();
        assert!(matches!(out.status, RunStatus::StepBudget), "{:?}", out.status);
        assert!(out.steps.len() >= 64);
    }

    #[test]
    fn disarmed_gate_is_inert() {
        assert!(!armed());
        yield_op(ModelOp::Tick); // must not block or panic
        assert!(!yield_tick());
        let g = register_thread(0);
        drop(g);
    }
}
