//! Error type shared by the fabric and the substrates layered on it.

use std::fmt;

/// Errors surfaced by fabric operations.
///
/// These are programming or configuration errors in the layers above the
/// fabric (a substrate asking for an out-of-bounds remote access, a rank id
/// past the job size, ...), not transient network conditions: the in-process
/// fabric is lossless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A remote access fell outside the bounds of the target segment.
    OutOfBounds {
        /// Byte offset of the access.
        offset: usize,
        /// Length of the access in bytes.
        len: usize,
        /// Capacity of the segment in bytes.
        capacity: usize,
    },
    /// An atomic word access was not aligned to its element size.
    BadAlignment {
        /// The offending byte offset.
        offset: usize,
        /// Required alignment in bytes.
        required: usize,
    },
    /// A segment id did not resolve to a live segment.
    UnknownSegment(u64),
    /// A rank id was `>=` the job size.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The job size.
        size: usize,
    },
    /// The peer endpoint's mailbox has been torn down.
    Disconnected,
    /// A blocking operation's partner set includes at least one failed
    /// image (fault injection, [`crate::FaultPlan`]). Carries the failed
    /// ranks known at detection time, ascending.
    ImageFailed {
        /// The failed ranks observed by the detector.
        failed: Vec<usize>,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "remote access [{offset}, {}) exceeds segment capacity {capacity}",
                offset + len
            ),
            FabricError::BadAlignment { offset, required } => {
                write!(f, "offset {offset} is not {required}-byte aligned")
            }
            FabricError::UnknownSegment(id) => write!(f, "unknown segment id {id}"),
            FabricError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for job of size {size}")
            }
            FabricError::Disconnected => write!(f, "peer endpoint disconnected"),
            FabricError::ImageFailed { failed } => {
                write!(f, "partner image(s) failed: {failed:?}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FabricError::OutOfBounds {
            offset: 8,
            len: 16,
            capacity: 10,
        };
        let s = e.to_string();
        assert!(s.contains("8"), "{s}");
        assert!(s.contains("24"), "{s}");
        assert!(s.contains("10"), "{s}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            FabricError::UnknownSegment(3),
            FabricError::UnknownSegment(3)
        );
        assert_ne!(
            FabricError::UnknownSegment(3),
            FabricError::UnknownSegment(4)
        );
    }

    #[test]
    fn rank_out_of_range_display() {
        let e = FabricError::RankOutOfRange { rank: 9, size: 8 };
        assert_eq!(e.to_string(), "rank 9 out of range for job of size 8");
    }
}
