//! Small topology helpers shared by collectives and benchmark kernels:
//! power-of-two math, hypercube dimensions, bit reversal, and a 2-D process
//! grid used for halo exchanges.

/// True if `n` is a power of two (and nonzero).
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// log2 of a power-of-two `n`.
///
/// # Panics
///
/// Panics when `n` is not a power of two.
pub fn log2_exact(n: usize) -> u32 {
    assert!(is_pow2(n), "{n} is not a power of two");
    n.trailing_zeros()
}

/// Smallest power of two `>= n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Reverse the low `bits` bits of `x` (the radix-2 FFT permutation).
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    let mut y = 0usize;
    for i in 0..bits {
        if x & (1 << i) != 0 {
            y |= 1 << (bits - 1 - i);
        }
    }
    y
}

/// A 2-D process grid: `px * py == size`, as square as possible, used for
/// the CGPOP halo exchange decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2d {
    /// Number of process columns.
    pub px: usize,
    /// Number of process rows.
    pub py: usize,
}

impl Grid2d {
    /// Factor `size` into the most-square grid with `px >= py`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "grid of zero processes");
        let mut py = (size as f64).sqrt() as usize;
        while py > 1 && size % py != 0 {
            py -= 1;
        }
        Grid2d { px: size / py, py }
    }

    /// Grid coordinates of `rank` (row-major).
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank % self.px, rank / self.px)
    }

    /// Rank at grid coordinates `(x, y)`.
    pub fn rank(&self, x: usize, y: usize) -> usize {
        y * self.px + x
    }

    /// The four von-Neumann neighbours of `rank`, `None` at domain edges:
    /// `[west, east, south, north]`.
    pub fn neighbours(&self, rank: usize) -> [Option<usize>; 4] {
        let (x, y) = self.coords(rank);
        [
            (x > 0).then(|| self.rank(x - 1, y)),
            (x + 1 < self.px).then(|| self.rank(x + 1, y)),
            (y > 0).then(|| self.rank(x, y - 1)),
            (y + 1 < self.py).then(|| self.rank(x, y + 1)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_predicates() {
        assert!(is_pow2(1));
        assert!(is_pow2(64));
        assert!(!is_pow2(0));
        assert!(!is_pow2(48));
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(1024), 10);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_rejects_non_pow2() {
        log2_exact(12);
    }

    #[test]
    fn bit_reverse_involution() {
        for bits in 1..10u32 {
            for x in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
            }
        }
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
    }

    #[test]
    fn grid_is_exact_factorization() {
        for size in 1..=64 {
            let g = Grid2d::new(size);
            assert_eq!(g.px * g.py, size, "size {size}");
            assert!(g.px >= g.py);
        }
        let g = Grid2d::new(24);
        assert_eq!((g.px, g.py), (6, 4));
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid2d::new(24);
        for r in 0..24 {
            let (x, y) = g.coords(r);
            assert_eq!(g.rank(x, y), r);
        }
    }

    #[test]
    fn neighbours_respect_edges() {
        let g = Grid2d::new(12); // 4 x 3
        assert_eq!(g.neighbours(0), [None, Some(1), None, Some(4)]);
        let r = g.rank(2, 1);
        assert_eq!(
            g.neighbours(r),
            [
                Some(g.rank(1, 1)),
                Some(g.rank(3, 1)),
                Some(g.rank(2, 0)),
                Some(g.rank(2, 2))
            ]
        );
    }
}
