#![warn(missing_docs)]

//! # caf-fabric
//!
//! The in-process interconnect that every communication substrate in this
//! workspace is built on. A [`Fabric`] models one parallel job: `n` ranks
//! (OS threads) connected by
//!
//! * per-rank **packet mailboxes** (the "NIC receive queues") used for
//!   two-sided traffic and active messages,
//! * a table of **registered memory segments** (the "RDMA-able" memory) that
//!   any rank may read, write, or atomically update without the owner's
//!   involvement, and
//! * a **memory accountant** that tracks how many bytes each runtime layer
//!   has mapped (this regenerates Figure 1 of the paper), plus
//! * an optional **delay model** that charges a configurable, spin-waited
//!   cost per operation so that software-overhead effects (e.g. a flush that
//!   visits every rank) show up in wall-clock measurements at realistic
//!   magnitudes.
//!
//! The fabric itself is protocol-agnostic: packet `kind`s and header words
//! are owned by the substrate (`caf-mpisim`, `caf-gasnetsim`). The only
//! semantics the fabric guarantees are FIFO delivery per (sender, receiver)
//! pair and release/acquire synchronization on every mailbox hand-off.
//!
//! Segments are backed by `AtomicU64` words, so concurrent remote access is
//! never undefined behaviour in the Rust sense; overlapping unordered writes
//! have the same "undefined result" status they have under the MPI-3 unified
//! memory model.

pub mod delay;
pub mod error;
pub mod fault;
pub mod memacct;
pub mod packet;
pub mod pod;
pub mod sched;
pub mod segment;
pub mod topology;

mod fabric_impl;

pub use caf_sched::{ExecConfig, ExecMode};
pub use delay::{DelayConfig, DelayMeter, DelayOp, Delays};
pub use error::FabricError;
pub use fabric_impl::{Endpoint, Fabric, FabricConfig};
pub use fault::{Fault, FaultPlan, ImageKilled, Kill, KillSite, KIND_FAULT};
pub use memacct::{MemAccount, MemCategory};
pub use packet::Packet;
pub use pod::Pod;
pub use segment::{Segment, SegmentId};

/// Result alias used across the fabric layer.
pub type Result<T> = std::result::Result<T, FabricError>;
