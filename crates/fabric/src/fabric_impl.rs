//! The [`Fabric`] itself: job construction, endpoints, and the segment
//! registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use parking_lot::RwLock;

use crate::delay::DelayConfig;
use crate::error::FabricError;
use crate::fault::{Fault, FaultPlan, FaultState, ImageKilled, KIND_FAULT};
use crate::packet::Packet;
use crate::segment::{Segment, SegmentId};
use crate::Result;

/// Construction-time options for a [`Fabric`].
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// A default delay model, available to substrates via
    /// [`Endpoint::default_delays`]. Substrates with substrate-specific cost
    /// tables (the normal case) carry their own [`DelayConfig`] instead.
    pub delays: DelayConfig,
    /// Number of independent mailbox *planes* per rank. Each communication
    /// library instance owns one plane, so two runtimes (e.g. GASNet and
    /// MPI in the paper's duplicate-runtimes scenario) can coexist on the
    /// same rank without seeing each other's traffic. Default 1.
    pub planes: usize,
    /// How ranks execute: one OS thread each (`Threads`, the
    /// paper-faithful default) or as stackful tasks on the caf-sched
    /// work-stealing pool (`Tasks`), which is what makes P=1024 jobs
    /// executable. Under `Tasks` every blocking receive below parks
    /// cooperatively instead of blocking its worker.
    pub exec: caf_sched::ExecConfig,
    /// Deterministic fault schedule (default: nobody dies). See
    /// [`FaultPlan`].
    pub fault: FaultPlan,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            delays: DelayConfig::free(),
            planes: 1,
            exec: caf_sched::ExecConfig::default(),
            fault: FaultPlan::none(),
        }
    }
}

struct Shared {
    n: usize,
    /// Senders indexed `plane * n + rank`.
    senders: Vec<Sender<Packet>>,
    segments: RwLock<HashMap<u64, Arc<Segment>>>,
    next_segment: AtomicU64,
    config: FabricConfig,
    /// Per-fabric failure registry (never process-global: concurrent
    /// test fabrics must not observe each other's failures).
    fault: Arc<FaultState>,
}

/// One parallel job: `n` ranks wired together by mailboxes and a shared
/// segment registry.
pub struct Fabric {
    shared: Arc<Shared>,
    receivers: Vec<Option<Receiver<Packet>>>,
}

impl Fabric {
    /// Create a job of `size` ranks with default configuration.
    pub fn new(size: usize) -> Self {
        Self::with_config(size, FabricConfig::default())
    }

    /// Create a job of `size` ranks.
    pub fn with_config(size: usize, config: FabricConfig) -> Self {
        assert!(size > 0, "fabric must have at least one rank");
        assert!(config.planes > 0, "fabric must have at least one plane");
        let slots = size * config.planes;
        let mut senders = Vec::with_capacity(slots);
        let mut receivers = Vec::with_capacity(slots);
        for _ in 0..slots {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Fabric {
            shared: Arc::new(Shared {
                n: size,
                senders,
                segments: RwLock::new(HashMap::new()),
                next_segment: AtomicU64::new(1),
                config,
                fault: Arc::new(FaultState::new(size, config.fault)),
            }),
            receivers,
        }
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Take the plane-0 endpoint for `rank`. Each endpoint can be taken
    /// exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range or its endpoint was already taken.
    pub fn take_endpoint(&mut self, rank: usize) -> Endpoint {
        self.take_endpoint_on(rank, 0)
    }

    /// Take the endpoint for `rank` on mailbox `plane`.
    pub fn take_endpoint_on(&mut self, rank: usize, plane: usize) -> Endpoint {
        assert!(plane < self.shared.config.planes, "plane out of range");
        let rx = self.receivers[plane * self.shared.n + rank]
            .take()
            .expect("endpoint already taken");
        Endpoint {
            rank,
            plane,
            fault: Fault::new(Arc::clone(&self.shared.fault), rank),
            shared: Arc::clone(&self.shared),
            rx,
        }
    }

    /// Take all endpoints, in rank order.
    pub fn take_all(&mut self) -> Vec<Endpoint> {
        (0..self.size()).map(|r| self.take_endpoint(r)).collect()
    }

    /// SPMD convenience launcher: spawn `size` threads, run `f` on each with
    /// its endpoint, and return the per-rank results in rank order.
    ///
    /// Panics in any rank are propagated (the whole job aborts), matching
    /// the fail-stop behaviour of an MPI job.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Endpoint) -> T + Send + Sync,
    {
        Self::run_with_config(size, FabricConfig::default(), f)
    }

    /// As [`Fabric::run`], with an explicit configuration.
    pub fn run_with_config<T, F>(size: usize, config: FabricConfig, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Endpoint) -> T + Send + Sync,
    {
        Self::run_raw(size, config, f)
            .into_iter()
            .map(|r| r.expect("rank panicked"))
            .collect()
    }

    /// Fault-tolerant launcher: as [`Fabric::run_with_config`], but a
    /// rank killed by the fault plan yields `None` instead of aborting
    /// the job. Panics that are *not* injected deaths still propagate.
    pub fn run_with_config_ft<T, F>(size: usize, config: FabricConfig, f: F) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(Endpoint) -> T + Send + Sync,
    {
        Self::run_raw(size, config, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => Some(v),
                Err(e) if e.downcast_ref::<ImageKilled>().is_some() => None,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    }

    fn run_raw<T, F>(size: usize, config: FabricConfig, f: F) -> Vec<std::thread::Result<T>>
    where
        T: Send,
        F: Fn(Endpoint) -> T + Send + Sync,
    {
        let mut fabric = Fabric::with_config(size, config);
        // Hand each rank its endpoint through a take-once slot: the
        // executor invokes `Fn(rank)`, so by-value per-rank state travels
        // via its rank index. Task id == rank is a caf-sched invariant,
        // which is also what lets `Endpoint::send` translate a
        // destination rank into an `unpark`.
        let slots: Vec<std::sync::Mutex<Option<Endpoint>>> = fabric
            .take_all()
            .into_iter()
            .map(|ep| std::sync::Mutex::new(Some(ep)))
            .collect();
        let f = &f;
        caf_sched::run(size, &config.exec, move |rank| {
            let ep = slots[rank]
                .lock()
                .unwrap()
                .take()
                .expect("endpoint slot taken twice");
            let _model = crate::sched::register_thread(rank);
            f(ep)
        })
    }
}

/// A rank's handle to the fabric: its mailbox plus the shared registries.
pub struct Endpoint {
    rank: usize,
    plane: usize,
    fault: Fault,
    shared: Arc<Shared>,
    rx: Receiver<Packet>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("size", &self.shared.n)
            .finish()
    }
}

impl Endpoint {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Job size.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// The fabric-level default delay model.
    pub fn default_delays(&self) -> &DelayConfig {
        &self.shared.config.delays
    }

    /// Mailbox plane this endpoint lives on.
    pub fn plane(&self) -> usize {
        self.plane
    }

    /// Cloneable handle onto this fabric's failure registry.
    pub fn fault(&self) -> Fault {
        self.fault.clone()
    }

    /// Kill this image here: announce the death to the model gate, mark
    /// the registry, broadcast one failure notice to every rank on every
    /// plane (when the plan detects), then unwind with [`ImageKilled`].
    ///
    /// The registry is marked *before* any notice is sent, so a rank that
    /// consumed a notice — or merely re-checks the registry — always
    /// observes the failure (perfect-detector consistency).
    pub fn fail_now(&self) -> ! {
        let me = self.rank;
        if crate::sched::active() {
            crate::sched::yield_op(crate::sched::ModelOp::Fail { rank: me });
        }
        if caf_trace::enabled() {
            caf_trace::instant(caf_trace::Op::ImageFailed, Some(me), me as u64, None);
        }
        if self.shared.config.fault.detect {
            self.fault.mark_failed(me);
            for plane in 0..self.shared.config.planes {
                for r in 0..self.shared.n {
                    if r == me {
                        continue;
                    }
                    let pkt = Packet::control(me, KIND_FAULT, me as i64, [0; 4]);
                    let _ = self.shared.senders[plane * self.shared.n + r].send(pkt);
                }
            }
            // Survivors parked in cooperative receive loops re-poll and
            // find the notice; OS-blocked receivers are woken by the
            // packet itself; model-blocked threads by the Fail op above.
            caf_sched::unpark_all();
        }
        crate::sched::set_fault_dying();
        // Injected deaths are expected: silence the default panic hook's
        // backtrace for `ImageKilled` payloads (installed once, chaining
        // the previous hook for every real panic).
        static SILENCER: std::sync::Once = std::sync::Once::new();
        SILENCER.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<ImageKilled>().is_none() {
                    prev(info);
                }
            }));
        });
        std::panic::panic_any(ImageKilled { rank: me })
    }

    /// Blocking-point bookkeeping for the fault plan: counts this entry
    /// and dies here when this is the planned kill site.
    fn fault_blocking_point(&self) {
        if self.shared.config.fault.is_empty() {
            return;
        }
        if self.fault.blocking_hit() {
            self.fail_now();
        }
    }

    /// Turn a failure notice into the error every blocking partner set
    /// must observe; pass data packets through (with delivery tracing).
    fn screen(&self, pkt: Packet) -> Result<Packet> {
        if pkt.kind == KIND_FAULT {
            return Err(FabricError::ImageFailed {
                failed: self.fault.failed_set(),
            });
        }
        self.trace_delivery(&pkt);
        Ok(pkt)
    }

    /// Deliver `pkt` to `to`'s mailbox on this endpoint's plane. FIFO per
    /// (sender, receiver) pair; the hand-off is a release/acquire edge.
    pub fn send(&self, to: usize, pkt: Packet) -> Result<()> {
        if to >= self.shared.n {
            return Err(FabricError::RankOutOfRange {
                rank: to,
                size: self.shared.n,
            });
        }
        if self.fault.is_failed(to) {
            // A failed image consumes nothing: its in-flight traffic is
            // dropped at injection so dead mailboxes stay bounded.
            return Ok(());
        }
        if crate::sched::active() {
            crate::sched::yield_op(crate::sched::ModelOp::Send {
                plane: self.plane,
                to,
            });
        }
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::PacketInject,
                Some(to),
                pkt.wire_size() as u64,
                None,
            );
        }
        let tx = &self.shared.senders[self.plane * self.shared.n + to];
        if tx.send(pkt).is_err() {
            // The destination's receiver is gone, which only happens when
            // that image's thread already unwound from a kill (the
            // registry check above can race the death: under the model
            // the peer may die while this send is parked at its
            // scheduling decision). Same policy as a registered failure:
            // the packet is dropped at injection.
            return Ok(());
        }
        // Under ExecMode::Tasks the destination image may be parked in
        // one of the cooperative receive loops below; hand it a permit.
        // No-op on plain OS threads (and for wakeups that race the park —
        // the permit is banked, see caf-sched).
        caf_sched::unpark(to);
        Ok(())
    }

    fn trace_delivery(&self, pkt: &Packet) {
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::PacketDeliver,
                Some(pkt.src),
                pkt.wire_size() as u64,
                None,
            );
        }
    }

    fn model_recv_op(&self) -> crate::sched::ModelOp {
        crate::sched::ModelOp::Recv {
            plane: self.plane,
            rank: self.rank,
        }
    }

    /// Non-blocking poll of this rank's mailbox. Failure notices are
    /// swallowed here (the registry already records the death; only
    /// *blocking* paths surface it as an error).
    pub fn try_recv(&self) -> Option<Packet> {
        if crate::sched::active() {
            crate::sched::yield_op(self.model_recv_op());
        }
        loop {
            let pkt = self.rx.try_recv().ok()?;
            if pkt.kind == KIND_FAULT {
                continue;
            }
            self.trace_delivery(&pkt);
            return Some(pkt);
        }
    }

    /// Block until a packet arrives. Returns
    /// [`FabricError::ImageFailed`] when a failure notice is delivered
    /// instead of data.
    pub fn recv_blocking(&self) -> Result<Packet> {
        self.fault_blocking_point();
        if crate::sched::active() {
            // Announce, then retry under the gate: the scheduler reruns us
            // only after another image makes progress, and reports a
            // wait-for edge if no image ever can.
            let pkt =
                crate::sched::model_blocking(self.model_recv_op(), || self.rx.try_recv().ok());
            return self.screen(pkt);
        }
        if caf_sched::on_task() {
            // Cooperative form of the blocking receive: park the task
            // (releasing the worker) until a sender's unpark re-runs the
            // poll. OS-blocking here would wedge a worker and, with more
            // images than workers, deadlock the job.
            loop {
                match self.rx.try_recv() {
                    Ok(pkt) => return self.screen(pkt),
                    Err(TryRecvError::Empty) => caf_sched::park(),
                    Err(TryRecvError::Disconnected) => return Err(FabricError::Disconnected),
                }
            }
        }
        let pkt = self.rx.recv().map_err(|_| FabricError::Disconnected)?;
        self.screen(pkt)
    }

    /// Block until a packet arrives or `timeout` elapses. Failure
    /// notices are swallowed (as in [`Endpoint::try_recv`]).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Packet> {
        if crate::sched::active() {
            // Under the model a timeout is just "the schedule chose to let
            // it fire": one announced attempt, then give up.
            crate::sched::yield_op(self.model_recv_op());
            loop {
                let pkt = self.rx.try_recv().ok()?;
                if pkt.kind == KIND_FAULT {
                    continue;
                }
                self.trace_delivery(&pkt);
                return Some(pkt);
            }
        }
        if caf_sched::on_task() {
            // Deadline-bounded cooperative wait. A full park could
            // oversleep the deadline (nobody unparks a timeout), so this
            // yields the worker instead of suspending; timeouts are a
            // rare diagnostic path, not steady-state.
            let deadline = crate::delay::monotonic_ns().saturating_add(timeout.as_nanos() as u64);
            loop {
                match self.rx.try_recv() {
                    Ok(pkt) if pkt.kind == KIND_FAULT => continue,
                    Ok(pkt) => {
                        self.trace_delivery(&pkt);
                        return Some(pkt);
                    }
                    Err(TryRecvError::Disconnected) => return None,
                    Err(TryRecvError::Empty) => {
                        if crate::delay::monotonic_ns() >= deadline {
                            return None;
                        }
                        caf_sched::yield_now();
                    }
                }
            }
        }
        loop {
            let pkt = self.rx.recv_timeout(timeout).ok()?;
            if pkt.kind == KIND_FAULT {
                continue;
            }
            self.trace_delivery(&pkt);
            return Some(pkt);
        }
    }

    /// Register a segment, making it remotely accessible; returns its id.
    pub fn register_segment(&self, seg: Segment) -> SegmentId {
        if crate::sched::active() {
            crate::sched::yield_op(crate::sched::ModelOp::Registry);
        }
        let id = self.shared.next_segment.fetch_add(1, Ordering::Relaxed);
        self.shared.segments.write().insert(id, Arc::new(seg));
        SegmentId(id)
    }

    /// Remove a segment from the registry. Outstanding `Arc` handles keep
    /// the memory alive until the last user drops it.
    pub fn unregister_segment(&self, id: SegmentId) -> Result<()> {
        if crate::sched::active() {
            crate::sched::yield_op(crate::sched::ModelOp::Registry);
        }
        self.shared
            .segments
            .write()
            .remove(&id.0)
            .map(|_| ())
            .ok_or(FabricError::UnknownSegment(id.0))
    }

    /// Resolve a segment id (local or remote — the registry is global).
    pub fn segment(&self, id: SegmentId) -> Result<Arc<Segment>> {
        self.shared
            .segments
            .read()
            .get(&id.0)
            .cloned()
            .ok_or(FabricError::UnknownSegment(id.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn ping_pong_between_two_ranks() {
        let results = Fabric::run(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, Packet::control(0, 1, 42, [0; 4])).unwrap();
                let p = ep.recv_blocking().unwrap();
                (p.src, p.tag)
            } else {
                let p = ep.recv_blocking().unwrap();
                assert_eq!(p.tag, 42);
                ep.send(0, Packet::control(1, 1, 43, [0; 4])).unwrap();
                (p.src, p.tag)
            }
        });
        assert_eq!(results, vec![(1, 43), (0, 42)]);
    }

    #[test]
    fn fifo_per_pair() {
        let results = Fabric::run(2, |ep| {
            if ep.rank() == 0 {
                for i in 0..100 {
                    ep.send(1, Packet::control(0, 0, i, [0; 4])).unwrap();
                }
                Vec::new()
            } else {
                (0..100).map(|_| ep.recv_blocking().unwrap().tag).collect()
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn payload_travels_intact() {
        let results = Fabric::run(2, |ep| {
            if ep.rank() == 0 {
                let data = Bytes::from((0..=255u8).collect::<Vec<u8>>());
                ep.send(1, Packet::with_payload(0, 0, 0, [0; 4], data))
                    .unwrap();
                0usize
            } else {
                let p = ep.recv_blocking().unwrap();
                p.payload.iter().map(|&b| b as usize).sum()
            }
        });
        assert_eq!(results[1], (0..=255usize).sum::<usize>());
    }

    #[test]
    fn remote_segment_access_without_owner_involvement() {
        // Rank 0 registers a segment and parks; rank 1 writes it directly.
        let results = Fabric::run(2, |ep| {
            if ep.rank() == 0 {
                let id = ep.register_segment(Segment::new(64));
                ep.send(1, Packet::control(0, 0, id.0 as i64, [0; 4]))
                    .unwrap();
                // Owner thread does nothing else until the writer confirms.
                let _ = ep.recv_blocking().unwrap();
                let seg = ep.segment(id).unwrap();
                seg.load_u64(0).unwrap()
            } else {
                let p = ep.recv_blocking().unwrap();
                let id = SegmentId(p.tag as u64);
                let seg = ep.segment(id).unwrap();
                seg.store_u64(0, 0xdead_beef).unwrap();
                ep.send(0, Packet::control(1, 0, 0, [0; 4])).unwrap();
                0
            }
        });
        assert_eq!(results[0], 0xdead_beef);
    }

    #[test]
    fn unknown_segment_is_an_error() {
        Fabric::run(1, |ep| {
            assert!(matches!(
                ep.segment(SegmentId(999)),
                Err(FabricError::UnknownSegment(999))
            ));
        });
    }

    #[test]
    fn unregister_removes_id_but_keeps_live_handles() {
        Fabric::run(1, |ep| {
            let id = ep.register_segment(Segment::new(8));
            let handle = ep.segment(id).unwrap();
            ep.unregister_segment(id).unwrap();
            assert!(ep.segment(id).is_err());
            handle.store_u64(0, 5).unwrap(); // still usable
            assert!(ep.unregister_segment(id).is_err());
        });
    }

    #[test]
    fn send_to_bad_rank_errors() {
        Fabric::run(1, |ep| {
            assert!(matches!(
                ep.send(7, Packet::control(0, 0, 0, [0; 4])),
                Err(FabricError::RankOutOfRange { rank: 7, size: 1 })
            ));
        });
    }

    #[test]
    fn run_returns_rank_ordered_results() {
        let results = Fabric::run(8, |ep| ep.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "endpoint already taken")]
    fn endpoints_are_single_take() {
        let mut f = Fabric::new(2);
        let _a = f.take_endpoint(0);
        let _b = f.take_endpoint(0);
    }
}
