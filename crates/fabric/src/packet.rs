//! The wire format of the fabric's message plane.

use bytes::Bytes;

/// One message travelling between two endpoints.
///
/// The fabric does not interpret packets beyond routing: `kind`, `tag`, and
/// the header words `h` belong to the substrate protocol (two-sided matching
/// in `caf-mpisim`, AM dispatch in `caf-gasnetsim`). `payload` is reference-
/// counted, so forwarding and buffering never copy the data.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Source rank.
    pub src: usize,
    /// Protocol discriminator owned by the substrate.
    pub kind: u16,
    /// Substrate-defined tag (message tag, handler index, ...).
    pub tag: i64,
    /// Four scratch header words (communicator ids, offsets, sequence
    /// numbers, reply tokens — whatever the protocol needs).
    pub h: [u64; 4],
    /// Opaque data payload.
    pub payload: Bytes,
}

impl Packet {
    /// A header-only packet (no payload).
    pub fn control(src: usize, kind: u16, tag: i64, h: [u64; 4]) -> Self {
        Packet {
            src,
            kind,
            tag,
            h,
            payload: Bytes::new(),
        }
    }

    /// A packet carrying `payload`.
    pub fn with_payload(src: usize, kind: u16, tag: i64, h: [u64; 4], payload: Bytes) -> Self {
        Packet {
            src,
            kind,
            tag,
            h,
            payload,
        }
    }

    /// Total size this packet accounts for (header + payload), used by the
    /// delay model to charge per-byte costs.
    pub fn wire_size(&self) -> usize {
        std::mem::size_of::<usize>() + 2 + 8 + 32 + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packets_have_no_payload() {
        let p = Packet::control(3, 7, -1, [1, 2, 3, 4]);
        assert_eq!(p.src, 3);
        assert_eq!(p.kind, 7);
        assert_eq!(p.tag, -1);
        assert!(p.payload.is_empty());
    }

    #[test]
    fn wire_size_counts_payload() {
        let small = Packet::control(0, 0, 0, [0; 4]);
        let big = Packet::with_payload(0, 0, 0, [0; 4], Bytes::from(vec![0u8; 100]));
        assert_eq!(big.wire_size() - small.wire_size(), 100);
    }

    #[test]
    fn clone_shares_payload_storage() {
        let payload = Bytes::from(vec![1u8, 2, 3]);
        let p = Packet::with_payload(0, 0, 0, [0; 4], payload.clone());
        let q = p.clone();
        assert_eq!(q.payload.as_ptr(), p.payload.as_ptr());
    }
}
