//! Property-based tests for the registered-memory segment: arbitrary
//! sequences of byte-level puts must behave exactly like writes to a plain
//! byte array, regardless of alignment.

use caf_fabric::Segment;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// A random sequence of (offset, data) puts, then full readback,
    /// matches a shadow byte array.
    #[test]
    fn puts_match_shadow_array(
        writes in proptest::collection::vec(
            (0usize..200, proptest::collection::vec(any::<u8>(), 0..64)),
            0..24,
        )
    ) {
        let cap = 256usize;
        let seg = Segment::new(cap);
        let mut shadow = vec![0u8; cap];
        for (off, data) in &writes {
            if off + data.len() <= cap {
                seg.put(*off, data).unwrap();
                shadow[*off..*off + data.len()].copy_from_slice(data);
            } else {
                prop_assert!(seg.put(*off, data).is_err());
            }
        }
        let mut out = vec![0u8; cap];
        seg.get(0, &mut out).unwrap();
        prop_assert_eq!(out, shadow);
    }

    /// Partial reads at arbitrary offsets see exactly the shadow contents.
    #[test]
    fn reads_at_any_offset(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        reads in proptest::collection::vec((0usize..128, 1usize..64), 1..12),
    ) {
        let seg = Segment::new(data.len());
        seg.put(0, &data).unwrap();
        for (off, len) in reads {
            let mut out = vec![0u8; len];
            if off + len <= data.len() {
                seg.get(off, &mut out).unwrap();
                prop_assert_eq!(&out[..], &data[off..off + len]);
            } else {
                prop_assert!(seg.get(off, &mut out).is_err());
            }
        }
    }

    /// fetch_add over random operand sequences equals the wrapping sum.
    #[test]
    fn fetch_add_accumulates(ops in proptest::collection::vec(any::<u64>(), 1..32)) {
        let seg = Segment::new(8);
        let mut expect = 0u64;
        for v in &ops {
            let prev = seg.fetch_add_u64(0, *v).unwrap();
            prop_assert_eq!(prev, expect);
            expect = expect.wrapping_add(*v);
        }
        prop_assert_eq!(seg.load_u64(0).unwrap(), expect);
    }

    /// Word atomics and byte puts interoperate: a store_u64 is observable
    /// byte-by-byte in little-endian order and vice versa.
    #[test]
    fn words_and_bytes_interoperate(v in any::<u64>(), bytes in proptest::collection::vec(any::<u8>(), 8)) {
        let seg = Segment::new(16);
        seg.store_u64(0, v).unwrap();
        let mut out = [0u8; 8];
        seg.get(0, &mut out).unwrap();
        prop_assert_eq!(out, v.to_le_bytes());

        seg.put(8, &bytes).unwrap();
        let w = seg.load_u64(8).unwrap();
        prop_assert_eq!(w.to_le_bytes().to_vec(), bytes);
    }
}
