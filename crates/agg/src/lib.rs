//! `caf-agg`: small-put coalescing for the CAF runtime.
//!
//! The paper's RandomAccess analysis (§4.1) shows what kills PGAS codes
//! with skewed fine-grained traffic: millions of tiny remote updates, each
//! paying a full per-message overhead. This crate provides the classic
//! remedy as a substrate-independent building block:
//!
//! * **Per-target buckets** — small puts/accumulates are enqueued as
//!   compact [`Record`]s into the bucket of their (next-hop) target and
//!   drained as one batch when a size/count trigger fires or at an
//!   explicit release point.
//! * **A batch wire format** — [`encode_batch`]/[`decode_batch`] pack a
//!   drained bucket into one payload small enough for a single medium
//!   active message, unpacked record-by-record at the receiver.
//! * **Dimension-order hypercube routing** (the optimized-GUPS
//!   algorithm) — with routing on, a record destined to `dest` is
//!   bucketed toward [`next_hop`]`(me, dest, p)`, the neighbour that
//!   fixes the lowest differing address bit; intermediate ranks unpack,
//!   re-bucket, and forward, so each record crosses at most `log2(P)`
//!   hops and every message on the wire is a full bucket instead of one
//!   tiny update.
//!
//! The crate is a leaf: it owns the data structures and the arithmetic,
//! and knows nothing about substrates, windows, or events. Delivery,
//! happens-before edges, and release-point semantics are wired up by
//! `caf` core (see DESIGN.md §13).

#![warn(missing_docs)]

/// Aggregation knobs, carried inside `CafConfig` (opt-in: the default is
/// disabled, so the paper-faithful direct small-put path is what runs
/// unless a job asks for coalescing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggConfig {
    /// Route eligible async puts through aggregation buckets.
    pub enabled: bool,
    /// Payload-byte capacity of one bucket; reaching it triggers a drain.
    /// On the GASNet substrate the runtime clamps this so an encoded
    /// batch always fits a single medium AM.
    pub bucket_bytes: usize,
    /// Record-count capacity of one bucket; reaching it triggers a drain.
    pub bucket_records: usize,
    /// Puts with payloads larger than this bypass aggregation and take
    /// the direct path (bulk transfers gain nothing from coalescing).
    pub max_record_bytes: usize,
    /// Dimension-order hypercube software routing. Requires a
    /// power-of-two image count (the runtime clamps it off otherwise)
    /// and `finish`-style release semantics — see DESIGN.md §13.
    pub routing: bool,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            enabled: false,
            // 4 + 64·25 + 2048 = 3652 encoded bytes: under the 4 KiB
            // medium-AM limit with headroom for the runtime header.
            bucket_bytes: 2048,
            bucket_records: 64,
            max_record_bytes: 64,
            routing: false,
        }
    }
}

impl AggConfig {
    /// Aggregation on, direct per-destination buckets (no routing).
    pub fn on() -> Self {
        AggConfig {
            enabled: true,
            ..AggConfig::default()
        }
    }

    /// Aggregation on with hypercube software routing.
    pub fn routed() -> Self {
        AggConfig {
            routing: true,
            ..AggConfig::on()
        }
    }

    /// Worst-case encoded size of one drained bucket under these knobs.
    /// The byte trigger fires *after* a push, so payload can overshoot
    /// `bucket_bytes` by one record; the runtime checks this bound
    /// against its AM transport limit.
    pub fn max_encoded_len(&self) -> usize {
        BATCH_HEADER
            + self.bucket_records * REC_HEADER
            + self.bucket_bytes
            + self.max_record_bytes
    }
}

/// What a record does at its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordOp {
    /// Overwrite `len` bytes at the offset (small put).
    Put = 0,
    /// XOR an 8-byte little-endian operand into the u64 at the offset
    /// (the RandomAccess update).
    Xor = 1,
    /// Wrapping-add an 8-byte little-endian operand into the u64 at the
    /// offset.
    Add = 2,
}

impl RecordOp {
    fn from_u8(v: u8) -> RecordOp {
        match v {
            0 => RecordOp::Put,
            1 => RecordOp::Xor,
            2 => RecordOp::Add,
            k => panic!("unknown aggregation record op {k}"),
        }
    }
}

/// One coalesced small operation: final destination, region/offset
/// address, and the payload it carries. Destination travels with the
/// record because routed records cross intermediate ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Final destination image (global rank).
    pub dest: u32,
    /// Operation applied at the destination.
    pub op: RecordOp,
    /// Region (window) the offset addresses.
    pub region: u64,
    /// Byte offset within the destination's part of the region.
    pub offset: u64,
    /// Operand bytes (`Xor`/`Add`: exactly 8, little-endian).
    pub payload: Vec<u8>,
}

/// Encoded bytes of one record's header: op, dest, region, offset, len.
pub const REC_HEADER: usize = 1 + 4 + 8 + 8 + 4;
/// Encoded bytes of the batch header (record count).
pub const BATCH_HEADER: usize = 4;

impl Record {
    /// Bytes this record occupies in an encoded batch.
    pub fn encoded_len(&self) -> usize {
        REC_HEADER + self.payload.len()
    }
}

/// Pack records into one batch payload: `[count u32][records…]`, each
/// record `[op u8][dest u32][region u64][offset u64][len u32][payload]`,
/// all little-endian.
pub fn encode_batch(records: &[Record]) -> Vec<u8> {
    let bytes = BATCH_HEADER + records.iter().map(Record::encoded_len).sum::<usize>();
    let mut buf = Vec::with_capacity(bytes);
    buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        buf.push(r.op as u8);
        buf.extend_from_slice(&r.dest.to_le_bytes());
        buf.extend_from_slice(&r.region.to_le_bytes());
        buf.extend_from_slice(&r.offset.to_le_bytes());
        buf.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&r.payload);
    }
    buf
}

/// Decode a batch produced by [`encode_batch`].
///
/// # Panics
///
/// Panics on malformed input — batches are runtime-internal traffic, so
/// corruption is a bug, not an input condition.
pub fn decode_batch(bytes: &[u8]) -> Vec<Record> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| {
        let s = &bytes[*at..*at + n];
        *at += n;
        s
    };
    let count = u32::from_le_bytes(take(&mut at, 4).try_into().expect("count")) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let op = RecordOp::from_u8(take(&mut at, 1)[0]);
        let dest = u32::from_le_bytes(take(&mut at, 4).try_into().expect("dest"));
        let region = u64::from_le_bytes(take(&mut at, 8).try_into().expect("region"));
        let offset = u64::from_le_bytes(take(&mut at, 8).try_into().expect("offset"));
        let len = u32::from_le_bytes(take(&mut at, 4).try_into().expect("len")) as usize;
        let payload = take(&mut at, len).to_vec();
        out.push(Record {
            dest,
            op,
            region,
            offset,
            payload,
        });
    }
    assert_eq!(at, bytes.len(), "trailing bytes after batch");
    out
}

/// Dimension-order next hop: the neighbour of `me` across the lowest
/// address bit in which `me` and `dest` differ. Each hop fixes one bit,
/// so a record reaches `dest` in at most `log2(p)` hops, and every
/// intermediate rank aggregates traffic from its whole subcube — the
/// optimized-GUPS software-routing scheme.
///
/// # Panics
///
/// Panics unless `p` is a power of two and both ranks are in range.
pub fn next_hop(me: usize, dest: usize, p: usize) -> usize {
    assert!(p.is_power_of_two(), "hypercube routing requires 2^d images");
    assert!(me < p && dest < p, "rank out of range");
    let diff = me ^ dest;
    assert_ne!(diff, 0, "no hop needed: me == dest");
    me ^ (1usize << diff.trailing_zeros())
}

/// Hop count of the dimension-order route from `me` to `dest`: the
/// number of differing address bits (≤ `log2(p)`).
pub fn route_hops(me: usize, dest: usize) -> u32 {
    (me ^ dest).count_ones()
}

/// Counters kept by the [`Aggregator`] (all deterministic functions of
/// the enqueue/drain schedule — safe to assert on in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggStats {
    /// Records enqueued on this image (app-issued and forwarded).
    pub enqueued: u64,
    /// Buckets drained (each becomes one batched message).
    pub drained_buckets: u64,
    /// Records carried by those drained buckets.
    pub drained_records: u64,
    /// Payload bytes carried by those drained buckets.
    pub drained_payload_bytes: u64,
    /// Records re-bucketed at this image on behalf of another origin
    /// (store-and-forward hops).
    pub forwarded: u64,
    /// Records rerouted directly to their destination because the planned
    /// store-and-forward hop had failed at drain time.
    pub rerouted: u64,
    /// Records abandoned at drain time because their *destination* image
    /// had failed (the target memory no longer exists).
    pub dropped_dead: u64,
}

/// One bucket: the records accumulated toward one immediate target.
#[derive(Debug, Default)]
struct Bucket {
    records: Vec<Record>,
    payload_bytes: usize,
}

/// Per-image aggregation state: one bucket per immediate target, plus
/// the drain-trigger bookkeeping.
#[derive(Debug)]
pub struct Aggregator {
    cfg: AggConfig,
    me: usize,
    p: usize,
    buckets: Vec<Bucket>,
    stats: AggStats,
}

impl Aggregator {
    /// Fresh state for image `me` of `p`. `cfg` is the runtime's
    /// *effective* (already clamped) configuration.
    pub fn new(cfg: AggConfig, me: usize, p: usize) -> Self {
        Aggregator {
            cfg,
            me,
            p,
            buckets: (0..p).map(|_| Bucket::default()).collect(),
            stats: AggStats::default(),
        }
    }

    /// The effective configuration this aggregator runs under.
    pub fn config(&self) -> AggConfig {
        self.cfg
    }

    /// Immediate target a record destined to `dest` is bucketed toward:
    /// `dest` itself, or the hypercube next hop when routing is on.
    pub fn hop_for(&self, dest: usize) -> usize {
        if self.cfg.routing && dest != self.me {
            next_hop(self.me, dest, self.p)
        } else {
            dest
        }
    }

    /// Enqueue a record. Returns `Some((target, records))` when the push
    /// filled the target's bucket past a capacity trigger — the caller
    /// must deliver that batch now.
    pub fn enqueue(&mut self, rec: Record) -> Option<(usize, Vec<Record>)> {
        debug_assert!((rec.dest as usize) < self.p, "record dest out of range");
        debug_assert_ne!(rec.dest as usize, self.me, "self-records are applied locally");
        let hop = self.hop_for(rec.dest as usize);
        self.stats.enqueued += 1;
        let b = &mut self.buckets[hop];
        b.payload_bytes += rec.payload.len();
        b.records.push(rec);
        if b.records.len() >= self.cfg.bucket_records || b.payload_bytes >= self.cfg.bucket_bytes {
            return self.drain(hop).map(|r| (hop, r));
        }
        None
    }

    /// Count a record enqueued on behalf of another origin (the caller
    /// enqueues it normally; this only keeps the forwarding statistic).
    pub fn note_forward(&mut self) {
        self.stats.forwarded += 1;
    }

    /// Count `n` records rerouted directly to their destination around a
    /// failed store-and-forward hop.
    pub fn note_reroute(&mut self, n: u64) {
        self.stats.rerouted += n;
    }

    /// Count `n` records abandoned because their destination failed.
    pub fn note_dropped_dead(&mut self, n: u64) {
        self.stats.dropped_dead += n;
    }

    /// Drain one target's bucket, if non-empty.
    pub fn drain(&mut self, target: usize) -> Option<Vec<Record>> {
        let b = &mut self.buckets[target];
        if b.records.is_empty() {
            return None;
        }
        let records = std::mem::take(&mut b.records);
        let payload = b.payload_bytes;
        b.payload_bytes = 0;
        self.stats.drained_buckets += 1;
        self.stats.drained_records += records.len() as u64;
        self.stats.drained_payload_bytes += payload as u64;
        Some(records)
    }

    /// Drain every non-empty bucket, in target order (deterministic).
    pub fn drain_all(&mut self) -> Vec<(usize, Vec<Record>)> {
        (0..self.p)
            .filter_map(|t| self.drain(t).map(|r| (t, r)))
            .collect()
    }

    /// Targets with a non-empty bucket, ascending.
    pub fn pending_targets(&self) -> Vec<usize> {
        (0..self.p)
            .filter(|&t| !self.buckets[t].records.is_empty())
            .collect()
    }

    /// Records currently parked across all buckets.
    pub fn pending_records(&self) -> usize {
        self.buckets.iter().map(|b| b.records.len()).sum()
    }

    /// True when no bucket holds a record.
    pub fn is_empty(&self) -> bool {
        self.pending_records() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AggStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(dest: u32, offset: u64, v: u64) -> Record {
        Record {
            dest,
            op: RecordOp::Xor,
            region: 7,
            offset,
            payload: v.to_le_bytes().to_vec(),
        }
    }

    #[test]
    fn batch_roundtrips() {
        let records = vec![
            rec(3, 16, 0xdeadbeef),
            Record {
                dest: 1,
                op: RecordOp::Put,
                region: 9,
                offset: 0,
                payload: vec![1, 2, 3],
            },
            Record {
                dest: 2,
                op: RecordOp::Add,
                region: 1,
                offset: 8,
                payload: 5u64.to_le_bytes().to_vec(),
            },
        ];
        let bytes = encode_batch(&records);
        assert_eq!(
            bytes.len(),
            BATCH_HEADER + records.iter().map(Record::encoded_len).sum::<usize>()
        );
        assert_eq!(decode_batch(&bytes), records);
    }

    #[test]
    fn empty_batch_roundtrips() {
        assert_eq!(decode_batch(&encode_batch(&[])), Vec::<Record>::new());
    }

    #[test]
    #[should_panic(expected = "trailing bytes")]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = encode_batch(&[rec(0, 0, 1)]);
        bytes.push(0);
        decode_batch(&bytes);
    }

    #[test]
    fn next_hop_fixes_lowest_bit_and_bounds_hops() {
        for p in [2usize, 4, 8, 16, 32] {
            let d = p.trailing_zeros();
            for me in 0..p {
                for dest in 0..p {
                    if me == dest {
                        continue;
                    }
                    // Walk the full route; it must terminate within d hops.
                    let mut at = me;
                    let mut hops = 0;
                    while at != dest {
                        let nh = next_hop(at, dest, p);
                        // Each hop flips exactly one bit, the lowest diff.
                        assert_eq!((at ^ nh).count_ones(), 1);
                        assert!((at ^ dest).trailing_zeros() == (at ^ nh).trailing_zeros());
                        at = nh;
                        hops += 1;
                        assert!(hops <= d, "route exceeded log2(P) hops");
                    }
                    assert_eq!(hops, route_hops(me, dest));
                }
            }
        }
    }

    #[test]
    fn count_trigger_drains_full_bucket() {
        let cfg = AggConfig {
            bucket_records: 4,
            ..AggConfig::on()
        };
        let mut agg = Aggregator::new(cfg, 0, 2);
        for i in 0..3u64 {
            assert!(agg.enqueue(rec(1, i * 8, i)).is_none());
        }
        let (t, batch) = agg.enqueue(rec(1, 24, 3)).expect("4th record fills the bucket");
        assert_eq!(t, 1);
        assert_eq!(batch.len(), 4);
        assert!(agg.is_empty());
        assert_eq!(agg.stats().drained_buckets, 1);
        assert_eq!(agg.stats().drained_records, 4);
    }

    #[test]
    fn byte_trigger_drains_full_bucket() {
        let cfg = AggConfig {
            bucket_bytes: 20,
            bucket_records: 1000,
            ..AggConfig::on()
        };
        let mut agg = Aggregator::new(cfg, 0, 2);
        assert!(agg.enqueue(rec(1, 0, 1)).is_none()); // 8 bytes
        assert!(agg.enqueue(rec(1, 8, 2)).is_none()); // 16 bytes
        let (_, batch) = agg.enqueue(rec(1, 16, 3)).expect("24 ≥ 20 bytes");
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn routing_buckets_by_next_hop() {
        let mut agg = Aggregator::new(AggConfig::routed(), 0, 8);
        // dest 7 differs from 0 in bits {0,1,2}; first hop flips bit 0.
        agg.enqueue(rec(7, 0, 1));
        // dest 6 differs in bits {1,2}; first hop flips bit 1.
        agg.enqueue(rec(6, 0, 2));
        // dest 4 differs in bit 2 only: one direct hop.
        agg.enqueue(rec(4, 0, 3));
        assert_eq!(agg.pending_targets(), vec![1, 2, 4]);
        // Without routing, buckets key on the final destination.
        let mut direct = Aggregator::new(AggConfig::on(), 0, 8);
        direct.enqueue(rec(7, 0, 1));
        direct.enqueue(rec(6, 0, 2));
        assert_eq!(direct.pending_targets(), vec![6, 7]);
    }

    #[test]
    fn drain_all_is_deterministic_and_complete() {
        let mut agg = Aggregator::new(AggConfig::on(), 0, 4);
        agg.enqueue(rec(3, 0, 1));
        agg.enqueue(rec(1, 0, 2));
        agg.enqueue(rec(3, 8, 3));
        let drained = agg.drain_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 1);
        assert_eq!(drained[1].0, 3);
        assert_eq!(drained[1].1.len(), 2);
        assert!(agg.is_empty());
        assert!(agg.drain_all().is_empty());
    }

    #[test]
    fn max_encoded_len_bounds_real_batches() {
        let cfg = AggConfig {
            bucket_bytes: 64,
            bucket_records: 8,
            ..AggConfig::on()
        };
        let mut agg = Aggregator::new(cfg, 0, 2);
        let mut worst = 0usize;
        for i in 0..100u64 {
            if let Some((_, batch)) = agg.enqueue(rec(1, i * 8, i)) {
                worst = worst.max(encode_batch(&batch).len());
            }
        }
        assert!(worst > 0);
        assert!(worst <= cfg.max_encoded_len());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn arbitrary_batches_roundtrip(
                seed in proptest::collection::vec(
                    (0u32..64, 0u8..3, any::<u64>(), any::<u64>(),
                     proptest::collection::vec(any::<u8>(), 0..40)),
                    0..30,
                )
            ) {
                let records: Vec<Record> = seed
                    .into_iter()
                    .map(|(dest, op, region, offset, payload)| Record {
                        dest,
                        op: RecordOp::from_u8(op),
                        region,
                        offset,
                        payload,
                    })
                    .collect();
                prop_assert_eq!(decode_batch(&encode_batch(&records)), records);
            }

            #[test]
            fn every_enqueued_record_drains_exactly_once(
                dests in proptest::collection::vec(1usize..8, 1..200),
                nrec in 2usize..10,
            ) {
                let cfg = AggConfig {
                    bucket_records: nrec,
                    ..AggConfig::on()
                };
                let mut agg = Aggregator::new(cfg, 0, 8);
                let mut out: Vec<Record> = Vec::new();
                for (i, &d) in dests.iter().enumerate() {
                    if let Some((_, batch)) = agg.enqueue(rec(d as u32, i as u64, i as u64)) {
                        out.extend(batch);
                    }
                }
                for (_, batch) in agg.drain_all() {
                    out.extend(batch);
                }
                prop_assert_eq!(out.len(), dests.len());
                // Order-insensitive identity: every (offset, dest) present.
                let mut got: Vec<(u64, u32)> =
                    out.iter().map(|r| (r.offset, r.dest)).collect();
                got.sort_unstable();
                let mut want: Vec<(u64, u32)> = dests
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| (i as u64, d as u32))
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
    }
}
