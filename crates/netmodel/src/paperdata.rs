//! The paper's published measurements, transcribed from the data tables
//! embedded in the camera-ready figures. These are the reference series
//! every regenerated figure is printed against, and the ground truth for
//! the shape assertions in this crate's tests.
//!
//! ## Platform attribution
//!
//! The camera-ready text carries two complete data blocks. They are
//! attributed as follows (this also resolves some garbled figure captions
//! in the source text):
//!
//! * the **8–2048-process block** (which includes the `CAF-GASNet-NOSRQ`
//!   series) is **Fusion**: Fusion has 320 nodes × 8 cores = 2560 cores,
//!   so it cannot have produced the 4096-process points; SRQ is an
//!   InfiniBand (ibv-conduit) feature, and Fusion is the InfiniBand
//!   machine; and §4.1's Fusion narrative ("GASNet wins by a small
//!   constant factor up to 64 cores, drops at 128 because of SRQ, NOSRQ
//!   performs roughly the same as CAF-MPI") matches exactly this block;
//! * the **16–4096-process block** is **Edison** (5 200 × 24 cores), and
//!   matches §4.1's Edison narrative ("a more obvious performance loss of
//!   CAF-MPI" — Cray MPI implemented RMA over send/receive).

/// Process counts of the Fusion RA/FFT figures (3, 6).
pub const FUSION_P: [usize; 9] = [8, 16, 32, 64, 128, 256, 512, 1024, 2048];
/// Process counts of the Edison RA/FFT figures (5, 7).
pub const EDISON_P: [usize; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
/// Process counts of the Fusion HPL figure (9).
pub const HPL_FUSION_P: [usize; 4] = [16, 64, 256, 1024];
/// Process counts of the Edison HPL figure (10).
pub const HPL_EDISON_P: [usize; 5] = [16, 64, 256, 1024, 4096];
/// Process counts of the CGPOP figures (11, 12).
pub const CGPOP_P: [usize; 8] = [24, 72, 120, 168, 216, 264, 312, 360];

// ---- Figure 3: RandomAccess on Fusion (GUP/s) -------------------------
/// CAF-MPI RandomAccess on Fusion.
pub const RA_FUSION_MPI: [f64; 9] = [
    0.06092, 0.08127, 0.14460, 0.26490, 0.37180, 0.55590, 0.82550, 1.54600, 2.28000,
];
/// CAF-GASNet RandomAccess on Fusion (SRQ auto-enables at 128 → dip).
pub const RA_FUSION_GASNET: [f64; 9] = [
    0.08138, 0.11930, 0.19460, 0.36090, 0.20760, 0.30790, 0.41440, 0.66870, 0.97430,
];
/// CAF-GASNet-NOSRQ RandomAccess on Fusion.
pub const RA_FUSION_GASNET_NOSRQ: [f64; 9] = [
    0.08139, 0.11950, 0.18130, 0.30630, 0.48190, 0.67120, 0.86760, 1.42900, 2.21500,
];

// ---- Figure 5: RandomAccess on Edison (GUP/s) --------------------------
/// CAF-MPI RandomAccess on Edison.
pub const RA_EDISON_MPI: [f64; 9] = [
    0.1231, 0.1592, 0.2153, 0.4872, 0.6470, 1.1240, 1.4230, 2.0300, 2.7140,
];
/// CAF-GASNet RandomAccess on Edison.
pub const RA_EDISON_GASNET: [f64; 9] = [
    0.2180, 0.3354, 0.3531, 0.5853, 1.0780, 1.0950, 1.8970, 3.7530, 8.0280,
];

// ---- Figure 4: RandomAccess time decomposition @2048 cores, Fusion (s) --
/// Categories of the RA decomposition, in order.
pub const RA_DECOMP_CATS: [&str; 4] =
    ["computation", "coarray_write", "event_wait", "event_notify"];
/// CAF-GASNet decomposition.
pub const RA_DECOMP_GASNET: [f64; 4] = [46.36, 53.28, 405.75, 3.60];
/// CAF-MPI decomposition.
pub const RA_DECOMP_MPI: [f64; 4] = [81.97, 160.09, 255.74, 219.08];

// ---- Figure 6: FFT on Fusion (GFlop/s) ---------------------------------
/// CAF-MPI FFT on Fusion.
pub const FFT_FUSION_MPI: [f64; 9] = [
    2.5360, 3.5693, 7.0194, 13.9231, 23.0590, 50.3071, 96.1904, 152.0733, 263.9797,
];
/// CAF-GASNet FFT on Fusion.
pub const FFT_FUSION_GASNET: [f64; 9] = [
    2.3927, 3.3042, 4.9530, 8.6560, 15.3140, 27.2440, 43.8779, 79.2683, 118.1791,
];
/// CAF-GASNet-NOSRQ FFT on Fusion.
pub const FFT_FUSION_GASNET_NOSRQ: [f64; 9] = [
    2.4315, 3.5079, 4.9294, 8.4172, 15.2665, 26.5122, 43.4191, 77.4317, 117.2695,
];

// ---- Figure 7: FFT on Edison (GFlop/s) ---------------------------------
/// CAF-MPI FFT on Edison.
pub const FFT_EDISON_MPI: [f64; 9] = [
    6.2971, 9.9241, 17.9998, 32.8323, 74.2554, 152.9704, 305.3309, 585.6462, 945.5121,
];
/// CAF-GASNet FFT on Edison.
pub const FFT_EDISON_GASNET: [f64; 9] = [
    3.9050, 7.2703, 11.7259, 20.4787, 37.9913, 66.6050, 121.6078, 233.8628, 419.6483,
];

// ---- Figure 8: FFT time decomposition @256 cores, Fusion (seconds) ------
/// CAF-GASNet: (alltoall, computation).
pub const FFT_DECOMP_GASNET: (f64, f64) = (17.92, 7.94);
/// CAF-MPI: (alltoall, computation).
pub const FFT_DECOMP_MPI: (f64, f64) = (6.06, 8.31);

// ---- Figure 9: HPL on Fusion (TFlop/s) ----------------------------------
/// CAF-MPI HPL on Fusion.
pub const HPL_FUSION_MPI: [f64; 4] =
    [0.0350152743, 0.1311492785, 0.4805325189, 1.7443695111];
/// CAF-GASNet HPL on Fusion.
pub const HPL_FUSION_GASNET: [f64; 4] =
    [0.0330905247, 0.122221024, 0.4467551121, 1.5327417036];
/// CAF-GASNet-NOSRQ HPL on Fusion.
pub const HPL_FUSION_GASNET_NOSRQ: [f64; 4] =
    [0.0330424331, 0.1254319838, 0.4453462682, 1.560673607];

// ---- Figure 10: HPL on Edison (TFlop/s) ---------------------------------
/// CAF-MPI HPL on Edison.
pub const HPL_EDISON_MPI: [f64; 5] = [
    0.113494752, 0.4315327371, 1.5640185942, 5.4019310091, 17.931944405,
];
/// CAF-GASNet HPL on Edison (runs above 256 processes not reported).
pub const HPL_EDISON_GASNET: [f64; 3] = [0.1153884087, 0.4306770224, 1.6010092905];

// ---- Figures 11/12: CGPOP execution time (seconds) ----------------------
/// CAF-MPI PUSH on Fusion.
pub const CGPOP_FUSION_MPI_PUSH: [f64; 8] =
    [656.47, 251.96, 157.64, 148.37, 102.76, 109.36, 104.04, 50.98];
/// CAF-MPI PULL on Fusion.
pub const CGPOP_FUSION_MPI_PULL: [f64; 8] =
    [654.98, 250.94, 155.62, 150.68, 108.40, 121.16, 110.47, 50.94];
/// CAF-GASNet PUSH on Fusion.
pub const CGPOP_FUSION_GASNET_PUSH: [f64; 8] =
    [657.82, 236.48, 155.87, 166.66, 105.83, 104.97, 103.08, 51.35];
/// CAF-GASNet PULL on Fusion.
pub const CGPOP_FUSION_GASNET_PULL: [f64; 8] =
    [731.35, 266.96, 155.32, 174.68, 117.35, 137.99, 110.58, 55.20];
/// CAF-MPI PUSH on Edison.
pub const CGPOP_EDISON_MPI_PUSH: [f64; 8] =
    [2373.33, 800.57, 483.73, 481.15, 325.18, 323.59, 324.06, 166.37];
/// CAF-MPI PULL on Edison.
pub const CGPOP_EDISON_MPI_PULL: [f64; 8] =
    [2369.46, 799.63, 482.89, 480.68, 325.57, 323.66, 323.87, 167.70];
/// CAF-GASNet PUSH on Edison.
pub const CGPOP_EDISON_GASNET_PUSH: [f64; 8] =
    [2367.96, 794.29, 482.83, 477.60, 322.41, 321.47, 320.01, 162.31];
/// CAF-GASNet PULL on Edison.
pub const CGPOP_EDISON_GASNET_PULL: [f64; 8] =
    [2362.99, 793.70, 483.45, 478.40, 322.98, 321.74, 320.30, 162.44];

// ---- Figure 1: mapped memory (MB) at 16/64/256 processes ---------------
/// Process counts of the memory figure.
pub const MEM_P: [usize; 3] = [16, 64, 256];
/// GASNet-only mapped memory (MB).
pub const MEM_GASNET_ONLY: [f64; 3] = [26.0, 34.0, 39.0];
/// MPI-only mapped memory (MB).
pub const MEM_MPI_ONLY: [f64; 3] = [107.0, 109.0, 115.0];
/// Duplicate runtimes (both initialized) mapped memory (MB).
pub const MEM_DUPLICATE: [f64; 3] = [133.0, 143.0, 154.0];

// ---- Microbenchmark panels (ops/second) ---------------------------------
/// Core counts of the Mira panel.
pub const MIRA_P: [usize; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
/// CAF-GASNet READ rate on Mira.
pub const MIRA_GASNET_READ: [f64; 9] = [
    272479.56, 266666.66, 263852.25, 256410.27, 266666.66, 256410.27, 265957.47, 247524.75,
    266666.66,
];
/// CAF-GASNet WRITE rate on Mira.
pub const MIRA_GASNET_WRITE: [f64; 9] = [
    221729.48, 217864.92, 216919.73, 203665.98, 213675.22, 209205.03, 211864.41, 207039.33,
    206611.58,
];
/// CAF-GASNet EVENT_NOTIFY rate on Mira.
pub const MIRA_GASNET_NOTIFY: [f64; 9] = [
    99304.867, 97560.977, 96993.211, 95969.281, 96432.023, 96899.227, 97465.883, 96711.797,
    96899.227,
];
/// CAF-MPI READ rate on Mira.
pub const MIRA_MPI_READ: [f64; 9] = [
    76745.969, 61614.293, 61614.293, 61614.293, 61274.512, 61274.512, 60642.813, 60569.352,
    60716.457,
];
/// CAF-MPI WRITE rate on Mira.
pub const MIRA_MPI_WRITE: [f64; 9] = [
    61087.355, 51177.074, 52273.914, 50864.699, 51229.508, 50226.016, 51733.059, 51334.703,
    49358.340,
];
/// CAF-MPI EVENT_NOTIFY rate on Mira.
pub const MIRA_MPI_NOTIFY: [f64; 9] = [
    100704.94, 89847.258, 89605.727, 88967.977, 88888.891, 87489.063, 89525.516, 88809.945,
    89766.609,
];
/// CAF-MPI alltoall rate on Mira.
pub const MIRA_MPI_A2A: [f64; 9] = [
    24096.387, 21186.441, 16778.523, 11494.253, 7087.1724, 4071.6611, 2230.1516, 1166.3168,
    602.73645,
];
/// CAF-GASNet alltoall rate on Mira.
pub const MIRA_GASNET_A2A: [f64; 9] = [
    3716.0906, 1979.4141, 984.83356, 475.48856, 221.75407, 102.36043, 45.536510, 20.609421,
    9.9222002,
];

/// Core counts of the Edison panel.
pub const EDISON_MICRO_P: [usize; 8] = [32, 64, 128, 256, 512, 1024, 2048, 4096];
/// CAF-GASNet READ rate on Edison.
pub const EDISON_GASNET_READ: [f64; 8] = [
    445434.3, 385951.4, 324570.0, 390930.4, 293083.2, 232342.0, 264550.3, 252079.7,
];
/// CAF-GASNet WRITE rate on Edison.
pub const EDISON_GASNET_WRITE: [f64; 8] = [
    579038.8, 500250.1, 490436.5, 500000.0, 256607.7, 274499.0, 364564.3, 308261.4,
];
/// CAF-GASNet EVENT_NOTIFY rate on Edison.
pub const EDISON_GASNET_NOTIFY: [f64; 8] = [
    674763.8, 665779.0, 655308.0, 655308.0, 655308.0, 582411.2, 654878.8, 521920.7,
];
/// CAF-MPI READ rate on Edison.
pub const EDISON_MPI_READ: [f64; 8] = [
    207555.0, 209205.0, 205465.4, 206996.5, 176398.0, 201612.9, 201369.3, 143082.0,
];
/// CAF-MPI WRITE rate on Edison.
pub const EDISON_MPI_WRITE: [f64; 8] = [
    210172.3, 210305.0, 206313.2, 208159.9, 177273.5, 202880.9, 200964.6, 142227.3,
];
/// CAF-MPI EVENT_NOTIFY rate on Edison.
pub const EDISON_MPI_NOTIFY: [f64; 8] = [
    700770.8, 700770.8, 700770.8, 696864.1, 696864.1, 693962.6, 686341.8, 619962.8,
];
/// CAF-MPI alltoall rate on Edison.
pub const EDISON_MPI_A2A: [f64; 8] = [
    12396.18, 5767.345, 2727.917, 1272.507, 514.6469, 268.2957, 112.9217, 29.40790,
];
/// CAF-GASNet alltoall rate on Edison.
pub const EDISON_GASNET_A2A: [f64; 8] = [
    24177.95, 7081.150, 2399.923, 911.6103, 258.6646, 87.81258, 44.26492, 19.71037,
];

#[cfg(test)]
#[allow(clippy::assertions_on_constants)] // the tests assert published data
mod tests {
    use super::*;

    #[test]
    fn fft_mpi_always_wins_both_platforms() {
        for (m, g) in FFT_FUSION_MPI.iter().zip(&FFT_FUSION_GASNET) {
            assert!(m >= g);
        }
        for (m, g) in FFT_EDISON_MPI.iter().zip(&FFT_EDISON_GASNET) {
            assert!(m > g);
        }
    }

    #[test]
    fn srq_dip_present_in_fusion_ra() {
        // SRQ turns on at 128 cores: the SRQ curve drops below its own
        // 64-core point...
        assert!(RA_FUSION_GASNET[4] < RA_FUSION_GASNET[3]);
        // ...while NOSRQ keeps climbing and tracks CAF-MPI.
        assert!(RA_FUSION_GASNET_NOSRQ[4] > RA_FUSION_GASNET_NOSRQ[3]);
        let r = RA_FUSION_GASNET_NOSRQ[8] / RA_FUSION_MPI[8];
        assert!((0.9..1.1).contains(&r), "NOSRQ ≈ MPI at scale: {r}");
    }

    #[test]
    fn gasnet_wins_small_scale_ra_on_fusion() {
        // "outperforms ... by a small constant factor up to 64 cores"
        for i in 0..4 {
            assert!(RA_FUSION_GASNET[i] > RA_FUSION_MPI[i]);
        }
    }

    #[test]
    fn gasnet_scales_better_ra_on_edison() {
        // Cray MPI RMA over send/recv → CAF-MPI falls behind at scale.
        assert!(RA_EDISON_GASNET[8] > 2.5 * RA_EDISON_MPI[8]);
    }

    #[test]
    fn duplicate_memory_is_the_sum() {
        for i in 0..3 {
            assert!((MEM_DUPLICATE[i] - MEM_GASNET_ONLY[i] - MEM_MPI_ONLY[i]).abs() <= 1.0);
        }
    }

    #[test]
    fn ra_decomposition_story() {
        // CAF-MPI burns significant time in event_notify; GASNet almost none.
        assert!(RA_DECOMP_MPI[3] > 50.0 * RA_DECOMP_GASNET[3]);
        // GASNet spends its time waiting instead.
        assert!(RA_DECOMP_GASNET[2] > RA_DECOMP_MPI[2]);
    }

    #[test]
    fn fft_decomposition_story() {
        // The FFT gap is (almost) entirely alltoall.
        assert!(FFT_DECOMP_GASNET.0 > 2.5 * FFT_DECOMP_MPI.0);
        assert!((FFT_DECOMP_GASNET.1 - FFT_DECOMP_MPI.1).abs() < 1.0);
    }

    #[test]
    fn hpl_curves_indistinguishable() {
        for i in 0..3 {
            let f = HPL_FUSION_MPI[i] / HPL_FUSION_GASNET[i];
            assert!((0.90..1.10).contains(&f), "{f}");
            let e = HPL_EDISON_MPI[i] / HPL_EDISON_GASNET[i];
            assert!((0.90..1.10).contains(&e), "{e}");
        }
    }

    #[test]
    fn cgpop_variants_indistinguishable() {
        for i in 0..8 {
            let base = CGPOP_EDISON_MPI_PUSH[i];
            for v in [
                CGPOP_EDISON_MPI_PULL[i],
                CGPOP_EDISON_GASNET_PUSH[i],
                CGPOP_EDISON_GASNET_PULL[i],
            ] {
                assert!((v / base - 1.0).abs() < 0.035, "{v} vs {base}");
            }
        }
    }

    #[test]
    fn cgpop_follows_block_decomposition() {
        // time(P) ≈ c · ceil(360/P): the stair-step pattern, both machines.
        for (series, c) in [
            (&CGPOP_EDISON_MPI_PUSH, CGPOP_EDISON_MPI_PUSH[7]),
            (&CGPOP_FUSION_MPI_PUSH, CGPOP_FUSION_MPI_PUSH[7]),
        ] {
            for (i, &p) in CGPOP_P.iter().enumerate() {
                let blocks = 360usize.div_ceil(p) as f64;
                let ratio = series[i] / (c * blocks);
                assert!((0.75..1.3).contains(&ratio), "P={p}: ratio {ratio}");
            }
        }
    }

    #[test]
    fn edison_micro_alltoall_crossover() {
        // GASNet's hand-rolled alltoall wins at 32 cores but loses by
        // 256 — the per-message overhead gap takes over.
        assert!(EDISON_GASNET_A2A[0] > EDISON_MPI_A2A[0]);
        assert!(EDISON_GASNET_A2A[3] < EDISON_MPI_A2A[3]);
    }

    #[test]
    fn mira_micro_gasnet_p2p_faster() {
        for i in 0..9 {
            assert!(MIRA_GASNET_READ[i] > MIRA_MPI_READ[i]);
            assert!(MIRA_GASNET_WRITE[i] > MIRA_MPI_WRITE[i]);
        }
    }
}
