//! HPL performance model (Figures 9, 10).
//!
//! HPL is compute-bound: `TFlop/s ≈ P · rate · eff(P)`, with a mild
//! parallel-efficiency decay from panel broadcasts and load imbalance.
//! The substrate term is a constant within a few percent — the paper's
//! point ("the performance difference of using different communication
//! library has little effect on HPL").

use crate::platform::{Platform, Substrate};

/// Per-curve efficiency-decay and substrate constants.
#[derive(Debug, Clone, Copy)]
pub struct HplParams {
    /// Sustained per-core rate at 16 processes (flops/s).
    pub rate16: f64,
    /// Efficiency decay per doubling beyond 16 processes.
    pub decay: f64,
    /// Substrate multiplier (≈ 1).
    pub substrate_factor: f64,
}

/// Fitted parameters for `(platform, substrate)`.
pub fn params(plat: &Platform, sub: Substrate) -> HplParams {
    let (rate16, decay) = match plat.name {
        "Fusion" => (2.19e9, 0.048),
        "Edison" => (7.09e9, 0.0775),
        _ => (3.0e9, 0.06),
    };
    let substrate_factor = match (plat.name, sub) {
        ("Fusion", Substrate::Gasnet) => 0.95,
        ("Edison", Substrate::Gasnet) => 1.01,
        _ => 1.0,
    };
    HplParams {
        rate16,
        decay,
        substrate_factor,
    }
}

/// Modeled TFlop/s at job size `p`.
pub fn tflops(plat: &Platform, sub: Substrate, p: usize) -> f64 {
    let prm = params(plat, sub);
    let lg = (p as f64 / 16.0).log2().max(0.0);
    let eff = 1.0 / (1.0 + prm.decay * lg);
    p as f64 * prm.rate16 * eff * prm.substrate_factor * 1e-12
}

/// Series over a sweep of job sizes.
pub fn tflops_series(plat: &Platform, sub: Substrate, ps: &[usize]) -> Vec<f64> {
    ps.iter().map(|&p| tflops(plat, sub, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata as pd;
    use crate::platform::{EDISON, FUSION};
    use crate::shape_error;

    #[test]
    fn fusion_matches_paper() {
        let mpi = tflops_series(&FUSION, Substrate::Mpi, &pd::HPL_FUSION_P);
        assert!(shape_error(&mpi, &pd::HPL_FUSION_MPI) < 1.15);
        // Absolute agreement too (the model is anchored here).
        for (m, r) in mpi.iter().zip(&pd::HPL_FUSION_MPI) {
            assert!((m / r).max(r / m) < 1.2, "{m} vs {r}");
        }
    }

    #[test]
    fn edison_matches_paper() {
        let mpi = tflops_series(&EDISON, Substrate::Mpi, &pd::HPL_EDISON_P);
        assert!(shape_error(&mpi, &pd::HPL_EDISON_MPI) < 1.15);
    }

    #[test]
    fn substrates_indistinguishable() {
        for plat in [&FUSION, &EDISON] {
            for &p in &[16usize, 64, 256, 1024] {
                let r = tflops(plat, Substrate::Mpi, p) / tflops(plat, Substrate::Gasnet, p);
                assert!((0.9..1.1).contains(&r), "{} P={p}: {r}", plat.name);
            }
        }
    }
}
