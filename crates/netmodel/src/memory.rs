//! Mapped-memory model (Figure 1).
//!
//! GASNet keeps segment metadata in user-space buffers and grows slowly
//! (≈ logarithmically — connection state is lazy); an MPI library maps a
//! large fixed footprint plus per-peer eager/connection state (≈ linear
//! in P). An application that initializes **both** runtimes pays the sum
//! — the duplicate-runtimes cost the paper's interoperable design
//! removes.

/// Modeled GASNet-only mapped memory, in MB, at job size `p`.
pub fn gasnet_mb(p: usize) -> f64 {
    13.4 + 3.25 * (p as f64).log2()
}

/// Modeled MPI-only mapped memory, in MB, at job size `p`.
pub fn mpi_mb(p: usize) -> f64 {
    106.5 + 0.0333 * p as f64
}

/// Modeled duplicate-runtimes mapped memory, in MB, at job size `p`.
pub fn duplicate_mb(p: usize) -> f64 {
    gasnet_mb(p) + mpi_mb(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata as pd;

    #[test]
    fn matches_figure1_within_ten_percent() {
        for (i, &p) in pd::MEM_P.iter().enumerate() {
            let checks = [
                (gasnet_mb(p), pd::MEM_GASNET_ONLY[i]),
                (mpi_mb(p), pd::MEM_MPI_ONLY[i]),
                (duplicate_mb(p), pd::MEM_DUPLICATE[i]),
            ];
            for (model, paper) in checks {
                assert!(
                    (model / paper - 1.0).abs() < 0.10,
                    "P={p}: {model} vs {paper}"
                );
            }
        }
    }

    #[test]
    fn both_runtimes_grow_with_job_size() {
        assert!(gasnet_mb(4096) > gasnet_mb(16));
        assert!(mpi_mb(4096) > mpi_mb(16));
    }

    #[test]
    fn gasnet_stays_below_mpi() {
        for p in [16usize, 256, 4096] {
            assert!(gasnet_mb(p) < mpi_mb(p));
        }
    }
}
