//! CGPOP performance model (Figures 11, 12).
//!
//! The POP benchmark problem is decomposed into a fixed pool of **360
//! ocean blocks**; with `P` processes each one computes `ceil(360/P)`
//! blocks. Execution time is therefore a stair-step function —
//!
//! ```text
//! t(P) = c · ceil(360 / P) + o
//! ```
//!
//! — which is exactly the shape of the paper's curves (e.g. Fusion:
//! ~157 s at 120 *and* 168 processes, because both need 3 blocks). The
//! four variants (PUSH/PULL × MPI/GASNet) differ by fractions of a
//! percent: both use `MPI_REDUCE` for the global sums, and raw puts and
//! gets are equally efficient on both substrates (§4.4).

use crate::platform::{Platform, Substrate};

/// The fixed block pool of the benchmark problem.
pub const BLOCKS: usize = 360;

/// Halo-exchange style (matches `caf_hpcc::cgpop::ExchangeMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Coarray-write exchange.
    Push,
    /// Coarray-read exchange.
    Pull,
}

/// Per-block compute seconds and fixed overhead for a platform.
pub fn platform_params(plat: &Platform) -> (f64, f64) {
    match plat.name {
        "Fusion" => (45.6, 5.0),
        "Edison" => (158.0, 8.0),
        _ => (100.0, 6.0),
    }
}

/// Variant multiplier (all ≈ 1; PULL on GASNet/ibv was the slowest in
/// the paper's Fusion data).
pub fn variant_factor(sub: Substrate, mode: Mode) -> f64 {
    match (sub, mode) {
        (Substrate::Mpi, Mode::Push) => 1.000,
        (Substrate::Mpi, Mode::Pull) => 1.003,
        (Substrate::Gasnet, Mode::Push) => 0.997,
        (Substrate::Gasnet, Mode::Pull) => 1.022,
    }
}

/// Modeled execution time in seconds at job size `p`.
pub fn exec_time(plat: &Platform, sub: Substrate, mode: Mode, p: usize) -> f64 {
    let (c, o) = platform_params(plat);
    (c * BLOCKS.div_ceil(p) as f64 + o) * variant_factor(sub, mode)
}

/// Series over a sweep of job sizes.
pub fn time_series(plat: &Platform, sub: Substrate, mode: Mode, ps: &[usize]) -> Vec<f64> {
    ps.iter().map(|&p| exec_time(plat, sub, mode, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata as pd;
    use crate::platform::{EDISON, FUSION};
    use crate::shape_error;

    #[test]
    fn fusion_stairsteps_match_paper() {
        let m = time_series(&FUSION, Substrate::Mpi, Mode::Push, &pd::CGPOP_P);
        assert!(shape_error(&m, &pd::CGPOP_FUSION_MPI_PUSH) < 1.35);
    }

    #[test]
    fn edison_stairsteps_match_paper() {
        let m = time_series(&EDISON, Substrate::Mpi, Mode::Push, &pd::CGPOP_P);
        assert!(shape_error(&m, &pd::CGPOP_EDISON_MPI_PUSH) < 1.35);
    }

    #[test]
    fn plateaus_are_reproduced() {
        // 120 and 168 processes both need 3 blocks → same time.
        assert_eq!(
            exec_time(&FUSION, Substrate::Mpi, Mode::Push, 120),
            exec_time(&FUSION, Substrate::Mpi, Mode::Push, 168)
        );
        // 216..312 need 2 → same time; 360 needs 1 → big drop.
        assert_eq!(
            exec_time(&FUSION, Substrate::Mpi, Mode::Push, 216),
            exec_time(&FUSION, Substrate::Mpi, Mode::Push, 312)
        );
        assert!(
            exec_time(&FUSION, Substrate::Mpi, Mode::Push, 360)
                < 0.6 * exec_time(&FUSION, Substrate::Mpi, Mode::Push, 312)
        );
    }

    #[test]
    fn all_variants_within_three_percent() {
        for sub in [Substrate::Mpi, Substrate::Gasnet] {
            for mode in [Mode::Push, Mode::Pull] {
                for &p in &pd::CGPOP_P {
                    let v = exec_time(&EDISON, sub, mode, p);
                    let b = exec_time(&EDISON, Substrate::Mpi, Mode::Push, p);
                    assert!((v / b - 1.0).abs() < 0.03);
                }
            }
        }
    }
}
