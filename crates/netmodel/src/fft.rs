//! FFT performance model (Figures 6, 7, 8).
//!
//! Weak scaling: `m = m0 · P` complex points. Per the six-step transpose
//! algorithm the run is local butterflies plus three alltoalls, so
//!
//! ```text
//! T(P) = 5·m·log2(m) / (P · rate)  +  3 · t_a2a(P)
//! t_a2a(P) = bytes_per_image · pb · (1 + growth · log2(P / Pmin))
//! ```
//!
//! with `bytes_per_image ≈ m0 · 16` (each image exchanges its whole slab
//! every transpose). `pb` is the effective per-byte alltoall cost of the
//! substrate — the tuned `MPI_ALLTOALL` versus CAF-GASNet's hand-rolled
//! exchange (§4.2) — and `growth` captures contention at scale.
//!
//! `GFlop/s = 5·m·log2(m) / T / 10⁹` (the HPCC definition).

use crate::platform::{Platform, Substrate};

/// Complex points per image (weak scaling).
pub const M0: f64 = (1u64 << 21) as f64;

/// Fitted alltoall parameters for one curve.
#[derive(Debug, Clone, Copy)]
pub struct FftParams {
    /// Effective per-byte alltoall cost at the smallest scale (ns/byte).
    pub pb_ns: f64,
    /// Fractional growth per doubling beyond the platform's smallest
    /// measured job size.
    pub growth: f64,
    /// Smallest measured job size on this platform.
    pub pmin: f64,
}

/// Fitted parameters for `(platform, substrate)`.
pub fn params(plat: &Platform, sub: Substrate) -> FftParams {
    match (plat.name, sub) {
        ("Fusion", Substrate::Mpi) => FftParams {
            pb_ns: 1.63,
            growth: 1.22,
            pmin: 8.0,
        },
        ("Fusion", Substrate::Gasnet) => FftParams {
            pb_ns: 2.10,
            growth: 2.80,
            pmin: 8.0,
        },
        ("Edison", Substrate::Mpi) => FftParams {
            pb_ns: 1.90,
            growth: 0.44,
            pmin: 16.0,
        },
        ("Edison", Substrate::Gasnet) => FftParams {
            pb_ns: 6.00,
            growth: 0.45,
            pmin: 16.0,
        },
        _ => FftParams {
            pb_ns: 2.0,
            growth: 1.0,
            pmin: 16.0,
        },
    }
}

/// Seconds for one FFT-sized alltoall at job size `p`.
pub fn t_alltoall(plat: &Platform, sub: Substrate, p: usize) -> f64 {
    let prm = params(plat, sub);
    let bytes = M0 * 16.0;
    let lg = (p as f64 / prm.pmin).log2().max(0.0);
    bytes * prm.pb_ns * 1e-9 * (1.0 + prm.growth * lg)
}

/// Local compute seconds at job size `p`.
pub fn t_compute(plat: &Platform, p: usize) -> f64 {
    let m = M0 * p as f64;
    5.0 * m * m.log2() / (p as f64 * plat.core_gflops_fft)
}

/// Modeled GFlop/s at job size `p`.
pub fn gflops(plat: &Platform, sub: Substrate, p: usize) -> f64 {
    let m = M0 * p as f64;
    let t = t_compute(plat, p) + 3.0 * t_alltoall(plat, sub, p);
    5.0 * m * m.log2() / t * 1e-9
}

/// Series over a sweep of job sizes.
pub fn gflops_series(plat: &Platform, sub: Substrate, ps: &[usize]) -> Vec<f64> {
    ps.iter().map(|&p| gflops(plat, sub, p)).collect()
}

/// Figure-8 decomposition at `p` cores: `(alltoall_s, computation_s)` for
/// one whole run (3 transposes).
pub fn decomposition(plat: &Platform, sub: Substrate, p: usize) -> (f64, f64) {
    (3.0 * t_alltoall(plat, sub, p), t_compute(plat, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata as pd;
    use crate::platform::{EDISON, FUSION};
    use crate::shape_error;

    #[test]
    fn fusion_shapes_match_paper() {
        let mpi = gflops_series(&FUSION, Substrate::Mpi, &pd::FUSION_P);
        let g = gflops_series(&FUSION, Substrate::Gasnet, &pd::FUSION_P);
        assert!(shape_error(&mpi, &pd::FFT_FUSION_MPI) < 1.5);
        assert!(shape_error(&g, &pd::FFT_FUSION_GASNET) < 1.5);
    }

    #[test]
    fn edison_shapes_match_paper() {
        let mpi = gflops_series(&EDISON, Substrate::Mpi, &pd::EDISON_P);
        let g = gflops_series(&EDISON, Substrate::Gasnet, &pd::EDISON_P);
        assert!(shape_error(&mpi, &pd::FFT_EDISON_MPI) < 1.5);
        assert!(shape_error(&g, &pd::FFT_EDISON_GASNET) < 1.5);
    }

    #[test]
    fn mpi_wins_fft_everywhere() {
        for plat in [&FUSION, &EDISON] {
            for &p in &[16usize, 64, 256, 1024] {
                assert!(
                    gflops(plat, Substrate::Mpi, p) > gflops(plat, Substrate::Gasnet, p),
                    "{} P={p}",
                    plat.name
                );
            }
        }
    }

    #[test]
    fn mpi_advantage_grows_with_scale_on_fusion() {
        let r16 = gflops(&FUSION, Substrate::Mpi, 16) / gflops(&FUSION, Substrate::Gasnet, 16);
        let r2048 =
            gflops(&FUSION, Substrate::Mpi, 2048) / gflops(&FUSION, Substrate::Gasnet, 2048);
        assert!(r2048 > r16, "{r16} -> {r2048}");
        // Paper endpoint ratio: 264/118 ≈ 2.2.
        assert!((1.5..3.5).contains(&r2048), "{r2048}");
    }

    #[test]
    fn figure8_decomposition_story() {
        let (a2a_m, comp_m) = decomposition(&FUSION, Substrate::Mpi, 256);
        let (a2a_g, comp_g) = decomposition(&FUSION, Substrate::Gasnet, 256);
        // Computation identical; GASNet alltoall ≈ 3× MPI alltoall
        // (paper: 17.92 vs 6.06 with computation ≈ 8 s on both).
        assert_eq!(comp_m, comp_g);
        let ratio = a2a_g / a2a_m;
        assert!((2.0..4.5).contains(&ratio), "{ratio}");
        // GASNet: alltoall dominates computation.
        assert!(a2a_g > comp_g);
    }
}
