//! RandomAccess performance model (Figures 3, 4, 5).
//!
//! Structure: each image generates `N` updates and routes them through
//! `d = log2(P)` hypercube rounds. A round moves ~`N/2` updates in bulk
//! messages of `CHUNK` updates, each followed by an `event_notify`; the
//! receiving side waits on events. Per-round time:
//!
//! ```text
//! t_round(P) = base · congestion(P) · srq(P)  +  n_msgs · notify(P)
//! ```
//!
//! * `base` — per-update generation + bucketing + transfer at small scale
//!   (fitted to the paper's smallest-P point);
//! * `congestion(P)` — network contention beyond 64 ranks (fitted to the
//!   paper's largest-P point of the *constant-notify* GASNet curve);
//! * `srq(P)` — the Fusion ibv conduit's SRQ receive penalty (≥ 128
//!   ranks, unless NOSRQ);
//! * `notify(P)` — constant for GASNet; `base + flush_per_rank · P` for
//!   MPI (`MPI_Win_flush_all` is Θ(P) in MPICH derivatives — §4.1).
//!
//! `GUPS(P) = P · N / (d · t_round) / 10⁹`.

use crate::platform::{Platform, Substrate};

/// Updates generated per image (weak scaling, fixed per image).
pub const N_PER_IMAGE: f64 = (1u64 << 24) as f64;
/// Updates per bulk message.
pub const CHUNK: f64 = 8192.0;
/// Job size beyond which congestion grows.
const CONGESTION_KNEE: f64 = 64.0;

/// Fitted per-round base seconds and congestion growth for one curve.
#[derive(Debug, Clone, Copy)]
pub struct RaParams {
    /// Per-round time at small scale (seconds).
    pub base_s: f64,
    /// Fractional growth of `base_s` per doubling beyond 64 ranks.
    pub congestion_per_doubling: f64,
}

/// Fitted parameters for `(platform, substrate)`.
pub fn params(plat: &Platform, sub: Substrate) -> RaParams {
    match (plat.name, sub) {
        ("Fusion", Substrate::Mpi) => RaParams {
            base_s: 0.73,
            congestion_per_doubling: 0.0,
        },
        ("Fusion", Substrate::Gasnet) => RaParams {
            base_s: 0.55,
            congestion_per_doubling: 0.31,
        },
        ("Edison", Substrate::Mpi) => RaParams {
            base_s: 0.546,
            congestion_per_doubling: 0.13,
        },
        ("Edison", Substrate::Gasnet) => RaParams {
            base_s: 0.308,
            congestion_per_doubling: 0.217,
        },
        _ => RaParams {
            base_s: 0.6,
            congestion_per_doubling: 0.15,
        },
    }
}

/// Modeled per-round seconds.
pub fn t_round(plat: &Platform, sub: Substrate, p: usize, no_srq: bool) -> f64 {
    let prm = params(plat, sub);
    let lg = (p as f64 / CONGESTION_KNEE).log2().max(0.0);
    let congestion = 1.0 + prm.congestion_per_doubling * lg;
    let srq = plat.srq_factor(sub, p, no_srq);
    let n_msgs = N_PER_IMAGE / 2.0 / CHUNK;
    prm.base_s * congestion * srq + n_msgs * plat.notify_ns(sub, p) * 1e-9
}

/// Modeled GUP/s at job size `p`.
pub fn gups(plat: &Platform, sub: Substrate, p: usize, no_srq: bool) -> f64 {
    let d = (p as f64).log2().max(1.0);
    p as f64 * N_PER_IMAGE / (d * t_round(plat, sub, p, no_srq)) / 1e9
}

/// Series over a sweep of job sizes.
pub fn gups_series(plat: &Platform, sub: Substrate, ps: &[usize], no_srq: bool) -> Vec<f64> {
    ps.iter().map(|&p| gups(plat, sub, p, no_srq)).collect()
}

/// Projected CAF-MPI GUP/s with the paper's §5/§7 improvement applied:
/// a per-target (or request-based `MPI_WIN_RFLUSH`) completion instead of
/// the Θ(P) `MPI_Win_flush_all` inside `event_notify`. The notify term
/// collapses to its base cost — "this would improve the performance of
/// operations that rely heavily on CAF events, such as the RandomAccess
/// benchmark" (§7).
pub fn gups_rflush(plat: &Platform, p: usize) -> f64 {
    let prm = params(plat, Substrate::Mpi);
    let lg = (p as f64 / CONGESTION_KNEE).log2().max(0.0);
    let congestion = 1.0 + prm.congestion_per_doubling * lg;
    let n_msgs = N_PER_IMAGE / 2.0 / CHUNK;
    let t_round = prm.base_s * congestion + n_msgs * plat.mpi_notify_base_ns * 1e-9;
    let d = (p as f64).log2().max(1.0);
    p as f64 * N_PER_IMAGE / (d * t_round) / 1e9
}

/// Series form of [`gups_rflush`].
pub fn gups_rflush_series(plat: &Platform, ps: &[usize]) -> Vec<f64> {
    ps.iter().map(|&p| gups_rflush(plat, p)).collect()
}

/// The Figure-4 time decomposition at `p` cores on `plat`, in seconds:
/// `[computation, coarray_write, event_wait, event_notify]`.
///
/// Mechanism terms: computation and coarray_write scale with the
/// profiled-run update count; event_notify comes from the notify model;
/// event_wait is the hypercube idle time, proportional to the active
/// time with a substrate-specific imbalance factor (cheap notification →
/// receivers spin longer, which is why CAF-GASNet's profile is dominated
/// by `event_wait`).
pub fn decomposition(plat: &Platform, sub: Substrate, p: usize) -> [f64; 4] {
    // The paper's profiled run is larger than the model's default N; use
    // the 2^28-updates-per-image configuration of the profiled run.
    let n = (1u64 << 28) as f64;
    let d = (p as f64).log2();
    let msgs_per_round = n / 2.0 / 4096.0;
    let (comp_ns_per_upd, write_ns_per_upd, imbalance) = match sub {
        // Fitted to the Figure-4 profile: MPI's two-sided AM layer does
        // more per-update bookkeeping; its waiters return sooner because
        // notifications are serialized by the flush, while GASNet's cheap
        // notify leaves its receivers spinning in event_wait.
        Substrate::Mpi => (92.1, 54.2, 1.508),
        Substrate::Gasnet => (52.1, 18.0, 8.14),
    };
    let comp = n * d * comp_ns_per_upd * 1e-9 / d; // generation once, not per round
    let comp = comp * d.sqrt(); // bucketing repeats per round at lower cost
    let write = n * d * write_ns_per_upd * 1e-9;
    let notify = msgs_per_round * d * plat.notify_ns(sub, p) * 1e-9;
    let wait = imbalance * (comp + write) / 2.0 + notify * 0.3;
    [comp, write, wait, notify]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata as pd;
    use crate::platform::{EDISON, FUSION};
    use crate::shape_error;

    #[test]
    fn fusion_mpi_shape_matches_paper() {
        let model = gups_series(&FUSION, Substrate::Mpi, &pd::FUSION_P, false);
        let err = shape_error(&model, &pd::RA_FUSION_MPI);
        assert!(err < 1.6, "shape error {err}");
    }

    #[test]
    fn fusion_gasnet_srq_dip_reproduced() {
        let model = gups_series(&FUSION, Substrate::Gasnet, &pd::FUSION_P, false);
        // Dip: 128-core point below the 64-core point.
        assert!(model[4] < model[3], "{model:?}");
        let err = shape_error(&model, &pd::RA_FUSION_GASNET);
        assert!(err < 1.7, "shape error {err}");
    }

    #[test]
    fn fusion_nosrq_tracks_mpi() {
        let nosrq = gups_series(&FUSION, Substrate::Gasnet, &pd::FUSION_P, true);
        let err = shape_error(&nosrq, &pd::RA_FUSION_GASNET_NOSRQ);
        assert!(err < 1.7, "shape error {err}");
        // No dip without SRQ.
        assert!(nosrq[4] > nosrq[3]);
        // And roughly CAF-MPI's level at scale (paper: "performs roughly
        // the same as CAF-MPI").
        let mpi = gups(&FUSION, Substrate::Mpi, 2048, false);
        let ratio = nosrq[8] / mpi;
        assert!((0.5..2.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn gasnet_wins_small_scale_on_fusion() {
        for p in [8usize, 16, 32, 64] {
            assert!(
                gups(&FUSION, Substrate::Gasnet, p, false)
                    > gups(&FUSION, Substrate::Mpi, p, false),
                "P={p}"
            );
        }
    }

    #[test]
    fn edison_shapes_match_paper() {
        let mpi = gups_series(&EDISON, Substrate::Mpi, &pd::EDISON_P, false);
        let g = gups_series(&EDISON, Substrate::Gasnet, &pd::EDISON_P, false);
        assert!(shape_error(&mpi, &pd::RA_EDISON_MPI) < 1.6);
        assert!(shape_error(&g, &pd::RA_EDISON_GASNET) < 1.8);
        // GASNet scales away from CAF-MPI on Edison.
        assert!(g[8] / mpi[8] > 1.8);
    }

    #[test]
    fn notify_term_grows_linearly_for_mpi() {
        let t1 = t_round(&EDISON, Substrate::Mpi, 256, false);
        let t2 = t_round(&EDISON, Substrate::Mpi, 4096, false);
        // The flush_all term alone adds ≥ (4096-256)·flush·msgs.
        let msgs = N_PER_IMAGE / 2.0 / CHUNK;
        let added = msgs * EDISON.mpi_flush_per_rank_ns * (4096.0 - 256.0) * 1e-9;
        assert!(t2 - t1 > 0.8 * added);
    }

    #[test]
    fn rflush_projection_beats_flush_all_at_scale() {
        // The §7 claim: removing the Θ(P) flush term helps most where
        // RandomAccess hurts most.
        for plat in [&FUSION, &EDISON] {
            let gain_small =
                gups_rflush(plat, 16) / gups(plat, Substrate::Mpi, 16, false);
            let gain_large =
                gups_rflush(plat, 4096) / gups(plat, Substrate::Mpi, 4096, false);
            assert!(gain_large > gain_small, "{}", plat.name);
            assert!(gain_large > 1.2, "{}: {gain_large}", plat.name);
            // And never a slowdown.
            assert!(gain_small >= 0.999);
        }
    }

    #[test]
    fn decomposition_matches_figure4_story() {
        let mpi = decomposition(&FUSION, Substrate::Mpi, 2048);
        let gas = decomposition(&FUSION, Substrate::Gasnet, 2048);
        // CAF-MPI spends heavily in event_notify, GASNet almost nothing.
        assert!(mpi[3] > 20.0 * gas[3], "{mpi:?} vs {gas:?}");
        // GASNet's dominant category is event_wait.
        assert!(gas[2] > gas[0] && gas[2] > gas[1] && gas[2] > gas[3]);
        // MPI writes cost more than GASNet writes (per-op overhead gap).
        assert!(mpi[1] > 1.5 * gas[1]);
        // Totals are the same order as the paper's (≈717 s vs ≈509 s).
        let tm: f64 = mpi.iter().sum();
        let tg: f64 = gas.iter().sum();
        assert!((300.0..1500.0).contains(&tm), "{tm}");
        assert!((200.0..1100.0).contains(&tg), "{tg}");
        assert!(tm > tg);
    }
}
