//! Platform descriptions (the paper's Table 1) and per-(platform,
//! substrate) cost tables anchored to the paper's microbenchmark panels.

/// Which runtime the model is costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Substrate {
    /// CAF-MPI (MVAPICH2 on Fusion, CRAY-MPICH on Edison, MPICH on Mira).
    Mpi,
    /// CAF-GASNet (ibv conduit on Fusion, aries on Edison, pami on Mira).
    Gasnet,
}

/// Alltoall cost model for one substrate on one platform:
/// `t(p) = base + (p−1) · per_msg · (1 + log_growth · log2(p / 32))`,
/// the last factor capturing congestion (or, negative, hardware
/// collective acceleration).
#[derive(Debug, Clone, Copy)]
pub struct A2aCost {
    /// Fixed cost per call (ns).
    pub base_ns: f64,
    /// Per-destination message overhead (ns).
    pub per_msg_ns: f64,
    /// Relative growth of the per-message cost per doubling beyond 32
    /// ranks.
    pub log_growth: f64,
}

impl A2aCost {
    /// Seconds for one alltoall over `p` ranks with `block_bytes` per
    /// destination, given a per-byte wire cost.
    pub fn seconds(&self, p: usize, block_bytes: f64, per_byte_ns: f64) -> f64 {
        let lg = ((p as f64 / 32.0).log2()).max(0.0);
        let pm = self.per_msg_ns * (1.0 + self.log_growth * lg);
        (self.base_ns + (p - 1) as f64 * (pm + block_bytes * per_byte_ns)) * 1e-9
    }
}

/// One experimental platform (a row of the paper's Table 1, plus the
/// modelling constants derived from its microbenchmarks).
#[derive(Debug, Clone, Copy)]
pub struct Platform {
    /// Machine name.
    pub name: &'static str,
    /// Number of nodes (Table 1).
    pub nodes: usize,
    /// Cores per node (Table 1, sockets × cores).
    pub cores_per_node: usize,
    /// GiB of memory per node (Table 1).
    pub mem_per_node_gib: usize,
    /// Interconnect (Table 1).
    pub interconnect: &'static str,
    /// MPI implementation (Table 1).
    pub mpi_version: &'static str,

    // -- modelling constants (ns unless noted) -------------------------
    /// MPI one-sided put overhead per op.
    pub mpi_put_ns: f64,
    /// MPI one-sided get overhead per op.
    pub mpi_get_ns: f64,
    /// MPI event-notify fixed part (waitall + isend) with no outstanding
    /// RMA (the microbenchmark regime).
    pub mpi_notify_base_ns: f64,
    /// MPI `flush_all` cost per rank (the Θ(P) driver, visible when RMA
    /// is outstanding — the RandomAccess regime).
    pub mpi_flush_per_rank_ns: f64,
    /// GASNet put overhead per op.
    pub gasnet_put_ns: f64,
    /// GASNet get overhead per op.
    pub gasnet_get_ns: f64,
    /// GASNet event-notify overhead per op (AMRequestShort).
    pub gasnet_notify_ns: f64,
    /// MPI per-byte cost of bulk transfers (ns/byte).
    pub mpi_per_byte_ns: f64,
    /// GASNet per-byte cost of bulk transfers (ns/byte).
    pub gasnet_per_byte_ns: f64,
    /// MPI_ALLTOALL model (small payloads).
    pub mpi_a2a: A2aCost,
    /// Hand-rolled GASNet alltoall model (small payloads).
    pub gasnet_a2a: A2aCost,
    /// GASNet SRQ: job size at which the ibv conduit's auto heuristic
    /// enables SRQ (`usize::MAX` on non-InfiniBand machines), and the
    /// multiplicative penalty on the AM/bulk receive path.
    pub srq_threshold: usize,
    /// See `srq_threshold`.
    pub srq_penalty: f64,
    /// Sustained per-core compute rate for HPL-like DGEMM (flops/s).
    pub core_gflops_dense: f64,
    /// Sustained per-core compute rate for FFT butterflies (flops/s).
    pub core_gflops_fft: f64,
}

/// Fusion: the paper's InfiniBand cluster at Argonne (Table 1 row 1).
pub const FUSION: Platform = Platform {
    name: "Fusion",
    nodes: 320,
    cores_per_node: 8,
    mem_per_node_gib: 36,
    interconnect: "InfiniBand QDR",
    mpi_version: "MVAPICH2-1.9",
    mpi_put_ns: 4_100.0,
    mpi_get_ns: 4_300.0,
    mpi_notify_base_ns: 1_600.0,
    mpi_flush_per_rank_ns: 330.0,
    gasnet_put_ns: 1_900.0,
    gasnet_get_ns: 2_300.0,
    gasnet_notify_ns: 1_700.0,
    mpi_per_byte_ns: 0.45,
    gasnet_per_byte_ns: 0.40,
    mpi_a2a: A2aCost {
        base_ns: 22_000.0,
        per_msg_ns: 2_100.0,
        log_growth: 0.35,
    },
    gasnet_a2a: A2aCost {
        base_ns: 0.0,
        per_msg_ns: 1_400.0,
        log_growth: 1.15,
    },
    srq_threshold: 128,
    srq_penalty: 2.0,
    core_gflops_dense: 2.3e9,
    core_gflops_fft: 0.40e9,
};

/// Edison: the paper's Cray XC30 at NERSC (Table 1 row 2). Cray MPI
/// implemented MPI-3 RMA over send/receive at the time, so MPI one-sided
/// overheads are relatively high; Aries has no SRQ.
pub const EDISON: Platform = Platform {
    name: "Edison",
    nodes: 5_200,
    cores_per_node: 24,
    mem_per_node_gib: 64,
    interconnect: "Cray Aries",
    mpi_version: "CRAY-MPICH-6.0.2",
    mpi_put_ns: 4_760.0,
    mpi_get_ns: 4_830.0,
    mpi_notify_base_ns: 1_430.0,
    mpi_flush_per_rank_ns: 270.0,
    gasnet_put_ns: 1_730.0,
    gasnet_get_ns: 2_240.0,
    gasnet_notify_ns: 1_480.0,
    mpi_per_byte_ns: 0.30,
    gasnet_per_byte_ns: 0.26,
    mpi_a2a: A2aCost {
        base_ns: 20_000.0,
        per_msg_ns: 1_950.0,
        log_growth: 0.35,
    },
    gasnet_a2a: A2aCost {
        base_ns: 0.0,
        per_msg_ns: 1_330.0,
        log_growth: 1.19,
    },
    srq_threshold: usize::MAX,
    srq_penalty: 1.0,
    core_gflops_dense: 7.1e9,
    core_gflops_fft: 0.55e9,
};

/// Mira: the Blue Gene/Q used for the microbenchmark panel.
pub const MIRA: Platform = Platform {
    name: "Mira",
    nodes: 49_152,
    cores_per_node: 16,
    mem_per_node_gib: 16,
    interconnect: "BG/Q 5D torus",
    mpi_version: "MPICH (PAMI)",
    mpi_put_ns: 19_600.0,
    mpi_get_ns: 16_300.0,
    mpi_notify_base_ns: 11_200.0,
    mpi_flush_per_rank_ns: 120.0,
    gasnet_put_ns: 4_700.0,
    gasnet_get_ns: 3_800.0,
    gasnet_notify_ns: 10_300.0,
    mpi_per_byte_ns: 0.55,
    gasnet_per_byte_ns: 0.50,
    mpi_a2a: A2aCost {
        base_ns: 35_000.0,
        per_msg_ns: 400.0,
        log_growth: 0.0,
    },
    gasnet_a2a: A2aCost {
        base_ns: 0.0,
        per_msg_ns: 24_400.0,
        log_growth: 0.0,
    },
    srq_threshold: usize::MAX, // no SRQ on BG/Q
    srq_penalty: 1.0,
    core_gflops_dense: 3.2e9,
    core_gflops_fft: 0.25e9,
};

impl Platform {
    /// Point-to-point put overhead for `sub`.
    pub fn put_ns(&self, sub: Substrate) -> f64 {
        match sub {
            Substrate::Mpi => self.mpi_put_ns,
            Substrate::Gasnet => self.gasnet_put_ns,
        }
    }

    /// Point-to-point get overhead for `sub`.
    pub fn get_ns(&self, sub: Substrate) -> f64 {
        match sub {
            Substrate::Mpi => self.mpi_get_ns,
            Substrate::Gasnet => self.gasnet_get_ns,
        }
    }

    /// Per-byte bulk transfer cost for `sub`.
    pub fn per_byte_ns(&self, sub: Substrate) -> f64 {
        match sub {
            Substrate::Mpi => self.mpi_per_byte_ns,
            Substrate::Gasnet => self.gasnet_per_byte_ns,
        }
    }

    /// `event_notify` cost at job size `p` with outstanding RMA: the Θ(P)
    /// flush_all on MPI, a constant AM on GASNet.
    pub fn notify_ns(&self, sub: Substrate, p: usize) -> f64 {
        match sub {
            Substrate::Mpi => self.mpi_notify_base_ns + self.mpi_flush_per_rank_ns * p as f64,
            Substrate::Gasnet => self.gasnet_notify_ns,
        }
    }

    /// SRQ multiplier on the GASNet receive path at job size `p`
    /// (`no_srq = true` models the paper's NOSRQ configuration).
    pub fn srq_factor(&self, sub: Substrate, p: usize, no_srq: bool) -> f64 {
        if sub == Substrate::Gasnet && !no_srq && p >= self.srq_threshold {
            self.srq_penalty
        } else {
            1.0
        }
    }

    /// Time for one alltoall of `block_bytes` per destination pair over
    /// `p` ranks, per image.
    pub fn alltoall_s(&self, sub: Substrate, p: usize, block_bytes: f64) -> f64 {
        let model = match sub {
            Substrate::Mpi => self.mpi_a2a,
            Substrate::Gasnet => self.gasnet_a2a,
        };
        model.seconds(p, block_bytes, self.per_byte_ns(sub))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(model: f64, reference: f64, factor: f64) -> bool {
        (model / reference).max(reference / model) < factor
    }

    #[test]
    fn table1_rows_match_paper() {
        assert_eq!(FUSION.nodes, 320);
        assert_eq!(FUSION.cores_per_node, 8);
        assert_eq!(FUSION.mem_per_node_gib, 36);
        assert_eq!(FUSION.mpi_version, "MVAPICH2-1.9");
        assert_eq!(EDISON.nodes, 5_200);
        assert_eq!(EDISON.cores_per_node, 24);
        assert_eq!(EDISON.mem_per_node_gib, 64);
        assert_eq!(EDISON.interconnect, "Cray Aries");
    }

    #[test]
    fn notify_scales_linearly_on_mpi_only() {
        let a = FUSION.notify_ns(Substrate::Mpi, 16);
        let b = FUSION.notify_ns(Substrate::Mpi, 4096);
        assert!(b > 10.0 * a, "flush_all must dominate at scale");
        assert_eq!(
            FUSION.notify_ns(Substrate::Gasnet, 16),
            FUSION.notify_ns(Substrate::Gasnet, 4096)
        );
    }

    #[test]
    fn srq_is_an_infiniband_feature() {
        // Fusion (InfiniBand): SRQ kicks in at 128 unless disabled.
        assert_eq!(FUSION.srq_factor(Substrate::Gasnet, 64, false), 1.0);
        assert!(FUSION.srq_factor(Substrate::Gasnet, 128, false) > 1.5);
        assert_eq!(FUSION.srq_factor(Substrate::Gasnet, 128, true), 1.0);
        assert_eq!(FUSION.srq_factor(Substrate::Mpi, 128, false), 1.0);
        // Edison (Aries) and Mira (BG/Q): never.
        assert_eq!(EDISON.srq_factor(Substrate::Gasnet, 4096, false), 1.0);
        assert_eq!(MIRA.srq_factor(Substrate::Gasnet, 4096, false), 1.0);
    }

    #[test]
    fn gasnet_rma_cheaper_everywhere() {
        for plat in [FUSION, EDISON, MIRA] {
            assert!(plat.put_ns(Substrate::Gasnet) < plat.put_ns(Substrate::Mpi));
            assert!(plat.get_ns(Substrate::Gasnet) < plat.get_ns(Substrate::Mpi));
        }
    }

    #[test]
    fn edison_p2p_anchors_match_micro_panel() {
        // Paper Edison panel: MPI read ≈ 207 k ops/s → 4.8 µs; GASNet
        // write ≈ 579 k ops/s → 1.73 µs; etc.
        assert!(within(EDISON.mpi_get_ns, 1e9 / 207_555.0, 1.15));
        assert!(within(EDISON.gasnet_put_ns, 1e9 / 579_038.8, 1.15));
        assert!(within(EDISON.gasnet_get_ns, 1e9 / 445_434.3, 1.15));
        assert!(within(EDISON.mpi_notify_base_ns, 1e9 / 700_770.8, 1.15));
    }

    #[test]
    fn edison_alltoall_crossover_reproduced() {
        // Micro panel: GASNet alltoall faster at 32 cores, MPI faster by
        // 256 (tiny payload).
        let mpi = |p| EDISON.alltoall_s(Substrate::Mpi, p, 8.0);
        let g = |p| EDISON.alltoall_s(Substrate::Gasnet, p, 8.0);
        assert!(g(32) < mpi(32));
        assert!(g(256) > mpi(256));
        // Anchors within 2× of the published rates.
        assert!(within(1.0 / mpi(32), 12_396.0, 2.0));
        assert!(within(1.0 / mpi(4096), 29.4, 2.0));
        assert!(within(1.0 / g(32), 24_178.0, 2.0));
        assert!(within(1.0 / g(4096), 19.7, 2.0));
    }

    #[test]
    fn mira_alltoall_anchors_match_micro_panel() {
        let rate = |sub, p| 1.0 / MIRA.alltoall_s(sub, p, 8.0);
        assert!(within(rate(Substrate::Mpi, 16), 24_096.0, 2.0));
        assert!(within(rate(Substrate::Mpi, 4096), 602.7, 2.0));
        assert!(within(rate(Substrate::Gasnet, 16), 3_716.0, 2.0));
        assert!(within(rate(Substrate::Gasnet, 4096), 9.92, 2.0));
    }
}
