#![warn(missing_docs)]

//! # caf-netmodel
//!
//! The analytic performance model that regenerates every table and figure
//! of *Portable, MPI-Interoperable Coarray Fortran* (PPoPP'14) at the
//! paper's full scale (16–4096 cores).
//!
//! The in-process runtimes in this workspace execute the real code paths at
//! 2–64 images; the published curves, however, come from 320–5 200-node
//! machines. This crate closes that gap the honest way: each benchmark gets
//! a small closed-form cost model whose terms are exactly the mechanisms
//! the paper identifies —
//!
//! * per-operation software overheads of each substrate (GASNet RMA
//!   cheaper than MPICH RMA; Cray MPI RMA implemented over send/recv),
//! * `MPI_Win_flush_all` visiting all `P` ranks inside `event_notify`,
//! * GASNet's SRQ receive slow path above its node-count threshold,
//! * `MPI_ALLTOALL`'s tuned pairwise exchange versus GASNet's hand-rolled
//!   linear exchange,
//! * CGPOP's fixed 360-block domain decomposition (the source of its
//!   stair-step strong-scaling curve),
//!
//! with constants anchored to the paper's own microbenchmark tables. The
//! paper's published series are embedded in [`paperdata`] so every figure
//! can be printed as *paper vs. model* rows, and the test suite asserts the
//! qualitative claims (who wins, where, by roughly how much) hold.

pub mod cgpop;
pub mod fft;
pub mod figures;
pub mod hpl;
pub mod memory;
pub mod micro;
pub mod paperdata;
pub mod platform;
pub mod ra;
pub mod sensitivity;

pub use figures::{Figure, Series};
pub use platform::{Platform, Substrate, EDISON, FUSION, MIRA};

/// Relative shape error between a model series and a reference series:
/// the worst per-point ratio deviation from the overall scale factor.
///
/// A value of 1.0 means the model matches the reference up to one global
/// constant; 2.0 means some point is off by 2× after global rescaling.
pub fn shape_error(model: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(model.len(), reference.len());
    assert!(!model.is_empty());
    // Global scale: geometric mean of ratios.
    let log_scale: f64 = model
        .iter()
        .zip(reference)
        .map(|(m, r)| (m / r).ln())
        .sum::<f64>()
        / model.len() as f64;
    let scale = log_scale.exp();
    model
        .iter()
        .zip(reference)
        .map(|(m, r)| {
            let ratio = m / (r * scale);
            ratio.max(1.0 / ratio)
        })
        .fold(1.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_identity() {
        let a = [1.0, 2.0, 4.0];
        assert!((shape_error(&a, &a) - 1.0).abs() < 1e-12);
        // A constant multiple is also a perfect shape match.
        let b = [10.0, 20.0, 40.0];
        assert!((shape_error(&b, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shape_error_detects_deviation() {
        let model = [1.0, 2.0, 8.0];
        let reference = [1.0, 2.0, 4.0];
        assert!(shape_error(&model, &reference) > 1.3);
    }
}
