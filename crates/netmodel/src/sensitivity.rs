//! Sensitivity analyses over the figure models: how much of each published
//! gap is explained by the mechanism the paper names, and where the
//! crossovers move when that mechanism's cost changes.
//!
//! These are the quantitative versions of the paper's prose claims: "this
//! is, of course, a simple performance scalability issue that can be
//! addressed within the MPI implementation" (§4.1, about `flush_all`);
//! "not as well tuned as MPI_ALLTOALL" (§4.2, about the GASNet alltoall).

use crate::platform::{Platform, Substrate};
use crate::{fft, ra};

/// RandomAccess GUP/s on `plat` at `p` ranks with the MPI
/// `flush_per_rank` cost scaled by `multiplier` (1.0 = as measured,
/// 0.0 = a free flush — the `MPI_WIN_RFLUSH` limit).
pub fn ra_gups_with_flush_scale(plat: &Platform, p: usize, multiplier: f64) -> f64 {
    let mut scaled = *plat;
    scaled.mpi_flush_per_rank_ns *= multiplier;
    ra::gups(&scaled, Substrate::Mpi, p, false)
}

/// Fraction of the CAF-MPI RandomAccess slowdown (relative to the
/// free-flush limit) attributable to the Θ(P) flush at job size `p`.
pub fn ra_flush_share(plat: &Platform, p: usize) -> f64 {
    let with = ra_gups_with_flush_scale(plat, p, 1.0);
    let without = ra_gups_with_flush_scale(plat, p, 0.0);
    1.0 - with / without
}

/// FFT GFlop/s with the GASNet alltoall per-byte cost scaled by
/// `multiplier` (1.0 = as fitted; values < 1 model a better-tuned
/// hand-rolled exchange).
pub fn fft_gflops_with_a2a_scale(plat: &Platform, p: usize, multiplier: f64) -> f64 {
    let m = fft::M0 * p as f64;
    let t = fft::t_compute(plat, p) + 3.0 * fft::t_alltoall(plat, Substrate::Gasnet, p) * multiplier;
    5.0 * m * m.log2() / t * 1e-9
}

/// The GASNet alltoall multiplier at which CAF-GASNet's FFT would match
/// CAF-MPI's at job size `p` (bisection; the answer quantifies how much
/// tuning the hand-rolled exchange would need).
pub fn fft_parity_multiplier(plat: &Platform, p: usize) -> f64 {
    let target = fft::gflops(plat, Substrate::Mpi, p);
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if fft_gflops_with_a2a_scale(plat, p, mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// First job size (among `ps`) at which curve `a` falls below curve `b`,
/// if any — a generic crossover finder for the figure series.
pub fn crossover_p(ps: &[usize], a: &[f64], b: &[f64]) -> Option<usize> {
    ps.iter()
        .zip(a.iter().zip(b))
        .find(|(_, (x, y))| x < y)
        .map(|(&p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata as pd;
    use crate::platform::{EDISON, FUSION};

    #[test]
    fn flush_share_grows_with_scale() {
        // The Θ(P) flush explains little at 16 ranks and a lot at 4096.
        let small = ra_flush_share(&EDISON, 16);
        let large = ra_flush_share(&EDISON, 4096);
        assert!(small < 0.10, "{small}");
        assert!(large > 0.40, "{large}");
        assert!(large > small);
    }

    #[test]
    fn flush_scaling_is_monotone() {
        let mut prev = f64::INFINITY;
        for mult in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
            let g = ra_gups_with_flush_scale(&FUSION, 1024, mult);
            assert!(g <= prev + 1e-12, "GUPS must fall as flush costs rise");
            prev = g;
        }
    }

    #[test]
    fn fft_parity_needs_substantial_tuning() {
        // At 256 ranks on Fusion the hand-rolled alltoall would need to
        // shed well over half its cost to reach CAF-MPI's FFT throughput.
        let mult = fft_parity_multiplier(&FUSION, 256);
        assert!(mult < 0.7, "{mult}");
        assert!(mult > 0.0);
        // And the scaled model indeed reaches parity there.
        let at_parity = fft_gflops_with_a2a_scale(&FUSION, 256, mult);
        let target = fft::gflops(&FUSION, crate::platform::Substrate::Mpi, 256);
        assert!((at_parity / target - 1.0).abs() < 0.01);
    }

    #[test]
    fn ra_fusion_crossover_found() {
        // Published data: GASNet (SRQ) falls below CAF-MPI at 128 ranks.
        let x = crossover_p(
            &pd::FUSION_P,
            &pd::RA_FUSION_GASNET,
            &pd::RA_FUSION_MPI,
        );
        assert_eq!(x, Some(128));
        // The model reproduces the same crossover point.
        let model_g = ra::gups_series(&FUSION, Substrate::Gasnet, &pd::FUSION_P, false);
        let model_m = ra::gups_series(&FUSION, Substrate::Mpi, &pd::FUSION_P, false);
        assert_eq!(crossover_p(&pd::FUSION_P, &model_g, &model_m), Some(128));
    }

    #[test]
    fn no_crossover_when_always_above() {
        assert_eq!(crossover_p(&[1, 2], &[2.0, 3.0], &[1.0, 1.0]), None);
    }
}
